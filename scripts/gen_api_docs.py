#!/usr/bin/env python
"""Generate docs/API.md from the package's docstrings.

Walks every public symbol exported by the repro subpackages and renders a
compact markdown API reference: module summaries, class/function
signatures, and first-paragraph docstrings.

Run:  python scripts/gen_api_docs.py   (rewrites docs/API.md)
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path

PACKAGES = [
    "repro.graphs",
    "repro.covers",
    "repro.sim",
    "repro.obs",
    "repro.faults",
    "repro.protocols",
    "repro.core",
    "repro.synch",
    "repro.control",
    "repro.experiments",
    "repro.analysis",
    "repro.replay",
    "repro.serve",
]


def first_paragraph(doc: str | None) -> str:
    if not doc:
        return "(undocumented)"
    para = doc.strip().split("\n\n")[0]
    return " ".join(line.strip() for line in para.splitlines())


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return "(...)"


def render_symbol(name: str, obj) -> list[str]:
    lines = []
    if inspect.isclass(obj):
        lines.append(f"#### class `{name}`")
        lines.append("")
        lines.append(first_paragraph(obj.__doc__))
        methods = [
            (m, fn) for m, fn in inspect.getmembers(obj, inspect.isfunction)
            if not m.startswith("_") and fn.__qualname__.startswith(obj.__name__)
        ]
        for m, fn in sorted(methods):
            lines.append(f"- `{m}{signature_of(fn)}` — "
                         f"{first_paragraph(fn.__doc__)}")
    elif inspect.isfunction(obj):
        lines.append(f"#### `{name}{signature_of(obj)}`")
        lines.append("")
        lines.append(first_paragraph(obj.__doc__))
    else:
        lines.append(f"#### `{name}`")
        lines.append("")
        lines.append(first_paragraph(getattr(obj, "__doc__", None))
                     if not isinstance(obj, (int, float, str)) else
                     f"constant = `{obj!r}`")
    lines.append("")
    return lines


def main() -> None:
    out = [
        "# API reference",
        "",
        "Generated from docstrings by `scripts/gen_api_docs.py`; "
        "regenerate after changing public signatures.",
        "",
    ]
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(f"## `{pkg_name}`")
        out.append("")
        out.append(first_paragraph(pkg.__doc__))
        out.append("")
        for name in getattr(pkg, "__all__", []):
            obj = getattr(pkg, name)
            # Skip symbols documented under their defining subpackage class.
            out.extend(render_symbol(name, obj))
    path = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    path.write_text("\n".join(out) + "\n")
    print(f"wrote {path} ({len(out)} lines)")


if __name__ == "__main__":
    main()
