#!/usr/bin/env python
"""(Re-)record the committed golden-trace corpus.

Each spec below pins one run as ``tests/fixtures/golden/<name>.jsonl``;
``tests/test_replay.py`` replays every file in that directory and asserts
byte-identity, so the corpus is a cross-version determinism regression
net.  Re-run this script ONLY when an intentional behavior change
invalidates the pinned traces — the diff then shows exactly which runs
changed, and ``python -m repro.replay diff`` localizes where.

Run:  python scripts/record_golden.py [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.faults import CrashWindow, FaultPlan  # noqa: E402
from repro.replay import ReplaySpec, check_golden, record_golden  # noqa: E402

#: name -> spec. Keep these SMALL (they are committed) and diverse: a
#: fault-free run, a lossy run, a crash-recover run, and the synchronizer.
SPECS = {
    "broadcast_clean": ReplaySpec(
        protocol="broadcast", n=10, extra_edges=10, graph_seed=2),
    "broadcast_lossy": ReplaySpec(
        protocol="broadcast", n=10, extra_edges=10, graph_seed=2,
        plan=FaultPlan(drop=0.2, seed=9)),
    "dfs_crash_recover": ReplaySpec(
        protocol="dfs", n=10, extra_edges=10, graph_seed=2,
        plan=FaultPlan(crashes=(CrashWindow(9, 2.0, 8.0),), seed=4)),
    "gamma_w_max": ReplaySpec(
        protocol="gamma_w(max)", n=8, extra_edges=6, graph_seed=3,
        limit=0),  # aggregate-only: the synchronizer trace is large
}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out-dir",
                        default=str(REPO / "tests" / "fixtures" / "golden"))
    args = parser.parse_args()
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    status = 0
    for name, spec in sorted(SPECS.items()):
        path = record_golden(spec, str(out / f"{name}.jsonl"))
        report = check_golden(path)
        print(f"{name}: {report.describe()}")
        if not report.ok:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
