#!/usr/bin/env python
"""(Re-)record the committed golden-trace corpus.

Each spec below pins one run as ``tests/fixtures/golden/<name>.jsonl``;
``tests/test_replay.py`` replays every file in that directory and asserts
byte-identity, so the corpus is a cross-version determinism regression
net.  Re-run this script ONLY when an intentional behavior change
invalidates the pinned traces — the diff then shows exactly which runs
changed, and ``python -m repro.replay diff`` localizes where.

Run:  python scripts/record_golden.py [--out-dir DIR]

Fleet mode (``--fleet N``) records a *sharded* N-trace corpus through
the persistent pool instead — a deterministic protocol x seed x
adversary grid (:func:`repro.replay.fleet.fleet_specs`) written to
``--out-dir`` (default ``corpus/fleet``) as ``shard-NN/*.jsonl`` plus a
``manifest.json`` of per-trace SHA-256s.  ``--check`` replays an
existing fleet corpus (optionally ``--sample K`` of it) and verifies
byte-identity; ``tests/test_golden_fleet.py`` samples the same machinery
in tier-1 under the ``fleet`` marker.

Run:  python scripts/record_golden.py --fleet 1000 --jobs 8
      python scripts/record_golden.py --fleet 1000 --check --sample 50
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.parallel import shutdown_pool  # noqa: E402
from repro.faults import CrashWindow, FaultPlan  # noqa: E402
from repro.replay import (  # noqa: E402
    ReplaySpec,
    check_fleet,
    check_golden,
    record_fleet,
    record_golden,
)

#: name -> spec. Keep these SMALL (they are committed) and diverse: a
#: fault-free run, a lossy run, a crash-recover run, and the synchronizer.
SPECS = {
    "broadcast_clean": ReplaySpec(
        protocol="broadcast", n=10, extra_edges=10, graph_seed=2),
    "broadcast_lossy": ReplaySpec(
        protocol="broadcast", n=10, extra_edges=10, graph_seed=2,
        plan=FaultPlan(drop=0.2, seed=9)),
    "dfs_crash_recover": ReplaySpec(
        protocol="dfs", n=10, extra_edges=10, graph_seed=2,
        plan=FaultPlan(crashes=(CrashWindow(9, 2.0, 8.0),), seed=4)),
    "gamma_w_max": ReplaySpec(
        protocol="gamma_w(max)", n=8, extra_edges=6, graph_seed=3,
        limit=0),  # aggregate-only: the synchronizer trace is large
}


def _fleet_main(args: argparse.Namespace) -> int:
    out = args.out_dir or str(REPO / "corpus" / "fleet")
    try:
        if args.check:
            report = check_fleet(out, jobs=args.jobs, sample=args.sample)
            print(f"fleet: replayed {report['replayed']}/{report['total']} "
                  f"trace(s), ok={report['ok']}")
            for path, desc in sorted(report["failures"].items()):
                print(f"  FAIL {path}: {desc}")
            return 0 if report["ok"] else 1
        manifest = record_fleet(out, args.fleet, jobs=args.jobs)
        print(f"fleet: recorded {len(manifest['traces'])} trace(s) -> {out}")
        return 0
    finally:
        shutdown_pool()


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out-dir", default=None,
                        help="corpus directory (default: tests/fixtures/golden,"
                             " or corpus/fleet in --fleet mode)")
    parser.add_argument("--fleet", type=int, default=None, metavar="N",
                        help="record/check an N-trace sharded fleet corpus "
                             "through the pool instead of the committed set")
    parser.add_argument("--check", action="store_true",
                        help="with --fleet: verify an existing corpus instead "
                             "of recording")
    parser.add_argument("--sample", type=int, default=None, metavar="K",
                        help="with --fleet --check: replay a deterministic "
                             "K-trace sample instead of the whole corpus")
    parser.add_argument("--jobs", type=int, default=None,
                        help="pool workers for fleet record/check")
    args = parser.parse_args()
    if args.fleet is not None:
        return _fleet_main(args)
    out = Path(args.out_dir or str(REPO / "tests" / "fixtures" / "golden"))
    out.mkdir(parents=True, exist_ok=True)
    status = 0
    for name, spec in sorted(SPECS.items()):
        path = record_golden(spec, str(out / f"{name}.jsonl"))
        report = check_golden(path)
        print(f"{name}: {report.describe()}")
        if not report.ok:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
