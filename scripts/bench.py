#!/usr/bin/env python
"""Perf-regression bench harness: pinned suite, JSON trajectory.

Runs three pinned measurements and writes ``BENCH_<rev>.json`` so every
revision leaves a comparable perf record:

1. **EventQueue micro-bench** — four event-scheduling shapes modeled on
   the simulator's real workloads (broadcast waves, serial token walks,
   synchronizer pulses, transmit fan-out bursts), each driven twice: once
   through a faithful reconstruction of the pre-optimization stack (the
   one-entry-per-event heap queue plus the per-event
   ``peek_time()``/``step()`` driver loop the ``Network`` used to run,
   closures and all) and once through the current
   :class:`repro.sim.events.EventQueue` drained by :meth:`run`.  Reported
   as events/sec per shape plus aggregate speedup.
2. **Network throughput** — a flooding broadcast on a pinned random
   graph, reported as messages/sec and events/sec end to end.
3. **Chaos sweep** — the chaos matrix via the parallel engine, serial vs
   ``--jobs N``, asserting the merged rows are identical and reporting
   both wall times.

Usage::

    python scripts/bench.py                 # full pinned suite
    python scripts/bench.py --quick         # CI smoke (seconds, tiny sizes)
    python scripts/bench.py --jobs 4        # parallel sweep worker count
    python scripts/bench.py --out out.json  # explicit output path

Measurements interleave baseline/current repetitions and keep the minimum
per side, which is robust against the noisy shared machines CI runs on.
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import subprocess
import sys
import time
from itertools import count
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.parallel import (  # noqa: E402
    chaos_cells,
    run_chaos_cell,
    run_parallel,
)
from repro.graphs import random_connected_graph  # noqa: E402
from repro.protocols.broadcast import FloodProcess  # noqa: E402
from repro.sim.events import EventQueue  # noqa: E402
from repro.sim.network import Network  # noqa: E402


# --------------------------------------------------------------------- #
# Faithful pre-optimization baseline
# --------------------------------------------------------------------- #


class LegacyEventQueue:
    """The pre-optimization queue: one ``(time, seq, callback)`` heap entry
    per event (verbatim reconstruction of the old ``repro.sim.events``)."""

    def __init__(self) -> None:
        self._heap = []
        self._seq = count()
        self.now = 0.0

    def schedule(self, delay, callback):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), callback))

    def schedule_at(self, when, callback):
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def peek_time(self):
        return self._heap[0][0] if self._heap else None

    def __len__(self):
        return len(self._heap)

    def __bool__(self):
        return bool(self._heap)

    def step(self):
        if not self._heap:
            return False
        when, _, callback = heapq.heappop(self._heap)
        self.now = when
        callback()
        return True


class _LegacyHarness:
    """Stand-in for the old ``Network`` around its event loop (the budget
    property it probed once per event)."""

    comm_budget = None

    @property
    def budget_exhausted(self) -> bool:
        return False


def drive_legacy(queue, max_time=float("inf"), max_events=50_000_000):
    """The pre-optimization ``Network.run`` event loop, per-event costs
    intact: budget probe, ``stop_when`` check, ``peek_time()`` + ``step()``
    method calls, and the counter/backstop compare."""
    harness = _LegacyHarness()
    stop_when = None
    events = 0
    while queue:
        if harness.budget_exhausted:
            break
        if stop_when is not None and stop_when(harness):
            break
        if queue.peek_time() > max_time:
            break
        if not queue.step():
            break
        events += 1
        if events >= max_events:
            raise RuntimeError("runaway")
    return events


def drive_current(queue, max_time=float("inf")):
    _, events = queue.run(max_time=max_time, check_halt=False)
    return events


# --------------------------------------------------------------------- #
# Workload shapes
#
# Each shape seeds a queue and returns the expected event count; the
# legacy variant schedules closures through the old two-method API, the
# current one uses ``schedule_call*``.  Both express the same traffic.
# --------------------------------------------------------------------- #

WAVE_NODES = 256
WAVE_WEIGHTS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)
CHAIN_STEPS_FULL = 60_000
PULSE_NODES = 64
BURST_FANOUT = 2
BURST_WEIGHTS = (1.0, 2.0, 3.0)


def seed_wave_legacy(q, rounds):
    """Broadcast waves: each node re-delivers at a fixed weight from an
    8-value set, so nodes sharing a weight land on the same timestamps
    (heavy collision, like same-weight flooding fronts)."""

    def deliver(node, left):
        if left > 0:
            w = WAVE_WEIGHTS[node & 7]
            q.schedule(w, lambda n=node, r=left - 1: deliver(n, r))

    for node in range(WAVE_NODES):
        q.schedule(WAVE_WEIGHTS[node & 7],
                   lambda n=node, r=rounds - 1: deliver(n, r))
    return WAVE_NODES * rounds


def seed_wave_current(q, rounds):
    def deliver(node, left):
        if left > 0:
            q.schedule_call(WAVE_WEIGHTS[node & 7], deliver, node, left - 1)

    for node in range(WAVE_NODES):
        q.schedule_call(WAVE_WEIGHTS[node & 7], deliver, node, rounds - 1)
    return WAVE_NODES * rounds


def seed_chain_legacy(q, steps):
    """Serial token walk: one live event, every timestamp distinct (the
    bucketing worst case — DFS-like traffic)."""
    state = {"left": steps - 1}

    def hop():
        if state["left"] > 0:
            state["left"] -= 1
            q.schedule(1.0 + (state["left"] & 3) * 0.25, hop)

    q.schedule(1.0, hop)
    return steps


def seed_chain_current(q, steps):
    state = {"left": steps - 1}

    def hop():
        if state["left"] > 0:
            state["left"] -= 1
            q.schedule_call(1.0 + (state["left"] & 3) * 0.25, hop)

    q.schedule_call(1.0, hop)
    return steps


def seed_pulse_legacy(q, pulses):
    """Synchronizer pulses: all nodes fire at every integer time."""
    def fire(node, pulse):
        if pulse > 1:
            q.schedule_at(q.now + 1.0, lambda n=node, p=pulse - 1: fire(n, p))

    for node in range(PULSE_NODES):
        q.schedule_at(1.0, lambda n=node, p=pulses: fire(n, p))
    return PULSE_NODES * pulses


def seed_pulse_current(q, pulses):
    def fire(node, pulse):
        if pulse > 1:
            q.schedule_call_at(q.now + 1.0, fire, node, pulse - 1)

    for node in range(PULSE_NODES):
        q.schedule_call_at(1.0, fire, node, pulses)
    return PULSE_NODES * pulses


def seed_burst_legacy(q, budget):
    """Transmit fan-out: each delivery forwards to 2 neighbors over edges
    with 3 distinct weights (flooding/GHS-like mixed collision traffic)."""
    state = {"budget": budget - 1}

    def deliver(node):
        for i in range(BURST_FANOUT):
            if state["budget"] <= 0:
                return
            state["budget"] -= 1
            w = BURST_WEIGHTS[(node + i) % 3]
            q.schedule(w, lambda n=node * BURST_FANOUT + i + 1: deliver(n))

    q.schedule(1.0, lambda: deliver(0))
    return budget


def seed_burst_current(q, budget):
    state = {"budget": budget - 1}

    def deliver(node):
        for i in range(BURST_FANOUT):
            if state["budget"] <= 0:
                return
            state["budget"] -= 1
            q.schedule_call(BURST_WEIGHTS[(node + i) % 3], deliver,
                            node * BURST_FANOUT + i + 1)

    q.schedule_call(1.0, deliver, 0)
    return budget


SHAPES = {
    # name -> (legacy seeder, current seeder, full size, quick size)
    "wave": (seed_wave_legacy, seed_wave_current, 240, 12),
    "chain": (seed_chain_legacy, seed_chain_current, CHAIN_STEPS_FULL, 3_000),
    "pulse": (seed_pulse_legacy, seed_pulse_current, 900, 45),
    "fifo_burst": (seed_burst_legacy, seed_burst_current, 60_000, 3_000),
}


def bench_event_queue(reps: int, quick: bool) -> dict:
    shapes = {}
    total_events = 0
    total_legacy = 0.0
    total_current = 0.0
    for name, (legacy_seed, current_seed, full, small) in SHAPES.items():
        size = small if quick else full
        best_legacy = best_current = float("inf")
        events = 0
        # Interleave sides so machine noise hits both equally; keep minima.
        for _ in range(reps):
            lq = LegacyEventQueue()
            expected = legacy_seed(lq, size)
            t0 = time.perf_counter()
            ran = drive_legacy(lq)
            best_legacy = min(best_legacy, time.perf_counter() - t0)
            assert ran == expected, (name, "legacy", ran, expected)

            cq = EventQueue()
            expected = current_seed(cq, size)
            t0 = time.perf_counter()
            ran = drive_current(cq)
            best_current = min(best_current, time.perf_counter() - t0)
            assert ran == expected, (name, "current", ran, expected)
            events = expected
        shapes[name] = {
            "events": events,
            "legacy_s": best_legacy,
            "current_s": best_current,
            "legacy_events_per_s": events / best_legacy,
            "current_events_per_s": events / best_current,
            "speedup": best_legacy / best_current,
        }
        total_events += events
        total_legacy += best_legacy
        total_current += best_current
    speedups = [s["speedup"] for s in shapes.values()]
    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    return {
        "shapes": shapes,
        "aggregate": {
            "total_events": total_events,
            "legacy_s": total_legacy,
            "current_s": total_current,
            "speedup": total_legacy / total_current,
            "geomean_speedup": geomean,
        },
    }


# --------------------------------------------------------------------- #
# Network + sweep benches
# --------------------------------------------------------------------- #


def bench_network(reps: int, quick: bool) -> dict:
    n = 24 if quick else 96
    extra = 2 * n
    graph = random_connected_graph(n, extra, seed=11)
    root = graph.vertices[0]
    best = float("inf")
    messages = 0
    for _ in range(reps):
        net = Network(graph, lambda v: FloodProcess(v == root, "bench"))
        t0 = time.perf_counter()
        result = net.run()
        best = min(best, time.perf_counter() - t0)
        messages = result.message_count
    return {
        "graph": {"n": n, "m": graph.num_edges},
        "messages": messages,
        "wall_s": best,
        "messages_per_s": messages / best,
    }


def bench_chaos_sweep(jobs: int, quick: bool) -> dict:
    if quick:
        per_seed = dict(n=10, extra_edges=12, drop_rates=(0.0, 0.2))
        graph_seeds = (4,)
    else:
        per_seed = dict(n=14, extra_edges=20, drop_rates=(0.0, 0.05, 0.2))
        graph_seeds = (2, 3, 5)
    cells = []
    for gs in graph_seeds:
        cells += chaos_cells(graph_seed=gs, **per_seed)
    run_parallel(run_chaos_cell, cells, jobs=1)  # warm case/reference memos
    t0 = time.perf_counter()
    serial = run_parallel(run_chaos_cell, cells, jobs=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_parallel(run_chaos_cell, cells, jobs=jobs)
    parallel_s = time.perf_counter() - t0
    return {
        "rows": len(serial),
        "graph_seeds": list(graph_seeds),
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "identical": serial == parallel,
    }


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="tiny pinned sizes for CI smoke runs")
    ap.add_argument("--jobs", type=int, default=4,
                    help="worker count for the parallel sweep bench")
    ap.add_argument("--reps", type=int, default=None,
                    help="repetitions per measurement (min is kept)")
    ap.add_argument("--out", type=Path, default=None,
                    help="output path (default BENCH_<rev>.json in repo root)")
    args = ap.parse_args(argv)

    reps = args.reps if args.reps is not None else (3 if args.quick else 7)
    rev = git_rev()
    report = {
        "rev": rev,
        "unix_time": int(time.time()),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "quick": args.quick,
        "reps": reps,
        "event_queue": bench_event_queue(reps, args.quick),
        "network": bench_network(reps, args.quick),
        "chaos_sweep": bench_chaos_sweep(args.jobs, args.quick),
    }

    out = args.out or REPO / f"BENCH_{rev}.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    eq = report["event_queue"]
    for name, s in eq["shapes"].items():
        print(f"{name:12s} {s['events']:>8d} ev  "
              f"legacy {s['legacy_events_per_s']:>12,.0f}/s  "
              f"current {s['current_events_per_s']:>12,.0f}/s  "
              f"x{s['speedup']:.2f}")
    agg = eq["aggregate"]
    print(f"{'aggregate':12s} {agg['total_events']:>8d} ev  "
          f"speedup x{agg['speedup']:.2f}  (geomean x{agg['geomean_speedup']:.2f})")
    net = report["network"]
    print(f"network flood: {net['messages']} msgs, "
          f"{net['messages_per_s']:,.0f} msgs/s")
    cs = report["chaos_sweep"]
    print(f"chaos sweep: {cs['rows']} rows, serial {cs['serial_s']:.2f}s, "
          f"jobs={cs['jobs']} {cs['parallel_s']:.2f}s "
          f"(x{cs['speedup']:.2f}), identical={cs['identical']}")
    print(f"wrote {out}")

    if not cs["identical"]:
        print("FATAL: parallel sweep rows differ from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
