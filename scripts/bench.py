#!/usr/bin/env python
"""Perf-regression bench harness: pinned suite, JSON trajectory.

Runs three pinned measurements and writes ``BENCH_<rev>.json`` so every
revision leaves a comparable perf record:

1. **EventQueue micro-bench** — four event-scheduling shapes modeled on
   the simulator's real workloads (broadcast waves, serial token walks,
   synchronizer pulses, transmit fan-out bursts), each driven twice: once
   through a faithful reconstruction of the pre-optimization stack (the
   one-entry-per-event heap queue plus the per-event
   ``peek_time()``/``step()`` driver loop the ``Network`` used to run,
   closures and all) and once through the current
   :class:`repro.sim.events.EventQueue` drained by :meth:`run`.  Reported
   as events/sec per shape plus aggregate speedup.
2. **Graph-kernel micro-bench** — the paper's parameter computations
   (all-sources eccentricities/diameter, max neighbor distance, Prim and
   Kruskal MSTs) on pinned graph shapes, dict-of-dicts reference
   algorithms vs the flat-array CSR kernels (:mod:`repro.graphs.csr`,
   CSR build included in its timing).  Results are asserted equal before
   anything is reported.
3. **Network throughput** — a flooding broadcast on a pinned random
   graph, reported as messages/sec and events/sec end to end.
4. **Chaos sweep** — the chaos matrix through the sweep engine: serial
   reference, the engine's own plan at ``--jobs N``, the forced
   persistent pool (cold and warm), and a reconstruction of the
   pre-optimization pool path (fresh executor per call, chunksize 1, no
   warm-up) — asserting all row lists are identical and reporting every
   wall time.
5. **Tracing overhead** — the same flood as the network bench run three
   ways: no recorder at all, a disabled :class:`repro.obs.NullRecorder`
   (the "tracing compiled out" path — must stay within 2% of untraced),
   and a full :class:`repro.obs.TraceRecorder` capturing every event.
6. **Serve tier** — the ``repro.serve`` content-addressed cache: a
   pinned chaos-request mix served cold then warm (cache-hit speedup is
   a hard >= 5x gate), plus 8 simultaneous duplicates coalesced onto one
   execution with *exact* ServeStats accounting asserted.
7. **Big tier** (``--big``) — the paper's graph families streamed
   directly into flat buffers at n = 10^5..10^6 (10^4 with ``--quick``),
   published once into shared memory and swept zero-copy through the
   pool: stripe and per-source sweeps with serial == pool identity,
   one-build-per-sweep counters, aggregates-only tracing (recorder
   ``limit=0``), and an explicit peak-RSS budget the whole tier must
   fit (exits non-zero otherwise, as it does on leaked segments).

Usage::

    python scripts/bench.py                 # full pinned suite
    python scripts/bench.py --quick         # CI smoke (seconds, tiny sizes)
    python scripts/bench.py --big           # add the shared-memory big tier
    python scripts/bench.py --jobs 4        # parallel sweep worker count
    python scripts/bench.py --out out.json  # explicit output path
    python scripts/bench.py --compare BENCH_<rev>.json   # regression gate

``--compare`` diffs the fresh run against a prior artifact over every
shared self-normalized metric (per-shape event-queue speedups, kernel
speedups, sweep speedup, network throughput) and exits non-zero when the
geomean ratio falls more than ``--tolerance`` (default 10%) below the
baseline.  Metrics only one side has (e.g. a new bench section) are
skipped, so the gate survives adding sections.

Measurements interleave baseline/current repetitions and keep the minimum
per side, which is robust against the noisy shared machines CI runs on.
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import subprocess
import sys
import time
from itertools import count
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from concurrent.futures import ProcessPoolExecutor  # noqa: E402

from repro.experiments.parallel import (  # noqa: E402
    chaos_cells,
    pool_shm_stats,
    run_chaos_cell,
    run_parallel,
    shutdown_pool,
    snapshot_rows,
)
from repro.graphs import (  # noqa: E402
    complete_graph,
    dijkstra,
    grid_graph,
    random_connected_graph,
)
from repro.graphs.csr import (  # noqa: E402
    CSRGraph,
    all_sources_scan,
    csr_kruskal_mst,
    csr_prim_mst,
)
from repro.graphs.mst import kruskal_mst_dicts, prim_mst_dicts  # noqa: E402
from repro.obs import NullRecorder, TraceRecorder  # noqa: E402
from repro.obs.exporters import jsonable  # noqa: E402
from repro.protocols.broadcast import FloodProcess  # noqa: E402
from repro.sim.events import EventQueue  # noqa: E402
from repro.sim.network import Network  # noqa: E402


# --------------------------------------------------------------------- #
# Faithful pre-optimization baseline
# --------------------------------------------------------------------- #


class LegacyEventQueue:
    """The pre-optimization queue: one ``(time, seq, callback)`` heap entry
    per event (verbatim reconstruction of the old ``repro.sim.events``)."""

    def __init__(self) -> None:
        self._heap = []
        self._seq = count()
        self.now = 0.0

    def schedule(self, delay, callback):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), callback))

    def schedule_at(self, when, callback):
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def peek_time(self):
        return self._heap[0][0] if self._heap else None

    def __len__(self):
        return len(self._heap)

    def __bool__(self):
        return bool(self._heap)

    def step(self):
        if not self._heap:
            return False
        when, _, callback = heapq.heappop(self._heap)
        self.now = when
        callback()
        return True


class _LegacyHarness:
    """Stand-in for the old ``Network`` around its event loop (the budget
    property it probed once per event)."""

    comm_budget = None

    @property
    def budget_exhausted(self) -> bool:
        return False


def drive_legacy(queue, max_time=float("inf"), max_events=50_000_000):
    """The pre-optimization ``Network.run`` event loop, per-event costs
    intact: budget probe, ``stop_when`` check, ``peek_time()`` + ``step()``
    method calls, and the counter/backstop compare."""
    harness = _LegacyHarness()
    stop_when = None
    events = 0
    while queue:
        if harness.budget_exhausted:
            break
        if stop_when is not None and stop_when(harness):
            break
        if queue.peek_time() > max_time:
            break
        if not queue.step():
            break
        events += 1
        if events >= max_events:
            raise RuntimeError("runaway")
    return events


def drive_current(queue, max_time=float("inf")):
    _, events = queue.run(max_time=max_time, check_halt=False)
    return events


# --------------------------------------------------------------------- #
# Workload shapes
#
# Each shape seeds a queue and returns the expected event count; the
# legacy variant schedules closures through the old two-method API, the
# current one uses ``schedule_call*``.  Both express the same traffic.
# --------------------------------------------------------------------- #

WAVE_NODES = 256
WAVE_WEIGHTS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)
CHAIN_STEPS_FULL = 60_000
PULSE_NODES = 64
BURST_FANOUT = 2
BURST_WEIGHTS = (1.0, 2.0, 3.0)


def seed_wave_legacy(q, rounds):
    """Broadcast waves: each node re-delivers at a fixed weight from an
    8-value set, so nodes sharing a weight land on the same timestamps
    (heavy collision, like same-weight flooding fronts)."""

    def deliver(node, left):
        if left > 0:
            w = WAVE_WEIGHTS[node & 7]
            q.schedule(w, lambda n=node, r=left - 1: deliver(n, r))

    for node in range(WAVE_NODES):
        q.schedule(WAVE_WEIGHTS[node & 7],
                   lambda n=node, r=rounds - 1: deliver(n, r))
    return WAVE_NODES * rounds


def seed_wave_current(q, rounds):
    def deliver(node, left):
        if left > 0:
            q.schedule_call(WAVE_WEIGHTS[node & 7], deliver, node, left - 1)

    for node in range(WAVE_NODES):
        q.schedule_call(WAVE_WEIGHTS[node & 7], deliver, node, rounds - 1)
    return WAVE_NODES * rounds


def seed_chain_legacy(q, steps):
    """Serial token walk: one live event, every timestamp distinct (the
    bucketing worst case — DFS-like traffic)."""
    state = {"left": steps - 1}

    def hop():
        if state["left"] > 0:
            state["left"] -= 1
            q.schedule(1.0 + (state["left"] & 3) * 0.25, hop)

    q.schedule(1.0, hop)
    return steps


def seed_chain_current(q, steps):
    state = {"left": steps - 1}

    def hop():
        if state["left"] > 0:
            state["left"] -= 1
            q.schedule_call(1.0 + (state["left"] & 3) * 0.25, hop)

    q.schedule_call(1.0, hop)
    return steps


def seed_pulse_legacy(q, pulses):
    """Synchronizer pulses: all nodes fire at every integer time."""
    def fire(node, pulse):
        if pulse > 1:
            q.schedule_at(q.now + 1.0, lambda n=node, p=pulse - 1: fire(n, p))

    for node in range(PULSE_NODES):
        q.schedule_at(1.0, lambda n=node, p=pulses: fire(n, p))
    return PULSE_NODES * pulses


def seed_pulse_current(q, pulses):
    def fire(node, pulse):
        if pulse > 1:
            q.schedule_call_at(q.now + 1.0, fire, node, pulse - 1)

    for node in range(PULSE_NODES):
        q.schedule_call_at(1.0, fire, node, pulses)
    return PULSE_NODES * pulses


def seed_burst_legacy(q, budget):
    """Transmit fan-out: each delivery forwards to 2 neighbors over edges
    with 3 distinct weights (flooding/GHS-like mixed collision traffic)."""
    state = {"budget": budget - 1}

    def deliver(node):
        for i in range(BURST_FANOUT):
            if state["budget"] <= 0:
                return
            state["budget"] -= 1
            w = BURST_WEIGHTS[(node + i) % 3]
            q.schedule(w, lambda n=node * BURST_FANOUT + i + 1: deliver(n))

    q.schedule(1.0, lambda: deliver(0))
    return budget


def seed_burst_current(q, budget):
    state = {"budget": budget - 1}

    def deliver(node):
        for i in range(BURST_FANOUT):
            if state["budget"] <= 0:
                return
            state["budget"] -= 1
            q.schedule_call(BURST_WEIGHTS[(node + i) % 3], deliver,
                            node * BURST_FANOUT + i + 1)

    q.schedule_call(1.0, deliver, 0)
    return budget


SHAPES = {
    # name -> (legacy seeder, current seeder, full size, quick size)
    "wave": (seed_wave_legacy, seed_wave_current, 240, 12),
    "chain": (seed_chain_legacy, seed_chain_current, CHAIN_STEPS_FULL, 3_000),
    "pulse": (seed_pulse_legacy, seed_pulse_current, 900, 45),
    "fifo_burst": (seed_burst_legacy, seed_burst_current, 60_000, 3_000),
}


def bench_event_queue(reps: int, quick: bool) -> dict:
    shapes = {}
    total_events = 0
    total_legacy = 0.0
    total_current = 0.0
    for name, (legacy_seed, current_seed, full, small) in SHAPES.items():
        size = small if quick else full
        best_legacy = best_current = float("inf")
        events = 0
        # Interleave sides so machine noise hits both equally; keep minima.
        for _ in range(reps):
            lq = LegacyEventQueue()
            expected = legacy_seed(lq, size)
            t0 = time.perf_counter()
            ran = drive_legacy(lq)
            best_legacy = min(best_legacy, time.perf_counter() - t0)
            assert ran == expected, (name, "legacy", ran, expected)

            cq = EventQueue()
            expected = current_seed(cq, size)
            t0 = time.perf_counter()
            ran = drive_current(cq)
            best_current = min(best_current, time.perf_counter() - t0)
            assert ran == expected, (name, "current", ran, expected)
            events = expected
        shapes[name] = {
            "events": events,
            "legacy_s": best_legacy,
            "current_s": best_current,
            "legacy_events_per_s": events / best_legacy,
            "current_events_per_s": events / best_current,
            "speedup": best_legacy / best_current,
        }
        total_events += events
        total_legacy += best_legacy
        total_current += best_current
    speedups = [s["speedup"] for s in shapes.values()]
    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    return {
        "shapes": shapes,
        "aggregate": {
            "total_events": total_events,
            "legacy_s": total_legacy,
            "current_s": total_current,
            "speedup": total_legacy / total_current,
            "geomean_speedup": geomean,
        },
    }


# --------------------------------------------------------------------- #
# Graph-kernel micro-bench (dict reference vs CSR)
# --------------------------------------------------------------------- #


def _dict_scan(graph):
    """The pre-CSR parameter pass: one dict Dijkstra per source, then the
    edge sweep for the max neighbor distance (what ``GraphParamCache``
    used to run).  Returns ``(ecc, diameter, max_nbr)``."""
    n = graph.num_vertices
    ecc = {}
    dists = {}
    for s in graph.vertices:
        dist, _ = dijkstra(graph, s)
        dists[s] = dist
        ecc[s] = max(dist.values()) if len(dist) == n else float("inf")
    diameter = max(ecc.values()) if ecc else 0.0
    max_nbr = 0.0
    for u, v, _ in graph.edges():
        d = dists[u].get(v, float("inf"))
        if d > max_nbr:
            max_nbr = d
    return ecc, diameter, max_nbr


def _kernel_graphs(quick: bool) -> dict:
    """Pinned shapes: integer random weights, and two unit-weight
    (maximally tie-heavy) topologies that stress tie-breaking identity."""
    if quick:
        return {
            "random_sparse": random_connected_graph(48, 96, seed=13),
            "grid": grid_graph(7, 7),
            "random_dense": random_connected_graph(24, 120, seed=17),
        }
    return {
        "random_sparse": random_connected_graph(192, 384, seed=13),
        "grid": grid_graph(14, 14),
        "random_dense": random_connected_graph(96, 2000, seed=17),
    }


def bench_graph_kernels(reps: int, quick: bool) -> dict:
    shapes = {}
    for name, graph in _kernel_graphs(quick).items():
        best_dict = best_csr = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            d_ecc, d_diam, d_nbr = _dict_scan(graph)
            d_prim = prim_mst_dicts(graph)
            d_kruskal = kruskal_mst_dicts(graph)
            best_dict = min(best_dict, time.perf_counter() - t0)

            t0 = time.perf_counter()
            csr = CSRGraph(graph)  # build is part of the kernel cost
            scan = all_sources_scan(csr)
            c_prim = csr_prim_mst(csr)
            c_kruskal = csr_kruskal_mst(csr)
            best_csr = min(best_csr, time.perf_counter() - t0)

        c_ecc = dict(zip(csr.verts, scan.ecc))
        assert d_ecc == c_ecc, (name, "eccentricities differ")
        assert d_diam == scan.diameter, (name, "diameter differs")
        assert d_nbr == scan.max_neighbor_distance, (name, "max nbr differs")
        assert list(d_prim.edges()) == list(c_prim.edges()), \
            (name, "prim MST differs")
        assert list(d_kruskal.edges()) == list(c_kruskal.edges()), \
            (name, "kruskal differs")

        shapes[name] = {
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "dict_s": best_dict,
            "csr_s": best_csr,
            "speedup": best_dict / best_csr,
        }
    speedups = [s["speedup"] for s in shapes.values()]
    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    return {"shapes": shapes, "aggregate": {"geomean_speedup": geomean}}


def _np_kernel_graphs(quick: bool) -> dict:
    """Shapes for the numpy-vs-python kernel comparison.

    Dense, exact-integer graphs: the regime the vectorized backend
    targets (its all-pairs scan runs a cache-resident int32
    Floyd-Warshall there, where work per source is O(n^2) for *both*
    backends but numpy streams it at SIMD speed).  Sparse
    high-hop-diameter shapes — grids, bounded-degree expanders — favor
    ``REPRO_KERNEL_BACKEND=python`` and are deliberately not benched
    here; docs/PERF.md records that boundary.
    """
    if quick:
        return {
            "complete": complete_graph(64),
            "random_dense": random_connected_graph(96, 3000, seed=17),
            "random_mid": random_connected_graph(128, 3200, seed=13),
        }
    return {
        "complete": complete_graph(384),
        "random_dense": random_connected_graph(512, 32000, seed=17),
        "random_mid": random_connected_graph(768, 32000, seed=13),
    }


def bench_npkernels(reps: int, quick: bool) -> dict:
    """NumPy backend vs the pure-Python CSR kernels (build + scan + MSTs).

    Every rep runs the full parameter workload — snapshot build,
    all-sources scan, Prim, Kruskal — on both backends and asserts the
    results are value-identical before timing is trusted.  Skipped (with
    a marker, so the report key is always present) when numpy is absent.
    """
    from repro.graphs.npkernels import (
        NPGraph,
        np_all_sources_scan,
        np_kruskal_mst,
        np_prim_mst,
        numpy_available,
    )

    if not numpy_available():
        return {"skipped": "numpy not installed"}
    shapes = {}
    for name, graph in _np_kernel_graphs(quick).items():
        best_py = best_np = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            csr = CSRGraph(graph)  # build is part of the kernel cost
            scan = all_sources_scan(csr)
            prim = csr_prim_mst(csr)
            kruskal = csr_kruskal_mst(csr)
            best_py = min(best_py, time.perf_counter() - t0)

            t0 = time.perf_counter()
            npg = NPGraph(CSRGraph(graph))
            np_scan = np_all_sources_scan(npg)
            np_prim = np_prim_mst(npg)
            np_kruskal = np_kruskal_mst(npg)
            best_np = min(best_np, time.perf_counter() - t0)

        assert np_scan == scan, (name, "scan differs")
        assert list(np_prim.edges()) == list(prim.edges()), \
            (name, "prim MST differs")
        assert list(np_kruskal.edges()) == list(kruskal.edges()), \
            (name, "kruskal differs")

        shapes[name] = {
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "python_s": best_py,
            "numpy_s": best_np,
            "speedup": best_py / best_np,
        }
    speedups = [s["speedup"] for s in shapes.values()]
    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    return {"shapes": shapes, "aggregate": {"geomean_speedup": geomean}}


# --------------------------------------------------------------------- #
# Network + sweep benches
# --------------------------------------------------------------------- #


def bench_network(reps: int, quick: bool) -> dict:
    n = 24 if quick else 96
    extra = 2 * n
    graph = random_connected_graph(n, extra, seed=11)
    root = graph.vertices[0]
    best = float("inf")
    messages = 0
    for _ in range(reps):
        net = Network(graph, lambda v: FloodProcess(v == root, "bench"))
        t0 = time.perf_counter()
        result = net.run()
        best = min(best, time.perf_counter() - t0)
        messages = result.message_count
    return {
        "graph": {"n": n, "m": graph.num_edges},
        "messages": messages,
        "wall_s": best,
        "messages_per_s": messages / best,
    }


def bench_tracing(reps: int, quick: bool) -> dict:
    """The flood bench run untraced, with a disabled recorder, and with a
    full recorder — the observability subsystem's overhead contract."""
    n = 24 if quick else 96
    graph = random_connected_graph(n, 2 * n, seed=11)
    root = graph.vertices[0]

    def once(recorder):
        net = Network(graph, lambda v: FloodProcess(v == root, "bench"),
                      recorder=recorder)
        t0 = time.perf_counter()
        result = net.run()
        return time.perf_counter() - t0, result

    best = {"untraced": float("inf"), "disabled": float("inf"),
            "recording": float("inf")}
    messages = {}
    events = 0
    # Interleave all three sides per rep; keep minima (noise-robust).
    # Each run is ~1ms, so extra reps are cheap and the percentages noisy
    # without them.
    for _ in range(max(reps, 15)):
        wall, res = once(None)
        best["untraced"] = min(best["untraced"], wall)
        messages["untraced"] = res.message_count

        wall, res = once(NullRecorder())
        best["disabled"] = min(best["disabled"], wall)
        messages["disabled"] = res.message_count

        rec = TraceRecorder()
        wall, res = once(rec)
        best["recording"] = min(best["recording"], wall)
        messages["recording"] = res.message_count
        events = rec.n_emitted

    assert len(set(messages.values())) == 1, ("runs diverged", messages)
    assert events > 0
    return {
        "graph": {"n": n, "m": graph.num_edges},
        "messages": messages["untraced"],
        "trace_events": events,
        "untraced_s": best["untraced"],
        "disabled_s": best["disabled"],
        "recording_s": best["recording"],
        "disabled_overhead_pct":
            (best["disabled"] / best["untraced"] - 1.0) * 100.0,
        "recording_overhead_pct":
            (best["recording"] / best["untraced"] - 1.0) * 100.0,
        # Higher-is-better form for the --compare gate (~1.0 when the
        # disabled path costs nothing).
        "disabled_ratio": best["untraced"] / best["disabled"],
    }


def bench_serve(jobs: int, quick: bool) -> dict:
    """The serve tier: content-addressed cache vs re-execution.

    One in-process :class:`repro.serve.ServeClient` over a fresh
    persistent store serves a pinned mix of chaos requests cold, then the
    identical mix again (pure cache hits), then 8 simultaneous duplicates
    of a new request (single-flight coalescing).  ServeStats counts are
    asserted *exactly* — the dedupe ledger is the result — and the
    cache-hit speedup is a hard >= 5x acceptance gate, enforced in
    ``main`` alongside the row-identity gates.
    """
    import tempfile

    from repro.serve import ServeClient, payload_bytes

    if quick:
        protos, n, extra = ("broadcast", "dfs"), 12, 18
    else:
        protos, n, extra = ("broadcast", "convergecast", "dfs", "mst_ghs"), 12, 18
    mix = [
        {"kind": "chaos", "protocol": p, "n": n, "extra_edges": extra,
         "graph_seed": gs, "drop": drop, "backend": "python"}
        for p in protos
        for gs, drop in ((2, 0.0), (3, 0.2))
    ]
    fanout = 8
    straggler = {"kind": "chaos", "protocol": protos[0], "n": n,
                 "extra_edges": extra, "graph_seed": 5, "drop": 0.1,
                 "backend": "python"}

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as root:
        with ServeClient(cache_dir=root, jobs=jobs) as client:
            t0 = time.perf_counter()
            cold = [client.request(r) for r in mix]
            cold_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            warm = [client.request(r) for r in mix]
            warm_s = time.perf_counter() - t0

            identical = all(
                payload_bytes(c["payload"]) == payload_bytes(w["payload"])
                and c["payload_sha"] == w["payload_sha"]
                for c, w in zip(cold, warm)
            )

            t0 = time.perf_counter()
            dup = client.request_many([dict(straggler)] * fanout)
            coalesce_s = time.perf_counter() - t0
            stats = client.stats()

    sources = sorted(r["source"] for r in dup)
    coalesced_ok = sources == ["coalesced"] * (fanout - 1) + ["executed"]
    expected = {"hits": len(mix), "misses": len(mix) + 1,
                "coalesced": fanout - 1}
    counts_exact = all(stats[k] == v for k, v in expected.items())
    hit_speedup = cold_s / warm_s if warm_s else float("inf")
    return {
        "requests": len(mix),
        "jobs": jobs,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_rps": len(mix) / cold_s,
        "warm_rps": len(mix) / warm_s,
        "hit_speedup": hit_speedup,
        "coalesce": {"fanout": fanout, "wall_s": coalesce_s,
                     "sources_exact": coalesced_ok},
        "stats": {k: stats[k] for k in
                  ("hits", "misses", "coalesced", "rejected", "errors",
                   "p50_ms", "p99_ms")},
        "expected": expected,
        "counts_exact": counts_exact,
        "identical": identical,
    }


def _legacy_pool_map(fn, cells, jobs):
    """The pre-optimization parallel path: a fresh executor per call,
    chunksize 1, no worker warm-up — every call re-pays pool spin-up and
    every worker rebuilds its reference runs from scratch."""
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, cells, chunksize=1))


def bench_chaos_sweep(jobs: int, quick: bool) -> dict:
    if quick:
        per_seed = dict(n=10, extra_edges=12, drop_rates=(0.0, 0.2))
        graph_seeds = (4,)
    else:
        per_seed = dict(n=14, extra_edges=20, drop_rates=(0.0, 0.05, 0.2))
        graph_seeds = (2, 3, 5)
    cells = []
    for gs in graph_seeds:
        cells += chaos_cells(graph_seed=gs, **per_seed)
    warm = tuple((per_seed["n"], per_seed["extra_edges"], gs, None)
                 for gs in graph_seeds)

    run_parallel(run_chaos_cell, cells, jobs=1)  # warm in-process memos
    t0 = time.perf_counter()
    serial = run_parallel(run_chaos_cell, cells, force="serial")
    serial_s = time.perf_counter() - t0

    # The engine's own plan (may legitimately choose serial on small
    # hosts — that fallback is the optimization under test there).
    t0 = time.perf_counter()
    engine = run_parallel(run_chaos_cell, cells, jobs=jobs, warm=warm)
    engine_s = time.perf_counter() - t0

    # The real pool path, forced: cold (spin-up + warm init included),
    # then reusing the persistent workers.
    shutdown_pool()
    t0 = time.perf_counter()
    pool_cold = run_parallel(run_chaos_cell, cells, jobs=jobs, warm=warm,
                             force="pool")
    pool_cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    pool_warm = run_parallel(run_chaos_cell, cells, jobs=jobs, warm=warm,
                             force="pool")
    pool_warm_s = time.perf_counter() - t0
    shutdown_pool()

    t0 = time.perf_counter()
    legacy = _legacy_pool_map(run_chaos_cell, cells, jobs)
    legacy_pool_s = time.perf_counter() - t0

    return {
        "rows": len(serial),
        "graph_seeds": list(graph_seeds),
        "jobs": jobs,
        "serial_s": serial_s,
        "engine_s": engine_s,
        "parallel_s": engine_s,  # legacy key: trajectory continuity
        "pool_cold_s": pool_cold_s,
        "pool_warm_s": pool_warm_s,
        "legacy_pool_s": legacy_pool_s,
        "speedup": serial_s / engine_s if engine_s else float("inf"),
        "pool_vs_legacy": legacy_pool_s / pool_warm_s
        if pool_warm_s else float("inf"),
        "identical": serial == engine == pool_cold == pool_warm == legacy,
    }


# --------------------------------------------------------------------- #
# Big tier: zero-copy shared-memory sweeps at n = 10^5..10^6
# --------------------------------------------------------------------- #

# Peak-RSS ceiling for the big tier (self + children, as getrusage
# reports it).  The n=10^6 lower-bound graph is ~56 MB flat; the budget
# is the aggregates-only discipline made enforceable — a regression that
# starts materializing per-vertex structures (dict graphs, distance
# matrices, per-cell rows that aren't O(1)) blows through it immediately.
BIG_BUDGET_MB = 1024
BIG_BUDGET_QUICK_MB = 512


def _peak_rss_mb() -> float:
    """Peak resident set of this process plus its (reaped) children, MB.

    ``ru_maxrss`` is KB on Linux; children report the *max* across
    workers, so the sum is a conservative upper estimate of concurrent
    residency — exactly the right direction for a budget assertion.
    """
    import resource

    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return (self_kb + child_kb) / 1024.0


def _fold_stripe_rows(rows: list[dict]) -> dict:
    """Aggregate a stripe sweep to O(1) (rows never enter the report)."""
    digest = None
    wmax = 0.0
    wsum = 0.0
    edges = 0
    for row in rows:
        digest = row["digest"]  # last cell's digest anchors identity
        edges += row["edges"]
        wsum += row["wsum"]
        if row["wmax"] > wmax:
            wmax = row["wmax"]
    return {"cells": len(rows), "edges": edges, "wmax": wmax,
            "wsum": wsum, "last_digest": digest}


def _big_family(name: str, builder, *, jobs: int, cells_target: int,
                sources: int, kernel: str) -> dict:
    """Build one graph family, publish it once, and sweep it twice.

    The returned record carries the acceptance counters: ``graph_builds``
    (publisher-side ``shm_creates`` delta — must be exactly 1 for the
    whole sweep), per-worker attach/rebuild counts, and the serial vs
    pool identity verdict over both the stripe and the sources sweep.
    """
    from repro.graphs import shm

    before = shm.stats()
    t0 = time.perf_counter()
    flat = builder()
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    handle = shm.publish(flat, key=f"big-{name}")
    publish_s = time.perf_counter() - t0
    creates = shm.stats()["shm_creates"] - before["shm_creates"]

    cell_size = max(1, flat.n // cells_target)
    t0 = time.perf_counter()
    serial_rows = snapshot_rows(handle, kind="stripe", cell_size=cell_size,
                                force="serial")
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    pool_rows = snapshot_rows(handle, kind="stripe", cell_size=cell_size,
                              force="pool", jobs=jobs, batch=64)
    pool_s = time.perf_counter() - t0
    stripe_identical = serial_rows == pool_rows

    t0 = time.perf_counter()
    src_pool = snapshot_rows(handle, kind="sources", limit=sources,
                             cell_size=1, kernel=kernel, force="pool",
                             jobs=jobs)
    sources_pool_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    src_serial = snapshot_rows(handle, kind="sources", limit=sources,
                               cell_size=1, kernel=kernel, force="serial")
    sources_serial_s = time.perf_counter() - t0
    sources_identical = src_pool == src_serial

    workers = pool_shm_stats(jobs, snapshots=(handle,))
    record = {
        "n": flat.n,
        "m": flat.m,
        "nbytes": flat.nbytes,
        "fingerprint": flat.fingerprint,
        "segment": handle.segment,
        "build_s": build_s,
        "publish_s": publish_s,
        "graph_builds": creates,
        "cell_size": cell_size,
        "stripe": _fold_stripe_rows(serial_rows),
        "stripe_serial_s": serial_s,
        "stripe_pool_s": pool_s,
        "serial_cells_per_s": len(serial_rows) / serial_s,
        "pool_cells_per_s": len(pool_rows) / pool_s,
        "sources": sources,
        "sources_kernel": kernel,
        "sources_pool_s": sources_pool_s,
        "sources_serial_s": sources_serial_s,
        "reach_min": min(r["reach_min"] for r in src_serial),
        "ecc_max": max(r["ecc_max"] for r in src_serial),
        "sources_digest": src_serial[-1]["digest"],
        "identical": stripe_identical and sources_identical,
        "worker_creates": sum(w["shm_creates"] for w in workers),
        "worker_attaches": sum(w["shm_attaches"] for w in workers),
        "worker_rebuilds": sum(w["shm_rebuilds"] for w in workers),
        "workers_probed": len(workers),
    }
    # One build per sweep, zero per-worker rebuilds: the tentpole's
    # acceptance counters, asserted where the numbers are produced.
    assert record["identical"], (name, "serial != pool rows")
    assert creates <= 1, (name, "published more than one segment")
    assert record["worker_rebuilds"] == 0, (name, "worker rebuilt the graph")
    assert record["worker_creates"] == 0, (name, "worker created a segment")
    return record


def _big_traced_flood(quick: bool) -> dict:
    """A flood run under aggregates-only tracing (``TraceRecorder(limit=0)``).

    The recorder keeps per-span aggregates and drops every event payload,
    so observability rides along at O(1) memory — the only tracing mode
    the big tier permits under its budget.
    """
    n = 96 if quick else 256
    graph = random_connected_graph(n, 2 * n, seed=11)
    root = graph.vertices[0]
    rec = TraceRecorder(limit=0)
    net = Network(graph, lambda v: FloodProcess(v == root, "big"),
                  recorder=rec)
    t0 = time.perf_counter()
    result = net.run()
    wall = time.perf_counter() - t0
    assert rec.n_recorded == 0, "limit=0 must keep no event payloads"
    return {
        "n": n,
        "messages": result.message_count,
        "emitted": rec.n_emitted,
        "recorded": rec.n_recorded,
        "dropped": rec.dropped,
        "comm_cost": rec.total_cost,
        "wall_s": wall,
    }


def bench_big(jobs: int, quick: bool) -> dict:
    """The n = 10^5..10^6 tier: streamed builds, one publish, shm sweeps.

    ``quick`` scales every family to n = 10^4 (the CI big-smoke shape);
    the full tier runs the paper's lower-bound family at n = 10^6.  All
    rows are aggregates (O(1) per cell) and the whole tier must fit the
    explicit peak-RSS budget.
    """
    from repro.graphs import lower_bound_flat, lower_bound_split_flat, \
        random_connected_flat
    from repro.graphs import shm
    from repro.graphs.npkernels import numpy_available

    budget_mb = BIG_BUDGET_QUICK_MB if quick else BIG_BUDGET_MB
    if quick:
        families = {
            # G_n is path-like: numpy's round-based relaxation needs ~n
            # rounds there, so its sources pin the Python heap kernel.
            "lower_bound": (lambda: lower_bound_flat(10_000), 4, "python"),
            "split": (lambda: lower_bound_split_flat(10_000, 100), 4,
                      "python"),
            "random": (lambda: random_connected_flat(10_000, 20_000, seed=29),
                       8, "numpy" if numpy_available() else "python"),
        }
        cells_target = 1_000
    else:
        families = {
            "lower_bound": (lambda: lower_bound_flat(1_000_000), 2, "python"),
            "split": (lambda: lower_bound_split_flat(100_000, 1_000), 4,
                      "python"),
            "random": (lambda: random_connected_flat(100_000, 200_000,
                                                     seed=29),
                       8, "numpy" if numpy_available() else "python"),
        }
        cells_target = 10_000

    shutdown_pool()  # fresh workers; also unlinks any earlier segments
    out: dict = {"budget_mb": budget_mb, "cells_target": cells_target}
    for name, (builder, sources, kernel) in families.items():
        out[name] = _big_family(name, builder, jobs=jobs,
                                cells_target=cells_target, sources=sources,
                                kernel=kernel)
    out["traced_flood"] = _big_traced_flood(quick)
    out["shm"] = {k: v for k, v in shm.stats().items()
                  if k.startswith("shm_")}
    shutdown_pool()
    out["segments_after_shutdown"] = sum(
        1 for f in os.listdir("/dev/shm")
        if f.startswith("rshm-")
    ) if os.path.isdir("/dev/shm") else 0
    out["peak_rss_mb"] = _peak_rss_mb()
    out["within_budget"] = out["peak_rss_mb"] <= budget_mb
    return out


# --------------------------------------------------------------------- #
# Regression compare
# --------------------------------------------------------------------- #


def comparable_metrics(report: dict) -> dict:
    """Flatten a bench report to the higher-is-better metrics worth
    diffing across revisions: self-normalized speedups plus the one raw
    throughput rate (same-machine artifacts only, as in CI)."""
    m = {}
    eq = report.get("event_queue", {})
    for name, s in eq.get("shapes", {}).items():
        m[f"event_queue/{name}/speedup"] = s["speedup"]
    if "aggregate" in eq:
        m["event_queue/geomean_speedup"] = eq["aggregate"]["geomean_speedup"]
    gk = report.get("graph_kernels", {})
    for name, s in gk.get("shapes", {}).items():
        m[f"graph_kernels/{name}/speedup"] = s["speedup"]
    if "aggregate" in gk:
        m["graph_kernels/geomean_speedup"] = gk["aggregate"]["geomean_speedup"]
    nk = report.get("npkernels", {})
    for name, s in nk.get("shapes", {}).items():
        m[f"npkernels/{name}/speedup"] = s["speedup"]
    if "aggregate" in nk:
        m["npkernels/geomean_speedup"] = nk["aggregate"]["geomean_speedup"]
    net = report.get("network", {})
    if "messages_per_s" in net:
        m["network/messages_per_s"] = net["messages_per_s"]
    cs = report.get("chaos_sweep", {})
    if "speedup" in cs:
        m["chaos_sweep/speedup"] = cs["speedup"]
    tr = report.get("tracing", {})
    if "disabled_ratio" in tr:
        m["tracing/disabled_ratio"] = tr["disabled_ratio"]
    sv = report.get("serve", {})
    if "hit_speedup" in sv:
        m["serve/hit_speedup"] = sv["hit_speedup"]
    if "warm_rps" in sv:
        m["serve/warm_rps"] = sv["warm_rps"]
    big = report.get("big_tier", {})
    rand = big.get("random", {})
    # Only the random family's stripe throughput gates: its per-cell cost
    # (cell_size x avg degree) is size-independent between the quick and
    # full shapes, unlike the absolute build times.
    if "serial_cells_per_s" in rand:
        m["big_tier/random/serial_cells_per_s"] = rand["serial_cells_per_s"]
    if "pool_cells_per_s" in rand:
        m["big_tier/random/pool_cells_per_s"] = rand["pool_cells_per_s"]
    return m


def compare_reports(current: dict, baseline: dict,
                    tolerance: float = 0.10) -> tuple[bool, float, dict]:
    """Diff two reports; return ``(ok, geomean_ratio, per_metric_ratios)``.

    Only metrics present in *both* reports count (new bench sections
    don't trip the gate); the gate fails when the geomean of
    current/baseline ratios drops below ``1 - tolerance``.
    """
    cur = comparable_metrics(current)
    base = comparable_metrics(baseline)
    ratios = {}
    for key, value in cur.items():
        prior = base.get(key)
        if prior and prior > 0 and value > 0:
            ratios[key] = value / prior
    if not ratios:
        return True, 1.0, {}
    geomean = 1.0
    for r in ratios.values():
        geomean *= r
    geomean **= 1.0 / len(ratios)
    return geomean >= 1.0 - tolerance, geomean, ratios


def run_compare(report: dict, baseline_path: Path, tolerance: float) -> bool:
    baseline = json.loads(baseline_path.read_text())
    if bool(report.get("quick")) != bool(baseline.get("quick")):
        print(f"WARNING: comparing quick={report.get('quick')} run against "
              f"quick={baseline.get('quick')} baseline; sizes differ",
              file=sys.stderr)
    ok, geomean, ratios = compare_reports(report, baseline, tolerance)
    print(f"compare vs {baseline_path.name} "
          f"(rev {baseline.get('rev', '?')}, tolerance {tolerance:.0%}):")
    for key in sorted(ratios):
        flag = "" if ratios[key] >= 1.0 - tolerance else "  <-- regression"
        print(f"  {key:40s} x{ratios[key]:.3f}{flag}")
    print(f"  {'geomean':40s} x{geomean:.3f}  "
          f"{'OK' if ok else 'REGRESSION'}")
    return ok


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="tiny pinned sizes for CI smoke runs")
    ap.add_argument("--big", action="store_true",
                    help="add the shared-memory big tier (n=10^5..10^6 "
                         "full, n=10^4 with --quick) under its RSS budget")
    ap.add_argument("--jobs", type=int, default=4,
                    help="worker count for the parallel sweep bench")
    ap.add_argument("--reps", type=int, default=None,
                    help="repetitions per measurement (min is kept)")
    ap.add_argument("--out", type=Path, default=None,
                    help="output path (default BENCH_<rev>.json in repo root)")
    ap.add_argument("--compare", type=Path, default=None,
                    help="prior BENCH_<rev>.json to diff against; exits "
                         "non-zero on geomean regression beyond --tolerance")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed geomean regression for --compare "
                         "(default 0.10 = 10%%)")
    args = ap.parse_args(argv)

    reps = args.reps if args.reps is not None else (3 if args.quick else 7)
    rev = git_rev()
    report = {
        "rev": rev,
        "unix_time": int(time.time()),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "quick": args.quick,
        "reps": reps,
        "event_queue": bench_event_queue(reps, args.quick),
        "graph_kernels": bench_graph_kernels(reps, args.quick),
        "npkernels": bench_npkernels(reps, args.quick),
        "network": bench_network(reps, args.quick),
        "chaos_sweep": bench_chaos_sweep(args.jobs, args.quick),
        "tracing": bench_tracing(reps, args.quick),
        "serve": bench_serve(args.jobs, args.quick),
    }
    if args.big:
        report["big_tier"] = bench_big(args.jobs, args.quick)

    out = args.out or REPO / f"BENCH_{rev}.json"
    # jsonable: the big tier's eccentricity aggregates can be inf, which
    # strict JSON (and some loaders) reject.
    out.write_text(json.dumps(jsonable(report), indent=2) + "\n")

    eq = report["event_queue"]
    for name, s in eq["shapes"].items():
        print(f"{name:12s} {s['events']:>8d} ev  "
              f"legacy {s['legacy_events_per_s']:>12,.0f}/s  "
              f"current {s['current_events_per_s']:>12,.0f}/s  "
              f"x{s['speedup']:.2f}")
    agg = eq["aggregate"]
    print(f"{'aggregate':12s} {agg['total_events']:>8d} ev  "
          f"speedup x{agg['speedup']:.2f}  (geomean x{agg['geomean_speedup']:.2f})")
    gk = report["graph_kernels"]
    for name, s in gk["shapes"].items():
        print(f"kernel {name:14s} n={s['n']:<4d} m={s['m']:<5d} "
              f"dict {s['dict_s'] * 1e3:>8.2f}ms  csr {s['csr_s'] * 1e3:>8.2f}ms  "
              f"x{s['speedup']:.2f}")
    print(f"kernel geomean x{gk['aggregate']['geomean_speedup']:.2f}")
    nk = report["npkernels"]
    if "skipped" in nk:
        print(f"npkernels: skipped ({nk['skipped']})")
    else:
        for name, s in nk["shapes"].items():
            print(f"npkern {name:14s} n={s['n']:<4d} m={s['m']:<5d} "
                  f"python {s['python_s'] * 1e3:>8.2f}ms  "
                  f"numpy {s['numpy_s'] * 1e3:>8.2f}ms  "
                  f"x{s['speedup']:.2f}")
        print(f"npkern geomean x{nk['aggregate']['geomean_speedup']:.2f}")
    net = report["network"]
    print(f"network flood: {net['messages']} msgs, "
          f"{net['messages_per_s']:,.0f} msgs/s")
    cs = report["chaos_sweep"]
    print(f"chaos sweep: {cs['rows']} rows, serial {cs['serial_s']:.2f}s, "
          f"engine jobs={cs['jobs']} {cs['engine_s']:.2f}s (x{cs['speedup']:.2f}), "
          f"pool cold {cs['pool_cold_s']:.2f}s / warm {cs['pool_warm_s']:.2f}s, "
          f"legacy pool {cs['legacy_pool_s']:.2f}s "
          f"(pool vs legacy x{cs['pool_vs_legacy']:.2f}), "
          f"identical={cs['identical']}")
    tr = report["tracing"]
    print(f"tracing: untraced {tr['untraced_s'] * 1e3:.2f}ms, "
          f"disabled {tr['disabled_s'] * 1e3:.2f}ms "
          f"({tr['disabled_overhead_pct']:+.2f}%), "
          f"recording {tr['recording_s'] * 1e3:.2f}ms "
          f"({tr['recording_overhead_pct']:+.2f}%, "
          f"{tr['trace_events']} events)")
    sv = report["serve"]
    print(f"serve: {sv['requests']} requests, cold {sv['cold_s']:.2f}s "
          f"({sv['cold_rps']:.1f}/s), warm {sv['warm_s'] * 1e3:.1f}ms "
          f"({sv['warm_rps']:,.0f}/s), hit speedup x{sv['hit_speedup']:.1f}, "
          f"coalesce {sv['coalesce']['fanout']} dup -> 1 exec, "
          f"counts_exact={sv['counts_exact']}, identical={sv['identical']}")
    if args.big:
        big = report["big_tier"]
        for fam in ("lower_bound", "split", "random"):
            f = big[fam]
            print(f"big {fam:12s} n={f['n']:<8d} m={f['m']:<8d} "
                  f"build {f['build_s']:.2f}s  publish {f['publish_s'] * 1e3:.0f}ms  "
                  f"builds={f['graph_builds']}  "
                  f"stripe {f['stripe']['cells']} cells "
                  f"serial {f['serial_cells_per_s']:,.0f}/s "
                  f"pool {f['pool_cells_per_s']:,.0f}/s  "
                  f"sources({f['sources_kernel']}) {f['sources_pool_s']:.2f}s  "
                  f"attaches={f['worker_attaches']} "
                  f"rebuilds={f['worker_rebuilds']}  "
                  f"identical={f['identical']}")
        tf = big["traced_flood"]
        print(f"big traced flood: n={tf['n']}, {tf['messages']} msgs, "
              f"{tf['emitted']} events emitted / {tf['recorded']} kept "
              f"(limit=0), {tf['wall_s'] * 1e3:.1f}ms")
        print(f"big tier: peak rss {big['peak_rss_mb']:.0f} MB "
              f"(budget {big['budget_mb']} MB, "
              f"within={big['within_budget']}), "
              f"segments after shutdown: {big['segments_after_shutdown']}")
    print(f"wrote {out}")

    if not cs["identical"]:
        print("FATAL: parallel sweep rows differ from serial", file=sys.stderr)
        return 1
    if not (sv["identical"] and sv["counts_exact"]
            and sv["coalesce"]["sources_exact"]):
        print("FATAL: serve tier broke cache identity or exact dedupe counts",
              file=sys.stderr)
        return 1
    if sv["hit_speedup"] < 5.0:
        print(f"FATAL: serve cache-hit speedup x{sv['hit_speedup']:.1f} "
              f"below the 5x floor", file=sys.stderr)
        return 1
    if args.big:
        big = report["big_tier"]
        if not big["within_budget"]:
            print(f"FATAL: big tier peak RSS {big['peak_rss_mb']:.0f} MB "
                  f"exceeds the {big['budget_mb']} MB budget",
                  file=sys.stderr)
            return 1
        if big["segments_after_shutdown"]:
            print("FATAL: big tier leaked shared-memory segments",
                  file=sys.stderr)
            return 1
    if args.compare is not None and not run_compare(report, args.compare,
                                                    args.tolerance):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
