#!/usr/bin/env python
"""CI smoke for the ``repro.serve`` subsystem, across the process boundary.

Launches ``python -m repro.serve`` as a real subprocess on an ephemeral
port, drives it with :class:`~repro.serve.client.TCPServeClient`, and
checks the service contract end to end:

* a duplicate-heavy request mix is served with ``hits > 0`` and the
  exact expected hit count (the content-addressed dedupe ledger);
* every cached response is **byte-identical** to its cold counterpart
  (``payload_bytes`` equality per address);
* malformed requests come back as clean error lines, not disconnects;
* after SIGTERM the server drains, exits 0, and leaves **zero** leaked
  ``rshm-*`` shared-memory segments in ``/dev/shm``.

The final stats block and a verdict summary land in ``--out-dir``
(default ``serve-artifacts``) as ``serve_smoke.json`` for CI upload.

Run:  python scripts/serve_smoke.py [--out-dir DIR] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve import TCPServeClient, payload_bytes  # noqa: E402
from repro.serve.client import ServeError  # noqa: E402

MIX = [
    {"kind": "chaos", "protocol": p, "n": 10, "extra_edges": 12,
     "graph_seed": 3, "drop": drop, "backend": "python"}
    for p in ("broadcast", "dfs")
    for drop in (0.0, 0.2)
]
TRACE = {"kind": "trace", "protocol": "dfs", "n": 8, "extra_edges": 6,
         "graph_seed": 3, "backend": "python"}


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


def shm_segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):
        return []
    return sorted(f for f in os.listdir("/dev/shm") if f.startswith("rshm-"))


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out-dir", type=Path, default=Path("serve-artifacts"))
    ap.add_argument("--jobs", type=int, default=2)
    args = ap.parse_args(argv)
    args.out_dir.mkdir(parents=True, exist_ok=True)

    before = shm_segments()
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--jobs", str(args.jobs),
         "--cache-dir", str(args.out_dir / "cache")],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=REPO,
    )
    try:
        assert proc.stdout is not None
        line = proc.stdout.readline().strip()
        if "listening on" not in line:
            fail(f"unexpected startup line: {line!r}")
        host, port = line.rsplit(" ", 1)[-1].rsplit(":", 1)
        client = TCPServeClient(host, int(port), timeout=120.0)

        if client.ping().get("type") != "pong":
            fail("ping did not pong")

        # Cold pass, then a duplicate-heavy replay: 2x each address.
        cold = {}
        for request in MIX:
            resp = client.request(request)
            if resp["cached"]:
                fail(f"first serve of {resp['address'][:12]} claimed cached")
            cold[resp["address"]] = resp
        byte_identical = True
        for request in MIX * 2:
            resp = client.request(request)
            if resp["source"] != "cache":
                fail(f"replay of {resp['address'][:12]} was {resp['source']}")
            prior = cold[resp["address"]]
            if (payload_bytes(resp["payload"]) != payload_bytes(prior["payload"])
                    or resp["payload_sha"] != prior["payload_sha"]):
                byte_identical = False
        if not byte_identical:
            fail("cached response not byte-identical to cold")

        # A streamed (chunked) trace round-trips and caches too.
        t_cold = client.request(TRACE)
        t_warm = client.request(TRACE)
        if not (t_warm["source"] == "cache"
                and t_warm["payload"] == t_cold["payload"]):
            fail("trace did not cache byte-identically")

        # Malformed requests: error line, connection stays usable.
        try:
            client.request({"kind": "nope"})
            fail("invalid kind was accepted")
        except ServeError:
            pass
        if client.request(MIX[0])["source"] != "cache":
            fail("connection unusable after an error line")

        stats = client.stats()
        expected_hits = 2 * len(MIX) + 1 + 1  # replays + trace warm + probe
        if stats["hits"] != expected_hits:
            fail(f"hits {stats['hits']} != expected {expected_hits}")
        if stats["misses"] != len(MIX) + 1:
            fail(f"misses {stats['misses']} != expected {len(MIX) + 1}")
        if stats["errors"] or stats["rejected"]:
            fail(f"unexpected errors/rejections: {stats}")
        client.close()
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            out, _ = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, _ = proc.communicate()
            fail("server did not shut down on SIGTERM")

    if proc.returncode != 0:
        fail(f"server exited {proc.returncode}; output:\n{out}")
    time.sleep(0.2)  # let the kernel reap the unlinked segments
    leaked = [s for s in shm_segments() if s not in before]
    if leaked:
        fail(f"leaked shared-memory segments: {leaked}")

    artifact = {
        "stats": stats,
        "requests": {"mix": len(MIX), "hits": stats["hits"],
                     "misses": stats["misses"]},
        "byte_identical": byte_identical,
        "leaked_segments": leaked,
        "server_output_tail": out.splitlines()[-5:],
    }
    path = args.out_dir / "serve_smoke.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"serve smoke OK: hits={stats['hits']} misses={stats['misses']} "
          f"p50={stats['p50_ms']:.1f}ms p99={stats['p99_ms']:.1f}ms, "
          f"0 leaked segments; wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
