#!/usr/bin/env python
"""CI smoke for the ``repro.obs`` tracing subsystem.

Runs one traced chaos cell (a reliable flood under 5% seeded message
loss), then checks the whole observability contract end to end:

* the structured JSONL export passes :func:`repro.obs.validate_jsonl`;
* the Chrome ``trace_event`` export is valid JSON with the expected
  top-level shape (``traceEvents`` non-empty, metadata present);
* per-span costs sum *exactly* to the run's measured ``comm_cost``;
* the chaos outcome carries a picklable :class:`~repro.obs.TraceSummary`
  that agrees with the recorder it came from.

Artifacts (``trace.jsonl``, ``trace.chrome.json``, ``summary.json``) are
written to ``--out-dir`` (default ``trace-artifacts``) for CI upload.

Run:  python scripts/trace_smoke.py [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.faults import ACK_TAG, RETRY_TAG, FaultPlan, run_chaos  # noqa: E402
from repro.graphs import random_connected_graph  # noqa: E402
from repro.obs import (  # noqa: E402
    TraceRecorder,
    validate_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.protocols.broadcast import FloodProcess  # noqa: E402


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out-dir", type=Path, default=Path("trace-artifacts"))
    args = ap.parse_args(argv)
    args.out_dir.mkdir(parents=True, exist_ok=True)

    graph = random_connected_graph(n=16, extra_edges=24, seed=7)
    recorder = TraceRecorder()
    outcome = run_chaos(
        graph,
        lambda v: FloodProcess(v == graph.vertices[0], "smoke"),
        plan=FaultPlan.message_loss(0.05, seed=42),
        reliable=True,
        watchdog_time=1e6,
        recorder=recorder,
    )
    if outcome.status != "ok":
        fail(f"chaos cell did not complete: {outcome.status} ({outcome.error})")
    result = outcome.result
    print(f"chaos cell ok: n={graph.num_vertices} m={graph.num_edges} "
          f"comm_cost={result.comm_cost:g} retries={outcome.retry_count} "
          f"events recorded={recorder.n_recorded}")

    # 1. Exact span accounting.
    span_sum = sum(recorder.cost_by_span.values())
    if span_sum != result.comm_cost:
        fail(f"span costs sum to {span_sum}, comm_cost is {result.comm_cost}")
    for span, tag in (("rel-ack", ACK_TAG), ("rel-retry", RETRY_TAG)):
        if recorder.cost_by_span.get(span, 0.0) != \
                result.metrics.cost_by_tag.get(tag, 0.0):
            fail(f"span {span!r} disagrees with tag {tag!r}")
    print(f"span accounting exact: {span_sum:g} over "
          f"{len(recorder.cost_by_span)} spans")

    # 2. Schema-valid JSONL.
    jsonl_path = write_jsonl(recorder, args.out_dir / "trace.jsonl")
    errors = validate_jsonl(Path(jsonl_path).read_text())
    if errors:
        for e in errors[:20]:
            print(f"  {e}", file=sys.stderr)
        fail(f"{len(errors)} JSONL schema errors")
    print(f"JSONL schema valid: {jsonl_path}")

    # 3. Chrome trace shape.
    chrome_path = write_chrome_trace(recorder, args.out_dir / "trace.chrome.json",
                                     name="trace smoke")
    doc = json.loads(Path(chrome_path).read_text())
    if not isinstance(doc.get("traceEvents"), list) or not doc["traceEvents"]:
        fail("Chrome trace has no traceEvents")
    phases = {ev.get("ph") for ev in doc["traceEvents"]}
    for needed in ("M", "X"):
        if needed not in phases:
            fail(f"Chrome trace missing {needed!r} events (has {sorted(phases)})")
    other = doc.get("otherData", {})
    if other.get("comm_cost") != result.comm_cost:
        fail(f"Chrome otherData comm_cost {other.get('comm_cost')} != "
             f"{result.comm_cost}")
    print(f"Chrome trace valid: {chrome_path} "
          f"({len(doc['traceEvents'])} trace events)")

    # 4. The picklable summary agrees with its recorder, and the metrics
    #    dict round-trips as plain JSON.
    summary = outcome.trace
    if summary is None or summary.comm_cost != result.comm_cost:
        fail("ChaosOutcome.trace missing or inconsistent")
    payload = {
        "status": outcome.status,
        "trace": summary.as_dict(),
        "metrics": result.metrics.as_dict(),
    }
    summary_path = args.out_dir / "summary.json"
    summary_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"summary written: {summary_path}")

    # 5. Race-detect smoke: one clean chaos cell under the shared-state
    #    detector must still succeed, and a planted post-send payload
    #    mutation must be caught as a detectable failure.
    clean = run_chaos(
        graph,
        lambda v: FloodProcess(v == graph.vertices[0], "smoke"),
        plan=FaultPlan.message_loss(0.05, seed=42),
        reliable=True,
        watchdog_time=1e6,
        race_detect=True,
    )
    if clean.status != "ok":
        fail(f"race_detect=True broke a clean run: {clean.status} "
             f"({clean.error})")
    print("race detector: clean cell ok")

    class MutatingFlood(FloodProcess):
        def on_start(self):
            if self.is_initiator:
                self._got_it = True
                self.finish((tuple(self.payload), None))
                for v in self.neighbors():
                    self.send(v, self.payload, tag="flood")
                self.payload.append("tampered")  # post-send mutation

    planted = run_chaos(
        graph,
        lambda v: MutatingFlood(v == graph.vertices[0], ["smoke"]),
        reliable=False,
        watchdog_time=1e6,
        race_detect=True,
    )
    if planted.status != "error" or "SharedStateViolation" not in (planted.error or ""):
        fail(f"race detector missed planted mutation: {planted.status} "
             f"({planted.error})")
    print(f"race detector caught planted mutation: {planted.error.splitlines()[0]}")
    print("trace smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
