#!/usr/bin/env python
"""The SPT algorithm suite (Section 9 / Figure 4), side by side.

Runs SPT_centr, SPT_recur, SPT_synch and the SPT_hybrid race on one
network, verifies each produces the exact shortest-path tree, and prints
the cost-sensitive comparison — plus the strip-length knob of Figure 9.

Run:  python examples/spt_algorithms.py
"""

from repro.graphs import dijkstra, network_params, random_connected_graph, tree_distances
from repro.protocols import (
    run_spt_centr,
    run_spt_hybrid,
    run_spt_recur,
    run_spt_synch,
)


def verify(graph, tree, source):
    dist, _ = dijkstra(graph, source)
    got = tree_distances(tree, source)
    assert all(abs(got[v] - dist[v]) < 1e-9 for v in graph.vertices)
    return "exact SPT"


def main() -> None:
    graph = random_connected_graph(35, 60, seed=21, max_weight=6)
    source = 0
    p = network_params(graph)
    print("network:", p, "\n")

    print(f"{'algorithm':>11} {'comm':>10} {'time':>9}   output")
    res, tree = run_spt_centr(graph, source)
    print(f"{'SPT_centr':>11} {res.comm_cost:10g} {res.time:9g}   "
          f"{verify(graph, tree, source)}")

    res, tree = run_spt_recur(graph, source)
    print(f"{'SPT_recur':>11} {res.comm_cost:10g} {res.time:9g}   "
          f"{verify(graph, tree, source)}")

    gres, tree = run_spt_synch(graph, source, k=2)
    print(f"{'SPT_synch':>11} {gres.comm_cost:10g} {gres.time:9g}   "
          f"{verify(graph, tree, source)}  "
          f"(payload {gres.proto_cost:g} + sync {gres.overhead_cost:g})")

    outcome = run_spt_hybrid(graph, source)
    print(f"{'SPT_hybrid':>11} {outcome.total_comm_cost:10g} "
          f"{outcome.total_time:9g}   {verify(graph, outcome.output, source)}  "
          f"(race won by {outcome.winner})")

    print("\n--- Figure 9: the strip-length knob of SPT_recur ---")
    print(f"{'stride d':>9} {'comm':>9} {'sync':>8} {'time':>7}")
    for stride in (1, 2, 4, 8, 32):
        r, t = run_spt_recur(graph, source, stride=stride)
        verify(graph, t, source)
        sync = r.metrics.cost_by_tag.get("bfs-sync", 0.0)
        print(f"{stride:9d} {r.comm_cost:9g} {sync:8g} {r.time:7g}")
    print("\nLarger strips: fewer global synchronizations (cheaper), at the")
    print("price of more intra-strip correction work on nastier graphs.")


if __name__ == "__main__":
    main()
