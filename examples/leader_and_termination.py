#!/usr/bin/env python
"""Derived services: leader election and termination detection.

Two classic services the paper's machinery gives for free:

* leader election rides GHS's HALT wave ([Awe87]'s MST reduction) —
  cost: one MST construction;
* Dijkstra-Scholten termination detection ([DS80], the model behind the
  Section 5 controller and SPT_recur's strips) certifies global
  quiescence of any diffusing computation at 2x its communication cost.

Run:  python examples/leader_and_termination.py
"""

from repro.graphs import network_params, random_connected_graph
from repro.protocols import (
    run_leader_election,
    run_with_termination_detection,
)
from repro.protocols.broadcast import FloodProcess
from repro.sim import UniformDelay


def main() -> None:
    graph = random_connected_graph(30, 45, seed=17)
    p = network_params(graph)
    print("network:", p)

    # --- leader election -------------------------------------------- #
    result, leader = run_leader_election(graph)
    agree = {proc.leader for proc in result.processes.values()}
    print(f"\nleader election: elected {leader!r} "
          f"(unanimous: {agree == {leader}})")
    print(f"  cost {result.comm_cost:g} = one GHS run "
          f"(O(E + V log n) ~ {p.E + p.V * 5:.0f})")

    # Different delay schedules may pick different (but always unanimous)
    # leaders — the core edge depends on merge timing.
    for seed in range(3):
        r, ldr = run_leader_election(graph, delay=UniformDelay(), seed=seed)
        assert {q.leader for q in r.processes.values()} == {ldr}
        print(f"  randomized run {seed}: leader {ldr!r} (unanimous)")

    # --- termination detection --------------------------------------- #
    result = run_with_termination_detection(
        graph, lambda v: FloodProcess(v == 0, payload="job"), 0
    )
    statuses = {r[0] for r in result.results().values()}
    print(f"\ntermination detection over a flood: every node learned "
          f"{statuses.pop()!r}")
    m = result.metrics
    proto = sum(c for t, c in m.cost_by_tag.items() if t.startswith("ds-proto"))
    acks = m.cost_by_tag.get("ds-ack", 0.0)
    announce = m.cost_by_tag.get("ds-announce", 0.0)
    print(f"  payload {proto:g} + acks {acks:g} (exactly 1:1) "
          f"+ announcement {announce:g}")


if __name__ == "__main__":
    main()
