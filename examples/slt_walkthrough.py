#!/usr/bin/env python
"""Figure 6 walkthrough: the SLT algorithm step by step.

Reproduces the style of the paper's Figure 6 example on the hub-and-spoke
graph from [BKJ83] that motivates shallow-light trees: the SPT from the
hub is shallow but n times too heavy, the MST is light but n times too
deep.  We trace the Euler tour, the breakpoint scan and the added SPT
paths, then sweep the trade-off knob q.

Run:  python examples/slt_walkthrough.py
"""

from repro.core import shallow_light_tree
from repro.graphs import (
    network_params,
    prim_mst,
    shortest_path_tree,
    spoke_graph,
    tree_distances,
)


def main() -> None:
    # Hub 0; spokes of weight 40 to tips 1..12; rim edges of weight 1.
    graph = spoke_graph(12, spoke_weight=40.0, rim_weight=1.0)
    params = network_params(graph)
    print("the [BKJ83] tension instance:", params)

    root = 0
    mst = prim_mst(graph, root)
    spt = shortest_path_tree(graph, root)
    print(f"MST: weight {mst.total_weight():g}, "
          f"depth {max(tree_distances(mst, root).values()):g}")
    print(f"SPT: weight {spt.total_weight():g}, "
          f"depth {max(tree_distances(spt, root).values()):g}")

    # Step through the construction at q = 2.
    res = shallow_light_tree(graph, root, q=2.0)
    print("\n--- SLT construction trace (q = 2) ---")
    print(f"Euler tour of the MST ({len(res.tour)} entries):")
    print("  ", " -> ".join(str(v) for v in res.tour))
    print(f"breakpoints on the line L (tour indices): {res.breakpoints}")
    print("  i.e. at vertices:",
          [res.tour[i] for i in res.breakpoints])
    print(f"SPT-path weight added to the MST: {res.added_path_weight:g}")
    print(f"subgraph G' weight: {res.subgraph.total_weight():g}")
    print(f"final tree: weight {res.weight:g} "
          f"(bound (1 + 2/q) V = {2.0 * params.V:g}), "
          f"depth {res.depth():g} (D = {params.D:g})")

    # The q sweep: how the guarantee envelope trades weight for depth.
    print("\n--- q sweep ---")
    print(f"{'q':>8} {'weight':>8} {'w-bound':>9} {'depth':>7} {'paths':>6}")
    for q in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 32.0):
        r = shallow_light_tree(graph, root, q=q)
        print(f"{q:8g} {r.weight:8g} {(1 + 2 / q) * params.V:9.1f} "
              f"{r.depth():7g} {len(r.breakpoints) - 1:6d}")
    print("\nsmall q -> shallow & heavy (SPT-like); "
          "large q -> light & deep (MST-like).")


if __name__ == "__main__":
    main()
