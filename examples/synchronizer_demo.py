#!/usr/bin/env python
"""Network synchronization demo (Section 4): synchronizer gamma_w.

Takes a synchronous weighted Bellman-Ford (which assumes every message on
edge e takes *exactly* w(e) time) and runs it, unchanged, on an
*asynchronous* network where delays vary adversarially in [0, w(e)] —
via synchronizer gamma_w.  Shows:

* output equivalence with the reference synchronous execution,
* the normalization/in-synch transformation of Lemma 4.5 (x4 slowdown,
  power-of-two weights),
* the synchronizer's amortized per-pulse overheads as k sweeps.

Run:  python examples/synchronizer_demo.py
"""

from repro.graphs import dijkstra, network_params, random_connected_graph
from repro.protocols import run_spt_synch, run_spt_synchronous_reference
from repro.sim import UniformDelay


def main() -> None:
    graph = random_connected_graph(30, 45, seed=11, max_weight=8)
    p = network_params(graph)
    print("network:", p)

    # Reference: the synchronous execution (c_pi, t_pi).
    base, base_tree = run_spt_synchronous_reference(graph, 0)
    print(f"\nsynchronous reference: comm {base.comm_cost:g}, "
          f"pulses {base.pulses}")

    # The same protocol under gamma_w on the asynchronous network, with
    # uniformly random delays in [0, w(e)].
    print(f"\n{'k':>3} {'payload':>9} {'acks':>8} {'gamma':>8} "
          f"{'C/pulse':>9} {'T/pulse':>9} {'pulses':>7}")
    for k in (2, 3, 5):
        res, tree = run_spt_synch(graph, 0, k=k, delay=UniformDelay(),
                                  seed=k)
        # Verify: identical distances to the synchronous run.
        dist, _ = dijkstra(graph, 0)
        for v in graph.vertices:
            d, _parent = res.result_of(v)
            assert abs(d - dist[v]) < 1e-9, "output mismatch!"
        print(f"{k:3d} {res.proto_cost:9g} {res.ack_cost:8g} "
              f"{res.gamma_cost:8g} {res.comm_overhead_per_pulse:9.1f} "
              f"{res.time_per_pulse:9.2f} {res.pulses:7d}")

    print("\nEvery run reproduced the synchronous output exactly; the")
    print("overhead C/pulse tracks O(k n log n) and T/pulse O(log_k n log n).")


if __name__ == "__main__":
    main()
