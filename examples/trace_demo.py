#!/usr/bin/env python
"""Write a Chrome trace of the gamma_w synchronizer at work.

Runs synchronous Bellman-Ford under synchronizer gamma_w (Algorithm
SPT_synch, Section 9.1) with a :class:`repro.obs.TraceRecorder` attached,
then exports the structured event log two ways:

* ``gamma_w.chrome.json`` — Chrome ``trace_event`` format.  Open it at
  ``chrome://tracing`` or https://ui.perfetto.dev: each node is a thread
  whose ``pulse`` spans show the synchronizer's pulse cadence with
  ``sync-ack``/``sync-gamma`` control traffic nested inside; each
  directed channel is a thread where every message renders as a slice
  spanning its in-flight window.
* ``gamma_w.jsonl`` — the raw structured log, one JSON record per line
  (schema-checked by ``repro.obs.validate_jsonl``).

The span accounting is exact: the per-span costs in the trace sum to the
run's total communication cost, refining the tag-level split
(proto / sync-ack / sync-gamma) the gamma_w result already reports.

Run:  python examples/trace_demo.py
"""

import os
import tempfile

from repro.graphs import random_connected_graph
from repro.graphs.paths import diameter
from repro.obs import (
    TraceRecorder,
    validate_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.protocols.spt_synch import SyncBellmanFord
from repro.synch.gamma_w import run_gamma_w


def main() -> None:
    graph = random_connected_graph(n=12, extra_edges=18, seed=5)
    source = graph.vertices[0]
    stop_pulse = int(diameter(graph)) + 1
    w_max = int(max(w for _, _, w in graph.edges()))
    max_pulse = 4 * (stop_pulse + 1) + 4 * w_max + 8

    recorder = TraceRecorder()
    result = run_gamma_w(
        graph,
        lambda v: SyncBellmanFord(v == source, stop_pulse),
        max_pulse=max_pulse,
        recorder=recorder,
    )

    print(f"gamma_w SPT on n={graph.num_vertices}, m={graph.num_edges}: "
          f"comm_cost={result.comm_cost:g}, time={result.time:g}, "
          f"pulses={result.pulses}")
    span_sum = sum(recorder.cost_by_span.values())
    assert span_sum == result.comm_cost, (span_sum, result.comm_cost)
    print("per-span costs (sum exactly to comm_cost):")
    for span in sorted(recorder.cost_by_span):
        print(f"  {span:<22} {recorder.cost_by_span[span]:10g}   "
              f"({recorder.count_by_span[span]} sends)")
    print("tag accounting for comparison: "
          f"proto={result.proto_cost:g}, ack={result.ack_cost:g}, "
          f"gamma={result.gamma_cost:g}")

    out_dir = tempfile.mkdtemp(prefix="repro-trace-")
    chrome_path = write_chrome_trace(
        recorder, os.path.join(out_dir, "gamma_w.chrome.json"),
        name="gamma_w SPT")
    jsonl_path = write_jsonl(recorder, os.path.join(out_dir, "gamma_w.jsonl"))
    with open(jsonl_path) as fh:
        errors = validate_jsonl(fh.read())
    assert not errors, errors
    print(f"\nwrote {recorder.n_recorded} events "
          f"({recorder.n_emitted} emitted):")
    print(f"  {chrome_path}  (open in chrome://tracing or Perfetto)")
    print(f"  {jsonl_path}  (schema-valid JSONL)")


if __name__ == "__main__":
    main()
