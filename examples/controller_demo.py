#!/usr/bin/env python
"""Controller demo (Section 5): stopping a runaway protocol.

A diffusing computation goes haywire (corrupted input makes it flood
forever).  Uncontrolled, it would saturate the network; under the
controller it is cut off at twice the resource threshold, while a correct
execution of the same protocol passes through untouched.

Run:  python examples/controller_demo.py
"""

from repro.control import run_controlled
from repro.graphs import network_params, random_connected_graph
from repro.protocols import run_flood
from repro.protocols.broadcast import FloodProcess
from repro.sim import Process


class CorruptedFlood(Process):
    """A flood whose duplicate-suppression is broken: it re-forwards every
    copy it receives — the classic divergence a controller must stop."""

    def __init__(self, is_initiator):
        self.is_initiator = is_initiator

    def on_start(self):
        if self.is_initiator:
            for v in self.neighbors():
                self.send(v, 0)

    def on_message(self, frm, hops):
        for v in self.neighbors():
            if v != frm:
                self.send(v, hops + 1)


def main() -> None:
    graph = random_connected_graph(20, 30, seed=9)
    p = network_params(graph)
    print("network:", p)

    # The correct protocol's cost (c_pi) sets the threshold.
    base, _ = run_flood(graph, 0)
    threshold = base.comm_cost
    print(f"correct flood cost c_pi = {threshold:g} -> threshold = c_pi")

    # 1. Correct execution under the controller: completes, no halt.
    good = run_controlled(
        graph, lambda v: FloodProcess(v == 0, "payload"), 0, threshold
    )
    print(f"\ncorrect run:  halted={good.halted}  "
          f"consumed={good.consumed:g}  control cost={good.control_cost:g}")
    assert not good.halted

    # 2. Runaway execution: halted at <= 2 * threshold.
    bad = run_controlled(
        graph, lambda v: CorruptedFlood(v == 0), 0, threshold,
        max_events=2_000_000,
    )
    print(f"runaway run:  halted={bad.halted}  "
          f"consumed={bad.consumed:g}  cap 2*threshold={2 * threshold:g}")
    assert bad.halted and bad.consumed <= 2 * threshold

    # 3. Naive vs aggregated controller overhead on the correct run.
    naive = run_controlled(
        graph, lambda v: FloodProcess(v == 0, "x"), 0, threshold,
        mode="naive",
    )
    print(f"\ncontrol overhead: naive={naive.control_cost:g}  "
          f"aggregated={good.control_cost:g}  "
          f"(Cor 5.1 bound O(c log^2 c))")


if __name__ == "__main__":
    main()
