#!/usr/bin/env python
"""The MST algorithm suite and the hybrid race (Sections 7-8).

Runs every MST algorithm of Figure 3 on two opposite regimes:

* a *light* graph (E << n V): the GHS family wins;
* the paper's lower-bound family G_n (E >> n V because of the weight-X^4
  bypass edges): MST_centr wins, and the hybrid tracks the winner within
  a constant factor — matching the Omega(min{E, nV}) lower bound of
  Section 7.1.

Run:  python examples/mst_race.py
"""

from repro.core.lower_bounds import connectivity_comm_lower_bound
from repro.graphs import lower_bound_graph, network_params, random_connected_graph
from repro.protocols import (
    run_mst_centr,
    run_mst_fast,
    run_mst_ghs,
    run_mst_hybrid,
)


def show(name, cost, time, tree, params):
    ok = "ok" if tree is not None and tree.is_tree() else "FAILED"
    print(f"{name:>11}: comm {cost:12.0f}   time {time:10.0f}   [{ok}]")


def run_suite(graph, root, label):
    p = network_params(graph)
    print(f"\n=== {label} ===")
    print(f"    {p}")
    print(f"    regimes: E = {p.E:g}  vs  n*V = {p.n * p.V:g}   "
          f"lower bound Omega(min) ~ {connectivity_comm_lower_bound(graph):g}")

    r, t = run_mst_ghs(graph)
    show("MST_ghs", r.comm_cost, r.time, t, p)
    r, t = run_mst_fast(graph)
    show("MST_fast", r.comm_cost, r.time, t, p)
    r, t = run_mst_centr(graph, root)
    show("MST_centr", r.comm_cost, r.time, t, p)
    outcome = run_mst_hybrid(graph, root)
    show("MST_hybrid", outcome.total_comm_cost, outcome.total_time,
         outcome.output, p)
    print(f"    hybrid race: {outcome}")
    print("    race history (algorithm, budget, spent, finished):")
    for name, budget, cost, done in outcome.history:
        print(f"      {name:>10}  budget {budget:10.0f}  "
              f"spent {cost:10.0f}  {'done' if done else 'aborted'}")


def main() -> None:
    # Regime 1: light dense-ish graph -> GHS-family territory.
    g1 = random_connected_graph(40, 120, seed=3, max_weight=4)
    run_suite(g1, 0, "light random graph (E << nV)")

    # Regime 2: the G_n lower-bound family -> MST_centr territory.
    g2 = lower_bound_graph(18)
    run_suite(g2, 1, "lower-bound family G_18 (E >> nV)")


if __name__ == "__main__":
    main()
