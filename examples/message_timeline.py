#!/usr/bin/env python
"""Space-time diagrams from the simulator's trace hook.

Renders an ASCII space-time diagram (vertices as columns, time flowing
down, messages as send/receive marks) for two small runs: a flood and the
two-phase global-function protocol.  Useful for eyeballing how the
cost-sensitive delay model shapes executions.

Run:  python examples/message_timeline.py
"""

from repro.core import SUM, compute_global_function
from repro.graphs import path_graph, ring_graph
from repro.protocols.broadcast import FloodProcess
from repro.sim import Network


def timeline(graph, factory, title, time_step=1.0, max_rows=40):
    events = []
    net = Network(
        graph, factory,
        trace=lambda t, u, v, tag, cost: events.append((t, u, v, tag, cost)),
    )
    net.run()
    vertices = sorted(graph.vertices, key=repr)
    col = {v: i for i, v in enumerate(vertices)}
    width = 6
    print(f"\n=== {title} ===")
    print("time".rjust(6) + " " + "".join(str(v).center(width) for v in vertices))
    if not events:
        print("(no messages)")
        return
    t_end = max(t for t, *_ in events)
    row_time = 0.0
    idx = 0
    rows = 0
    while row_time <= t_end + time_step and rows < max_rows:
        cells = {v: "  .  " for v in vertices}
        while idx < len(events) and events[idx][0] < row_time + time_step:
            _t, u, v, _tag, _cost = events[idx]
            arrow = ">" if col[v] > col[u] else "<"
            cells[u] = f" ({arrow}) "
            idx += 1
        print(f"{row_time:6.0f} " + "".join(
            cells[v].center(width) for v in vertices))
        row_time += time_step
        rows += 1
    print(f"({len(events)} messages total; (>) / (<) mark sends toward "
          f"higher / lower columns)")


def main() -> None:
    g1 = path_graph(8, weight=2.0)
    timeline(g1, lambda v: FloodProcess(v == 0, "x"),
             "flood on a path (weight 2 per hop)", time_step=2.0)

    g2 = ring_graph(8, weight=1.0)
    timeline(g2, lambda v: FloodProcess(v == 0, "x"),
             "flood on a ring (two wavefronts meet)", time_step=1.0)

    # The two-phase global function protocol: converge up, broadcast down.
    g3 = path_graph(7, weight=1.0)
    events = []
    result, total = compute_global_function(
        g3, {v: 1 for v in g3.vertices}, SUM, root=3
    )
    print(f"\nglobal SUM over the path rooted at 3: {total} "
          f"(cost {result.comm_cost:g}, time {result.finish_time:g})")
    print("phase structure: leaves converge inward first, then the result")
    print("broadcasts back out — two tree traversals, 2*w(T) total cost.")


if __name__ == "__main__":
    main()
