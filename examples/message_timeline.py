#!/usr/bin/env python
"""Space-time diagrams from the structured trace recorder.

Renders an ASCII space-time diagram (vertices as columns, time flowing
down, sends/deliveries as marks) for two small runs: a flood and the
two-phase global-function protocol.  Useful for eyeballing how the
cost-sensitive delay model shapes executions.

The rendering comes from ``repro.obs``: a :class:`TraceRecorder` attached
to the network captures every send/deliver/finish as a structured record,
and :func:`render_timeline` draws the retained log (``>``/``<`` sends
toward higher/lower columns, ``*`` deliveries, ``#`` local finish).

Run:  python examples/message_timeline.py
"""

from repro.core import SUM, compute_global_function
from repro.graphs import path_graph, ring_graph
from repro.obs import TraceRecorder, render_timeline
from repro.protocols.broadcast import FloodProcess
from repro.sim import Network


def timeline(graph, factory, title, time_step=1.0, max_rows=40):
    recorder = TraceRecorder()
    net = Network(graph, factory, recorder=recorder)
    net.run()
    print(f"\n=== {title} ===")
    print(render_timeline(recorder, time_step=time_step, max_rows=max_rows))


def main() -> None:
    g1 = path_graph(8, weight=2.0)
    timeline(g1, lambda v: FloodProcess(v == 0, "x"),
             "flood on a path (weight 2 per hop)", time_step=2.0)

    g2 = ring_graph(8, weight=1.0)
    timeline(g2, lambda v: FloodProcess(v == 0, "x"),
             "flood on a ring (two wavefronts meet)", time_step=1.0)

    # The two-phase global function protocol: converge up, broadcast down.
    g3 = path_graph(7, weight=1.0)
    result, total = compute_global_function(
        g3, {v: 1 for v in g3.vertices}, SUM, root=3
    )
    print(f"\nglobal SUM over the path rooted at 3: {total} "
          f"(cost {result.comm_cost:g}, time {result.finish_time:g})")
    print("phase structure: leaves converge inward first, then the result")
    print("broadcasts back out — two tree traversals, 2*w(T) total cost.")


if __name__ == "__main__":
    main()
