#!/usr/bin/env python
"""Clock synchronization demo (Section 3): alpha* vs beta* vs gamma*.

Builds the regime the paper cares about — a network whose heaviest edge
W is far larger than d (the maximum weighted distance between neighbors)
— and compares the measured pulse delay of the three synchronizers against
the Omega(d) lower bound and alpha*'s Theta(W).

Run:  python examples/clock_sync_demo.py
"""

import math

from repro.covers import build_tree_edge_cover
from repro.graphs import heavy_edge_clock_graph, network_params
from repro.synch import (
    check_causality,
    run_alpha_star,
    run_beta_star,
    run_gamma_star,
)


def main() -> None:
    # A ring of 24 light edges plus one chord of weight 3000: the chord's
    # endpoints are only d = 12 apart through the ring, but alpha* waits
    # for the chord on every pulse.
    graph = heavy_edge_clock_graph(24, heavy=3000.0)
    p = network_params(graph)
    pulses = 6
    print("clock-sync instance:", p)
    print(f"  lower bound on pulse delay: Omega(d) = {p.d:g}")
    print(f"  alpha*'s handicap:          Theta(W) = {p.W:g}\n")

    cover = build_tree_edge_cover(graph)
    print(f"tree edge-cover: {len(cover.trees)} trees, "
          f"max depth {cover.max_depth:g} "
          f"(bound O(d log n) ~ {p.d * math.log2(p.n):.0f}), "
          f"max edge load {cover.max_edge_load} "
          f"(bound O(log n) ~ {math.log2(p.n):.1f})\n")

    print(f"{'synchronizer':>14} {'max delay':>10} {'mean':>8} {'cost/pulse':>11}")
    for name, runner in (("alpha*", run_alpha_star),
                         ("beta*", run_beta_star),
                         ("gamma*", run_gamma_star)):
        stats = runner(graph, pulses)
        check_causality(graph, stats)  # pulse p after neighbors' pulse p-1
        print(f"{name:>14} {stats.max_pulse_delay:10g} "
              f"{stats.mean_pulse_delay:8.1f} {stats.comm_cost_per_pulse:11.1f}")

    print("\nalpha* pays W per pulse; beta* pays ~2 x tree depth; gamma*'s")
    print("delay is O(d log^2 n), independent of the heavy chord entirely.")


if __name__ == "__main__":
    main()
