#!/usr/bin/env python
"""Trace-driven replay and differential debugging, end to end.

Three acts, all on the paper's gamma_w synchronizer hosting synchronous
max-consensus under a lossy fault adversary:

1. **Record** — run the protocol with a ``TraceRecorder`` attached; the
   replay header (protocol, graph fingerprint, fault plan, seed) is
   stamped into the trace's meta line, making the JSONL document an
   *executable* artifact.
2. **Replay** — load the document back, rebuild the run from its header
   alone, re-execute, and check byte-identity (runs here are pure
   functions of ``(graph, protocol, plan, seed)``).
3. **Diverge** — mutate one field of the fault plan (the adversary's RNG
   seed), re-run, and let the differ localize the *first event* where
   the two executions part ways, with the originating send resolved for
   context.

Run:  python examples/replay_demo.py
"""

from repro.faults import FaultPlan
from repro.obs import load_jsonl
from repro.replay import ReplaySpec, first_divergence, record_run, verify_trace


def main() -> None:
    # -- Act 1: record a gamma_w chaos run ---------------------------- #
    spec = ReplaySpec(
        protocol="gamma_w(max)", n=8, extra_edges=6, graph_seed=3,
        plan=FaultPlan(drop=0.1, seed=21),
    )
    run = record_run(spec)
    print(f"recorded {spec.protocol!r}: status={run.outcome.status}, "
          f"{run.recorder.n_recorded} events, "
          f"comm_cost={run.recorder.total_cost:g}")

    # -- Act 2: replay from the trace alone --------------------------- #
    trace = load_jsonl(run.text)
    header = trace.meta["replay"]
    print(f"replay header: plan={header['plan']}, "
          f"graph_fp={header['graph_fp']}")
    report = verify_trace(trace)
    print(f"replay: {report.describe()}")
    assert report.ok

    # -- Act 3: one-line plan mutation -> first divergent event ------- #
    mutated = record_run(ReplaySpec(
        protocol=spec.protocol, n=spec.n, extra_edges=spec.extra_edges,
        graph_seed=spec.graph_seed,
        plan=spec.plan.replace(seed=22),  # the one-line mutation
    ))
    divergence = first_divergence(run.text, mutated.text)
    assert divergence is not None
    print("\nafter mutating plan.seed 21 -> 22:")
    print(f"  first divergent event: {divergence.describe()}")
    prefix = run.text.splitlines()[1:][:divergence.index]
    print(f"  (the preceding {len(prefix)} events are identical)")


if __name__ == "__main__":
    main()
