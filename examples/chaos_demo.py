#!/usr/bin/env python
"""Chaos demo: GHS MST under 10% message loss, with the bill itemized.

Runs the GHS minimum-spanning-tree protocol three times on the same
network:

1. fault-free (the baseline cost);
2. under a seeded adversary dropping 10% of all transmissions, raw —
   the protocol stalls detectably;
3. under the same adversary wrapped in the cost-accounted reliable
   transport — the run completes with the *same* MST, and the price of
   reliability (acks + retransmissions, in the paper's cost units:
   every retry on e costs another w(e)) is printed next to the baseline.

The reliable run executes inside a ``repro.obs`` ambient trace session:
the recorder attributes every message's cost to the innermost protocol
phase (``rel-ack`` / ``rel-retry`` spans under faults), so the printed
per-span profile itemizes *where* the reliability overhead went — the
same numbers as the tag accounting, derived from the structured trace.

Run:  python examples/chaos_demo.py
"""

from repro.faults import FaultPlan, reliability_overhead
from repro.graphs import random_connected_graph
from repro.obs import tracing
from repro.protocols import run_mst_ghs


def mst_edges(tree):
    return sorted(tuple(sorted(map(repr, e))) for e in tree.edges())


def main() -> None:
    graph = random_connected_graph(n=30, extra_edges=55, seed=13)
    print(f"network: n={graph.num_vertices}, m={graph.num_edges}, "
          f"total weight {graph.total_weight():g}")

    # 1. Fault-free baseline.
    base, base_tree = run_mst_ghs(graph)
    print("\n[1] fault-free GHS")
    print(f"    comm cost {base.comm_cost:g}, time {base.time:g}, "
          f"MST weight {base_tree.total_weight():g}")

    # 2. The same protocol, raw, under 10% seeded message loss: GHS
    #    assumes reliable channels, so it stalls — detectably (the run
    #    quiesces without finishing; no wrong tree is ever reported).
    plan = FaultPlan.message_loss(0.10, seed=42)
    lossy, lossy_tree = run_mst_ghs(graph, faults=plan)
    print("\n[2] raw GHS under 10% loss")
    print(f"    status: {'completed' if lossy_tree is not None else 'stalled'}"
          f" (comm spent before stalling: {lossy.comm_cost:g})")

    # 3. Same adversary, but every node wrapped in the reliable
    #    transport (ack + timeout + retransmit per edge).  No protocol
    #    code changes — and the same MST comes out.
    with tracing(limit=0) as session:  # aggregate-only structured trace
        rel, rel_tree = run_mst_ghs(graph, faults=plan, reliable=True)
    assert rel_tree is not None, "reliable run must complete"
    assert mst_edges(rel_tree) == mst_edges(base_tree), "same MST"
    cost = reliability_overhead(rel.metrics)
    print("\n[3] reliable GHS under the same 10% loss")
    print(f"    completed with the identical MST "
          f"(weight {rel_tree.total_weight():g})")
    print(f"    total comm cost     {rel.comm_cost:10g}")
    print(f"    acknowledgments     {cost['ack_cost']:10g}")
    print(f"    retransmissions     {cost['retry_cost']:10g}  "
          f"({cost['retry_count']} retries)")
    print(f"    reliability overhead: "
          f"{cost['total_overhead'] / base.comm_cost:.2f}x the "
          f"fault-free cost")
    print(f"    retransmissions alone: "
          f"{cost['retry_cost'] / base.comm_cost:.2f}x the fault-free cost")

    # The same bill, itemized from the structured trace: per-span cost
    # attribution (payload at the root span, acks/retries in their own
    # spans) sums exactly to the run's total communication cost.
    print("\n[4] the reliable run's span profile (from repro.obs)")
    print(session.profiler().report())


if __name__ == "__main__":
    main()
