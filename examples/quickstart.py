#!/usr/bin/env python
"""Quickstart: cost-sensitive complexity in five minutes.

Builds a weighted network, inspects its weighted parameters
(script-E / script-V / script-D), constructs a shallow-light tree, and
computes a global function over it with Theta(V) communication and
Theta(D) time — the headline result of Section 2 of the paper.

Run:  python examples/quickstart.py
"""

from repro.core import (
    MAX,
    SUM,
    compute_global_function,
    global_function_comm_lower_bound,
    shallow_light_tree,
)
from repro.graphs import (
    network_params,
    prim_mst,
    random_connected_graph,
    shortest_path_tree,
    tree_distances,
)


def main() -> None:
    # A random connected network with integer edge weights in [1, 10]:
    # w(e) is both the cost of a message on e and a bound on its delay.
    graph = random_connected_graph(n=60, extra_edges=90, seed=7)
    params = network_params(graph)
    print("network:", params)
    print(f"  script-E (total weight)  = {params.E:g}")
    print(f"  script-V (MST weight)    = {params.V:g}")
    print(f"  script-D (diameter)      = {params.D:g}")

    # The two classical trees pull in opposite directions...
    root = 0
    mst = prim_mst(graph, root)
    spt = shortest_path_tree(graph, root)
    mst_depth = max(tree_distances(mst, root).values())
    spt_depth = max(tree_distances(spt, root).values())
    print("\ntree        weight     depth")
    print(f"MST   {mst.total_weight():10g}{mst_depth:10g}")
    print(f"SPT   {spt.total_weight():10g}{spt_depth:10g}")

    # ...and the shallow-light tree (Figure 5) gets both at once:
    # w(T) <= (1 + 2/q) V  and  depth(T) = O(q D).
    for q in (0.5, 2.0, 8.0):
        slt = shallow_light_tree(graph, root, q=q)
        print(f"SLT q={q:<4g}{slt.weight:8g}{slt.depth():10g}"
              f"   (weight bound {(1 + 2 / q) * params.V:g})")

    # Global function computation over the SLT: every node ends up with the
    # global value; communication is within 2*w(SLT) = O(V).
    inputs = {v: (v * 37) % 101 for v in graph.vertices}
    result, value = compute_global_function(graph, inputs, MAX, q=2.0)
    print(f"\nglobal max = {value} "
          f"(sequential oracle: {max(inputs.values())})")
    print(f"communication spent: {result.comm_cost:g}  "
          f"(lower bound Omega(V) = {global_function_comm_lower_bound(graph):g})")
    print(f"completion time:     {result.finish_time:g}  "
          f"(lower bound Omega(D) = {params.D:g})")

    result2, total = compute_global_function(graph, inputs, SUM, q=2.0)
    print(f"global sum = {total} with cost {result2.comm_cost:g}")


if __name__ == "__main__":
    main()
