"""Protocol multiplexing: run several protocols on one simulated network.

The hybrid algorithms of Sections 7.2, 8.2 and 9.3 run *two* algorithms
"in parallel" on the same network, with the shared root suspending the
currently more expensive one.  :class:`MuxProcess` hosts one sub-process
per named part at each node and routes messages by part key; each part
sees an ordinary :class:`~repro.sim.process.Process` API whose sends are
wrapped as ``(part_key, payload)``.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..graphs.weighted_graph import Vertex
from .process import Process

__all__ = ["MuxProcess"]


class _PartContext:
    """A shim context giving a hosted part the normal Process surface."""

    __slots__ = ("_outer", "_key", "is_finished", "result")

    def __init__(self, outer: MuxProcess, key: str) -> None:
        self._outer = outer
        self._key = key
        self.is_finished = False
        self.result: Any = None

    @property
    def node_id(self) -> Vertex:
        return self._outer.ctx.node_id

    @property
    def neighbors(self) -> list:
        return self._outer.ctx.neighbors

    @property
    def weights(self) -> dict:
        return self._outer.ctx.weights

    @property
    def now(self) -> float:
        return self._outer.ctx.now

    def send(self, to: Vertex, payload: Any, size: float, tag: str | None) -> None:
        # Namespace the metrics tag by part key so hybrids can split costs.
        full_tag = self._key if tag is None else f"{self._key}.{tag}"
        self._outer.ctx.send(to, (self._key, payload), size, full_tag)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> None:
        self._outer.ctx.set_timer(delay, callback)

    def finish(self, result: Any) -> None:
        if not self.is_finished:
            self.is_finished = True
            self.result = result
            self._outer.part_finished(self._key, result)


class MuxProcess(Process):
    """Hosts several sub-protocols at one node.

    Parameters
    ----------
    parts:
        Mapping ``key -> Process`` of the hosted protocol instances.
    finish_when:
        Optional predicate over the set of finished part keys; when it first
        becomes true this node finishes (result: that set).  Default: finish
        when *all* parts have finished.
    """

    def __init__(
        self,
        parts: dict[str, Process],
        finish_when: Callable[[set], bool] | None = None,
    ) -> None:
        self.parts = parts
        self._finished_parts: set[str] = set()
        self._finish_when = finish_when

    def on_start(self) -> None:
        for key, part in self.parts.items():
            part.ctx = _PartContext(self, key)
        for part in self.parts.values():
            part.on_start()

    def on_message(self, frm: Vertex, payload: Any) -> None:
        key, inner = payload
        self.parts[key].on_message(frm, inner)

    def part_finished(self, key: str, result: Any) -> None:
        self._finished_parts.add(key)
        done = (
            self._finish_when(self._finished_parts)
            if self._finish_when is not None
            else len(self._finished_parts) == len(self.parts)
        )
        if done:
            self.finish(frozenset(self._finished_parts))

    def part(self, key: str) -> Process:
        return self.parts[key]
