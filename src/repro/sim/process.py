"""The per-node protocol API.

A distributed protocol is a subclass of :class:`Process`; the network
instantiates one process per vertex.  Processes react to two kinds of
events — protocol start and message arrival — and may set local timers.
All knowledge a process has must arrive through these channels or be given
at construction time (the paper's "full information" algorithms are modeled
by handing the factory the whole graph).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..graphs.weighted_graph import Vertex

__all__ = ["Process"]


class Process:
    """Base class for one node's protocol instance.

    Subclasses override :meth:`on_start` and :meth:`on_message`.  The
    hosting :class:`~repro.sim.network.Network` injects ``self.ctx`` before
    calling ``on_start``; the helpers below all delegate to it.
    """

    ctx: Any  # injected _NodeContext; typed Any to avoid the import cycle

    # ------------------------------------------------------------------ #
    # Framework surface (subclasses override these)
    # ------------------------------------------------------------------ #

    def on_start(self) -> None:
        """Called once at time 0 (before any message delivery)."""

    def on_message(self, frm: Vertex, payload: Any) -> None:
        """Called on every message arrival."""

    def on_recover(self) -> None:
        """Called when this node comes back up after a crash window.

        The process keeps its state across the outage (crash-recover with
        durable memory); messages and timer firings that targeted the node
        while it was down are lost or deferred by the network — see
        ``docs/MODEL.md`` ("Fault model").  Default: no-op.
        """

    # ------------------------------------------------------------------ #
    # Helpers available to subclasses
    # ------------------------------------------------------------------ #

    @property
    def node_id(self) -> Vertex:
        return self.ctx.node_id

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.ctx.now

    def neighbors(self) -> list[Vertex]:
        """This node's neighbors in the communication graph."""
        return self.ctx.neighbors

    def edge_weight(self, neighbor: Vertex) -> float:
        """``w(self, neighbor)``."""
        return self.ctx.weights[neighbor]

    def send(self, to: Vertex, payload: Any, *, size: float = 1.0,
             tag: str | None = None) -> None:
        """Transmit a message to a *neighbor*; costs ``w(e) * size``."""
        self.ctx.send(to, payload, size, tag)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule a zero-cost local callback ``delay`` time units from now."""
        self.ctx.set_timer(delay, callback)

    def finish(self, result: Any = None) -> None:
        """Mark this node's protocol as locally complete with a result."""
        self.ctx.finish(result)

    def trace_span(self, name: str, detail: Any = None):
        """Context manager opening a named trace span for this node.

        Sends issued inside the ``with`` body are attributed to the span
        (see ``repro.obs``).  A shared no-op when the run is untraced, so
        layered protocols may wrap their control traffic unconditionally.
        """
        return self.ctx.span(name, detail)

    def trace_pulse(self, pulse: int) -> None:
        """Record a synchronizer pulse for this node (no-op untraced)."""
        self.ctx.trace_pulse(pulse)

    @property
    def finished(self) -> bool:
        return self.ctx.is_finished
