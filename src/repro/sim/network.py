"""The asynchronous network simulator.

Implements the paper's model (Section 1.2-1.3): a static weighted graph
where transmitting a message over edge ``e`` costs ``w(e)`` and takes some
delay in ``[0, w(e)]`` chosen by a :class:`~repro.sim.delays.DelayModel`.
Channels are FIFO per directed edge.  An optional *serialized* mode makes
each directed channel transmit one message at a time (store-and-forward),
which is the regime where the congestion effects discussed in Section 3
become visible; the default is the classical model (unbounded pipelining,
every message independently delayed).

An optional *fault adversary* (``repro.faults.FaultPlan``, duck-typed here
to avoid an import cycle) may intercept every transmission — dropping,
duplicating, corrupting, or reordering it within a bound — and crash /
recover nodes on a schedule.  All adversarial choices are driven by a
dedicated RNG seeded from the plan, so runs remain fully deterministic.

The simulator is single-threaded and deterministic for a fixed seed.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from contextlib import nullcontext
from typing import Any

from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..obs.runtime import default_recorder as _default_recorder
from .delays import DelayModel, MaximalDelay
from .events import EventQueue
from .metrics import Metrics
from .process import Process

__all__ = ["Network", "RunResult"]

# Shared no-op span for untraced runs (nullcontext is reusable/reentrant).
_NULL_SPAN = nullcontext()


class _NodeContext:
    """Injected into each process; mediates all interaction with the network."""

    __slots__ = ("_network", "node_id", "neighbors", "weights", "is_finished", "result")

    def __init__(self, network: Network, node_id: Vertex) -> None:
        self._network = network
        self.node_id = node_id
        self.neighbors = network.graph.neighbors(node_id)
        self.weights = network.graph.neighbor_weights(node_id)
        self.is_finished = False
        self.result: Any = None

    @property
    def now(self) -> float:
        return self._network.queue.now

    def send(self, to: Vertex, payload: Any, size: float, tag: str | None) -> None:
        if to not in self.weights:
            raise ValueError(f"{self.node_id!r} has no edge to {to!r}")
        self._network._transmit(self.node_id, to, payload, size, tag)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> None:
        self._network._set_node_timer(self.node_id, delay, callback)

    def finish(self, result: Any) -> None:
        if not self.is_finished:
            self.is_finished = True
            self.result = result
            self._network._node_finished(self.node_id)

    def span(self, name: str, detail: Any = None):
        """Open a named trace span attributed to this node (no-op untraced)."""
        rec = self._network._rec
        if rec is None:
            return _NULL_SPAN
        return rec.span(name, node=self.node_id, detail=detail)

    def trace_pulse(self, pulse: int) -> None:
        """Record a synchronizer pulse for this node (no-op untraced)."""
        net = self._network
        if net._rec is not None:
            net._rec.record_pulse(net.queue.now, self.node_id, pulse)


class RunResult:
    """Outcome of a simulation run: metrics, per-node results, and status.

    ``status`` says *why* the run stopped:

    * ``"quiescent"`` — the event queue drained (normal completion);
    * ``"stopped"`` — the caller's ``stop_when`` predicate fired;
    * ``"max_time"`` — the watchdog deadline was reached with events still
      pending (no event beyond the deadline is executed);
    * ``"budget_exhausted"`` — a send was suppressed by the communication
      budget and the run aborted.

    ``aborted`` is True for the last two — the run did *not* end of its
    own accord, and per-node results may be partial.
    """

    def __init__(self, metrics: Metrics, processes: dict,
                 status: str = "quiescent") -> None:
        self.metrics = metrics
        self.processes = processes
        self.status = status

    @property
    def aborted(self) -> bool:
        return self.status in ("max_time", "budget_exhausted")

    @property
    def comm_cost(self) -> float:
        return self.metrics.comm_cost

    @property
    def message_count(self) -> int:
        return self.metrics.message_count

    @property
    def time(self) -> float:
        return self.metrics.completion_time

    @property
    def finish_time(self) -> float:
        """Time the last process called finish() (protocol completion)."""
        return self.metrics.last_finish_time

    def result_of(self, node: Vertex) -> Any:
        return self.processes[node].ctx.result

    def results(self) -> dict:
        return {v: p.ctx.result for v, p in self.processes.items()}


class Network:
    """Discrete-event simulation of one protocol over one weighted graph.

    Parameters
    ----------
    graph:
        The communication graph ``G = (V, E, w)``.
    factory:
        ``factory(node_id) -> Process`` building each node's protocol
        instance.  Closures over shared configuration (roots, full graph
        knowledge, precomputed structures) model the paper's preprocessing
        assumptions.
    delay:
        The delay adversary (default: every message takes the full w(e)).
    seed:
        Seed for any randomness the delay model consumes.
    serialize:
        If True, each directed channel transmits one message at a time.
    default_tag:
        Metrics tag for untagged sends.
    faults:
        Optional fault adversary (``repro.faults.FaultPlan``; any object
        with the same ``seed`` / ``crashes`` / ``fate`` surface works).
        Decides the fate of every transmission and supplies crash windows.
    recorder:
        Optional :class:`~repro.obs.recorder.TraceRecorder` receiving a
        structured record of every send/deliver/drop/timer/crash/recover/
        pulse/finish.  Defaults to the ambient
        :func:`repro.obs.runtime.tracing` session's recorder when one is
        active, else no tracing.  A recorder with ``enabled = False``
        (e.g. :class:`~repro.obs.recorder.NullRecorder`) is normalized
        away at construction so the hot path pays a single ``is None``
        check.  Composes with ``trace``: when both are given, both fire.
    race_detect:
        Arm the :class:`~repro.analysis.race.RaceDetector`: ``True``
        raises :class:`~repro.analysis.race.SharedStateViolation` on the
        first cross-process attribute write or post-send payload
        mutation; ``"record"`` collects violations on
        ``race_detector.violations`` (and emits ``violation`` trace
        events when a recorder is attached) without aborting.  Never
        perturbs the run itself: the detector only observes, so results
        and metrics are byte-identical with and without it.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        factory: Callable[[Vertex], Process],
        *,
        delay: DelayModel | None = None,
        seed: int = 0,
        serialize: bool = False,
        default_tag: str = "msg",
        comm_budget: float | None = None,
        trace: Callable[[float, Vertex, Vertex, str, float], None] | None = None,
        faults: Any | None = None,
        recorder: Any | None = None,
        race_detect: Any = False,
    ) -> None:
        self.graph = graph
        self.queue = EventQueue()
        self.metrics = Metrics()
        self.delay_model = delay if delay is not None else MaximalDelay()
        self.rng = random.Random(seed)
        self.serialize = serialize
        self.default_tag = default_tag
        # Hard communication budget: a send that would exceed it is
        # suppressed and the run aborts (models the root-aware suspension
        # the paper's hybrid/controlled algorithms perform *before*
        # overspending; see Sections 5, 7.2, 8.2).
        self.comm_budget = comm_budget
        self.budget_exhausted = False
        # Optional observer: called as trace(time, frm, to, tag, cost) for
        # every accepted transmission (debugging / timeline visualisation).
        # Composes with a recorder — both fire for every accepted send.
        self.trace = trace
        # Structured recorder (repro.obs).  `_rec` is the normalized hot-
        # path handle: None unless a recorder is present *and* enabled, so
        # the untraced fast path is one identity check per event.
        if recorder is None:
            recorder = _default_recorder()
        self.recorder = recorder
        self._rec = (
            recorder
            if recorder is not None and getattr(recorder, "enabled", True)
            else None
        )
        if self._rec is not None:
            self._rec.attach(self)
        # Fault adversary.  Its randomness comes from a *separate* RNG so
        # that adding faults never perturbs the delay-model stream, and
        # identical (graph, protocol, plan, seed) runs replay exactly.
        self.faults = faults
        self.fault_rng = (
            random.Random(getattr(faults, "seed", 0))
            if faults is not None else None
        )
        self._down: set[Vertex] = set()
        self._deferred_timers: dict[Vertex, list[Callable[[], None]]] = {}
        self._finished_count = 0
        self._channel_clear: dict[tuple[Vertex, Vertex], float] = {}
        self.processes: dict[Vertex, Process] = {}
        for v in graph.vertices:
            proc = factory(v)
            proc.ctx = _NodeContext(self, v)
            self.processes[v] = proc
        # Shared-state race detector (repro.analysis.race).  `_race` is the
        # normalized handle: None unless armed, so the send path pays one
        # identity check and the delivery path none at all (the detector
        # swaps in wrapped delivery methods as instance attributes).
        self.race_detector = None
        self._race = None
        if race_detect:
            from ..analysis.race import RaceDetector

            mode = race_detect if isinstance(race_detect, str) else "raise"
            self.race_detector = RaceDetector(mode)
            self._race = self.race_detector
            self.race_detector.attach(self)

    # ------------------------------------------------------------------ #
    # Internal plumbing
    # ------------------------------------------------------------------ #

    def _transmit(
        self, frm: Vertex, to: Vertex, payload: Any, size: float, tag: str | None
    ) -> None:
        if frm in self._down:
            return  # a crashed node cannot transmit
        weight = self.graph.weight(frm, to)
        if self.comm_budget is not None and (
            self.metrics.comm_cost + weight * size > self.comm_budget
        ):
            self.budget_exhausted = True
            # Also halt the event queue's fast drain loop (run() probes
            # this flag after every event when a budget is configured).
            self.queue.halted = True
            return
        tag = tag or self.default_tag
        self.metrics.record_message(weight, size, tag)
        now = self.queue.now
        rec = self._rec
        if self.trace is not None:
            self.trace(now, frm, to, tag, weight * size)
        if rec is not None:
            msg_id = rec.record_send(now, frm, to, tag, weight * size, size)
        delay = self.delay_model.delay(frm, to, weight, self.rng)
        channel = (frm, to)
        if self.serialize:
            start = max(now, self._channel_clear.get(channel, 0.0))
            arrive = start + delay
        else:
            # FIFO per directed channel even with pipelining: a message may
            # not overtake an earlier one on the same channel.
            arrive = max(now + delay, self._channel_clear.get(channel, 0.0))
        # The channel timing of a transmission is independent of its fate:
        # a dropped message still occupied the channel (it was transmitted,
        # then lost) and still cost w(e) * size above — the sender pays per
        # transmission, which is what makes retransmission overhead a
        # meaningful cost-sensitive quantity.
        self._channel_clear[channel] = arrive
        race = self._race
        if self.faults is None:
            # schedule_call_at stores (fn, args) in the event's slots: no
            # capturing closure is allocated per message, and same-time
            # deliveries batch into one heap entry (see sim.events).
            if rec is None:
                self.queue.schedule_call_at(arrive, self._deliver,
                                            frm, to, payload)
            else:
                self.queue.schedule_call_at(arrive, self._deliver_traced,
                                            frm, to, payload, msg_id)
            if race is not None:
                race.note_scheduled(payload)
            return
        fate, deliveries = self.faults.fate(frm, to, weight, payload,
                                            self.fault_rng)
        if fate != "deliver":
            self.metrics.record_fault(fate)
            if rec is not None:
                rec.record_drop(now, frm, to, fate, ref=msg_id)
        for extra, out_payload in deliveries:
            # Extra adversarial delay (duplicates, reorders) bypasses the
            # FIFO clamp on purpose: later messages may overtake.
            if rec is None:
                self.queue.schedule_call_at(
                    arrive + extra, self._deliver, frm, to, out_payload
                )
            else:
                self.queue.schedule_call_at(
                    arrive + extra, self._deliver_traced,
                    frm, to, out_payload, msg_id
                )
            if race is not None:
                race.note_scheduled(out_payload)

    def _deliver(self, frm: Vertex, to: Vertex, payload: Any) -> None:
        if to in self._down:
            # In-flight messages addressed to a crashed node are lost.
            self.metrics.record_fault("lost_in_crash")
            return
        self.metrics.completion_time = self.queue.now
        self.processes[to].on_message(frm, payload)

    def _deliver_traced(self, frm: Vertex, to: Vertex, payload: Any,
                        ref: int) -> None:
        """Traced twin of :meth:`_deliver`; ``ref`` is the send's seq.

        A separate method (selected at schedule time) so the untraced
        delivery path carries no recorder check at all.
        """
        if to in self._down:
            self.metrics.record_fault("lost_in_crash")
            self._rec.record_drop(self.queue.now, frm, to, "lost_in_crash",
                                  ref=ref)
            return
        self._rec.record_deliver(self.queue.now, frm, to, ref=ref)
        self.metrics.completion_time = self.queue.now
        self.processes[to].on_message(frm, payload)

    def _set_node_timer(self, node: Vertex, delay: float,
                        callback: Callable[[], None]) -> None:
        self.queue.schedule_call(delay, self._timer_fire, node, callback)

    def _timer_fire(self, node: Vertex, callback: Callable[[], None]) -> None:
        if node in self._down:
            # Defer, don't drop: local clocks survive a crash, so timers
            # that expired during the outage fire at recovery time (this is
            # what keeps retransmission loops alive across crashes).
            if self._rec is not None:
                self._rec.record_timer(self.queue.now, node, deferred=True)
            self._deferred_timers.setdefault(node, []).append(callback)
        else:
            if self._rec is not None:
                self._rec.record_timer(self.queue.now, node)
            callback()

    def _crash(self, node: Vertex) -> None:
        if node not in self._down:
            self._down.add(node)
            self.metrics.record_fault("crash")
            if self._rec is not None:
                self._rec.record_crash(self.queue.now, node)

    def _recover(self, node: Vertex) -> None:
        if node not in self._down:
            return
        self._down.discard(node)
        self.metrics.record_fault("recover")
        if self._rec is not None:
            self._rec.record_recover(self.queue.now, node)
        race = self._race
        for cb in self._deferred_timers.pop(node, []):
            # Deferred timers re-enter the queue directly (not through
            # _timer_fire), so ownership attribution needs a wrapper.
            self.queue.schedule(
                0.0, cb if race is None else race.owned_callback(node, cb))
        if race is None:
            self.processes[node].on_recover()
        else:
            with race.run_as(node):
                self.processes[node].on_recover()

    def node_is_up(self, node: Vertex) -> bool:
        return node not in self._down

    def _node_finished(self, node: Vertex) -> None:
        self._finished_count += 1
        self.metrics.completion_time = self.queue.now
        self.metrics.last_finish_time = self.queue.now
        if self._rec is not None:
            self._rec.record_finish(self.queue.now, node)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    @property
    def all_finished(self) -> bool:
        return self._finished_count == len(self.processes)

    def run(
        self,
        *,
        max_time: float = float("inf"),
        max_events: int = 50_000_000,
        stop_when: Callable[["Network"], bool] | None = None,
    ) -> RunResult:
        """Start every process and run events until quiescence or a stop.

        Stops when the event queue is empty, ``stop_when(self)`` becomes
        true, the next event lies beyond ``max_time`` (events exactly *at*
        the deadline still run; none past it does), or ``max_events``
        events have fired (a runaway-protocol backstop that raises
        ``RuntimeError``).  The reason is reported as ``RunResult.status``.
        """
        if self.faults is not None:
            reset = getattr(self.faults, "reset", None)
            if reset is not None:
                reset()  # clear per-run bookkeeping so plans replay exactly
            for node, start, end in getattr(self.faults, "crashes", ()):
                if node not in self.processes:
                    raise ValueError(f"crash window for unknown node {node!r}")
                self.queue.schedule_call_at(start, self._crash, node)
                if end is not None and end != float("inf"):
                    self.queue.schedule_call_at(end, self._recover, node)
        if self._race is None:
            for proc in self.processes.values():
                proc.on_start()
        else:
            for node, proc in self.processes.items():
                with self._race.run_as(node):
                    proc.on_start()
        status = "quiescent"
        fired = 0
        if stop_when is None:
            # Fast path: let the queue drain itself in one tight loop.
            # The halt probe is only needed when a budget can suppress
            # sends mid-run (the only thing that halts the queue).
            reason, fired = self.queue.run(
                max_time=max_time,
                max_events=max_events,
                check_halt=self.comm_budget is not None,
            )
            if reason == "max_events":
                raise RuntimeError(
                    f"exceeded {max_events} events; runaway protocol?")
            if reason == "max_time":
                status = "max_time"
        else:
            events = 0
            while self.queue:
                if self.budget_exhausted:
                    break
                if stop_when(self):
                    status = "stopped"
                    break
                if self.queue.peek_time() > max_time:
                    status = "max_time"
                    break
                if not self.queue.step():
                    break
                events += 1
                if events >= max_events:
                    raise RuntimeError(
                        f"exceeded {max_events} events; runaway protocol?")
            fired = events
        if self.budget_exhausted:
            status = "budget_exhausted"
        if self._rec is not None:
            # Close any spans still open, stamp the outcome, and record
            # the EventQueue's view of the same run for cross-checking.
            self._rec.finalize(self.queue.now, status=status,
                               events_fired=fired)
        # Note: quiescing without meeting stop_when is not an error at this
        # level; callers (runners) decide how to interpret an unfinished run.
        return RunResult(self.metrics, self.processes, status=status)
