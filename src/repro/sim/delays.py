"""Edge-delay models for the asynchronous network (paper Section 1.3).

The paper's time measure assumes the delay of a message on edge ``e``
varies adversarially in ``[0, w(e)]``.  A delay model maps a transmission
to a concrete delay within that interval; the *worst case* for most
protocols is realized by :class:`MaximalDelay` (every message takes the
full ``w(e)``), which the benchmarks use as the default adversary.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..graphs.weighted_graph import Vertex

__all__ = [
    "DelayModel",
    "MaximalDelay",
    "ScaledDelay",
    "UniformDelay",
    "PerEdgeDelay",
]


class DelayModel(ABC):
    """Maps one message transmission to a delay in ``[0, w(e)]``."""

    @abstractmethod
    def delay(self, u: Vertex, v: Vertex, weight: float, rng: random.Random) -> float:
        """Delay for a message from u to v over an edge of the given weight."""

    def _check(self, d: float, weight: float) -> float:
        if not 0.0 <= d <= weight:
            raise ValueError(f"delay {d} outside [0, {weight}]")
        return d


class MaximalDelay(DelayModel):
    """Every message takes the full ``w(e)`` — the canonical worst case."""

    def delay(self, u: Vertex, v: Vertex, weight: float, rng: random.Random) -> float:
        return weight


class ScaledDelay(DelayModel):
    """Every message takes ``fraction * w(e)`` for a fixed fraction in [0, 1]."""

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction

    def delay(self, u: Vertex, v: Vertex, weight: float, rng: random.Random) -> float:
        return self.fraction * weight


class UniformDelay(DelayModel):
    """Delay drawn uniformly from ``[lo * w(e), hi * w(e)]``."""

    def __init__(self, lo: float = 0.0, hi: float = 1.0) -> None:
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError("need 0 <= lo <= hi <= 1")
        self.lo = lo
        self.hi = hi

    def delay(self, u: Vertex, v: Vertex, weight: float, rng: random.Random) -> float:
        return self._check(rng.uniform(self.lo * weight, self.hi * weight), weight)


class PerEdgeDelay(DelayModel):
    """Adversarial per-edge delays: a user-supplied function of (u, v, w).

    The function must return a value in ``[0, w]``; it may consult any
    captured state (e.g. a schedule keyed by edge and transmission count)
    to realize a specific adversary.
    """

    def __init__(self, fn) -> None:
        self._fn = fn

    def delay(self, u: Vertex, v: Vertex, weight: float, rng: random.Random) -> float:
        return self._check(self._fn(u, v, weight), weight)
