"""A minimal deterministic discrete-event queue.

The heap holds one entry per *distinct pending timestamp*.  An entry is a
single flat list ``[time, seq, cursor, fn0, args0, fn1, args1, ...]`` —
the heap key ``(time, seq)`` and the FIFO batch of every event scheduled
at that instant share one allocation.  ``seq`` is unique, so heap
comparisons never reach the payload slots; ``cursor`` marks the next
un-fired pair (it starts at 3 and only moves when a drain is interrupted
mid-batch).  Scheduling an event at a timestamp that is already pending
is therefore an O(1) list append instead of an O(log n) heap push — the
dominant cost on the simulator's hot path, where synchronous pulses and
same-weight broadcast waves make most events share their timestamp
("batched FIFO delivery").

Ordering semantics are identical to a classical one-entry-per-event heap
with a monotone tie-breaking sequence number: simultaneous events fire in
scheduling order — across *all* entry points (`schedule`, `schedule_at`,
`schedule_call`, `schedule_call_at`), even when the heap drained in
between — so runs are fully deterministic for a fixed seed.  An event
scheduled *at the current instant* from inside a callback fires in the
same drain, after everything already queued at that time, exactly as
before.  (:meth:`run` retires a batch *before* dispatching it, so such
events land in a fresh same-time batch that the drain loop picks up
next; :meth:`step` keeps the batch live and appends.  Observable firing
order is the same either way.)

Three design points matter for throughput (see docs/PERF.md and
``scripts/bench.py``):

* ``schedule_call`` / ``schedule_call_at`` store the callable and its
  argument tuple directly in the event's slots instead of forcing callers
  to allocate a capturing closure per event;
* :meth:`run` drains the queue in a single tight loop with the heap and
  ``heappop`` bound to locals, retires each batch up front (one heap pop
  plus one dict delete per *batch*, not per event), and takes a separate
  fast path for single-event batches — the all-distinct-timestamps shape
  (serial token walks) that used to pay full bucket bookkeeping per
  event;
* one list per distinct timestamp is the only per-schedule allocation:
  the former separate ``(time, seq, bucket)`` heap tuple is gone.

The scheduling methods repeat the small push body instead of sharing a
helper: one extra method call per scheduled event is measurable at the
rates ``scripts/bench.py`` tracks.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from itertools import count

__all__ = ["EventQueue"]

_NO_ARGS: tuple = ()
_heappush = heapq.heappush

# First payload slot of an entry: [time, seq, cursor, fn0, args0, ...].
_HEAD = 3


class EventQueue:
    """Time-ordered callback queue."""

    def __init__(self) -> None:
        # One entry per distinct pending time:
        # [time, seq, cursor, fn0, args0, fn1, args1, ...].  seq is
        # unique, so heap (list) comparisons stop at slot 1 and never
        # reach cursor or payload.  cursor advances by 2 and is non-zero
        # only while a batch is partially dispatched (interrupted run()
        # or step()-driven draining).
        self._heap: list[list] = []
        # Live (still appendable) entries by timestamp.  An entry created
        # while the heap was empty is deliberately *not* registered here:
        # nothing can batch ahead of it, and a later same-time schedule
        # simply opens a registered entry with a later seq — same firing
        # order, but the empty-queue singleton path (serial token walks)
        # skips the dict insert/delete entirely.
        self._buckets: dict[float, list] = {}
        self._seq = count()
        # Pre-bound lookups shaving ~100ns off every singleton schedule
        # (the dict and the counter are never replaced, only mutated).
        self._bucket_get = self._buckets.get
        self._next_seq = self._seq.__next__
        self._size = 0
        self.now: float = 0.0
        #: Cooperative halt flag checked once per event by :meth:`run`.
        #: A callback may set it to stop the drain loop after it returns.
        self.halted: bool = False
        #: Cumulative count of events dispatched over this queue's
        #: lifetime (all drains and steps).  Observability surfaces
        #: (``repro.obs``) cross-check a run's trace against it; updated
        #: per drain, not per event, so the hot loop is unaffected.
        self.fired: int = 0

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        when = self.now + delay
        entry = self._bucket_get(when) if self._buckets else None
        if entry is None:
            entry = [when, self._next_seq(), _HEAD, callback, _NO_ARGS]
            heap = self._heap
            if heap:
                self._buckets[when] = entry
                _heappush(heap, entry)
            else:
                heap.append(entry)
        else:
            entry.append(callback)
            entry.append(_NO_ARGS)
        self._size += 1

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``when`` (>= now).

        ``when == now`` is allowed: the event fires after every event
        already scheduled at the current instant (scheduling order is
        total across all entry points, even when the heap was fully
        drained in between).
        """
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        entry = self._bucket_get(when) if self._buckets else None
        if entry is None:
            entry = [when, self._next_seq(), _HEAD, callback, _NO_ARGS]
            heap = self._heap
            if heap:
                self._buckets[when] = entry
                _heappush(heap, entry)
            else:
                heap.append(entry)
        else:
            entry.append(callback)
            entry.append(_NO_ARGS)
        self._size += 1

    def schedule_call(self, delay: float, fn: Callable, *args) -> None:
        """Like :meth:`schedule`, but stores ``fn`` and ``args`` directly.

        Avoids allocating a capturing closure per event — the entry itself
        carries the argument slots.  This is the hot-path API.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        when = self.now + delay
        entry = self._bucket_get(when) if self._buckets else None
        if entry is None:
            entry = [when, self._next_seq(), _HEAD, fn, args]
            heap = self._heap
            if heap:
                self._buckets[when] = entry
                _heappush(heap, entry)
            else:
                heap.append(entry)
        else:
            entry.append(fn)
            entry.append(args)
        self._size += 1

    def schedule_call_at(self, when: float, fn: Callable, *args) -> None:
        """Like :meth:`schedule_at`, but stores ``fn`` and ``args`` directly."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        entry = self._bucket_get(when) if self._buckets else None
        if entry is None:
            entry = [when, self._next_seq(), _HEAD, fn, args]
            heap = self._heap
            if heap:
                self._buckets[when] = entry
                _heappush(heap, entry)
            else:
                heap.append(entry)
        else:
            entry.append(fn)
            entry.append(args)
        self._size += 1

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def peek_time(self) -> float | None:
        """Timestamp of the earliest pending event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Pop and run the earliest event; return False if the queue is empty.

        Unlike :meth:`run`, ``step`` keeps the batch registered while it
        drains it, so a callback scheduling at the current instant appends
        to the live batch (same observable order as ``run``'s
        fresh-batch handling).
        """
        if not self._size:
            return False
        heap = self._heap
        buckets = self._buckets
        while True:
            entry = heap[0]
            i = entry[2]
            if i < len(entry):
                break
            # A fully dispatched batch can sit at the front only if a
            # callback raised out of a drain; drop it and look again.
            heapq.heappop(heap)
            if buckets.get(entry[0]) is entry:
                del buckets[entry[0]]
        when = entry[0]
        self.now = when
        fn = entry[i]
        args = entry[i + 1]
        entry[2] = i + 2
        self._size -= 1
        self.fired += 1
        fn(*args)
        # Retire only after the callback ran: it may have appended new
        # same-time events to this very batch.
        if entry[2] == len(entry):
            heapq.heappop(heap)  # entry is the front by the heap invariant
            if buckets.get(when) is entry:
                del buckets[when]
        return True

    def run(
        self,
        *,
        max_time: float = float("inf"),
        max_events: int | None = None,
        check_halt: bool = True,
    ) -> tuple[str, int]:
        """Drain the queue in one tight loop; return ``(reason, n_events)``.

        Fires events in (time, scheduling) order until one of:

        * ``"empty"``      — the queue drained (quiescence);
        * ``"max_time"``   — the next event lies strictly beyond
          ``max_time`` (events exactly *at* the deadline still fire; the
          over-deadline event stays queued);
        * ``"max_events"`` — ``max_events`` events fired;
        * ``"halted"``     — a callback set :attr:`halted` (cleared on
          entry, probed after every event unless ``check_halt`` is False —
          callers that know no callback halts may skip the probe).

        Semantically identical to ``while self.step(): ...`` with the same
        guards, but substantially faster: the heap and pop are locals,
        each batch is retired with a single heap pop + dict delete
        *before* dispatch (same-time events scheduled by callbacks open a
        fresh batch, which preserves the firing order), and single-event
        batches take a dedicated fast path with no cursor bookkeeping.

        If a callback raises, the exception propagates and the queue must
        be treated as spent: the remainder of the batch being drained may
        be dropped, and same-instant events that already fired may be
        replayed by a subsequent drain.  (Every harness in this repo
        abandons the network after a callback exception.)
        """
        heap = self._heap
        buckets = self._buckets
        buckets_get = self._bucket_get
        pop = heapq.heappop
        self.halted = False
        events = 0
        limit = max_events if max_events is not None else -1
        if limit == 0:
            return ("max_events", 0)
        try:
            while heap:
                entry = heap[0]
                when = entry[0]
                if when > max_time:
                    return ("max_time", events)
                # Retire up front: one pop + one dict delete per batch.
                # Callbacks scheduling at `when` then open a fresh batch
                # with a later seq, which fires right after this one —
                # the same order appending would have produced.
                pop(heap)
                if buckets and buckets_get(when) is entry:
                    del buckets[when]
                self.now = when
                i = entry[2]
                n = len(entry)
                if i + 2 == n:
                    # Singleton batch (all-distinct-timestamps traffic).
                    fn = entry[i]
                    args = entry[i + 1]
                    fn(*args)
                    events += 1
                    if events == limit or (check_halt and self.halted):
                        if self.halted:
                            return ("halted", events)
                        return ("max_events", events)
                    continue
                while i < n:
                    fn = entry[i]
                    args = entry[i + 1]
                    i += 2
                    fn(*args)
                    events += 1
                    if events == limit or (check_halt and self.halted):
                        if i < n:
                            # Re-queue the remainder under its original
                            # seq so it still fires before any same-time
                            # batch opened meanwhile.
                            entry[2] = i
                            _heappush(heap, entry)
                        if self.halted:
                            return ("halted", events)
                        return ("max_events", events)
            return ("empty", events)
        finally:
            # One batched update instead of a per-event decrement; the
            # finally keeps the counts consistent even when a callback
            # raises out of the loop.
            self._size -= events
            self.fired += events
