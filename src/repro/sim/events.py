"""A minimal deterministic discrete-event queue.

The heap holds one fixed-slot entry ``(time, seq, bucket)`` per *distinct
pending timestamp*; ``bucket`` is a flat FIFO batch
``[cursor, fn0, args0, fn1, args1, ...]`` of every event scheduled at that
instant, in scheduling order.  Scheduling an event at a timestamp that is
already pending is therefore an O(1) list append instead of an O(log n)
heap push — the dominant cost on the simulator's hot path, where
synchronous pulses and same-weight broadcast waves make most events share
their timestamp ("batched FIFO delivery").

Ordering semantics are identical to a classical one-entry-per-event heap
with a monotone tie-breaking sequence number: simultaneous events fire in
scheduling order — across *all* entry points (`schedule`, `schedule_at`,
`schedule_call`, `schedule_call_at`), even when the heap drained in
between — so runs are fully deterministic for a fixed seed.  An event
scheduled *at the current instant* from inside a callback joins the
currently draining batch and fires after everything already queued at
that time, exactly as before.

Two further design points matter for throughput (see docs/PERF.md and
``scripts/bench.py``):

* ``schedule_call`` / ``schedule_call_at`` store the callable and its
  argument tuple directly in the event's slots instead of forcing callers
  to allocate a capturing closure per event;
* :meth:`run` drains the queue in a single tight loop with the heap and
  ``heappop`` bound to locals, instead of paying one ``peek_time()`` plus
  one ``step()`` method call per event.

The scheduling methods repeat the small push body instead of sharing a
helper: one extra method call per scheduled event is measurable at the
rates ``scripts/bench.py`` tracks.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from itertools import count

__all__ = ["EventQueue"]

_NO_ARGS: tuple = ()
_heappush = heapq.heappush


class EventQueue:
    """Time-ordered callback queue."""

    def __init__(self) -> None:
        # One entry per distinct pending time: (time, seq, bucket) where
        # bucket = [cursor:int, fn0, args0, fn1, args1, ...].  The cursor
        # marks the next un-fired item (it advances by 2; non-zero offsets
        # persist only while a batch is being drained or after run() was
        # interrupted).  seq is unique, so heap comparisons never reach
        # the bucket list.
        self._heap: list[tuple] = []
        # Live (still appendable) buckets by timestamp.
        self._buckets: dict[float, list] = {}
        self._seq = count()
        # Pre-bound lookups shaving ~100ns off every singleton schedule
        # (the dict and the counter are never replaced, only mutated).
        self._bucket_get = self._buckets.get
        self._next_seq = self._seq.__next__
        self._size = 0
        self.now: float = 0.0
        #: Cooperative halt flag checked once per event by :meth:`run`.
        #: A callback may set it to stop the drain loop after it returns.
        self.halted: bool = False

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        when = self.now + delay
        bucket = self._bucket_get(when)
        if bucket is None:
            self._buckets[when] = bucket = [1, callback, _NO_ARGS]
            heap = self._heap
            entry = (when, self._next_seq(), bucket)
            if heap:
                _heappush(heap, entry)
            else:
                heap.append(entry)
        else:
            bucket.append(callback)
            bucket.append(_NO_ARGS)
        self._size += 1

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``when`` (>= now).

        ``when == now`` is allowed: the event fires after every event
        already scheduled at the current instant (scheduling order is
        total across all entry points, even when the heap was fully
        drained in between).
        """
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        bucket = self._bucket_get(when)
        if bucket is None:
            self._buckets[when] = bucket = [1, callback, _NO_ARGS]
            heap = self._heap
            entry = (when, self._next_seq(), bucket)
            if heap:
                _heappush(heap, entry)
            else:
                heap.append(entry)
        else:
            bucket.append(callback)
            bucket.append(_NO_ARGS)
        self._size += 1

    def schedule_call(self, delay: float, fn: Callable, *args) -> None:
        """Like :meth:`schedule`, but stores ``fn`` and ``args`` directly.

        Avoids allocating a capturing closure per event — the entry itself
        carries the argument slots.  This is the hot-path API.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        when = self.now + delay
        bucket = self._bucket_get(when)
        if bucket is None:
            self._buckets[when] = bucket = [1, fn, args]
            heap = self._heap
            entry = (when, self._next_seq(), bucket)
            if heap:
                _heappush(heap, entry)
            else:
                heap.append(entry)
        else:
            bucket.append(fn)
            bucket.append(args)
        self._size += 1

    def schedule_call_at(self, when: float, fn: Callable, *args) -> None:
        """Like :meth:`schedule_at`, but stores ``fn`` and ``args`` directly."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        bucket = self._bucket_get(when)
        if bucket is None:
            self._buckets[when] = bucket = [1, fn, args]
            heap = self._heap
            entry = (when, self._next_seq(), bucket)
            if heap:
                _heappush(heap, entry)
            else:
                heap.append(entry)
        else:
            bucket.append(fn)
            bucket.append(args)
        self._size += 1

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def peek_time(self) -> float | None:
        """Timestamp of the earliest pending event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _retire(self, when: float, bucket: list) -> None:
        """Drop a fully dispatched batch (it is the heap front by invariant)."""
        heapq.heappop(self._heap)
        if self._buckets.get(when) is bucket:
            del self._buckets[when]

    def step(self) -> bool:
        """Pop and run the earliest event; return False if the queue is empty."""
        if not self._size:
            return False
        while True:
            when, _, bucket = self._heap[0]
            if bucket[0] < len(bucket):
                break
            # A batch fully dispatched by an interrupted run() may still
            # sit at the front; drop it and look again.
            self._retire(when, bucket)
        self.now = when
        i = bucket[0]
        fn = bucket[i]
        args = bucket[i + 1]
        bucket[0] = i + 2
        self._size -= 1
        fn(*args)
        # Retire only after the callback ran: it may have appended new
        # same-time events to this very batch.
        if bucket[0] == len(bucket):
            self._retire(when, bucket)
        return True

    def run(
        self,
        *,
        max_time: float = float("inf"),
        max_events: int | None = None,
        check_halt: bool = True,
    ) -> tuple[str, int]:
        """Drain the queue in one tight loop; return ``(reason, n_events)``.

        Fires events in (time, scheduling) order until one of:

        * ``"empty"``      — the queue drained (quiescence);
        * ``"max_time"``   — the next event lies strictly beyond
          ``max_time`` (events exactly *at* the deadline still fire; the
          over-deadline event stays queued);
        * ``"max_events"`` — ``max_events`` events fired;
        * ``"halted"``     — a callback set :attr:`halted` (cleared on
          entry, probed after every event unless ``check_halt`` is False —
          callers that know no callback halts may skip the probe).

        Semantically identical to ``while self.step(): ...`` with the same
        guards, but substantially faster: the heap and pop are locals and
        whole same-time batches are dispatched without touching the heap.

        If a callback raises, the exception propagates and the queue must
        be treated as spent: same-instant events that already fired may be
        replayed by a subsequent drain.  (Every harness in this repo
        abandons the network after a callback exception.)
        """
        heap = self._heap
        buckets = self._buckets
        pop = heapq.heappop
        self.halted = False
        events = 0
        limit = max_events if max_events is not None else -1
        if limit == 0:
            return ("max_events", 0)
        try:
            while heap:
                when, _, bucket = heap[0]
                if when > max_time:
                    return ("max_time", events)
                self.now = when
                i = bucket[0]
                n = len(bucket)
                # Outer while: a callback scheduling at the current
                # instant appends past the n snapshot; re-checking len
                # once per snapshot batch picks those up within this
                # drain (append order == firing order, as required).
                while i < n:
                    while i < n:
                        fn = bucket[i]
                        args = bucket[i + 1]
                        i += 2
                        fn(*args)
                        events += 1
                        if events == limit or (check_halt and self.halted):
                            bucket[0] = i
                            if i == len(bucket):
                                pop(heap)
                                if buckets.get(when) is bucket:
                                    del buckets[when]
                            if self.halted:
                                return ("halted", events)
                            return ("max_events", events)
                    n = len(bucket)
                # Batch exhausted: it is still the heap front (nothing
                # earlier can have been scheduled), so pop directly.
                pop(heap)
                del buckets[when]
            return ("empty", events)
        finally:
            # One batched update instead of a per-event decrement; the
            # finally keeps the count consistent even when a callback
            # raises out of the loop.
            self._size -= events