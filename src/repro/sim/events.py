"""A minimal deterministic discrete-event queue.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.
The monotonically increasing sequence number makes simultaneous events fire
in scheduling order, so runs are fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from itertools import count

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered callback queue."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = count()
        self.now: float = 0.0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def peek_time(self) -> float | None:
        """Timestamp of the earliest pending event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def step(self) -> bool:
        """Pop and run the earliest event; return False if the queue is empty."""
        if not self._heap:
            return False
        when, _, callback = heapq.heappop(self._heap)
        self.now = when
        callback()
        return True
