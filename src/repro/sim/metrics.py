"""Cost-sensitive accounting (paper Section 1.3).

The *communication complexity* of a run is the sum over all transmitted
messages of ``w(e)`` (times the message's size in words, default 1); the
*time complexity* is the physical completion time.  Messages carry a free-
form ``tag`` so layered protocols (e.g. a synchronous algorithm under a
synchronizer, or a controller wrapping a protocol) can split their cost
into components (payload vs. acks vs. control traffic).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["Metrics"]


@dataclass
class Metrics:
    """Mutable cost/time accounting for one simulation run."""

    message_count: int = 0
    comm_cost: float = 0.0
    completion_time: float = 0.0   # time of the last delivery / finish event
    last_finish_time: float = 0.0  # time the last process called finish()
    cost_by_tag: dict = field(default_factory=lambda: defaultdict(float))
    count_by_tag: dict = field(default_factory=lambda: defaultdict(int))
    # Adversarial events injected by a FaultPlan (drops, duplicates,
    # corruptions, reorders, crashes, deliveries lost to a down node).
    fault_counts: dict = field(default_factory=lambda: defaultdict(int))

    def record_message(self, weight: float, size: float, tag: str) -> None:
        cost = weight * size
        self.message_count += 1
        self.comm_cost += cost
        self.cost_by_tag[tag] += cost
        self.count_by_tag[tag] += 1

    def record_fault(self, kind: str) -> None:
        self.fault_counts[kind] += 1

    def tagged_cost(self, *prefixes: str) -> float:
        """Total cost over tags starting with any of the given prefixes."""
        return sum(
            c for t, c in self.cost_by_tag.items()
            if any(t.startswith(p) for p in prefixes)
        )

    def as_dict(self) -> dict:
        """Plain-dict snapshot for exporters and sweep rows.

        Tag and fault maps are materialized as ordinary dicts with sorted
        keys (no ``defaultdict``), so the result is JSON-serializable and
        byte-stable under ``json.dumps(sort_keys=True)``.
        """
        return {
            "message_count": self.message_count,
            "comm_cost": self.comm_cost,
            "completion_time": self.completion_time,
            "last_finish_time": self.last_finish_time,
            "cost_by_tag": {t: self.cost_by_tag[t]
                            for t in sorted(self.cost_by_tag)},
            "count_by_tag": {t: self.count_by_tag[t]
                             for t in sorted(self.count_by_tag)},
            "fault_counts": {k: self.fault_counts[k]
                             for k in sorted(self.fault_counts)},
        }

    def summary(self) -> str:
        parts = [
            f"messages={self.message_count}",
            f"comm_cost={self.comm_cost:g}",
            f"time={self.completion_time:g}",
        ]
        for tag in sorted(self.cost_by_tag):
            parts.append(
                f"{tag}: n={self.count_by_tag[tag]} cost={self.cost_by_tag[tag]:g}"
            )
        for kind in sorted(self.fault_counts):
            parts.append(f"fault[{kind}]={self.fault_counts[kind]}")
        return "  ".join(parts)
