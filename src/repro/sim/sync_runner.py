"""Weighted *synchronous* network semantics (paper Sections 1.4.3, 4).

In the weighted synchronous network ``G(V, E, w)`` every link ``e`` has a
delay of *exactly* ``w(e)``: a message sent at pulse ``p`` over ``e``
arrives at pulse ``p + w(e)``.  Synchronous algorithms written against
:class:`SynchronousProtocol` can be executed two ways:

* directly, with :class:`SynchronousRunner` (this module) — the reference
  semantics, used for correctness oracles and to measure the synchronous
  complexities ``c_pi`` and ``t_pi``; or
* on an *asynchronous* network via synchronizer ``gamma_w``
  (:mod:`repro.synch.gamma_w`), which is the paper's contribution; the two
  executions must produce identical outputs (tested).

Weights must be positive integers for synchronous semantics to be well
defined.  A protocol is *in synch* with the network (Definition 4.2) if it
transmits on edge ``e`` only at pulses divisible by ``w(e)``; the runner
can enforce this, and the normalization transform of Section 4.3
(:mod:`repro.synch.normalize`) produces in-synch protocols automatically.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..graphs.weighted_graph import Vertex, WeightedGraph

__all__ = ["SynchronousProtocol", "SyncContext", "SynchronousRunner", "SyncRunResult"]


class SyncContext:
    """Per-node API handed to a synchronous protocol.

    ``send`` is only legal inside ``on_pulse``; the hosting runner (or
    synchronizer) collects the outgoing messages of the current pulse.
    """

    def __init__(self, node_id: Vertex, graph: WeightedGraph) -> None:
        self.node_id = node_id
        self.neighbors = graph.neighbors(node_id)
        self.weights = graph.neighbor_weights(node_id)
        self.outbox: list[tuple[Vertex, Any]] = []
        self.finished = False
        self.result: Any = None

    def send(self, to: Vertex, payload: Any) -> None:
        if to not in self.weights:
            raise ValueError(f"{self.node_id!r} has no edge to {to!r}")
        self.outbox.append((to, payload))

    def finish(self, result: Any = None) -> None:
        if not self.finished:
            self.finished = True
            self.result = result

    def drain(self) -> list[tuple[Vertex, Any]]:
        out, self.outbox = self.outbox, []
        return out


class SynchronousProtocol:
    """One node of a synchronous algorithm.

    Subclasses override :meth:`on_pulse`; ``self.sync`` (a
    :class:`SyncContext`) is injected before pulse 0.
    """

    sync: SyncContext

    def on_pulse(self, pulse: int, inbox: list[tuple[Vertex, Any]]) -> None:
        """Execute pulse ``pulse``; ``inbox`` holds the messages arriving now."""

    # Convenience pass-throughs -------------------------------------------------

    @property
    def node_id(self) -> Vertex:
        return self.sync.node_id

    def neighbors(self) -> list[Vertex]:
        return self.sync.neighbors

    def edge_weight(self, v: Vertex) -> float:
        return self.sync.weights[v]

    def send(self, to: Vertex, payload: Any) -> None:
        self.sync.send(to, payload)

    def finish(self, result: Any = None) -> None:
        self.sync.finish(result)

    @property
    def finished(self) -> bool:
        return self.sync.finished


class SyncRunResult:
    """Outcome of a synchronous run."""

    def __init__(self, pulses: int, comm_cost: float, message_count: int,
                 protocols: dict) -> None:
        self.pulses = pulses          # t_pi: last pulse at which anything happened
        self.comm_cost = comm_cost    # c_pi: sum of w(e) over transmissions
        self.message_count = message_count
        self.protocols = protocols

    def result_of(self, node: Vertex) -> Any:
        return self.protocols[node].sync.result

    def results(self) -> dict:
        return {v: p.sync.result for v, p in self.protocols.items()}


class SynchronousRunner:
    """Executes a synchronous protocol with exact ``w(e)`` link delays."""

    def __init__(
        self,
        graph: WeightedGraph,
        factory,
        *,
        require_in_synch: bool = False,
    ) -> None:
        for u, v, w in graph.edges():
            if w != int(w) or w < 1:
                raise ValueError(
                    f"synchronous semantics need positive integer weights; "
                    f"edge ({u!r}, {v!r}) has w={w!r}"
                )
        self.graph = graph
        self.require_in_synch = require_in_synch
        self.protocols: dict[Vertex, SynchronousProtocol] = {}
        for v in graph.vertices:
            proto = factory(v)
            proto.sync = SyncContext(v, graph)
            self.protocols[v] = proto
        # inflight[pulse][node] -> list of (frm, payload) arriving at that pulse
        self._inflight: dict[int, dict[Vertex, list]] = defaultdict(
            lambda: defaultdict(list)
        )
        self.comm_cost = 0.0
        self.message_count = 0

    def run(self, max_pulses: int = 1_000_000) -> SyncRunResult:
        """Run pulses until quiescence (all finished, nothing in flight).

        Returns the run result; raises ``RuntimeError`` if ``max_pulses`` is
        exceeded (runaway protocol).
        """
        pulse = 0
        last_active = 0
        while pulse <= max_pulses:
            inbox_now = self._inflight.pop(pulse, {})
            any_send = False
            for v, proto in self.protocols.items():
                inbox = inbox_now.get(v, [])
                proto.on_pulse(pulse, inbox)
                for to, payload in proto.sync.drain():
                    w = int(self.graph.weight(v, to))
                    if self.require_in_synch and pulse % w != 0:
                        raise RuntimeError(
                            f"protocol not in synch: node {v!r} sent on edge of "
                            f"weight {w} at pulse {pulse}"
                        )
                    self.comm_cost += w
                    self.message_count += 1
                    self._inflight[pulse + w][to].append((v, payload))
                    any_send = True
            if inbox_now or any_send:
                last_active = pulse
            all_done = all(p.sync.finished for p in self.protocols.values())
            if all_done and not self._inflight:
                return SyncRunResult(
                    last_active, self.comm_cost, self.message_count, self.protocols
                )
            # NOTE: an empty in-flight map does not imply quiescence -- a
            # protocol may hold internally scheduled future sends (e.g. the
            # in-synch wrapper) or act on future pulses; genuinely stuck
            # protocols are caught by the max_pulses backstop below.
            pulse += 1
        raise RuntimeError(f"exceeded {max_pulses} pulses")
