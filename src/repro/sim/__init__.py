"""Discrete-event simulation of weighted asynchronous (and synchronous) networks."""

from .delays import DelayModel, MaximalDelay, PerEdgeDelay, ScaledDelay, UniformDelay
from .events import EventQueue
from .metrics import Metrics
from .network import Network, RunResult
from .process import Process
from .sync_runner import (
    SyncContext,
    SynchronousProtocol,
    SynchronousRunner,
    SyncRunResult,
)

__all__ = [
    "EventQueue",
    "Metrics",
    "Process",
    "Network",
    "RunResult",
    "DelayModel",
    "MaximalDelay",
    "ScaledDelay",
    "UniformDelay",
    "PerEdgeDelay",
    "SynchronousProtocol",
    "SyncContext",
    "SynchronousRunner",
    "SyncRunResult",
]

from .mux import MuxProcess  # noqa: E402

__all__.append("MuxProcess")
