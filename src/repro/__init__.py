"""repro: cost-sensitive analysis of communication protocols.

A full reproduction of Awerbuch, Baratz, Peleg, "Cost-Sensitive Analysis
of Communication Protocols" (PODC 1990 / MIT-LCS-TM-453): weighted
complexity measures, shallow-light trees, clock and network synchronizers,
controllers, and the connectivity / MST / SPT algorithm suites, on top of
a discrete-event simulator of weighted asynchronous networks.

Subpackages
-----------
graphs     weighted graphs, generators, MST/SPT oracles, network parameters
covers     clusters, sparse-cover coarsening (Thm 1.1), tree edge-covers
sim        the discrete-event simulator (async + weighted-synchronous)
protocols  distributed algorithms (flood, DFS, MST/SPT suites, hybrids)
core       the paper's contribution: measures, SLTs, global functions
synch      clock synchronizers alpha*/beta*/gamma* and synchronizer gamma_w
control    resource controllers (Section 5)
faults     fault-injection adversaries, reliable transport, chaos harness
"""

__version__ = "1.1.0"

from . import (  # noqa: F401
    control,
    core,
    covers,
    experiments,
    faults,
    graphs,
    protocols,
    sim,
    synch,
)

__all__ = [
    "graphs",
    "covers",
    "sim",
    "protocols",
    "core",
    "synch",
    "control",
    "faults",
    "experiments",
    "__version__",
]
