"""Controllers — resource-bounded protocol execution (Section 5, [AAPS87]).

A *controller* transforms a diffusing computation ``pi`` (single initiator;
vertices join on first message; the join edges form the dynamically growing
*execution tree*) into a controlled protocol ``phi`` that behaves
identically on correct inputs but can never consume more than roughly twice
a preset resource *threshold* — so a protocol driven haywire by corrupted
input or faults is cut off instead of flooding the network.

Following the paper's weighted reading, transmitting a message over edge
``e`` consumes ``w(e)`` units of an abstract resource.  Every consumption
must be *authorized*: a vertex lacking permits sends a request up the
execution tree and waits for a grant before transmitting.

Two authorization policies are provided:

* ``naive`` — every request travels all the way to the root, which keeps
  an exact counter and stops granting beyond the threshold.  Overhead:
  one round trip along the tree per message — ``O(c_pi * depth)``.
* ``aggregated`` — the [AAPS87] idea: requests are batched geometrically
  (a vertex asks for ``max(deficit, everything it consumed so far)``, so
  it asks ``O(log c)`` times) and intermediate vertices holding spare
  permits absorb requests instead of forwarding them.  The root keeps an
  *approximate* counter (it sees grants, not consumption) and cuts off at
  twice the threshold, guaranteeing total consumption ``<= 2 * threshold``
  while leaving executions within the threshold untouched.  Overhead:
  ``O(c_pi * log^2 c_pi)`` (Corollary 5.1), reproduced in the benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network, RunResult
from ..sim.process import Process

__all__ = ["ControlledHost", "run_controlled", "run_controlled_multi", "ControlOutcome"]


class _InnerShim:
    """Process-context shim that routes the inner protocol's sends through
    the controller's permit machinery."""

    def __init__(self, host: ControlledHost) -> None:
        self._host = host
        self.node_id = host.node_id
        self.neighbors = host.ctx.neighbors
        self.weights = host.ctx.weights
        self.is_finished = False
        self.result: Any = None

    @property
    def now(self) -> float:
        return self._host.ctx.now

    def send(self, to: Vertex, payload: Any, size: float, tag: str | None) -> None:
        self._host.controlled_send(to, payload, size, tag)

    def set_timer(self, delay, callback) -> None:
        self._host.ctx.set_timer(delay, callback)

    def span(self, name: str, detail: Any = None):
        return self._host.ctx.span(name, detail)

    def trace_pulse(self, pulse: int) -> None:
        self._host.ctx.trace_pulse(pulse)

    def finish(self, result: Any) -> None:
        if not self.is_finished:
            self.is_finished = True
            self.result = result
            self._host.inner_finished(result)


class ControlledHost(Process):
    """One node of the controlled protocol ``phi``.

    Parameters
    ----------
    inner: the hosted protocol instance (a Process).
    is_initiator: the diffusing computation's (single) initiator / root.
    threshold: resource budget ``c_pi`` — the root stops authorizing once
        its (mode-dependent) counter would exceed ``2 * threshold``.
    mode: "naive" or "aggregated".
    """

    def __init__(self, inner: Process, is_initiator: bool, threshold: float,
                 mode: str = "aggregated") -> None:
        if mode not in ("naive", "aggregated"):
            raise ValueError(f"unknown controller mode {mode!r}")
        self.inner = inner
        self.is_initiator = is_initiator
        self.threshold = threshold
        self.mode = mode
        self.tree_parent: Vertex | None = None
        self._joined = is_initiator
        self.halted = False
        # permit machinery
        self.pool = 0.0                # spare permits parked here
        self.consumed = 0.0            # resource actually consumed here
        self.issued = 0.0              # root only: total permits granted
        self._send_queue: deque = deque()   # (to, payload, size, tag, cost)
        self._outstanding_request = False
        self._req_seq = 0
        self._backlog: dict = {}       # req_id -> origin child (None = self)

    # -------------------------------------------------------------- #

    def on_start(self) -> None:
        # Every node initializes its local protocol state; in the diffusing
        # model non-initiators stay passive until their first message.
        self.inner.ctx = _InnerShim(self)
        self.inner.on_start()

    def on_message(self, frm: Vertex, payload: Any) -> None:
        kind = payload[0]
        if kind == "proto":
            if not self._joined:
                # First protocol message: mark the execution-tree edge.
                self._joined = True
                self.tree_parent = frm
            self.inner.on_message(frm, payload[1])
        elif kind == "req":
            self._handle_request(frm, payload[1], payload[2])
        elif kind == "grant":
            self._handle_grant(payload[1], payload[2])
        elif kind == "halt":
            self._handle_halt(frm)
        else:  # pragma: no cover
            raise AssertionError(f"unknown controller message {kind!r}")

    # -------------------------------------------------------------- #
    # Consumption path
    # -------------------------------------------------------------- #

    def controlled_send(self, to: Vertex, payload: Any, size: float,
                        tag: str | None) -> None:
        cost = self.edge_weight(to) * size
        self._send_queue.append((to, payload, size, tag, cost))
        self._flush()

    def _flush(self) -> None:
        if self.halted:
            return
        while self._send_queue:
            to, payload, size, tag, cost = self._send_queue[0]
            if self.is_initiator:
                # The root authorizes itself against its own counter.
                if not self._root_authorize(cost):
                    return
            elif self.pool >= cost:
                self.pool -= cost
            else:
                self._request_permits()
                return
            self._send_queue.popleft()
            self.consumed += cost
            self.send(to, ("proto", payload), size=size,
                      tag=f"ctl-proto.{tag or 'msg'}")

    def _request_permits(self) -> None:
        if self._outstanding_request or self.halted:
            return
        deficit = self._send_queue[0][4] - self.pool
        if self.mode == "aggregated":
            amount = max(deficit, self.consumed)
        else:
            amount = deficit
        self._outstanding_request = True
        self._req_seq += 1
        self._forward_request((self.node_id, self._req_seq), amount, origin=None)

    def _forward_request(self, req_id, amount: float,
                         origin: Vertex | None) -> None:
        self._backlog[req_id] = origin
        with self.trace_span("ctl-req"):
            self.send(self.tree_parent, ("req", req_id, amount),
                      tag="ctl-req")

    # -------------------------------------------------------------- #
    # Authorization path
    # -------------------------------------------------------------- #

    def _handle_request(self, child: Vertex, req_id, amount: float) -> None:
        if self.halted:
            return
        if self.is_initiator:
            if self._root_authorize(amount):
                with self.trace_span("ctl-grant"):
                    self.send(child, ("grant", req_id, amount),
                              tag="ctl-grant")
            return
        if self.mode == "aggregated" and self.pool >= amount:
            # Absorb: spare permits parked here satisfy the child directly.
            self.pool -= amount
            with self.trace_span("ctl-grant"):
                self.send(child, ("grant", req_id, amount), tag="ctl-grant")
        else:
            self._forward_request(req_id, amount, origin=child)

    def _root_authorize(self, amount: float) -> bool:
        """Root-side counter check; triggers the halt at 2x threshold."""
        if self.halted:
            return False
        if self.issued + amount > 2.0 * self.threshold:
            self._initiate_halt()
            return False
        self.issued += amount
        return True

    def _handle_grant(self, req_id, amount: float) -> None:
        origin = self._backlog.pop(req_id)
        if origin is not None:
            with self.trace_span("ctl-grant"):
                self.send(origin, ("grant", req_id, amount), tag="ctl-grant")
        else:
            self.pool += amount
            self._outstanding_request = False
            self._flush()
            if self._send_queue:
                self._request_permits()

    # -------------------------------------------------------------- #
    # Halting
    # -------------------------------------------------------------- #

    def _initiate_halt(self) -> None:
        self._handle_halt(None)

    def _handle_halt(self, frm: Vertex | None) -> None:
        if self.halted:
            return
        self.halted = True
        self._send_queue.clear()
        with self.trace_span("ctl-halt"):
            for v in self.neighbors():
                if v != frm:
                    self.send(v, ("halt",), tag="ctl-halt")

    def inner_finished(self, result: Any) -> None:
        self.finish(result)


class ControlOutcome:
    """Result of a controlled run, with the controller's own accounting."""

    def __init__(self, net_result: RunResult, threshold: float) -> None:
        self.net_result = net_result
        self.threshold = threshold
        m = net_result.metrics
        self.proto_cost = sum(
            c for t, c in m.cost_by_tag.items() if t.startswith("ctl-proto")
        )
        self.control_cost = sum(
            c for t, c in m.cost_by_tag.items()
            if t.startswith(("ctl-req", "ctl-grant", "ctl-halt"))
        )
        self.total_cost = m.comm_cost
        self.halted = any(
            p.halted for p in net_result.processes.values()
        )
        self.consumed = sum(p.consumed for p in net_result.processes.values())

    def inner_result_of(self, v: Vertex) -> Any:
        proc = self.net_result.processes[v]
        ctx = getattr(proc.inner, "ctx", None)
        return ctx.result if ctx is not None else None


def run_controlled(
    graph: WeightedGraph,
    inner_factory,
    initiator: Vertex,
    threshold: float,
    *,
    mode: str = "aggregated",
    delay: DelayModel | None = None,
    seed: int = 0,
    max_events: int = 5_000_000,
) -> ControlOutcome:
    """Run ``inner_factory(v)``'s protocol under the controller.

    The run ends at quiescence: either the inner protocol completed
    normally (consumption within the threshold) or the controller halted
    it (consumption capped at ``2 * threshold``).
    """
    return run_controlled_multi(
        graph, inner_factory, [initiator], threshold,
        mode=mode, delay=delay, seed=seed, max_events=max_events,
    )


def run_controlled_multi(
    graph: WeightedGraph,
    inner_factory,
    initiators,
    threshold_per_root: float,
    *,
    mode: str = "aggregated",
    delay: DelayModel | None = None,
    seed: int = 0,
    max_events: int = 5_000_000,
) -> ControlOutcome:
    """The multiple-initiator extension the paper notes is straightforward.

    Each initiator roots its own execution tree (a vertex joins the tree
    of whichever initiator's computation reaches it first) and enforces its
    own threshold, so total consumption is capped at
    ``2 * len(initiators) * threshold_per_root``.  Any root that trips its
    threshold halts the whole computation.
    """
    roots = set(initiators)
    if not roots:
        raise ValueError("need at least one initiator")
    net = Network(
        graph,
        lambda v: ControlledHost(
            inner_factory(v), v in roots, threshold_per_root, mode
        ),
        delay=delay,
        seed=seed,
    )
    result = net.run(max_events=max_events)
    return ControlOutcome(result, threshold_per_root * len(roots))
