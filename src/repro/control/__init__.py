"""Controllers: resource-bounded execution of diffusing computations (Sec 5)."""

from .controller import (
    ControlledHost,
    ControlOutcome,
    run_controlled,
    run_controlled_multi,
)

__all__ = ["ControlledHost", "ControlOutcome", "run_controlled", "run_controlled_multi"]
