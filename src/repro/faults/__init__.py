"""Fault injection, reliable transport, and the chaos harness.

The robustness layer on top of the simulator:

* :class:`FaultPlan` — a deterministic, seeded adversary that drops,
  duplicates, corrupts, or reorders transmissions (within a bound) and
  crashes/recovers nodes on a schedule;
* :class:`ReliableProcess` / :func:`reliable_factory` — a per-edge
  ack + timeout + retransmit transport that wraps any protocol process
  unchanged, with its overhead measured in the paper's cost-sensitive
  units under dedicated metric tags;
* :func:`run_chaos` — runs a protocol under an adversary with watchdogs
  and classifies the outcome so failures are always *detectable*.
"""

from .plan import CorruptedPayload, CrashWindow, FaultPlan
from .runner import DETECTABLE_FAILURES, ChaosOutcome, run_chaos
from .transport import (
    ACK_TAG,
    RETRY_TAG,
    ReliableProcess,
    reliability_overhead,
    reliable_factory,
)

__all__ = [
    "FaultPlan",
    "CrashWindow",
    "CorruptedPayload",
    "ReliableProcess",
    "reliable_factory",
    "reliability_overhead",
    "ACK_TAG",
    "RETRY_TAG",
    "run_chaos",
    "ChaosOutcome",
    "DETECTABLE_FAILURES",
]
