"""The chaos harness: run protocols under a fault adversary, detectably.

:func:`run_chaos` executes one protocol on one graph under a
:class:`~repro.faults.plan.FaultPlan`, optionally behind the
:class:`~repro.faults.transport.ReliableProcess` transport, with two
watchdogs (a simulated-time deadline and an event-count backstop), and
classifies the outcome:

* ``"ok"``        — every node finished (and, if the caller supplied an
  ``expect`` value, the extracted answer matched it);
* ``"wrong"``     — completed but the answer differs from ``expect``;
* ``"stalled"``   — the event queue drained with unfinished nodes (e.g. a
  message was dropped and nobody retransmits);
* ``"timeout"``   — the watchdog deadline fired with events still pending;
* ``"aborted"``   — the communication budget was exhausted;
* ``"error"``     — a process raised (e.g. a raw protocol indexing into a
  corrupted frame).

The contract the chaos matrix asserts is that a run is **never silently
wrong and never hangs**: with the reliable transport it must be ``"ok"``;
without it, under faults, anything except ``"ok"``/``"wrong"`` is an
acceptable *detectable* failure.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network, RunResult
from ..sim.process import Process
from .plan import FaultPlan
from .transport import reliability_overhead, reliable_factory

__all__ = ["ChaosOutcome", "run_chaos", "DETECTABLE_FAILURES"]

# Everything a faulted run may legitimately report except success —
# each of these is *detectable* by a caller holding the outcome.
DETECTABLE_FAILURES = frozenset({"stalled", "timeout", "aborted", "error"})


@dataclass
class ChaosOutcome:
    """Result of one chaos run.

    ``status`` is a single classification, but a run can exhibit *both* a
    detectable event and a wrong answer — a node crashes mid-run, the
    protocol still completes, and the answer it completes with is wrong.
    ``crashed`` preserves that second axis: a crash-and-wrong run reports
    ``detectable_failure`` *and* ``silent_failure`` together instead of
    letting the answer check mask the (perfectly observable) crash.
    """

    status: str
    result: RunResult | None
    answer: Any = None
    error: str | None = None
    ack_cost: float = 0.0
    retry_cost: float = 0.0
    retry_count: int = 0
    total_overhead: float = 0.0
    #: Picklable :class:`~repro.obs.profiler.TraceSummary` of the run when
    #: a recorder was attached (explicitly or via an ambient session).
    trace: Any = None
    #: True when at least one node crashed during the run (whether or not
    #: it recovered) — an observable event regardless of final status.
    crashed: bool = False
    #: Canonical, picklable signatures of shared-state violations observed
    #: by the race detector (``race_detect="record"``/``True``); see
    #: :func:`repro.analysis.violation_signatures`.
    violations: tuple = ()

    @property
    def detectable_failure(self) -> bool:
        """The run failed in a way a caller holding this outcome can see.

        Crash-while-wrong counts: the crash was observable even though the
        status classification reports the wrong answer.
        """
        if self.status in DETECTABLE_FAILURES:
            return True
        return self.crashed and self.status != "ok"

    @property
    def silent_failure(self) -> bool:
        """True for the outcome the chaos contract forbids: a wrong answer.

        A crash-and-wrong run is *both* a silent failure (the answer is
        wrong) and a detectable one (the crash was observable) — callers
        enforcing the contract should key on this property, not on
        ``not detectable_failure``.
        """
        return self.status == "wrong"


def _trace_summary(net: Network, status: str):
    """Reduce the run's recorder (if any) to a picklable summary.

    On exception paths :meth:`Network.run` never reached its finalize
    hook, so finalize here; either way the chaos classification is
    stamped alongside the raw run status.
    """
    rec = net._rec
    if rec is None:
        return None
    if "status" not in rec.meta:
        rec.finalize(net.queue.now, status=status,
                     events_fired=net.queue.fired)
    rec.meta["chaos_status"] = status
    from ..obs.profiler import TraceSummary

    return TraceSummary.from_recorder(rec)


def _observed(net: Network, extra_violation: Any = None) -> dict:
    """Cross-status observations: crashes and race-detector violations.

    ``extra_violation`` covers the ``"raise"``-mode path, where the
    violation aborts the run before the detector records it.
    """
    from ..analysis import violation_signatures

    violations = list(net.race_detector.violations) \
        if net.race_detector is not None else []
    if extra_violation is not None:
        violations.append(extra_violation)
    return {
        "crashed": net.metrics.fault_counts.get("crash", 0) > 0,
        "violations": violation_signatures(violations),
    }


def run_chaos(
    graph: WeightedGraph,
    factory: Callable[[Vertex], Process],
    *,
    plan: FaultPlan | None = None,
    reliable: bool = True,
    transport: dict | None = None,
    watchdog_time: float = float("inf"),
    max_events: int = 2_000_000,
    delay: DelayModel | None = None,
    seed: int = 0,
    serialize: bool = False,
    answer: Callable[[RunResult], Any] | None = None,
    expect: Any = None,
    recorder: Any | None = None,
    race_detect: Any = False,
) -> ChaosOutcome:
    """Run ``factory``'s protocol on ``graph`` under ``plan``.

    ``answer(result)`` extracts the protocol's final answer; when
    ``expect`` is given the extracted answer is compared against it and a
    mismatch is classified ``"wrong"`` (the outcome the chaos contract
    exists to rule out).  ``watchdog_time`` bounds simulated time; the
    ``max_events`` backstop catches event storms and reports them as
    ``"timeout"`` rather than raising.

    ``recorder`` (or an ambient :func:`repro.obs.runtime.tracing`
    session) attaches structured tracing; the run's
    :class:`~repro.obs.profiler.TraceSummary` comes back on
    ``ChaosOutcome.trace`` for every status, including error paths.

    ``race_detect`` passes through to :class:`~repro.sim.network.Network`;
    a :class:`~repro.analysis.race.SharedStateViolation` raised mid-run is
    classified ``"error"`` (a detectable failure), not ``"timeout"``.
    """
    from ..analysis.race import SharedStateViolation

    if reliable:
        factory = reliable_factory(factory, **(transport or {}))
    net = Network(graph, factory, delay=delay, seed=seed,
                  serialize=serialize, faults=plan, recorder=recorder,
                  race_detect=race_detect)
    try:
        # Run to quiescence (no stop_when): trailing acks/retransmissions
        # count toward the measured reliability overhead, and a stall is
        # distinguishable from success by the unfinished nodes.
        result = net.run(max_time=watchdog_time, max_events=max_events)
    except SharedStateViolation as exc:  # race detector: before the
        # RuntimeError backstop below, which would misread it as a hang
        return ChaosOutcome(status="error", result=None,
                            error=f"{type(exc).__name__}: {exc}",
                            trace=_trace_summary(net, "error"),
                            **_observed(net, extra_violation=exc),
                            **reliability_overhead(net.metrics))
    except RuntimeError as exc:  # max_events backstop: a detected hang
        return ChaosOutcome(status="timeout", result=None, error=str(exc),
                            trace=_trace_summary(net, "timeout"),
                            **_observed(net),
                            **reliability_overhead(net.metrics))
    except Exception as exc:  # a process crashed on adversarial input
        return ChaosOutcome(status="error", result=None,
                            error=f"{type(exc).__name__}: {exc}",
                            trace=_trace_summary(net, "error"),
                            **_observed(net),
                            **reliability_overhead(net.metrics))

    overhead = reliability_overhead(result.metrics)
    overhead.update(_observed(net))
    if result.status == "max_time":
        return ChaosOutcome(status="timeout", result=result,
                            trace=_trace_summary(net, "timeout"), **overhead)
    if result.status == "budget_exhausted":
        return ChaosOutcome(status="aborted", result=result,
                            trace=_trace_summary(net, "aborted"), **overhead)
    if not net.all_finished:
        return ChaosOutcome(status="stalled", result=result,
                            trace=_trace_summary(net, "stalled"), **overhead)

    value = answer(result) if answer is not None else None
    if answer is not None and expect is not None and value != expect:
        return ChaosOutcome(status="wrong", result=result, answer=value,
                            trace=_trace_summary(net, "wrong"), **overhead)
    return ChaosOutcome(status="ok", result=result, answer=value,
                        trace=_trace_summary(net, "ok"), **overhead)
