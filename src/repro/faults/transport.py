"""A cost-accounted reliable transport over lossy weighted channels.

:class:`ReliableProcess` wraps any :class:`~repro.sim.process.Process`
without modifying protocol code (the same shim-context technique as
:class:`~repro.sim.mux.MuxProcess`): every send of the inner protocol is
framed with a per-destination sequence number, acknowledged by the
receiver, and retransmitted on timeout until acknowledged; the receiver
suppresses duplicates and releases frames to the inner protocol *in
sequence order*, restoring the FIFO-channel abstraction the protocols
were written against even when the adversary drops, duplicates, corrupts
or reorders transmissions.

Timeouts follow the cost model: a full data+ack round trip over edge
``e`` takes at most ``2 w(e)`` (each hop's delay is bounded by ``w(e)``),
so the retransmission timeout is seeded at ``timeout_factor * w(e)``
(default 3, leaving one ``w(e)`` of slack for queueing) and doubles on
every retry — bounded exponential backoff, capped at
``2**max_backoff_doublings`` times the seed — up to ``max_retries``
attempts, after which the transport gives up (``gave_up`` is set and the
stalled run is caught by the chaos harness's watchdog: failures are
detectable, never silent).

Cost accounting: first transmissions keep the inner protocol's metric
tag, so the base cost breakdown is unchanged; acknowledgments are tagged
``rel-ack`` and retransmissions ``rel-retry``.  The full price of
reliability on a run is therefore ``cost_by_tag["rel-ack"] +
cost_by_tag["rel-retry"]``, in the paper's cost-sensitive units — each
retry on ``e`` costs another ``w(e) * size``.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..graphs.weighted_graph import Vertex
from ..sim.process import Process
from .plan import CorruptedPayload

__all__ = ["ACK_TAG", "RETRY_TAG", "ReliableProcess", "reliable_factory",
           "reliability_overhead"]

ACK_TAG = "rel-ack"
RETRY_TAG = "rel-retry"

_DATA = "rel-data"
_ACK = "rel-ack"


class _ReliableContext:
    """Shim context giving the wrapped protocol the normal Process surface."""

    __slots__ = ("_outer", "is_finished", "result")

    def __init__(self, outer: ReliableProcess) -> None:
        self._outer = outer
        self.is_finished = False
        self.result: Any = None

    @property
    def node_id(self) -> Vertex:
        return self._outer.ctx.node_id

    @property
    def neighbors(self) -> list:
        return self._outer.ctx.neighbors

    @property
    def weights(self) -> dict:
        return self._outer.ctx.weights

    @property
    def now(self) -> float:
        return self._outer.ctx.now

    def send(self, to: Vertex, payload: Any, size: float,
             tag: str | None) -> None:
        self._outer._send_data(to, payload, size, tag)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> None:
        self._outer.ctx.set_timer(delay, callback)

    def span(self, name: str, detail: Any = None):
        return self._outer.ctx.span(name, detail)

    def trace_pulse(self, pulse: int) -> None:
        self._outer.ctx.trace_pulse(pulse)

    def finish(self, result: Any) -> None:
        if not self.is_finished:
            self.is_finished = True
            self.result = result
            self._outer.finish(result)


class ReliableProcess(Process):
    """Per-edge ack + timeout + retransmit transport around ``inner``.

    Parameters
    ----------
    inner:
        The protocol instance to make reliable.  Its sends/receives are
        transparently framed; it needs no code changes.  Attribute access
        on the wrapper falls through to ``inner``, so result extractors
        written against the raw process (``proc.parent`` etc.) still work.
    timeout_factor:
        Initial retransmission timeout, as a multiple of ``w(e)``.  Must
        exceed 2 (the ack round-trip bound) or every frame would be
        retransmitted spuriously under the maximal-delay adversary.
    max_retries:
        Give-up bound on retransmissions per frame.
    max_backoff_doublings:
        Cap on the exponential backoff (timeout never exceeds
        ``timeout_factor * w(e) * 2**max_backoff_doublings``).
    ack_size:
        Size in words of an acknowledgment frame (cost ``w(e) * ack_size``).
    """

    def __init__(
        self,
        inner: Process,
        *,
        timeout_factor: float = 3.0,
        max_retries: int = 30,
        max_backoff_doublings: int = 4,
        ack_size: float = 1.0,
    ) -> None:
        if timeout_factor <= 2.0:
            raise ValueError(
                "timeout_factor must exceed 2 (the data+ack round trip "
                f"over e takes up to 2 w(e)); got {timeout_factor!r}"
            )
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self.inner = inner
        self.timeout_factor = timeout_factor
        self.max_retries = max_retries
        self.max_backoff_doublings = max_backoff_doublings
        self.ack_size = ack_size
        self.gave_up = False
        # (to, seq) -> [frame, size, tag, retries, timeout]
        self._outstanding: dict[tuple[Vertex, int], list] = {}
        self._next_seq: dict[Vertex, int] = {}
        self._deliver_next: dict[Vertex, int] = {}
        self._reorder_buf: dict[Vertex, dict[int, Any]] = {}

    def __getattr__(self, name: str):
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def on_start(self) -> None:
        self.inner.ctx = _ReliableContext(self)
        self.inner.on_start()

    def on_recover(self) -> None:
        # Deferred retransmission timers flushed by the network at the
        # recovery instant re-arm the outstanding frames; nothing to do at
        # the transport level beyond waking the inner protocol.
        self.inner.on_recover()

    # ------------------------------------------------------------------ #
    # Sender side
    # ------------------------------------------------------------------ #

    def _send_data(self, to: Vertex, payload: Any, size: float,
                   tag: str | None) -> None:
        seq = self._next_seq.get(to, 0)
        self._next_seq[to] = seq + 1
        frame = (_DATA, seq, payload)
        timeout = self.timeout_factor * self.edge_weight(to)
        self._outstanding[(to, seq)] = [frame, size, tag, 0, timeout]
        # First copy keeps the protocol's own tag: the fault-free cost
        # breakdown is identical with and without the transport.
        self.send(to, frame, size=size, tag=tag)
        self.set_timer(timeout, lambda: self._check_ack(to, seq))

    def _check_ack(self, to: Vertex, seq: int) -> None:
        entry = self._outstanding.get((to, seq))
        if entry is None:
            return  # acknowledged; nothing to do
        frame, size, _tag, retries, timeout = entry
        if retries >= self.max_retries:
            self.gave_up = True  # detectable: the run stalls, watchdog fires
            return
        entry[3] = retries + 1
        if retries < self.max_backoff_doublings:
            entry[4] = timeout * 2.0
        with self.trace_span(RETRY_TAG):
            self.send(to, frame, size=size, tag=RETRY_TAG)
        self.set_timer(entry[4], lambda: self._check_ack(to, seq))

    # ------------------------------------------------------------------ #
    # Receiver side
    # ------------------------------------------------------------------ #

    def on_message(self, frm: Vertex, payload: Any) -> None:
        if isinstance(payload, CorruptedPayload):
            return  # failed checksum: discard; the sender will retransmit
        kind = payload[0]
        if kind == _ACK:
            self._outstanding.pop((frm, payload[1]), None)
            return
        if kind != _DATA:  # pragma: no cover - misuse guard
            raise AssertionError(
                f"unframed message through ReliableProcess: {payload!r}"
            )
        _, seq, inner_payload = payload
        with self.trace_span(ACK_TAG):
            self.send(frm, (_ACK, seq), size=self.ack_size, tag=ACK_TAG)
        expected = self._deliver_next.get(frm, 0)
        if seq < expected:
            return  # duplicate of an already-released frame
        buf = self._reorder_buf.setdefault(frm, {})
        if seq in buf:
            return  # duplicate of a buffered frame
        buf[seq] = inner_payload
        # Release in sequence order: reliable *and* FIFO, as the protocols
        # assume of their channels.
        while expected in buf:
            released = buf.pop(expected)
            expected += 1
            self._deliver_next[frm] = expected
            self.inner.on_message(frm, released)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def unacked_frames(self) -> int:
        return len(self._outstanding)


def reliable_factory(
    factory: Callable[[Vertex], Process],
    **transport_options: Any,
) -> Callable[[Vertex], ReliableProcess]:
    """Lift a process factory to a reliable-transport factory."""
    return lambda v: ReliableProcess(factory(v), **transport_options)


def reliability_overhead(metrics) -> dict[str, float]:
    """Cost-sensitive reliability overhead of a run, by component."""
    ack = metrics.cost_by_tag.get(ACK_TAG, 0.0)
    retry = metrics.cost_by_tag.get(RETRY_TAG, 0.0)
    return {
        "ack_cost": ack,
        "retry_cost": retry,
        "retry_count": metrics.count_by_tag.get(RETRY_TAG, 0),
        "total_overhead": ack + retry,
    }
