"""Fault-injection adversaries for the weighted network simulator.

The paper's execution model is already adversarial in its *timing* (every
edge delay varies in ``[0, w(e)]``, Section 1.3); a :class:`FaultPlan`
extends the adversary to *reliability*: per-transmission message loss,
duplication, corruption, bounded reordering, and scheduled node
crash/recovery.  All decisions are drawn from a dedicated RNG seeded by
``FaultPlan.seed`` (the :class:`~repro.sim.network.Network` owns the RNG
instance), so a run is a pure function of
``(graph, protocol, FaultPlan, seed)`` — identical inputs replay exactly.

Cost accounting: a faulted transmission still costs ``w(e) * size`` — the
sender transmitted, the adversary interfered afterwards.  Network-level
duplicates cost nothing extra (the sender paid once); only *end-to-end
retransmissions* (see :mod:`repro.faults.transport`) pay again, which is
precisely what makes the reliability overhead measurable in the paper's
cost-sensitive units.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Callable, Collection, Iterable
from dataclasses import dataclass, field
from typing import Any

from ..graphs.weighted_graph import Vertex

__all__ = ["CorruptedPayload", "CrashWindow", "FaultPlan"]


class CorruptedPayload:
    """Marker wrapper for a payload damaged in transit.

    Models a frame whose checksum fails at the receiver: the original
    content is retained (for inspection/debugging) but a well-behaved
    receiver — e.g. :class:`~repro.faults.transport.ReliableProcess` —
    must treat the frame as garbage and discard it.  Raw protocols that
    index into it will fail loudly, which the chaos harness classifies as
    a *detectable* failure.
    """

    __slots__ = ("original",)

    def __init__(self, original: Any) -> None:
        self.original = original

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorruptedPayload({self.original!r})"


@dataclass(frozen=True)
class CrashWindow:
    """One scheduled outage: ``node`` is down during ``[start, end)``.

    ``end`` may be ``None`` / ``inf`` for a permanent crash.  While down,
    a node neither sends nor receives (in-flight messages addressed to it
    are lost) and its timers are deferred to the recovery instant; its
    local state survives (crash-recover with durable memory).

    The window is validated at construction: ``start`` must be >= 0 and
    ``end``, when finite, must be strictly after ``start`` — an inverted
    or empty window (``start >= end``) is a plan-authoring bug, not a
    no-op adversary.
    """

    node: Vertex
    start: float
    end: float | None = None

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ValueError(f"crash window starts before time 0: {self}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"crash window is inverted or empty (start >= end): {self}"
            )

    def __iter__(self):
        # Lets the Network unpack windows as plain (node, start, end).
        return iter((self.node, self.start, self.end))

    def to_dict(self) -> dict:
        """JSON-ready form; ``inf`` ends normalize to ``None`` (permanent)."""
        end = self.end if self.end != float("inf") else None
        return {"node": self.node, "start": self.start, "end": end}

    @classmethod
    def from_dict(cls, d: dict) -> CrashWindow:
        """Inverse of :meth:`to_dict`, re-validating the window."""
        unknown = set(d) - {"node", "start", "end"}
        if unknown:
            raise ValueError(f"unknown CrashWindow keys: {sorted(unknown)}")
        if "node" not in d or "start" not in d:
            raise ValueError(f"CrashWindow dict needs node and start: {d!r}")
        return cls(d["node"], d["start"], d.get("end"))


def _normalize_edges(
    edges: Iterable[tuple[Vertex, Vertex]] | None
) -> frozenset | None:
    if edges is None:
        return None
    return frozenset(frozenset(e) for e in edges)


@dataclass
class FaultPlan:
    """A deterministic, seeded adversary over message faults and crashes.

    Parameters
    ----------
    drop, duplicate, corrupt, reorder:
        Independent per-transmission probabilities in ``[0, 1]``.  At most
        one fault applies per transmission, with precedence
        drop > corrupt > duplicate > reorder (a dropped message cannot
        also be duplicated).
    reorder_bound:
        A reordered (or duplicated second-copy) delivery is delayed by an
        extra amount drawn uniformly from ``[0, reorder_bound * w(e)]``
        and exempted from the FIFO clamp, so later messages may overtake
        it — reordering *within a bound*, never unboundedly stale.
    seed:
        Seed for the adversary's dedicated RNG (kept separate from the
        delay-model RNG so fault injection never perturbs delays).
    edges:
        Optional collection of undirected edges ``(u, v)``; when given,
        message faults apply only to transmissions on those edges (both
        directions).  Crash windows are unaffected.
    crashes:
        Crash schedule: an iterable of :class:`CrashWindow` (or plain
        ``(node, start, end)`` triples).
    script:
        Optional *deterministic* adversary: ``script(frm, to, index)``
        is consulted first for every transmission (``index`` counts
        transmissions per directed edge, starting at 0) and may return
        ``"drop"`` / ``"corrupt"`` / ``"duplicate"`` / ``"reorder"`` to
        force that fault, ``"deliver"`` to force clean delivery, or
        ``None`` to fall through to the probabilistic model.  This is how
        paper-style worst-case constructions are expressed exactly.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    reorder: float = 0.0
    reorder_bound: float = 1.0
    seed: int = 0
    edges: Collection[tuple[Vertex, Vertex]] | None = None
    crashes: tuple = ()
    script: Callable[[Vertex, Vertex, int], str | None] | None = None
    _edge_set: frozenset | None = field(init=False, repr=False, default=None)
    _tx_index: dict = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability {p!r} outside [0, 1]")
        if self.reorder_bound < 0.0:
            raise ValueError("reorder_bound must be >= 0")
        self._edge_set = _normalize_edges(self.edges)
        # Normalizing plain (node, start, end) triples through CrashWindow
        # also validates every window (start >= 0, start < end).
        self.crashes = tuple(
            cw if isinstance(cw, CrashWindow) else CrashWindow(*cw)
            for cw in self.crashes
        )

    # ------------------------------------------------------------------ #
    # Constructors for common adversaries
    # ------------------------------------------------------------------ #

    @classmethod
    def message_loss(cls, rate: float, *, seed: int = 0) -> FaultPlan:
        """Uniform per-transmission loss — the canonical chaos adversary."""
        return cls(drop=rate, seed=seed)

    @classmethod
    def lossy_and_noisy(cls, rate: float, *, seed: int = 0) -> FaultPlan:
        """Split ``rate`` evenly across drop / corrupt / duplicate."""
        return cls(drop=rate / 3, corrupt=rate / 3, duplicate=rate / 3,
                   seed=seed)

    @classmethod
    def random_crashes(
        cls,
        nodes: Iterable[Vertex],
        *,
        count: int,
        horizon: float,
        downtime: float,
        seed: int = 0,
        spare: Collection[Vertex] | None = None,
        **message_faults,
    ) -> FaultPlan:
        """Crash ``count`` distinct nodes once each, windows drawn in
        ``[0, horizon]`` with the given ``downtime``, deterministically
        from ``seed``.  ``spare`` nodes (e.g. the root) are never crashed.
        Extra keyword arguments become message-fault probabilities.
        """
        pool = sorted((v for v in nodes if not spare or v not in spare),
                      key=repr)
        if count > len(pool):
            raise ValueError(f"cannot crash {count} of {len(pool)} nodes")
        rng = random.Random(seed)
        victims = rng.sample(pool, count)
        windows = tuple(
            CrashWindow(v, t0 := rng.uniform(0.0, horizon), t0 + downtime)
            for v in victims
        )
        return cls(crashes=windows, seed=seed, **message_faults)

    # ------------------------------------------------------------------ #
    # Serialization and mutation (the fuzzer / replay surface)
    # ------------------------------------------------------------------ #

    _RATE_FIELDS = ("drop", "duplicate", "corrupt", "reorder")
    _DICT_KEYS = frozenset(
        _RATE_FIELDS + ("reorder_bound", "seed", "edges", "crashes")
    )

    def to_dict(self) -> dict:
        """Canonical JSON-ready form of this plan.

        Zero-valued rates are kept (the dict always lists every rate), the
        edge restriction serializes as a repr-sorted list of ``[u, v]``
        pairs, and crash windows serialize via
        :meth:`CrashWindow.to_dict` in (start, node-repr) order — so equal
        plans always produce byte-identical ``json.dumps(sort_keys=True)``
        output, which is what the fuzz corpus and replay headers key on.
        Plans carrying a ``script`` callable are not serializable.
        """
        if self.script is not None:
            raise ValueError("a scripted FaultPlan cannot be serialized "
                             "(script callables have no canonical form)")
        d: dict[str, Any] = {name: getattr(self, name)
                             for name in self._RATE_FIELDS}
        d["reorder_bound"] = self.reorder_bound
        d["seed"] = self.seed
        if self._edge_set is not None:
            d["edges"] = sorted(
                (sorted(e, key=repr) for e in self._edge_set),
                key=lambda pair: [repr(v) for v in pair],
            )
        if self.crashes:
            d["crashes"] = [
                cw.to_dict() for cw in sorted(
                    self.crashes, key=lambda c: (c.start, repr(c.node))
                )
            ]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> FaultPlan:
        """Inverse of :meth:`to_dict`; re-runs all plan validation.

        Unknown keys raise (a corpus entry or replay header with a typo'd
        field must fail loudly, not silently fuzz a weaker adversary).
        """
        unknown = set(d) - cls._DICT_KEYS
        if unknown:
            raise ValueError(f"unknown FaultPlan keys: {sorted(unknown)}")
        kwargs: dict[str, Any] = {
            name: d[name] for name in cls._DICT_KEYS
            if name in d and name not in ("edges", "crashes")
        }
        if d.get("edges") is not None:
            kwargs["edges"] = [tuple(e) for e in d["edges"]]
        if d.get("crashes"):
            kwargs["crashes"] = tuple(
                CrashWindow.from_dict(cw) for cw in d["crashes"]
            )
        return cls(**kwargs)

    def replace(self, **changes: Any) -> FaultPlan:
        """A new validated plan with the given fields replaced.

        The mutation hook the fuzzer builds on: rate nudges, crash-window
        edits and edge-target swaps all go through here, so every mutant
        re-runs ``__post_init__`` validation.
        """
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ #
    # The Network-facing surface
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Clear per-run bookkeeping (the per-edge transmission counters).

        The Network calls :meth:`fate` with a fresh RNG per run; the only
        other mutable state is the script's transmission index, reset here
        (and lazily by a fresh Network via its own plan instance).
        """
        self._tx_index.clear()

    def _decide(self, frm: Vertex, to: Vertex, rng: random.Random) -> str:
        if self.script is not None:
            idx = self._tx_index.get((frm, to), 0)
            self._tx_index[(frm, to)] = idx + 1
            forced = self.script(frm, to, idx)
            if forced is not None:
                return forced
        # Constant RNG consumption per transmission (four draws) keeps the
        # stream alignment independent of which faults actually fire.
        r_drop, r_corrupt, r_dup, r_reorder = (
            rng.random(), rng.random(), rng.random(), rng.random()
        )
        if r_drop < self.drop:
            return "drop"
        if r_corrupt < self.corrupt:
            return "corrupt"
        if r_dup < self.duplicate:
            return "duplicate"
        if r_reorder < self.reorder:
            return "reorder"
        return "deliver"

    def fate(
        self,
        frm: Vertex,
        to: Vertex,
        weight: float,
        payload: Any,
        rng: random.Random,
    ) -> tuple[str, list[tuple[float, Any]]]:
        """Decide what happens to one transmission.

        Returns ``(fate_name, deliveries)`` where each delivery is an
        ``(extra_delay, payload)`` pair scheduled on top of the normal
        (delay-model + FIFO) arrival time.
        """
        if self._edge_set is not None and frozenset((frm, to)) not in self._edge_set:
            return "deliver", [(0.0, payload)]
        action = self._decide(frm, to, rng)
        if action == "deliver":
            return "deliver", [(0.0, payload)]
        if action == "drop":
            return "drop", []
        if action == "corrupt":
            return "corrupt", [(0.0, CorruptedPayload(payload))]
        jitter = rng.uniform(0.0, self.reorder_bound * weight)
        if action == "duplicate":
            return "duplicate", [(0.0, payload), (jitter, payload)]
        if action == "reorder":
            return "reorder", [(jitter, payload)]
        raise ValueError(f"unknown fault action {action!r}")
