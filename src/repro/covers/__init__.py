"""Clusters, covers, sparse-cover coarsening (Thm 1.1) and tree edge-covers."""

from .clusters import (
    cluster_center,
    cluster_radius,
    cover_degree,
    cover_radius,
    is_cluster,
    is_cover,
    max_cover_degree,
    subsumes,
)
from .coarsening import CoarseCluster, coarsen_cover
from .tree_cover import CoverTree, TreeEdgeCover, build_tree_edge_cover

__all__ = [
    "cluster_radius",
    "cluster_center",
    "cover_radius",
    "cover_degree",
    "max_cover_degree",
    "is_cover",
    "is_cluster",
    "subsumes",
    "coarsen_cover",
    "CoarseCluster",
    "CoverTree",
    "TreeEdgeCover",
    "build_tree_edge_cover",
]
