"""Sparse-cover coarsening — Theorem 1.1 of the paper ([AP91] machinery).

Given a graph ``G``, an initial cover ``S`` and an integer ``k >= 1``,
construct a cover ``T`` such that

1. ``T`` subsumes ``S`` (every S_i fits inside some T_j),
2. ``Rad(T) <= (2k - 1) * Rad(S)``, and
3. ``Delta(T) = O(k * |S|^{1/k})``  (max vertex degree of the cover; for the
   sequential pass-structured construction below the provable bound is
   ``O(|S|^{1/k} * log|S|)``, which coincides with the theorem's bound at
   the ``k = log|S|`` operating point every caller in this library uses).

The construction is the classical Awerbuch-Peleg kernel-growing procedure:
repeatedly pick an unsubsumed cluster and grow a *collection* of clusters
around it layer by layer (each layer = every still-live cluster intersecting
the current union), stopping as soon as a layer fails to multiply the
collection size by ``|S|^{1/k}``.  The union of the *previous* layer (the
"kernel") becomes an output cluster; every cluster of the final layer is
set aside for a later pass.  Within a pass all kernels are pairwise
disjoint, which is what bounds the cover degree by the number of passes.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from ..graphs.weighted_graph import Vertex, WeightedGraph

__all__ = ["coarsen_cover", "CoarseCluster"]


class CoarseCluster:
    """An output cluster of the coarsening, with provenance.

    Attributes
    ----------
    vertices:
        The merged vertex set (a cluster: its induced subgraph is connected
        whenever the input clusters are connected).
    kernel_members:
        Indices (into the input cover) of the clusters subsumed by this
        output cluster.
    """

    __slots__ = ("vertices", "kernel_members")

    def __init__(self, vertices: frozenset, kernel_members: tuple[int, ...]) -> None:
        self.vertices = vertices
        self.kernel_members = kernel_members

    def __repr__(self) -> str:
        return f"CoarseCluster(|Y|={len(self.vertices)}, kernel={self.kernel_members})"


def coarsen_cover(
    initial_cover: Iterable[Iterable[Vertex]],
    k: int,
    *,
    graph: WeightedGraph | None = None,
) -> list[CoarseCluster]:
    """Coarsen ``initial_cover`` with parameter ``k`` (Theorem 1.1).

    Parameters
    ----------
    initial_cover:
        The clusters ``S`` (each an iterable of vertices).  Order matters
        only for determinism of the output.
    k:
        Trade-off parameter: larger k gives smaller cover degree but larger
        radius blow-up, per the theorem's bounds.
    graph:
        Unused by the combinatorial construction itself; accepted so callers
        can keep a uniform signature (radius verification happens in tests).

    Returns
    -------
    A list of :class:`CoarseCluster`; their ``vertices`` form the cover T and
    each input cluster index appears in exactly one ``kernel_members`` tuple.
    """
    clusters = [frozenset(c) for c in initial_cover]
    if any(not c for c in clusters):
        raise ValueError("empty cluster in initial cover")
    if k < 1:
        raise ValueError("k must be >= 1")
    total = len(clusters)
    if total == 0:
        return []
    # Growth threshold |S|^{1/k}; at least a hair above 1 so growth means
    # "strictly more clusters joined than the threshold allows".
    threshold = max(total ** (1.0 / k), 1.0 + 1e-9)

    remaining = list(range(total))  # indices not yet subsumed
    output: list[CoarseCluster] = []
    while remaining:
        # One pass: kernels created in this pass are pairwise disjoint.
        pool = set(remaining)
        deferred: list[int] = []
        # Deterministic selection order: ascending input index.
        order = sorted(pool)
        for start in order:
            if start not in pool:
                continue
            kernel = [start]
            union = set(clusters[start])
            while True:
                # sorted() both normalizes the pool's set order (a hash-
                # order hazard for the list it produces) and keeps the
                # deferred list in ascending index order.
                layer = sorted(i for i in pool if clusters[i] & union)
                if len(layer) <= threshold * len(kernel):
                    break
                kernel = layer
                union = set().union(*(clusters[i] for i in kernel))
            # `layer` is the final (stopped) layer; kernel is the previous one.
            kernel_set = set(kernel)
            output.append(
                CoarseCluster(frozenset(union), tuple(sorted(kernel_set)))
            )
            pool -= set(layer)
            pool -= kernel_set
            deferred.extend(i for i in layer if i not in kernel_set)
        remaining = deferred
    return output


def theoretical_radius_bound(k: int, initial_radius: float) -> float:
    """The radius guarantee of Theorem 1.1: ``(2k - 1) * Rad(S)``."""
    return (2 * k - 1) * initial_radius


def theoretical_degree_bound(k: int, num_clusters: int) -> float:
    """Cover-degree guarantee for the pass-structured construction.

    ``|S|^{1/k} * (ln|S| + 1) + 1`` — within a constant factor of the
    theorem's ``O(k |S|^{1/k})`` at the ``k = log|S|`` operating point.
    """
    if num_clusters <= 1:
        return 1.0
    return num_clusters ** (1.0 / k) * (math.log(num_clusters) + 1.0) + 1.0
