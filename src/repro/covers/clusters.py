"""Clusters and covers (paper Section 1.2).

A *cluster* is a vertex set ``S`` whose induced subgraph ``G(S)`` is
connected.  A *cover* is a collection of clusters whose union is ``V``.
``Rad(S)`` is the radius of the induced subgraph (minimum eccentricity);
``deg_S(v)`` counts how many clusters of a cover contain ``v`` and
``Delta(S)`` is the maximum such degree.  Cover ``T`` *subsumes* cover ``S``
if every cluster of S is contained in some cluster of T.

These definitions feed the coarsening theorem (Thm 1.1, implemented in
:mod:`repro.covers.coarsening`) and the tree edge-cover of Definition 3.1.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graphs.paths import radius_center
from ..graphs.weighted_graph import Vertex, WeightedGraph

__all__ = [
    "Cluster",
    "Cover",
    "cluster_radius",
    "cluster_center",
    "cover_radius",
    "cover_degree",
    "max_cover_degree",
    "is_cover",
    "is_cluster",
    "subsumes",
]

Cluster = frozenset
Cover = list


def is_cluster(graph: WeightedGraph, vertices: Iterable[Vertex]) -> bool:
    """True iff the induced subgraph G(S) is connected and non-empty."""
    vset = set(vertices)
    if not vset:
        return False
    return graph.induced_subgraph(vset).is_connected()


def cluster_radius(graph: WeightedGraph, cluster: Iterable[Vertex]) -> float:
    """``Rad(S) = min_{v in S} Rad(v, G(S))`` — weighted radius of G(S)."""
    sub = graph.induced_subgraph(set(cluster))
    rad, _ = radius_center(sub)
    return rad

def cluster_center(graph: WeightedGraph, cluster: Iterable[Vertex]) -> Vertex:
    """A vertex of S achieving the radius of G(S)."""
    sub = graph.induced_subgraph(set(cluster))
    _, center = radius_center(sub)
    return center


def cover_radius(graph: WeightedGraph, cover: Iterable[Iterable[Vertex]]) -> float:
    """``Rad(S) = max_i Rad(S_i)`` over the clusters of a cover."""
    return max((cluster_radius(graph, c) for c in cover), default=0.0)


def cover_degree(cover: Iterable[Iterable[Vertex]], v: Vertex) -> int:
    """``deg_S(v)`` — how many clusters of the cover contain v."""
    return sum(1 for c in cover if v in set(c))


def max_cover_degree(cover: Iterable[Iterable[Vertex]]) -> int:
    """``Delta(S) = max_v deg_S(v)``."""
    counts: dict[Vertex, int] = {}
    for c in cover:
        # Dedup via a membership set but *iterate the cluster itself*, so
        # the counts dict fills in input order, not hash order.
        seen: set[Vertex] = set()
        for v in c:
            if v not in seen:
                seen.add(v)
                counts[v] = counts.get(v, 0) + 1
    return max(counts.values(), default=0)


def is_cover(graph: WeightedGraph, cover: Iterable[Iterable[Vertex]]) -> bool:
    """True iff the clusters' union is the whole vertex set of ``graph``."""
    union: set[Vertex] = set()
    for c in cover:
        union |= set(c)
    return union == set(graph.vertices)


def subsumes(
    coarse: Iterable[Iterable[Vertex]], fine: Iterable[Iterable[Vertex]]
) -> bool:
    """True iff every cluster of ``fine`` is contained in some cluster of ``coarse``."""
    coarse_sets = [set(c) for c in coarse]
    for s in fine:
        sset = set(s)
        if not any(sset <= t for t in coarse_sets):
            return False
    return True
