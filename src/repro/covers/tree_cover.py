"""Tree edge-covers — Definition 3.1 / Lemma 3.2 (clock synchronizer gamma*).

A *tree edge-cover* of a weighted graph ``G`` is a collection ``M`` of trees
(subgraphs of G) such that

1. every edge of G appears in at most O(log n) trees of M,
2. every tree has weighted depth at most O(d * log n), where
   ``d = max_(u,v) in E dist(u, v)``, and
3. for every edge (u, v) of G some tree of M contains *both* endpoints.

Construction (Lemma 3.2): take the initial cover
``S = { Path(u, v, G) : (u, v) in E }`` (each shortest path between two
neighbors is a cluster of radius <= d), coarsen it with Theorem 1.1 at
``k = log |S|``, and return a shortest-path spanning tree of each output
cluster's induced subgraph, rooted at the cluster's center.

Because the coarse cover subsumes S, for every edge (u, v) the whole
shortest path between u and v lies inside some output cluster, hence u and
v share that cluster's tree (property 3).  Property 1 follows from the
cover-degree bound; property 2 from the radius bound (2k-1) * d.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graphs.paths import dijkstra, radius_center, shortest_path, tree_distances
from ..graphs.weighted_graph import Vertex, WeightedGraph, edge_key
from .coarsening import coarsen_cover

__all__ = ["CoverTree", "TreeEdgeCover", "build_tree_edge_cover"]


@dataclass
class CoverTree:
    """One tree of a tree edge-cover.

    Attributes
    ----------
    tree:       the tree as a weighted graph (subgraph of G)
    root:       the cluster center the SPT is rooted at
    vertices:   the cluster's vertex set (== the tree's vertices)
    depth:      weighted depth of the tree below its root
    """

    tree: WeightedGraph
    root: Vertex
    vertices: frozenset
    depth: float


@dataclass
class TreeEdgeCover:
    """A complete tree edge-cover with its quality statistics."""

    trees: list[CoverTree]
    # For every edge of G: indices of trees containing that edge.
    edge_load: dict
    # For every edge (u, v) of G: index of one tree containing both u and v.
    home_tree: dict
    max_edge_load: int
    max_depth: float

    def trees_of_vertex(self, v: Vertex) -> list[int]:
        """Indices of the trees whose vertex set contains v."""
        return [i for i, t in enumerate(self.trees) if v in t.vertices]


def build_tree_edge_cover(graph: WeightedGraph, k: int | None = None) -> TreeEdgeCover:
    """Build a tree edge-cover of ``graph`` (Lemma 3.2).

    ``k`` defaults to ``ceil(log2 |E|)`` (the operating point of the lemma).
    """
    edges = graph.edge_list()
    if not edges:
        raise ValueError("tree edge-cover needs at least one edge")
    # Initial cover: the shortest path between the endpoints of every edge.
    # (The endpoints themselves are on the path, so this is a cover of every
    # non-isolated vertex; the paper's model has no isolated vertices.)
    initial = [frozenset(shortest_path(graph, u, v)) for u, v, _ in edges]
    if k is None:
        k = max(1, math.ceil(math.log2(max(2, len(initial)))))
    coarse = coarsen_cover(initial, k)

    trees: list[CoverTree] = []
    for cc in coarse:
        sub = graph.induced_subgraph(cc.vertices)
        _, center = radius_center(sub)
        _, parent = dijkstra(sub, center)
        tree = WeightedGraph(vertices=cc.vertices)
        for v, p in parent.items():
            if p is not None:
                tree.add_edge(p, v, sub.weight(p, v))
        depth = max(tree_distances(tree, center).values(), default=0.0)
        trees.append(CoverTree(tree=tree, root=center, vertices=cc.vertices, depth=depth))

    edge_load: dict = {edge_key(u, v): [] for u, v, _ in edges}
    for i, ct in enumerate(trees):
        for u, v, _ in ct.tree.edges():
            key = edge_key(u, v)
            if key in edge_load:
                edge_load[key].append(i)

    home_tree: dict = {}
    for u, v, _ in edges:
        key = edge_key(u, v)
        for i, ct in enumerate(trees):
            if u in ct.vertices and v in ct.vertices:
                home_tree[key] = i
                break
        else:  # pragma: no cover - contradicts Lemma 3.2
            raise AssertionError(f"no tree covers edge {key}")

    return TreeEdgeCover(
        trees=trees,
        edge_load=edge_load,
        home_tree=home_tree,
        max_edge_load=max((len(v) for v in edge_load.values()), default=0),
        max_depth=max((t.depth for t in trees), default=0.0),
    )
