"""Cross-run aggregation of trace streams.

A sweep (``repro.experiments.parallel``) runs hundreds of cells in pool
workers; shipping every cell's full event log back through a pickle
would swamp the IPC that PR 3 worked to make cheap.  Instead each worker
reduces its recorder to a :class:`TraceSummary` — plain sorted dicts and
scalars, a few hundred bytes — and the parent-side :class:`Profiler`
folds the summaries into per-key and aggregate phase breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceSummary", "Profiler"]


def _sorted_dict(d: dict) -> dict:
    return {k: d[k] for k in sorted(d)}


@dataclass
class TraceSummary:
    """Picklable reduction of one run's :class:`~repro.obs.recorder.TraceRecorder`.

    Only primitives and plain dicts — safe to pickle across process
    boundaries, embed in sweep rows, or serialize as JSON.
    """

    counts: dict = field(default_factory=dict)
    cost_by_span: dict = field(default_factory=dict)
    count_by_span: dict = field(default_factory=dict)
    time_by_span: dict = field(default_factory=dict)
    comm_cost: float = 0.0
    emitted: int = 0
    recorded: int = 0
    dropped: int = 0
    truncated: bool = False
    status: str | None = None
    meta: dict = field(default_factory=dict)

    @classmethod
    def from_recorder(cls, recorder: Any) -> TraceSummary:
        from .exporters import jsonable

        meta = {k: jsonable(v) for k, v in sorted(recorder.meta.items())
                if k not in ("nodes", "status")}
        return cls(
            counts=_sorted_dict(recorder.counts),
            cost_by_span=_sorted_dict(recorder.cost_by_span),
            count_by_span=_sorted_dict(recorder.count_by_span),
            time_by_span=_sorted_dict(recorder.time_by_span),
            comm_cost=recorder.total_cost,
            emitted=recorder.n_emitted,
            recorded=recorder.n_recorded,
            dropped=recorder.dropped,
            truncated=recorder.truncated,
            status=recorder.meta.get("status"),
            meta=meta,
        )

    def as_dict(self) -> dict:
        """Plain-dict form (stable key order) for JSON export / rows."""
        return {
            "counts": _sorted_dict(self.counts),
            "cost_by_span": _sorted_dict(self.cost_by_span),
            "count_by_span": _sorted_dict(self.count_by_span),
            "time_by_span": _sorted_dict(self.time_by_span),
            "comm_cost": self.comm_cost,
            "emitted": self.emitted,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "truncated": self.truncated,
            "status": self.status,
            "meta": _sorted_dict(self.meta),
        }

    @classmethod
    def from_dict(cls, d: dict) -> TraceSummary:
        return cls(**{k: d.get(k, v.default_factory() if callable(
            getattr(v, "default_factory", None)) else v.default)
            for k, v in cls.__dataclass_fields__.items()})


class Profiler:
    """Aggregates :class:`TraceSummary` objects across a sweep.

    Feed it with :meth:`add` (explicit key), :meth:`add_recorder`, or
    :meth:`from_rows` (sweep rows carrying a ``"trace"`` dict as produced
    by ``repro.experiments.parallel`` with ``trace=True``); then
    :meth:`aggregate` returns totals and :meth:`report` renders a text
    table of per-span cost/time shares.
    """

    def __init__(self) -> None:
        self.summaries: list[tuple[str, TraceSummary]] = []

    def __len__(self) -> int:
        return len(self.summaries)

    def add(self, key: str, summary: TraceSummary) -> None:
        self.summaries.append((key, summary))

    def add_recorder(self, key: str, recorder: Any) -> None:
        self.add(key, TraceSummary.from_recorder(recorder))

    def from_rows(self, rows: list, key_fields: tuple = ("protocol", "drop",
                                                         "reliable")) -> int:
        """Ingest sweep rows that carry a ``"trace"`` summary dict.

        Returns the number of rows ingested (rows without a trace are
        skipped, so it is safe to feed a mixed sweep).
        """
        n = 0
        for row in rows:
            trace = row.get("trace")
            if not trace:
                continue
            key = "/".join(str(row.get(f, "?")) for f in key_fields)
            self.add(key, TraceSummary.from_dict(trace))
            n += 1
        return n

    def aggregate(self) -> dict:
        """Fold all summaries: total cost/time/event counts per span."""
        cost: dict[str, float] = {}
        count: dict[str, int] = {}
        time: dict[str, float] = {}
        kinds: dict[str, int] = {}
        total = 0.0
        emitted = 0
        truncated = 0
        for _, s in self.summaries:
            total += s.comm_cost
            emitted += s.emitted
            truncated += 1 if s.truncated else 0
            for k, v in s.cost_by_span.items():
                cost[k] = cost.get(k, 0.0) + v
            for k, v in s.count_by_span.items():
                count[k] = count.get(k, 0) + v
            for k, v in s.time_by_span.items():
                time[k] = time.get(k, 0.0) + v
            for k, v in s.counts.items():
                kinds[k] = kinds.get(k, 0) + v
        return {
            "runs": len(self.summaries),
            "comm_cost": total,
            "events": emitted,
            "truncated_runs": truncated,
            "cost_by_span": _sorted_dict(cost),
            "count_by_span": _sorted_dict(count),
            "time_by_span": _sorted_dict(time),
            "counts": _sorted_dict(kinds),
        }

    def report(self, top: int = 20) -> str:
        """Human-readable per-span cost/time table across all runs."""
        agg = self.aggregate()
        total = agg["comm_cost"] or 1.0
        lines = [
            f"trace profile: {agg['runs']} run(s), "
            f"{agg['events']} events, comm_cost={agg['comm_cost']:g}"
        ]
        if agg["truncated_runs"]:
            lines.append(f"  ({agg['truncated_runs']} run(s) ring-truncated; "
                         "aggregates remain exact)")
        lines.append(f"  {'span':<28} {'cost':>12} {'share':>7} "
                     f"{'sends':>8} {'time':>10}")
        spans = sorted(agg["cost_by_span"],
                       key=lambda k: (-agg["cost_by_span"][k], k))
        for k in spans[:top]:
            c = agg["cost_by_span"][k]
            lines.append(
                f"  {(k or '(root)'):<28} {c:>12g} {c / total:>6.1%} "
                f"{agg['count_by_span'].get(k, 0):>8} "
                f"{agg['time_by_span'].get(k, 0.0):>10g}"
            )
        if len(spans) > top:
            lines.append(f"  ... {len(spans) - top} more span(s)")
        return "\n".join(lines)
