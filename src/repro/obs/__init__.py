"""repro.obs — structured tracing and profiling for simulation runs.

The paper's analysis splits protocol behavior into weighted
communication cost and adversarial time; this subsystem makes that split
observable *inside* a run instead of only at its end:

* :class:`TraceRecorder` / :class:`NullRecorder` — structured event log
  (send/deliver/drop/timer/crash/recover/pulse/finish) with monotonic
  sequence numbers, ring-buffer bounding, and nested **spans** that
  attribute every message's cost to the innermost open protocol phase.
* Exporters — deterministic JSONL (:func:`to_jsonl`,
  :func:`validate_jsonl`), Chrome ``trace_event`` JSON for
  chrome://tracing / Perfetto (:func:`to_chrome_trace`), and a text
  space-time diagram (:func:`render_timeline`).
* :class:`Profiler` / :class:`TraceSummary` — picklable per-run
  reductions aggregated across sweep cells.
* :func:`tracing` — ambient session so CLIs can trace runs they don't
  construct (``PYTHONPATH=src python -m repro.experiments --trace ...``).

Attach a recorder with ``Network(..., recorder=TraceRecorder())`` or any
runner that forwards one (``run_chaos``, ``run_gamma_w``); the untraced
hot path costs one ``is None`` check per event (<2%, see
``docs/OBSERVABILITY.md``).
"""

from .exporters import (
    LoadedTrace,
    jsonable,
    load_jsonl,
    read_jsonl,
    render_timeline,
    to_chrome_trace,
    to_jsonl,
    validate_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .profiler import Profiler, TraceSummary
from .recorder import EVENT_KINDS, NullRecorder, TraceEvent, TraceRecorder
from .runtime import TraceSession, current_session, default_recorder, tracing


def __getattr__(name: str):
    # The serve layer's counter block is part of the observability
    # surface (`from repro.obs import ServeStats`), but resolved lazily:
    # importing repro.obs must not pull the whole service stack in.
    if name == "ServeStats":
        from ..serve.stats import ServeStats

        return ServeStats
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ServeStats",
    "EVENT_KINDS",
    "TraceEvent",
    "TraceRecorder",
    "NullRecorder",
    "jsonable",
    "to_jsonl",
    "write_jsonl",
    "validate_jsonl",
    "LoadedTrace",
    "load_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_timeline",
    "TraceSummary",
    "Profiler",
    "TraceSession",
    "tracing",
    "current_session",
    "default_recorder",
]
