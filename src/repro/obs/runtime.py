"""Ambient trace sessions.

CLI flags (``--trace`` on ``repro.experiments``) need to turn on tracing
for runs they do not construct directly.  A :class:`TraceSession` makes
that ambient: inside ``with tracing(...):``, every
:class:`~repro.sim.network.Network` built without an explicit
``recorder=`` asks :func:`default_recorder` and gets a fresh
:class:`~repro.obs.recorder.TraceRecorder` registered with the session;
afterwards ``session.profiler()`` aggregates them all.  Outside a
session :func:`default_recorder` returns ``None`` and the simulator hot
path stays recorder-free.

Sessions are process-local (a plain module global, not inherited by pool
workers) — sweeps that fan out trace via the explicit per-cell flag in
``repro.experiments.parallel`` instead.
"""

from __future__ import annotations

from contextlib import contextmanager

from .profiler import Profiler
from .recorder import TraceRecorder

__all__ = ["TraceSession", "tracing", "current_session", "default_recorder"]

_session: TraceSession | None = None


class TraceSession:
    """Collects the recorders of every network built while active."""

    def __init__(self, limit: int | None = None) -> None:
        self.limit = limit
        self.recorders: list[tuple[str, TraceRecorder]] = []

    def make_recorder(self, label: str | None = None) -> TraceRecorder:
        rec = TraceRecorder(limit=self.limit)
        self.recorders.append((label or f"run-{len(self.recorders)}", rec))
        return rec

    def profiler(self) -> Profiler:
        """A :class:`~repro.obs.profiler.Profiler` over all recorders so far."""
        prof = Profiler()
        for label, rec in self.recorders:
            prof.add_recorder(label, rec)
        return prof


def current_session() -> TraceSession | None:
    """The active session, or ``None``."""
    return _session


def default_recorder() -> TraceRecorder | None:
    """A fresh session-registered recorder, or ``None`` when no session
    is active.  Called by ``Network.__init__`` when no explicit recorder
    was passed."""
    if _session is None:
        return None
    return _session.make_recorder()


@contextmanager
def tracing(limit: int | None = None, label: str | None = None):
    """Activate an ambient :class:`TraceSession` for the ``with`` body.

    ``limit`` is forwarded to every recorder the session creates
    (``limit=0`` keeps only aggregates — the cheap profiling mode).
    Sessions nest; the previous one is restored on exit.
    """
    global _session
    prev = _session
    session = TraceSession(limit=limit)
    _session = session
    try:
        yield session
    finally:
        _session = prev


def _reset_for_tests() -> None:
    """Drop any active session (test isolation hook)."""
    global _session
    _session = None
