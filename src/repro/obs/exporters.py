"""Exporters for :class:`~repro.obs.recorder.TraceRecorder` streams.

Three output forms, all dependency-free:

* **JSONL** (:func:`to_jsonl` / :func:`write_jsonl`): one JSON object per
  line, a ``meta`` header first, keys sorted — byte-identical for
  identical runs, so determinism tests can compare raw bytes.
  :func:`validate_jsonl` checks a document against the schema without
  needing an external JSON-schema package, and :func:`load_jsonl` parses
  a document back into a recorder-shaped :class:`LoadedTrace` whose
  re-export is byte-identical to its input — the foundation of
  ``repro.replay`` (trace-driven replay and differential debugging).
* **Chrome trace_event** (:func:`to_chrome_trace` /
  :func:`write_chrome_trace`): loadable in ``chrome://tracing`` or
  `Perfetto <https://ui.perfetto.dev>`_.  Nodes become threads of a
  ``nodes`` process (spans render as nested slices, pulses/crashes as
  instants); each directed channel becomes a thread of a ``channels``
  process where a send→deliver pair renders as one slice whose duration
  is the in-flight latency; a counter track plots cumulative
  communication cost.
* **Timeline text** (:func:`render_timeline`): the causal space-time
  diagram previously hand-rolled in ``examples/message_timeline.py`` —
  one column per node, ``>``/``<`` send marks and ``*`` delivery marks.
"""

from __future__ import annotations

import json
import math
from typing import Any

__all__ = [
    "jsonable", "to_jsonl", "write_jsonl", "validate_jsonl",
    "LoadedTrace", "load_jsonl", "read_jsonl",
    "to_chrome_trace", "write_chrome_trace", "render_timeline",
]

_SCHEMA_VERSION = 1


def jsonable(value: Any) -> Any:
    """Coerce a value into something ``json.dumps`` accepts.

    Primitives pass through, tuples/lists/dicts recurse, anything else
    becomes its ``repr`` — node ids in this codebase are ints or strings,
    but protocols are free to use richer payload/detail objects.
    Non-finite floats become their ``repr`` strings (``"inf"``/``"nan"``):
    strict JSON has no literal for them, and the big bench tier's
    eccentricity aggregates are legitimately infinite on split graphs.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return repr(value)


def _meta_line(recorder: Any) -> dict:
    meta = {
        "kind": "meta",
        "version": _SCHEMA_VERSION,
        "counts": {k: recorder.counts[k] for k in sorted(recorder.counts)},
        "cost_by_span": {k: recorder.cost_by_span[k]
                         for k in sorted(recorder.cost_by_span)},
        "count_by_span": {k: recorder.count_by_span[k]
                          for k in sorted(recorder.count_by_span)},
        "time_by_span": {k: recorder.time_by_span[k]
                         for k in sorted(recorder.time_by_span)},
        "comm_cost": recorder.total_cost,
        "emitted": recorder.n_emitted,
        "recorded": recorder.n_recorded,
        "dropped": recorder.dropped,
        "truncated": recorder.truncated,
    }
    for key in sorted(recorder.meta):
        meta[key] = jsonable(recorder.meta[key])
    return meta


def to_jsonl(recorder: Any) -> str:
    """Serialize a recorder as JSON Lines (meta header + one event/line)."""
    lines = [json.dumps(_meta_line(recorder), sort_keys=True)]
    for ev in recorder.events:
        lines.append(json.dumps(jsonable(ev.as_dict()), sort_keys=True))
    return "\n".join(lines) + "\n"


def write_jsonl(recorder: Any, path: str) -> str:
    """Write :func:`to_jsonl` output to ``path``; returns the path."""
    with open(path, "w") as fh:
        fh.write(to_jsonl(recorder))
    return path


# Per-kind required event fields (beyond seq/t/kind) for validation.
_REQUIRED: dict[str, tuple[str, ...]] = {
    "send": ("node", "peer", "tag", "cost", "size", "span"),
    "deliver": ("node", "peer"),
    "drop": ("node", "peer", "detail"),
    "timer": ("node",),
    "crash": ("node",),
    "recover": ("node",),
    "pulse": ("node", "detail"),
    "finish": ("node",),
    "span_open": ("span",),
    "span_close": ("span",),
    "violation": ("detail",),
}


def validate_jsonl(text: str) -> list[str]:
    """Validate a JSONL trace document; returns a list of error strings
    (empty means valid).  Checks: meta header first with required keys,
    every subsequent line a known-kind event with its per-kind required
    fields, and strictly increasing ``seq``.
    """
    errors: list[str] = []
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        return ["empty document"]
    try:
        meta = json.loads(lines[0])
    except ValueError as exc:
        return [f"line 1: not JSON ({exc})"]
    if not isinstance(meta, dict) or meta.get("kind") != "meta":
        errors.append("line 1: first record must have kind == 'meta'")
        meta = {}
    for key in ("version", "counts", "cost_by_span", "comm_cost", "emitted",
                "truncated"):
        if meta and key not in meta:
            errors.append(f"line 1: meta missing key {key!r}")
    from .recorder import EVENT_KINDS

    prev_seq = -1
    for i, line in enumerate(lines[1:], start=2):
        try:
            ev = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {i}: not JSON ({exc})")
            continue
        if not isinstance(ev, dict):
            errors.append(f"line {i}: not an object")
            continue
        kind = ev.get("kind")
        if kind not in EVENT_KINDS:
            errors.append(f"line {i}: unknown kind {kind!r}")
            continue
        for key in ("seq", "t"):
            if key not in ev:
                errors.append(f"line {i}: missing {key!r}")
        seq = ev.get("seq")
        if isinstance(seq, int):
            if seq <= prev_seq:
                errors.append(f"line {i}: seq {seq} not increasing")
            prev_seq = seq
        for key in _REQUIRED[kind]:
            if key not in ev:
                errors.append(f"line {i}: {kind} missing {key!r}")
    return errors


# --------------------------------------------------------------------- #
# JSONL loader (the replay side of the export)
# --------------------------------------------------------------------- #

# Keys of the meta header that mirror recorder *aggregates*; every other
# header key round-trips into LoadedTrace.meta.
_META_STRUCTURAL = frozenset({
    "kind", "version", "counts", "cost_by_span", "count_by_span",
    "time_by_span", "comm_cost", "emitted", "recorded", "dropped",
    "truncated",
})


class LoadedTrace:
    """A parsed JSONL trace, duck-compatible with a finished recorder.

    Exposes the read-side surface of
    :class:`~repro.obs.recorder.TraceRecorder` — ``events`` (real
    :class:`~repro.obs.recorder.TraceEvent` objects), ``meta``, ``counts``,
    the per-span aggregates, ``total_cost``, ``n_emitted``/``n_recorded``/
    ``dropped``/``truncated`` — so every exporter in this module, plus
    :meth:`TraceSummary.from_recorder`, accepts one unchanged.  The
    round-trip contract (pinned by tests):
    ``to_jsonl(load_jsonl(text)) == text`` for any document produced by
    :func:`to_jsonl`, including aggregate-only (``limit=0``) and
    ring-truncated traces.
    """

    enabled = True

    def __init__(self, meta_line: dict, events: list) -> None:
        self.version = meta_line.get("version")
        self.counts = dict(meta_line.get("counts", {}))
        self.cost_by_span = dict(meta_line.get("cost_by_span", {}))
        self.count_by_span = dict(meta_line.get("count_by_span", {}))
        self.time_by_span = dict(meta_line.get("time_by_span", {}))
        self.total_cost = meta_line.get("comm_cost", 0.0)
        self.n_emitted = meta_line.get("emitted", 0)
        self.n_recorded = meta_line.get("recorded", len(events))
        self.dropped = meta_line.get("dropped", 0)
        self.truncated = meta_line.get("truncated", False)
        self.meta = {k: v for k, v in meta_line.items()
                     if k not in _META_STRUCTURAL}
        self.events = events
        #: The raw document this trace was parsed from (for byte-level
        #: comparisons without a re-export).
        self.source: str | None = None

    def summary(self):
        """This trace's picklable :class:`~repro.obs.profiler.TraceSummary`."""
        from .profiler import TraceSummary

        return TraceSummary.from_recorder(self)


def load_jsonl(text: str) -> LoadedTrace:
    """Parse a :func:`to_jsonl` document back into a :class:`LoadedTrace`.

    The document is schema-checked first (:func:`validate_jsonl`); any
    error raises ``ValueError`` — a trace that cannot round-trip must not
    silently replay as a weaker regression test.
    """
    from .recorder import TraceEvent

    errors = validate_jsonl(text)
    if errors:
        shown = "; ".join(errors[:5])
        more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
        raise ValueError(f"invalid JSONL trace: {shown}{more}")
    lines = [ln for ln in text.splitlines() if ln.strip()]
    meta_line = json.loads(lines[0])
    events = []
    for line in lines[1:]:
        d = json.loads(line)
        events.append(TraceEvent(
            d["seq"], d["t"], d["kind"],
            node=d.get("node"), peer=d.get("peer"), tag=d.get("tag"),
            cost=d.get("cost"), size=d.get("size"), span=d.get("span"),
            ref=d.get("ref"), detail=d.get("detail"),
        ))
    trace = LoadedTrace(meta_line, events)
    trace.source = text
    return trace


def read_jsonl(path: str) -> LoadedTrace:
    """:func:`load_jsonl` over a file's contents."""
    with open(path) as fh:
        return load_jsonl(fh.read())


# --------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------- #

_US = 1000.0  # sim time unit -> trace microseconds (keeps slices visible)


def to_chrome_trace(recorder: Any, name: str = "repro") -> dict:
    """Build a Chrome ``trace_event`` JSON object for a recorder.

    Process 1 (``nodes``) has one thread per node: spans become nested
    ``X`` complete slices, pulses/timers/crashes/recoveries/finishes
    become ``i`` instants.  Process 2 (``channels``) has one thread per
    directed edge that carried traffic: each send→deliver pair becomes an
    ``X`` slice spanning the in-flight window (drops render as instants).
    A ``C`` counter series plots cumulative communication cost.
    """
    nodes = recorder.meta.get("nodes") or []
    tid_of: dict[str, int] = {}
    events: list[dict] = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": f"{name}: nodes"}},
        {"ph": "M", "pid": 2, "tid": 0, "name": "process_name",
         "args": {"name": f"{name}: channels"}},
    ]

    def node_tid(node: Any) -> int:
        key = f"n:{node!r}"
        tid = tid_of.get(key)
        if tid is None:
            tid = len(tid_of) + 1
            tid_of[key] = tid
            events.append({"ph": "M", "pid": 1, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": f"node {node!r}"}})
        return tid

    chan_tid_of: dict[str, int] = {}

    def chan_tid(frm: Any, to: Any) -> int:
        key = f"{frm!r}->{to!r}"
        tid = chan_tid_of.get(key)
        if tid is None:
            tid = len(chan_tid_of) + 1
            chan_tid_of[key] = tid
            events.append({"ph": "M", "pid": 2, "tid": tid,
                           "name": "thread_name", "args": {"name": key}})
        return tid

    for node in nodes:
        node_tid(node)

    # Replay span open/close into X slices and pair sends with their fates.
    open_spans: dict[tuple, list[dict]] = {}
    sends: dict[int, Any] = {}
    end_time = recorder.meta.get("end_time", 0.0)
    cum_cost = 0.0
    for ev in recorder.events:
        ts = ev.t * _US
        if ev.kind == "span_open":
            rec = {"ph": "X", "pid": 1,
                   "tid": node_tid(ev.node) if ev.node is not None else 0,
                   "name": ev.span.rsplit("/", 1)[-1] if ev.span else "span",
                   "cat": "span", "ts": ts, "dur": 0.0,
                   "args": {"path": ev.span, "detail": jsonable(ev.detail)}}
            open_spans.setdefault((ev.node, ev.span), []).append(rec)
            events.append(rec)
        elif ev.kind == "span_close":
            stack = open_spans.get((ev.node, ev.span))
            if stack:
                rec = stack.pop()
                rec["dur"] = max(0.0, ts - rec["ts"])
        elif ev.kind == "send":
            cum_cost += ev.cost or 0.0
            sends[ev.seq] = ev
            events.append({"ph": "C", "pid": 2, "tid": 0, "name": "comm_cost",
                           "ts": ts, "args": {"cost": cum_cost}})
        elif ev.kind == "drop":
            # Terminal fates consume the send pairing; non-terminal ones
            # (corrupt, duplicate, reorder) still deliver later.
            if ev.detail in ("drop", "lost_in_crash") and ev.ref is not None:
                sends.pop(ev.ref, None)
            events.append({"ph": "i", "pid": 2,
                           "tid": chan_tid(ev.peer, ev.node),
                           "name": f"drop:{ev.detail}", "cat": "drop",
                           "ts": ts, "s": "t", "args": {"ref": ev.ref}})
        elif ev.kind == "deliver":
            send_ev = sends.pop(ev.ref, None) if ev.ref is not None else None
            tid = chan_tid(ev.peer, ev.node)
            start = send_ev.t * _US if send_ev is not None else ts
            tag = send_ev.tag if send_ev is not None else "msg"
            cost = send_ev.cost if send_ev is not None else None
            events.append({"ph": "X", "pid": 2, "tid": tid, "name": tag,
                           "cat": "message", "ts": start,
                           "dur": max(0.0, ts - start),
                           "args": {"cost": cost, "ref": ev.ref,
                                    "span": getattr(send_ev, "span", None)}})
        elif ev.kind in ("pulse", "timer", "crash", "recover", "finish",
                         "violation"):
            if ev.kind == "pulse":
                label = f"pulse {ev.detail}"
            elif ev.kind == "violation":
                label = f"violation: {ev.detail}"
            else:
                label = ev.kind
            events.append({"ph": "i", "pid": 1, "tid": node_tid(ev.node),
                           "name": label,
                           "cat": ev.kind, "ts": ts, "s": "t", "args": {}})
    # Sends still in flight at the end of a retained (or truncated) log.
    for send_ev in sends.values():
        tid = chan_tid(send_ev.node, send_ev.peer)
        ts = send_ev.t * _US
        dur = max(0.0, end_time * _US - ts)
        events.append({"ph": "X", "pid": 2, "tid": tid,
                       "name": f"{send_ev.tag} (in flight)", "cat": "message",
                       "ts": ts, "dur": dur,
                       "args": {"cost": send_ev.cost, "ref": send_ev.seq}})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "name": name,
            "comm_cost": recorder.total_cost,
            "cost_by_span": {k: recorder.cost_by_span[k]
                             for k in sorted(recorder.cost_by_span)},
            "time_by_span": {k: recorder.time_by_span[k]
                             for k in sorted(recorder.time_by_span)},
            "status": jsonable(recorder.meta.get("status")),
            "truncated": recorder.truncated,
        },
    }


def write_chrome_trace(recorder: Any, path: str, name: str = "repro") -> str:
    """Write :func:`to_chrome_trace` JSON to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(recorder, name=name), fh, sort_keys=True)
    return path


# --------------------------------------------------------------------- #
# Timeline text renderer
# --------------------------------------------------------------------- #

def render_timeline(recorder: Any, time_step: float = 1.0,
                    max_rows: int = 40, col_width: int = 7) -> str:
    """Render a causal space-time diagram of the retained events.

    One column per node (ordered as in ``meta['nodes']``), one row per
    ``time_step`` of simulated time.  A cell shows ``>``/``<`` when the
    node sent toward a higher/lower column, ``*`` when a delivery
    arrived, ``x`` for a drop, ``P<k>`` for pulse *k*, ``!``/``+`` for
    crash/recover, ``#`` for finish and ``R!`` for a recorded race
    violation; multiple marks in one window concatenate.  Rows beyond
    ``max_rows`` collapse into an ellipsis.
    """
    nodes = list(recorder.meta.get("nodes") or [])
    if not nodes:
        seen = []
        for ev in recorder.events:
            for v in (ev.node, ev.peer):
                if v is not None and v not in seen:
                    seen.append(v)
        nodes = sorted(seen, key=repr)
    col = {v: i for i, v in enumerate(nodes)}
    rows: dict[int, dict[int, list[str]]] = {}

    def mark(t: float, node: Any, text: str) -> None:
        if node not in col:
            return
        r = int(t / time_step)
        rows.setdefault(r, {}).setdefault(col[node], []).append(text)

    for ev in recorder.events:
        if ev.kind == "send":
            arrow = ">" if col.get(ev.peer, -1) > col.get(ev.node, -1) else "<"
            mark(ev.t, ev.node, arrow)
        elif ev.kind == "deliver":
            mark(ev.t, ev.node, "*")
        elif ev.kind == "drop":
            mark(ev.t, ev.node, "x")
        elif ev.kind == "pulse":
            mark(ev.t, ev.node, f"P{ev.detail}")
        elif ev.kind == "crash":
            mark(ev.t, ev.node, "!")
        elif ev.kind == "recover":
            mark(ev.t, ev.node, "+")
        elif ev.kind == "finish":
            mark(ev.t, ev.node, "#")
        elif ev.kind == "violation":
            mark(ev.t, ev.node, "R!")

    header = "t".rjust(8) + " | " + "".join(
        repr(v).center(col_width) for v in nodes)
    sep = "-" * len(header)
    out = [header, sep]
    row_ids = sorted(rows)
    shown = row_ids if len(row_ids) <= max_rows else row_ids[:max_rows]
    for r in shown:
        cells = rows[r]
        line = f"{r * time_step:8.1f} | " + "".join(
            "".join(cells.get(c, [])).center(col_width)
            for c in range(len(nodes)))
        out.append(line.rstrip())
    if len(row_ids) > max_rows:
        out.append(f"... ({len(row_ids) - max_rows} more rows)")
    out.append(sep)
    counts = recorder.counts
    out.append(
        "events: "
        + ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
        + f" | comm_cost={recorder.total_cost:g}"
        + (" | TRUNCATED" if recorder.truncated else "")
    )
    return "\n".join(out)
