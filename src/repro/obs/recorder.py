"""Structured tracing of simulation runs (the core of ``repro.obs``).

The paper's whole contribution is *accounting* — splitting a protocol's
behavior into weighted communication cost and adversarial-delay time
(Section 1.3) — but end-of-run aggregates (:class:`~repro.sim.metrics.Metrics`)
cannot say *where* inside a run the cost and time went.  A
:class:`TraceRecorder` captures every simulator event as a structured
record with a monotonic sequence number:

======================  =====================================================
kind                    meaning
======================  =====================================================
``send``                a transmission was accepted (cost ``w(e) * size``)
``deliver``             a message arrived (``ref`` names its send record)
``drop``                the fault adversary interfered (``detail`` = fate),
                        or an in-flight message hit a crashed node
``timer``               a node timer fired (or was deferred during a crash)
``crash`` / ``recover``  a node went down / came back up
``pulse``               a synchronizer host executed a pulse
``finish``              a process declared local completion
``span_open``/``span_close``  a named phase opened / closed
======================  =====================================================

**Spans.**  Layered protocols (synchronizers, the controller, the reliable
transport) open named phases with :meth:`TraceRecorder.span`; every send
is attributed to the *innermost* open span of its sender (falling back to
the recorder-wide span stack, then to the root ``""``).  Span paths nest
(``"pulse/sync-ack"``), each send lands in exactly one path, and the
recorder accumulates ``cost_by_span`` incrementally — so the per-span
costs always sum to the run's total communication cost exactly, a far
richer decomposition than the flat ``Metrics.cost_by_tag``.

**Ring-buffer mode.**  ``TraceRecorder(limit=n)`` retains only the most
recent ``n`` records (``limit=0`` retains none — pure aggregation); the
``dropped`` counter and ``truncated`` flag say what was evicted.  The
incremental aggregates (``cost_by_span``, ``counts``, ``total_cost``)
cover *all* events regardless of eviction.

**Disabled-path cost.**  :class:`NullRecorder` is API-compatible and
inert; :class:`~repro.sim.network.Network` normalizes any recorder with
``enabled=False`` to "no recorder", so the untraced hot path pays exactly
one ``is None`` check per event (benchmarked < 2% in
``scripts/bench.py``, see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import Any, ClassVar

__all__ = ["EVENT_KINDS", "TraceEvent", "TraceRecorder", "NullRecorder"]

#: Every record kind a recorder may emit, in no particular order.
EVENT_KINDS = (
    "send", "deliver", "drop", "timer", "crash", "recover", "pulse",
    "finish", "span_open", "span_close", "violation",
)

_ROOT = ""  # the span path of unattributed events


class TraceEvent:
    """One structured trace record (see the module table for kinds).

    ``seq`` is a monotonic per-recorder sequence number assigned at record
    time; it survives ring-buffer eviction, so ``ref`` fields (a delivery
    naming its send) stay meaningful even in truncated logs.
    """

    __slots__ = ("seq", "t", "kind", "node", "peer", "tag", "cost", "size",
                 "span", "ref", "detail")

    def __init__(self, seq: int, t: float, kind: str, node: Any = None,
                 peer: Any = None, tag: str | None = None,
                 cost: float | None = None, size: float | None = None,
                 span: str | None = None, ref: int | None = None,
                 detail: Any = None) -> None:
        self.seq = seq
        self.t = t
        self.kind = kind
        self.node = node
        self.peer = peer
        self.tag = tag
        self.cost = cost
        self.size = size
        self.span = span
        self.ref = ref
        self.detail = detail

    def as_dict(self) -> dict:
        """The record as a plain dict, ``None`` fields omitted."""
        d = {"seq": self.seq, "t": self.t, "kind": self.kind}
        for key in ("node", "peer", "tag", "cost", "size", "span", "ref",
                    "detail"):
            value = getattr(self, key)
            if value is not None:
                d[key] = value
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"TraceEvent({fields})"


class _Span:
    """One open span on a stack."""

    __slots__ = ("name", "path", "node", "t_open", "detail")

    def __init__(self, name: str, path: str, node: Any, t_open: float,
                 detail: Any) -> None:
        self.name = name
        self.path = path
        self.node = node
        self.t_open = t_open
        self.detail = detail


class _SpanCtx:
    """Context manager returned by :meth:`TraceRecorder.span`."""

    __slots__ = ("_rec", "_name", "_node", "_detail")

    def __init__(self, rec: TraceRecorder, name: str, node: Any,
                 detail: Any) -> None:
        self._rec = rec
        self._name = name
        self._node = node
        self._detail = detail

    def __enter__(self) -> _SpanCtx:
        self._rec.open_span(self._name, node=self._node, detail=self._detail)
        return self

    def __exit__(self, *exc) -> bool:
        self._rec.close_span(node=self._node)
        return False


class TraceRecorder:
    """Structured event log for one simulation run.

    Parameters
    ----------
    limit:
        ``None`` retains every record; ``n > 0`` keeps a ring buffer of
        the most recent ``n`` (``dropped``/``truncated`` report eviction);
        ``0`` retains no records at all — the incremental aggregates
        (``cost_by_span`` etc.) are still maintained, which is what sweep
        profiling uses to bound memory.

    Attach to a run by passing ``recorder=`` to
    :class:`~repro.sim.network.Network` (or any runner that forwards it);
    the network binds ``now_fn`` to its clock and fills ``meta`` with the
    graph shape.  One recorder observes one run.
    """

    enabled = True

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0 or None: {limit!r}")
        self.limit = limit
        self._events: Any = deque(maxlen=limit) if limit else []
        self.dropped = 0
        self._seq = 0
        #: span path -> accumulated send cost / send count / open duration.
        self.cost_by_span: dict[str, float] = {}
        self.count_by_span: dict[str, int] = {}
        self.time_by_span: dict[str, float] = {}
        #: event kind -> count (covers evicted records too).
        self.counts: dict[str, int] = {}
        self.total_cost = 0.0
        self.meta: dict[str, Any] = {}
        #: Clock used when a span open/close has no explicit ``t``;
        #: bound to the network's event queue by :meth:`attach`.
        self.now_fn: Callable[[], float] = lambda: 0.0
        self._stacks: dict[Any, list[_Span]] = {}
        self._global_stack: list[_Span] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def events(self) -> list:
        """The retained records, oldest first."""
        return list(self._events)

    @property
    def n_emitted(self) -> int:
        """Total records emitted (including ring-evicted ones)."""
        return self._seq

    @property
    def n_recorded(self) -> int:
        """Records currently retained."""
        return len(self._events)

    @property
    def truncated(self) -> bool:
        """True when the ring buffer evicted at least one record."""
        return self.dropped > 0

    def summary(self):
        """This recorder's picklable :class:`~repro.obs.profiler.TraceSummary`."""
        from .profiler import TraceSummary

        return TraceSummary.from_recorder(self)

    # ------------------------------------------------------------------ #
    # Attachment (called by Network)
    # ------------------------------------------------------------------ #

    def attach(self, network: Any) -> None:
        """Bind this recorder to a network's clock and graph metadata."""
        graph = network.graph
        self.meta["n"] = graph.num_vertices
        self.meta["m"] = graph.num_edges
        self.meta["nodes"] = list(graph.vertices)
        queue = network.queue
        self.now_fn = lambda: queue.now

    def finalize(self, t: float, status: str | None = None,
                 events_fired: int | None = None) -> None:
        """End-of-run hook: close open spans, stamp status and the number
        of event-queue callbacks the run fired (the EventQueue's view of
        the same execution)."""
        for node in list(self._stacks):
            while self._stacks.get(node):
                self.close_span(node=node, t=t)
        while self._global_stack:
            self.close_span(t=t)
        if status is not None:
            self.meta["status"] = status
        if events_fired is not None:
            self.meta["events_fired"] = events_fired
        self.meta["end_time"] = t

    # ------------------------------------------------------------------ #
    # Span machinery
    # ------------------------------------------------------------------ #

    def span(self, name: str, node: Any = None, detail: Any = None) -> _SpanCtx:
        """Context manager opening (and closing) a named phase.

        With ``node`` given the span goes on that node's stack and only
        that node's sends are attributed to it; without, it goes on the
        recorder-wide stack and catches sends of every node that has no
        span of its own open (e.g. a harness-level ``with rec.span("run")``).
        """
        return _SpanCtx(self, name, node, detail)

    def open_span(self, name: str, node: Any = None, detail: Any = None,
                  t: float | None = None) -> str:
        """Open a phase; returns its full path (``parent/name``)."""
        if t is None:
            t = self.now_fn()
        if node is None:
            stack = self._global_stack
            parent = stack[-1].path if stack else _ROOT
        else:
            stack = self._stacks.setdefault(node, [])
            if stack:
                parent = stack[-1].path
            elif self._global_stack:
                parent = self._global_stack[-1].path
            else:
                parent = _ROOT
        path = name if parent == _ROOT else f"{parent}/{name}"
        stack.append(_Span(name, path, node, t, detail))
        self._record("span_open", t, node=node, span=path, detail=detail)
        return path

    def close_span(self, node: Any = None, t: float | None = None) -> None:
        """Close the innermost open span (of ``node``, or recorder-wide)."""
        if t is None:
            t = self.now_fn()
        stack = self._global_stack if node is None else self._stacks.get(node)
        if not stack:
            raise RuntimeError(f"close_span: no span open for node={node!r}")
        span = stack.pop()
        self.time_by_span[span.path] = (
            self.time_by_span.get(span.path, 0.0) + (t - span.t_open)
        )
        self._record("span_close", t, node=node, span=span.path,
                     detail=span.detail)

    def span_of(self, node: Any) -> str:
        """The span path a send by ``node`` would be attributed to now."""
        stack = self._stacks.get(node)
        if stack:
            return stack[-1].path
        if self._global_stack:
            return self._global_stack[-1].path
        return _ROOT

    # ------------------------------------------------------------------ #
    # Recording (called from the simulator's hot paths)
    # ------------------------------------------------------------------ #

    def _append(self, ev: TraceEvent) -> None:
        limit = self.limit
        if limit is None:
            self._events.append(ev)
        elif limit == 0:
            self.dropped += 1
        else:
            if len(self._events) == limit:
                self.dropped += 1
            self._events.append(ev)  # deque(maxlen) evicts the oldest

    def _record(self, kind: str, t: float, **fields) -> int:
        seq = self._seq
        self._seq = seq + 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self._append(TraceEvent(seq, t, kind, **fields))
        return seq

    def record_send(self, t: float, frm: Any, to: Any, tag: str,
                    cost: float, size: float = 1.0) -> int:
        """Record an accepted transmission; returns its seq (the msg id)."""
        span = self.span_of(frm)
        self.total_cost += cost
        self.cost_by_span[span] = self.cost_by_span.get(span, 0.0) + cost
        self.count_by_span[span] = self.count_by_span.get(span, 0) + 1
        return self._record("send", t, node=frm, peer=to, tag=tag,
                            cost=cost, size=size, span=span)

    def record_deliver(self, t: float, frm: Any, to: Any,
                       ref: int | None = None) -> int:
        return self._record("deliver", t, node=to, peer=frm, ref=ref)

    def record_drop(self, t: float, frm: Any, to: Any, fate: str,
                    ref: int | None = None) -> int:
        return self._record("drop", t, node=to, peer=frm, ref=ref,
                            detail=fate)

    def record_timer(self, t: float, node: Any, deferred: bool = False) -> int:
        return self._record("timer", t, node=node,
                            detail="deferred" if deferred else None)

    def record_crash(self, t: float, node: Any) -> int:
        return self._record("crash", t, node=node)

    def record_recover(self, t: float, node: Any) -> int:
        return self._record("recover", t, node=node)

    def record_pulse(self, t: float, node: Any, pulse: int) -> int:
        """Record a synchronizer pulse and roll the node's ``pulse`` span.

        The span covers the full inter-pulse window — from this pulse's
        execution until the next one (or run end) — so sends issued while
        the node waits for safety (acks, synchronizer control traffic)
        nest under ``pulse/...``, and ``time_by_span["pulse"]`` totals the
        synchronization wait time across nodes.
        """
        stack = self._stacks.setdefault(node, [])
        if stack and stack[-1].name == "pulse":
            self.close_span(node=node, t=t)
        seq = self._record("pulse", t, node=node, detail=pulse)
        self.open_span("pulse", node=node, detail=pulse, t=t)
        return seq

    def record_finish(self, t: float, node: Any) -> int:
        return self._record("finish", t, node=node)

    def record_violation(self, t: float, node: Any, kind: str,
                         message: str) -> int:
        """Record a shared-state race detected by ``repro.analysis.race``
        (``detail`` carries ``(kind, message)``; emitted only in the
        detector's non-raising ``"record"`` mode)."""
        return self._record("violation", t, node=node,
                            detail=f"{kind}: {message}")


class _NullSpanCtx:
    """Reusable, reentrant no-op span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpanCtx:
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpanCtx()


class NullRecorder:
    """API-compatible recorder that records nothing.

    ``enabled`` is False, so :class:`~repro.sim.network.Network`
    normalizes it away at construction and the untraced hot path pays
    only an ``is None`` check per event.  Useful for call sites that want
    a recorder-shaped object unconditionally.
    """

    enabled = False
    limit = 0
    dropped = 0
    total_cost = 0.0

    def __init__(self, limit: int | None = None) -> None:
        self.cost_by_span: dict = {}
        self.count_by_span: dict = {}
        self.time_by_span: dict = {}
        self.counts: dict = {}
        self.meta: dict = {}
        self.now_fn: Callable[[], float] = lambda: 0.0

    # Shared across instances by design: a NullRecorder never appends.
    events: ClassVar[list] = []
    n_emitted = 0
    n_recorded = 0
    truncated = False

    def attach(self, network: Any) -> None:
        pass

    def finalize(self, t: float, status: str | None = None,
                 events_fired: int | None = None) -> None:
        pass

    def span(self, name: str, node: Any = None, detail: Any = None):
        return _NULL_SPAN

    def open_span(self, name: str, node: Any = None, detail: Any = None,
                  t: float | None = None) -> str:
        return _ROOT

    def close_span(self, node: Any = None, t: float | None = None) -> None:
        pass

    def span_of(self, node: Any) -> str:
        return _ROOT

    def _no_op(self, *args, **kwargs) -> int:
        return -1

    record_send = _no_op
    record_deliver = _no_op
    record_drop = _no_op
    record_timer = _no_op
    record_crash = _no_op
    record_recover = _no_op
    record_pulse = _no_op
    record_finish = _no_op
    record_violation = _no_op

    def summary(self):
        from .profiler import TraceSummary

        return TraceSummary.from_recorder(self)
