"""Flooding broadcast — algorithm ``CON_flood`` (paper Section 6.1).

Each vertex forwards the first copy of the broadcast message to all its
neighbors and ignores later copies.  Fact 6.1: communication ``O(script-E)``
(at most two messages per edge, each costing w(e)) and time ``O(script-D)``
(the message follows shortest paths under any delay assignment bounded by
the weights).

As a by-product every node learns a parent (the neighbor the first copy
came from), so flooding also constructs a spanning tree and solves the
connectivity / spanning-tree problem of Section 7 in ``O(script-E)``.
"""

from __future__ import annotations

from typing import Any

from ..faults.plan import FaultPlan
from ..faults.transport import reliable_factory
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network, RunResult
from ..sim.process import Process

__all__ = ["FloodProcess", "run_flood"]


class FloodProcess(Process):
    """One node of CON_flood.

    The initiator starts the flood with ``payload``; every node finishes
    with ``(payload, parent)`` where parent is None at the initiator.
    """

    def __init__(self, is_initiator: bool, payload: Any = None) -> None:
        self.is_initiator = is_initiator
        self.payload = payload
        self.parent: Vertex | None = None
        self._got_it = False

    def on_start(self) -> None:
        if self.is_initiator:
            self._got_it = True
            self.finish((self.payload, None))
            for v in self.neighbors():
                self.send(v, self.payload, tag="flood")

    def on_message(self, frm: Vertex, payload: Any) -> None:
        if self._got_it:
            return
        self._got_it = True
        self.parent = frm
        self.payload = payload
        self.finish((payload, frm))
        for v in self.neighbors():
            if v != frm:
                self.send(v, payload, tag="flood")


def run_flood(
    graph: WeightedGraph,
    initiator: Vertex,
    payload: Any = "wake-up",
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
    faults: FaultPlan | None = None,
    reliable: bool = False,
    transport: dict | None = None,
) -> tuple[RunResult, WeightedGraph]:
    """Flood ``payload`` from ``initiator``; return (run result, flood tree).

    The flood tree is the spanning tree formed by each node's parent
    pointer (rooted at the initiator).  Under a ``faults`` adversary,
    ``reliable=True`` wraps every node in the retransmitting transport
    (``transport`` passes options through to ``ReliableProcess``).
    """
    factory = lambda v: FloodProcess(v == initiator, payload)
    if reliable:
        factory = reliable_factory(factory, **(transport or {}))
    net = Network(graph, factory, delay=delay, seed=seed, faults=faults)
    result = net.run()
    tree = WeightedGraph(vertices=graph.vertices)
    for v, proc in result.processes.items():
        parent = proc.parent
        if parent is not None:
            tree.add_edge(parent, v, graph.weight(parent, v))
    return result, tree
