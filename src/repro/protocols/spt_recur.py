"""Algorithm SPT_recur (Section 9.2): strips over the unit-expanded graph.

A weighted SPT problem reduces to BFS on the *unit expansion* ``G_b``:
every edge of integer weight ``w`` becomes a path of ``w`` unit edges
through ``w - 1`` dummy vertices.  The BFS tree of ``G_b`` restricted to
real vertices is the SPT of ``G`` (Section 9.2's reduction).

BFS itself follows the DIJKSTRA / strip method of [Awe89] (Figure 9): the
``script-D`` BFS layers are sliced into strips of ``d`` layers each,
processed sequentially:

* between strips, a *global* synchronization runs over the already-built
  (static) BFS tree: the source broadcasts GO(k) down the tree and
  collects DONE(k) reports back;
* within a strip, exploration is asynchronous: a vertex whose distance
  estimate improves re-explores its neighbors (bounded Bellman-Ford,
  capped at the strip's far boundary), and Dijkstra-Scholten [DS80]
  ack-counting detects the strip's termination — every EXPLORE and
  child-pointer update is acknowledged, and a vertex holds back its
  *engager's* ack until its own activity has quiesced.  At each strip
  boundary every distance up to the boundary is final, so errors never
  propagate past one strip.

The strip length ``d`` is the communication/time trade-off knob: per strip
the global synchronization costs O(n) messages while intra-strip
corrections are confined to d layers, giving roughly
``O(E + (D/d) n)`` communication and ``O(D^2 / d + D)`` time (the paper's
recursive construction sharpens this to ``O(E^{1+eps})`` / ``O(D^{1+eps})``;
see DESIGN.md for the substitution note).
"""

from __future__ import annotations

import math
from typing import Any

from ..graphs.paths import diameter
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network, RunResult
from ..sim.process import Process

__all__ = ["unit_expansion", "StripBfsProcess", "run_spt_recur"]


def unit_expansion(graph: WeightedGraph) -> tuple[WeightedGraph, dict]:
    """Expand integer-weighted ``graph`` into a unit-weight graph.

    Returns ``(G_b, info)`` where dummy vertices are
    ``("dummy", u, v, index)`` for the canonical edge (u, v), and ``info``
    maps each dummy to its host edge.
    """
    g = WeightedGraph(vertices=graph.vertices)
    info: dict = {}
    for u, v, w in graph.edges():
        if w != int(w):
            raise ValueError("unit expansion needs integer weights")
        w = int(w)
        if w == 1:
            g.add_edge(u, v, 1.0)
            continue
        a, b = (u, v) if repr(u) <= repr(v) else (v, u)
        chain = [a] + [("dummy", a, b, i) for i in range(w - 1)] + [b]
        for x, y in zip(chain, chain[1:]):  # noqa: B905  # pairwise walk wants the short zip
            g.add_edge(x, y, 1.0)
        for i in range(w - 1):
            info[("dummy", a, b, i)] = (a, b)
    return g, info


# Message kinds.
_EXPLORE = "explore"      # (kind, dist): adopt dist if better
_ACK = "ack"              # (kind, adopted_count)
_CHILD_ADD = "child_add"  # (kind, dist_of_child): (re)register at parent
_CHILD_DEL = "child_del"  # (kind,)
_GO = "go"                # (kind, strip_index)
_DONE = "done"            # (kind, strip_index, newly_adopted_in_subtree)
_FINISH = "finish"        # (kind,)


class StripBfsProcess(Process):
    """One (real or dummy) vertex of the strip BFS."""

    def __init__(self, is_source: bool, stride: int, n_total: int) -> None:
        self.is_source = is_source
        self.stride = stride
        self.n_total = n_total
        self.dist: float = 0.0 if is_source else math.inf
        self.parent: Vertex | None = None
        self.children: dict[Vertex, float] = {}  # child -> its latest dist
        # Dijkstra-Scholten engagement state.
        self.deficit = 0
        self.engager: Vertex | None = None
        self.adopted_acc = 0   # adoption counts accumulated toward our ack
        # Strip control plane (valid once GO reached us / at the source).
        self.control_strip = -1
        self.explore_strip = 0 if is_source else -1
        self._done_waiting = 0
        self._done_adopted = 0
        self._reported = True
        self.total_discovered = 1  # source only

    # -------------------------------------------------------------- #
    # Strip control plane
    # -------------------------------------------------------------- #

    def on_start(self) -> None:
        if self.is_source:
            self._begin_strip(0)

    def _strip_hi(self) -> int:
        return (self.explore_strip + 1) * self.stride

    def _begin_strip(self, strip: int) -> None:
        """Runs at every static-tree vertex when GO(strip) reaches it."""
        self.control_strip = strip
        self._reported = False
        self._done_adopted = 0
        boundary = strip * self.stride
        static_children = [c for c, d in self.children.items() if d <= boundary]
        self._done_waiting = len(static_children)
        for c in static_children:
            self.send(c, (_GO, strip), tag="bfs-sync")
        if self.dist == boundary:
            # This vertex is a strip source: explore the next layers.
            self.explore_strip = strip
            self._explore_neighbors()
        self._maybe_done()

    def _maybe_done(self) -> None:
        if self._reported or self.control_strip < 0:
            return
        if self._done_waiting > 0 or self.deficit > 0:
            return
        self._reported = True
        adopted = self._done_adopted + self.adopted_acc
        self.adopted_acc = 0
        if self.is_source:
            self.total_discovered += adopted
            if self.total_discovered >= self.n_total:
                self._finish_all()
            else:
                self._begin_strip(self.control_strip + 1)
        else:
            self.send(self.parent, (_DONE, self.control_strip, adopted),
                      tag="bfs-sync")

    def _finish_all(self) -> None:
        for c in self.children:
            self.send(c, (_FINISH,), tag="bfs-sync")
        self.finish((self.dist, self.parent))

    # -------------------------------------------------------------- #
    # Exploration data plane (Dijkstra-Scholten accounted)
    # -------------------------------------------------------------- #

    def _explore_neighbors(self) -> None:
        if self.dist + 1 > self._strip_hi():
            return
        for v in self.neighbors():
            if v != self.parent:
                self.deficit += 1
                self.send(v, (_EXPLORE, self.dist + 1), tag="bfs-explore")

    def _ds_send(self, to: Vertex, payload: Any, tag: str) -> None:
        """Send an acknowledged bookkeeping message under DS accounting."""
        self.deficit += 1
        self.send(to, payload, tag=tag)

    def _ack(self, to: Vertex, adopted: int) -> None:
        self.send(to, (_ACK, adopted), tag="bfs-ack")

    def _quiesce_check(self) -> None:
        if self.deficit == 0:
            if self.engager is not None:
                engager, self.engager = self.engager, None
                self._ack(engager, self.adopted_acc)
                self.adopted_acc = 0
            self._maybe_done()

    # -------------------------------------------------------------- #

    def on_message(self, frm: Vertex, payload: Any) -> None:
        kind = payload[0]
        if kind == _EXPLORE:
            self._on_explore(frm, payload[1])
        elif kind == _ACK:
            self.deficit -= 1
            self.adopted_acc += payload[1]
            self._quiesce_check()
        elif kind == _CHILD_ADD:
            self.children[frm] = payload[1]
            self._ack(frm, 0)
        elif kind == _CHILD_DEL:
            self.children.pop(frm, None)
            self._ack(frm, 0)
        elif kind == _GO:
            self._begin_strip(payload[1])
        elif kind == _DONE:
            self._done_waiting -= 1
            self._done_adopted += payload[2]
            self._maybe_done()
        elif kind == _FINISH:
            self._finish_all()
        else:  # pragma: no cover
            raise AssertionError(f"unknown strip-BFS message {kind!r}")

    def _on_explore(self, frm: Vertex, dist: float) -> None:
        if dist >= self.dist:
            self._ack(frm, 0)
            return
        # Adopt the better distance (bounded Bellman-Ford within the strip).
        first_adoption = self.dist == math.inf
        old_parent = self.parent
        self.dist = dist
        self.parent = frm
        # Strip this distance belongs to: dist in (k*d, (k+1)*d] -> k.
        self.explore_strip = int(dist - 1) // self.stride if dist > 0 else 0
        adopted_count = 1 if first_adoption else 0

        # Refresh child pointers (DS-accounted so quiescence covers them).
        if old_parent is not None and old_parent != frm:
            self._ds_send(old_parent, (_CHILD_DEL,), tag="bfs-child")
        self._ds_send(frm, (_CHILD_ADD, dist), tag="bfs-child")
        # Re-explore with the improved distance.
        self._explore_neighbors()

        if self.engager is None:
            # Become engaged to this sender: hold its ack until quiescent.
            self.engager = frm
            self.adopted_acc += adopted_count
            self._quiesce_check()  # may ack immediately if nothing pending
        else:
            # Already engaged elsewhere; that engagement covers our new
            # activity, so this explore can be acked right away.
            self._ack(frm, adopted_count)


def run_spt_recur(
    graph: WeightedGraph,
    source: Vertex,
    *,
    stride: int | None = None,
    delay: DelayModel | None = None,
    seed: int = 0,
    max_events: int = 20_000_000,
    budget: float | None = None,
) -> tuple[RunResult, WeightedGraph | None]:
    """Algorithm SPT_recur: strip BFS on the unit expansion of ``graph``.

    Returns (run result on the expanded graph, the SPT of the original
    graph).  ``stride`` defaults to ``ceil(sqrt(script-D))`` — balancing
    the per-strip synchronization against intra-strip corrections.
    """
    expanded, dummy_info = unit_expansion(graph)
    if stride is None:
        stride = max(1, math.ceil(math.sqrt(diameter(graph))))
    n_total = expanded.num_vertices
    net = Network(
        expanded,
        lambda v: StripBfsProcess(v == source, stride, n_total),
        delay=delay,
        seed=seed,
        comm_budget=budget,
    )
    result = net.run(stop_when=lambda nw: nw.all_finished,
                     max_events=max_events)
    if not net.all_finished:
        if budget is not None:
            return result, None
        raise RuntimeError("SPT_recur did not terminate")

    # Project the BFS tree of the expansion back onto the real vertices:
    # walk each real vertex's parent chain through dummies to the first
    # real ancestor.
    tree = WeightedGraph(vertices=graph.vertices)
    parent_of = {v: p.parent for v, p in result.processes.items()}
    dist_of = {v: p.dist for v, p in result.processes.items()}
    for v in graph.vertices:
        if dist_of[v] == math.inf:
            raise RuntimeError(f"vertex {v!r} never discovered")
        if v == source:
            continue
        anc = parent_of[v]
        while anc in dummy_info:
            anc = parent_of[anc]
        if anc is None:
            raise RuntimeError(f"vertex {v!r} has no real ancestor")
        if not tree.has_edge(anc, v):
            tree.add_edge(anc, v, graph.weight(anc, v))
    return result, tree
