"""Dijkstra-Scholten termination detection for diffusing computations [DS80].

The paper leans on [DS80] twice: the controller (Section 5) runs in its
diffusing-computation model, and SPT_recur's strip processing (Section
9.2) detects per-strip quiescence with exactly this scheme.  This module
provides the general detector as a reusable protocol transformer.

Scheme: every protocol message is acknowledged.  A node *engages* with the
sender of the message that (re)activated it and holds that one ack back
until its own deficit (sent-but-unacked messages) returns to zero; all
other messages are acked immediately.  Engagements thus form a dynamic
tree rooted at the initiator, and the initiator's deficit reaching zero
certifies that the entire computation is quiescent — at which point the
detector announces termination to every participant.

In the weighted model the detector exactly doubles the communication cost
(one ack of cost w(e) per protocol message) and adds O(script-D) time for
the final announcement.
"""

from __future__ import annotations

from typing import Any

from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network, RunResult
from ..sim.process import Process

__all__ = ["DSHost", "run_with_termination_detection"]


class _InnerShim:
    """Routes the hosted protocol's sends through the DS accounting."""

    def __init__(self, host: DSHost) -> None:
        self._host = host
        self.node_id = host.node_id
        self.neighbors = host.ctx.neighbors
        self.weights = host.ctx.weights
        self.is_finished = False
        self.result: Any = None

    @property
    def now(self) -> float:
        return self._host.ctx.now

    def send(self, to: Vertex, payload: Any, size: float, tag: str | None) -> None:
        self._host.ds_send(to, payload, size, tag)

    def set_timer(self, delay, callback) -> None:
        self._host.ctx.set_timer(delay, callback)

    def finish(self, result: Any) -> None:
        if not self.is_finished:
            self.is_finished = True
            self.result = result


class DSHost(Process):
    """One node of the Dijkstra-Scholten-instrumented protocol.

    The hosted ``inner`` process must be a diffusing computation: only the
    initiator acts spontaneously; everyone else is triggered by messages.
    When global quiescence is certified at the initiator, every node's
    host finishes with ``("terminated", inner_result)``.
    """

    def __init__(self, inner: Process, is_initiator: bool) -> None:
        self.inner = inner
        self.is_initiator = is_initiator
        self.deficit = 0
        self.engager: Vertex | None = None
        self.terminated = False

    def on_start(self) -> None:
        self.inner.ctx = _InnerShim(self)
        self.inner.on_start()
        if self.is_initiator:
            self._check_quiescent()

    # ------------------------------------------------------------- #

    def ds_send(self, to: Vertex, payload: Any, size: float,
                tag: str | None) -> None:
        self.deficit += 1
        self.send(to, ("m", payload), size=size, tag=f"ds-proto.{tag or 'msg'}")

    def on_message(self, frm: Vertex, payload: Any) -> None:
        kind = payload[0]
        if kind == "m":
            was_engaged = self.engager is not None or self.is_initiator
            self.inner.on_message(frm, payload[1])
            if not was_engaged and self.deficit > 0:
                # This message (re)activated us: hold its ack.
                self.engager = frm
            else:
                self.send(frm, ("ack",), tag="ds-ack")
            self._check_quiescent()
        elif kind == "ack":
            self.deficit -= 1
            self._check_quiescent()
        elif kind == "terminated":
            self._announce(frm)
        else:  # pragma: no cover
            raise AssertionError(f"unknown DS message {kind!r}")

    def _check_quiescent(self) -> None:
        if self.deficit != 0:
            return
        if self.engager is not None:
            engager, self.engager = self.engager, None
            self.send(engager, ("ack",), tag="ds-ack")
        elif self.is_initiator and not self.terminated:
            # The whole diffusing computation is quiescent.
            self._announce(None)

    def _announce(self, frm: Vertex | None) -> None:
        if self.terminated:
            return
        self.terminated = True
        for v in self.neighbors():
            if v != frm:
                self.send(v, ("terminated",), tag="ds-announce")
        self.finish(("terminated", self.inner.ctx.result))


def run_with_termination_detection(
    graph: WeightedGraph,
    inner_factory,
    initiator: Vertex,
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
    max_events: int = 10_000_000,
) -> RunResult:
    """Run a diffusing computation under DS termination detection.

    Returns once every node learned the computation terminated; each
    node's result is ``("terminated", inner_result)``.
    """
    net = Network(
        graph,
        lambda v: DSHost(inner_factory(v), v == initiator),
        delay=delay,
        seed=seed,
    )
    result = net.run(stop_when=lambda n: n.all_finished,
                     max_events=max_events)
    if not net.all_finished:
        raise RuntimeError("termination was never detected")
    return result
