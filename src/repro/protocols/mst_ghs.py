"""Distributed MST: algorithm MST_ghs (Section 8.1) and MST_fast (Section 8.3).

``MST_ghs`` is the Gallager-Humblet-Spira algorithm [GHS83]: fragments of
the MST grow by repeatedly locating their minimum-weight outgoing edge
(MOE) and merging across it, with *levels* pacing the merges so that every
vertex changes fragment O(log n) times.  In the weighted cost model this
gives communication ``O(script-E + script-V log n)`` (Lemma 8.1): every
non-tree edge is probed O(1) times (Test/Reject) and every tree edge
carries O(log n) coordination messages.

``MST_fast`` is the paper's Section 8.3 modification: to avoid serially
scanning heavy edges, each fragment searches for its MOE below a *guessed*
weight threshold, doubling the guess whenever the search comes back empty,
and vertices probe all their below-threshold edges *in parallel*.  This
removes the ``script-E`` term from the time complexity at the price of a
``log V`` factor in communication (Corollary 8.3).

Both share one implementation with a ``parallel_scan`` switch; the merge
machinery (Connect levels, Initiate waves, Report convergecast, deferred
message queues) is the classical GHS protocol.  Edge weights need not be
distinct: comparisons use the lexicographic key ``(w(e), repr(u), repr(v))``
so the computed tree is always *an* MST (unique under the extended order).
"""

from __future__ import annotations

import math
from typing import Any

from ..faults.plan import FaultPlan
from ..faults.transport import reliable_factory
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network, RunResult
from ..sim.process import Process

__all__ = ["GhsProcess", "run_mst_ghs", "run_mst_fast"]

# Edge states.
_BASIC = "basic"
_BRANCH = "branch"
_REJECTED = "rejected"

_INF_KEY = (math.inf, "", "")


def _wkey(weight: float, a: Vertex, b: Vertex) -> tuple:
    """Totally ordered edge key: lexicographic (weight, endpoints)."""
    ra, rb = repr(a), repr(b)
    if ra > rb:
        ra, rb = rb, ra
    return (weight, ra, rb)


class GhsProcess(Process):
    """One node of GHS (serial scan) or MST_fast (threshold parallel scan)."""

    def __init__(self, parallel_scan: bool = False,
                 n_total: int | None = None) -> None:
        self.parallel_scan = parallel_scan
        # Full-information assumption (Section 1.4.1): n is common
        # knowledge, letting a fragment that spans all n vertices halt by
        # member count instead of probing its remaining heavy edges.
        self.n_total = n_total
        self._size_acc = 1
        # Core GHS state.
        self.state = "sleeping"            # sleeping | find | found
        self.level = 0
        self.fragment: tuple = ()          # fragment name (core edge key)
        self.edge_state: dict[Vertex, str] = {}
        self.in_branch: Vertex | None = None
        self.find_count = 0
        self.best_edge: Vertex | None = None
        self.best_key: tuple = _INF_KEY
        # Search state.
        self.test_edge: Vertex | None = None   # serial mode
        self.outstanding: set[Vertex] = set()      # parallel mode
        self.threshold: float = 1.0                # parallel mode guess
        self.local_candidate: tuple = _INF_KEY
        self.local_candidate_edge: Vertex | None = None
        self.halted = False
        self.leader: Vertex | None = None  # set when HALT propagates
        self._child_more = False  # a child subtree has unprobed heavy edges
        self._deferred: list[tuple[Vertex, Any]] = []

    # -------------------------------------------------------------- #
    # Helpers
    # -------------------------------------------------------------- #

    def _key(self, nbr: Vertex) -> tuple:
        return _wkey(self.edge_weight(nbr), self.node_id, nbr)

    def _basic_edges(self) -> list[Vertex]:
        return [v for v, s in self.edge_state.items() if s == _BASIC]

    def _branch_edges(self) -> list[Vertex]:
        return [v for v, s in self.edge_state.items() if s == _BRANCH]

    # -------------------------------------------------------------- #
    # Wakeup (every node wakes spontaneously at start; the paper's
    # wake-up *stage* is charged separately by the callers that use it)
    # -------------------------------------------------------------- #

    def on_start(self) -> None:
        self.edge_state = {v: _BASIC for v in self.neighbors()}
        self._wakeup()

    def _wakeup(self) -> None:
        if self.state != "sleeping":
            return
        m = min(self._basic_edges(), key=self._key)
        self.edge_state[m] = _BRANCH
        self.level = 0
        self.state = "found"
        self.find_count = 0
        self.send(m, ("connect", 0, self.threshold), tag="ghs-connect")

    # -------------------------------------------------------------- #
    # Message pump with deferral
    # -------------------------------------------------------------- #

    def on_message(self, frm: Vertex, payload: Any) -> None:
        if self.halted:
            return
        if not self._try(frm, payload):
            self._deferred.append((frm, payload))
        else:
            self._drain()

    def _drain(self) -> None:
        progressed = True
        while progressed and not self.halted:
            progressed = False
            for item in list(self._deferred):
                if item not in self._deferred:
                    continue
                frm, payload = item
                if self._try(frm, payload):
                    self._deferred.remove(item)
                    progressed = True

    def _try(self, frm: Vertex, payload: Any) -> bool:
        """Handle one message; return False to defer it."""
        kind = payload[0]
        if kind == "connect":
            return self._on_connect(frm, payload[1], payload[2])
        if kind == "initiate":
            self._on_initiate(frm, *payload[1:])
            return True
        if kind == "test":
            return self._on_test(frm, payload[1], payload[2])
        if kind == "accept":
            self._on_accept(frm)
            return True
        if kind == "reject":
            self._on_reject(frm)
            return True
        if kind == "report":
            return self._on_report(frm, payload[1], payload[2], payload[3])
        if kind == "change_root":
            self._change_root()
            return True
        if kind == "halt":
            self._on_halt(frm, payload[1])
            return True
        raise AssertionError(f"unknown GHS message {kind!r}")  # pragma: no cover

    # -------------------------------------------------------------- #
    # Connect / Initiate (fragment merging)
    # -------------------------------------------------------------- #

    def _on_connect(self, frm: Vertex, level: int, their_threshold: float) -> bool:
        if level < self.level:
            # Absorb the lower-level fragment immediately.
            self.edge_state[frm] = _BRANCH
            self.send(
                frm,
                ("initiate", self.level, self.fragment, self.state,
                 self.threshold),
                tag="ghs-initiate",
            )
            if self.state == "find":
                self.find_count += 1
            return True
        if self.edge_state[frm] == _BASIC:
            return False  # defer until our level rises or we connect on frm
        # Merge: both fragments chose this edge; new core = this edge.  The
        # merged threshold MUST be computed symmetrically from both sides'
        # values (carried in the Connect): if the two halves searched under
        # different thresholds, each could report a different "minimum"
        # outgoing edge and two fragments could deadlock on crossed
        # Connects (regression: seed 57 in the tests).
        new_threshold = max(self.threshold, their_threshold,
                            self.edge_weight(frm))
        self.send(
            frm,
            ("initiate", self.level + 1, self._key(frm), "find", new_threshold),
            tag="ghs-initiate",
        )
        return True

    def _on_initiate(self, frm: Vertex, level: int, fragment: tuple,
                     state: str, threshold: float) -> None:
        self.level = level
        self.fragment = fragment
        self.state = state
        self.threshold = threshold
        self.in_branch = frm
        self.best_edge = None
        self.best_key = _INF_KEY
        self.find_count = 0
        self._child_more = False
        self._size_acc = 1
        for v in self._branch_edges():
            if v != frm:
                self.send(
                    v, ("initiate", level, fragment, state, threshold),
                    tag="ghs-initiate",
                )
                if state == "find":
                    self.find_count += 1
        if state == "find":
            self._start_search()

    # -------------------------------------------------------------- #
    # MOE search
    # -------------------------------------------------------------- #

    def _start_search(self) -> None:
        self.local_candidate = _INF_KEY
        self.local_candidate_edge = None
        if self.parallel_scan:
            self.outstanding = set()
            for v in self._basic_edges():
                if self.edge_weight(v) <= self.threshold:
                    self.outstanding.add(v)
                    self.send(v, ("test", self.level, self.fragment),
                              tag="ghs-test")
            if not self.outstanding:
                self._search_done()
        else:
            self._test_next()

    def _test_next(self) -> None:
        basics = self._basic_edges()
        if basics:
            self.test_edge = min(basics, key=self._key)
            self.send(
                self.test_edge, ("test", self.level, self.fragment),
                tag="ghs-test",
            )
        else:
            self.test_edge = None
            self._search_done()

    def _on_test(self, frm: Vertex, level: int, fragment: tuple) -> bool:
        if level > self.level:
            return False  # defer until we catch up
        if fragment != self.fragment:
            self.send(frm, ("accept",), tag="ghs-test")
            return True
        # Same fragment: this edge is internal.
        if self.edge_state[frm] == _BASIC:
            self.edge_state[frm] = _REJECTED
        if self.parallel_scan:
            if frm in self.outstanding:
                # Symmetric probe: their Test answers ours; no reply needed.
                self.outstanding.discard(frm)
                self._maybe_search_done()
            else:
                self.send(frm, ("reject",), tag="ghs-test")
        else:
            if self.test_edge != frm:
                self.send(frm, ("reject",), tag="ghs-test")
            else:
                self._test_next()
        return True

    def _on_accept(self, frm: Vertex) -> None:
        key = self._key(frm)
        if self.parallel_scan:
            self.outstanding.discard(frm)
            if key < self.local_candidate:
                self.local_candidate = key
                self.local_candidate_edge = frm
            self._maybe_search_done()
        else:
            self.test_edge = None
            if key < self.best_key:
                self.best_key = key
                self.best_edge = frm
            self._report()

    def _on_reject(self, frm: Vertex) -> None:
        if self.edge_state[frm] == _BASIC:
            self.edge_state[frm] = _REJECTED
        if self.parallel_scan:
            self.outstanding.discard(frm)
            self._maybe_search_done()
        else:
            self._test_next()

    def _maybe_search_done(self) -> None:
        if not self.outstanding:
            self._search_done()

    def _search_done(self) -> None:
        """Local scan finished; fold the local candidate into best."""
        if self.parallel_scan:
            if self.local_candidate < self.best_key:
                self.best_key = self.local_candidate
                self.best_edge = self.local_candidate_edge
        self._report()

    # -------------------------------------------------------------- #
    # Report convergecast and core decision
    # -------------------------------------------------------------- #

    def _search_pending(self) -> bool:
        if self.parallel_scan:
            return bool(self.outstanding)
        return self.test_edge is not None

    def _has_more(self) -> bool:
        """Parallel mode: basic edges above the threshold remain unprobed."""
        if not self.parallel_scan:
            return False
        return any(
            self.edge_weight(v) > self.threshold for v in self._basic_edges()
        )

    def _report(self) -> None:
        if self.find_count == 0 and not self._search_pending() \
                and self.state == "find":
            self.state = "found"
            self.send(
                self.in_branch,
                ("report", self.best_key,
                 self._has_more() or self._child_more, self._size_acc),
                tag="ghs-report",
            )

    def _on_report(self, frm: Vertex, key: tuple, more: bool,
                   size: int) -> bool:
        if frm != self.in_branch:
            # A child subtree reports.
            self.find_count -= 1
            self._size_acc += size
            if key < self.best_key:
                self.best_key = key
                self.best_edge = frm
            if more:
                self._child_more = True
            self._report()
            return True
        # Report over the core edge.
        if self.state == "find":
            return False  # defer until our own side finished
        total = (self._size_acc + size) if self.n_total is not None else None
        if total is not None and total == self.n_total:
            # The fragment spans the whole network: done, regardless of any
            # unprobed heavy edges (they are all internal).
            self._on_halt(None, self._elect_leader())
            return True
        if key > self.best_key:
            self._change_root()
            return True
        if self.best_key == _INF_KEY and key == _INF_KEY:
            # Empty search.  In parallel mode the `more` bits can be stale:
            # a lower-level fragment absorbed *after* a member reported
            # flips a basic edge to branch and hides its subtree's unprobed
            # edges from this round's aggregate.  The only sound halt
            # criterion is the member count; anything less means an
            # outgoing edge exists above the threshold, so double and
            # search again.  (Serial scans cannot reach an empty result
            # while basic edges remain -- the Test deferral rule blocks
            # them -- so for them this branch always halts, as in GHS.)
            incomplete = total is not None and total < self.n_total
            combined_more = more or self._has_more() or self._child_more
            if self.parallel_scan and (combined_more or incomplete):
                self._redouble()
            else:
                self._on_halt(None, self._elect_leader())
            return True
        # The other side owns the better edge; it will act.
        return True

    def _redouble(self) -> None:
        """Empty search below the guess: double it and search again (8.3)."""
        self.threshold *= 2.0
        self._child_more = False
        self._re_initiate()

    def _re_initiate(self) -> None:
        """Re-run the find phase on this core node's side of the fragment."""
        self.state = "find"
        self.best_edge = None
        self.best_key = _INF_KEY
        self.find_count = 0
        self._child_more = False
        self._size_acc = 1
        for v in self._branch_edges():
            if v != self.in_branch:
                self.send(
                    v,
                    ("initiate", self.level, self.fragment, "find",
                     self.threshold),
                    tag="ghs-initiate",
                )
                self.find_count += 1
        self._start_search()

    # -------------------------------------------------------------- #
    # Root relocation / termination
    # -------------------------------------------------------------- #

    def _change_root(self) -> None:
        if self.best_edge is None:  # pragma: no cover - protocol invariant
            raise AssertionError("change_root without best edge")
        if self.edge_state[self.best_edge] == _BRANCH:
            self.send(self.best_edge, ("change_root",), tag="ghs-report")
        else:
            self.send(self.best_edge,
                      ("connect", self.level, self.threshold),
                      tag="ghs-connect")
            self.edge_state[self.best_edge] = _BRANCH

    def _elect_leader(self) -> Vertex:
        """Deterministic leader: the larger-repr endpoint of the core edge.

        Only core nodes decide halting, and for them ``in_branch`` is the
        core edge's other endpoint, so both deciders compute the same
        leader — the paper's MST -> leader election reduction ([Awe87]).
        """
        return max(self.node_id, self.in_branch, key=repr)

    def _on_halt(self, frm: Vertex | None, leader: Vertex) -> None:
        if self.halted:
            return
        self.halted = True
        self.leader = leader
        for v in self._branch_edges():
            if v != frm:
                self.send(v, ("halt", leader), tag="ghs-halt")
        self.finish(sorted(self._branch_edges(), key=repr))


def _collect_tree(graph: WeightedGraph, result: RunResult) -> WeightedGraph:
    tree = WeightedGraph(vertices=graph.vertices)
    for v, proc in result.processes.items():
        for u in proc._branch_edges():
            if not tree.has_edge(u, v):
                tree.add_edge(u, v, graph.weight(u, v))
    return tree


def _run(graph: WeightedGraph, parallel_scan: bool, delay, seed: int,
         max_events: int,
         budget: float | None = None,
         faults: FaultPlan | None = None,
         reliable: bool = False,
         transport: dict | None = None,
         ) -> tuple[RunResult, WeightedGraph | None]:
    if graph.num_vertices < 2:
        raise ValueError("GHS needs at least two vertices")
    n = graph.num_vertices
    factory = lambda v: GhsProcess(parallel_scan, n_total=n)
    if reliable:
        factory = reliable_factory(factory, **(transport or {}))
    net = Network(
        graph,
        factory,
        delay=delay,
        seed=seed,
        comm_budget=budget,
        faults=faults,
    )
    result = net.run(stop_when=lambda nw: nw.all_finished,
                     max_events=max_events)
    if not net.all_finished:
        if budget is not None or faults is not None:
            # Detectable abort: budget enforcement, or a fault adversary
            # the protocol could not survive (RunResult.status says which).
            return result, None
        raise RuntimeError("GHS did not terminate")
    return result, _collect_tree(graph, result)


def run_mst_ghs(
    graph: WeightedGraph,
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
    max_events: int = 20_000_000,
    budget: float | None = None,
    faults: FaultPlan | None = None,
    reliable: bool = False,
    transport: dict | None = None,
) -> tuple[RunResult, WeightedGraph | None]:
    """Algorithm MST_ghs: classical GHS (serial edge scan)."""
    return _run(graph, False, delay, seed, max_events, budget,
                faults, reliable, transport)


def run_mst_fast(
    graph: WeightedGraph,
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
    max_events: int = 20_000_000,
    budget: float | None = None,
    faults: FaultPlan | None = None,
    reliable: bool = False,
    transport: dict | None = None,
) -> tuple[RunResult, WeightedGraph | None]:
    """Algorithm MST_fast: guess-doubling threshold + parallel edge scan."""
    return _run(graph, True, delay, seed, max_events, budget,
                faults, reliable, transport)
