"""Hybrid algorithms (Sections 7.2, 8.2, 9.3): racing two algorithms.

The paper's hybrids run two algorithms "in parallel", with a shared root
suspending whichever is currently more expensive (using the doubling root
estimates of Section 6.2); the combined cost is within a factor of four of
the cheaper algorithm.

We realize the race by *dovetailing with doubling budgets*: the root runs
the candidates in alternation, each attempt capped at a communication
budget that doubles every round, until one completes within its budget.
This is exactly the suspend/resume schedule the root estimates induce —
an algorithm is "suspended" while the other one consumes its (currently
smaller) budget — expressed with restarts instead of in-place freezing.
Since attempt costs form geometric series, the total communication is at
most a constant times ``min(c_A, c_B)`` (with both algorithms' budgets
summing to ``< 4 * budget_final <= 8 * min``), preserving the paper's
``O(min{...})`` bounds:

* ``CON_hybrid``  =  race(DFS, MST_centr)            -> O(min{E, n V})
* ``MST_hybrid``  =  race(MST_ghs, MST_centr)        -> O(min{E + V log n, n V})
* ``SPT_hybrid``  =  race(SPT_synch, SPT_recur)      -> O(min of Fig. 4 rows)

The budget is enforced by the root's exact knowledge of the communication
spent — the property Section 7.2 engineers via root estimates and Section
8.2 via making the protocol "controlled"; we enforce it at the simulation
boundary and measure the estimate/controller overheads in their own
benchmarks (see DESIGN.md).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from .dfs import run_dfs
from .full_info import run_mst_centr
from .mst_ghs import run_mst_ghs
from .spt_recur import run_spt_recur
from .spt_synch import run_spt_synch

__all__ = ["RaceOutcome", "race", "run_con_hybrid", "run_mst_hybrid",
           "run_spt_hybrid"]

# An attempt takes a budget and returns (comm_cost_spent, time_spent,
# output_or_None).  Output None means the budget was exhausted.
Attempt = Callable[[float], tuple[float, float, Any]]


@dataclass
class RaceOutcome:
    """Result of a dovetailed race."""

    winner: str
    output: Any
    total_comm_cost: float      # across every attempt, including aborted ones
    total_time: float           # attempts run back-to-back
    rounds: int
    history: list = field(default_factory=list)  # (name, budget, cost, done)

    def __str__(self) -> str:
        return (
            f"race won by {self.winner} after {self.rounds} rounds, "
            f"total cost {self.total_comm_cost:g}"
        )


def race(
    attempts: dict[str, Attempt],
    initial_budget: float,
    max_rounds: int = 200,
) -> RaceOutcome:
    """Dovetail the attempts with per-algorithm doubling budgets.

    Round-robin order follows the dict's insertion order; each algorithm's
    budget doubles after each of its failed attempts.
    """
    if initial_budget <= 0:
        raise ValueError("initial budget must be positive")
    budgets = {name: initial_budget for name in attempts}
    total_cost = 0.0
    total_time = 0.0
    history = []
    for round_no in range(1, max_rounds + 1):
        for name, attempt in attempts.items():
            cost, time, output = attempt(budgets[name])
            total_cost += cost
            total_time += time
            history.append((name, budgets[name], cost, output is not None))
            if output is not None:
                return RaceOutcome(
                    winner=name,
                    output=output,
                    total_comm_cost=total_cost,
                    total_time=total_time,
                    rounds=round_no,
                    history=history,
                )
            budgets[name] *= 2.0
    raise RuntimeError(f"race did not finish within {max_rounds} rounds")


# --------------------------------------------------------------------- #
# Concrete hybrids
# --------------------------------------------------------------------- #


def _initial_budget(graph: WeightedGraph) -> float:
    # Any positive start works: failed rounds cost at most their budget, so
    # starting small only adds log(final/initial) cheap rounds.  Starting at
    # ~n keeps the first rounds from being entirely vacuous.
    return float(max(8, graph.num_vertices))


def run_con_hybrid(
    graph: WeightedGraph,
    root: Vertex,
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
) -> RaceOutcome:
    """CON_hybrid (Section 7.2): DFS raced against MST_centr.

    Both construct a spanning tree (solving connectivity); communication
    ``O(min{script-E, n * script-V})``, matching the lower bound of
    Section 7.1.
    """

    def dfs_attempt(budget: float):
        result, tree = run_dfs(graph, root, delay=delay, seed=seed,
                               budget=budget)
        return result.comm_cost, result.time, tree

    def centr_attempt(budget: float):
        result, tree = run_mst_centr(graph, root, delay=delay, seed=seed,
                                     budget=budget)
        return result.comm_cost, result.time, tree

    return race(
        {"DFS": dfs_attempt, "MST_centr": centr_attempt},
        _initial_budget(graph),
    )


def run_mst_hybrid(
    graph: WeightedGraph,
    root: Vertex,
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
) -> RaceOutcome:
    """MST_hybrid (Section 8.2): MST_ghs raced against MST_centr.

    Communication ``O(min{script-E + script-V log n, n * script-V})``.
    """

    def ghs_attempt(budget: float):
        result, tree = run_mst_ghs(graph, delay=delay, seed=seed,
                                   budget=budget)
        return result.comm_cost, result.time, tree

    def centr_attempt(budget: float):
        result, tree = run_mst_centr(graph, root, delay=delay, seed=seed,
                                     budget=budget)
        return result.comm_cost, result.time, tree

    return race(
        {"MST_ghs": ghs_attempt, "MST_centr": centr_attempt},
        _initial_budget(graph),
    )


def run_spt_hybrid(
    graph: WeightedGraph,
    source: Vertex,
    *,
    k: int = 2,
    delay: DelayModel | None = None,
    seed: int = 0,
) -> RaceOutcome:
    """SPT_hybrid (Section 9.3): SPT_synch raced against SPT_recur."""

    def synch_attempt(budget: float):
        result, tree = run_spt_synch(graph, source, k=k, delay=delay,
                                     seed=seed, budget=budget)
        return result.comm_cost, result.time, tree

    def recur_attempt(budget: float):
        result, tree = run_spt_recur(graph, source, delay=delay, seed=seed,
                                     budget=budget)
        return result.comm_cost, result.time, tree

    return race(
        {"SPT_synch": synch_attempt, "SPT_recur": recur_attempt},
        _initial_budget(graph),
    )
