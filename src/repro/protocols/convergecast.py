"""Tree broadcast and convergecast primitives.

Given a rooted spanning tree ``T`` these two dual communication patterns
cost exactly one message per tree edge (communication ``w(T)``) and time
proportional to the weighted depth of the tree:

* *broadcast*: the root pushes a value down to every node;
* *convergecast*: values are aggregated leaves-to-root with an associative
  combiner (the ``g`` of the paper's symmetric compact functions, §1.4.1).

They are the workhorses of global function computation (Section 2), of
clock synchronizer beta* (Section 3.2) and of the cluster-internal part of
synchronizers gamma* and gamma_w.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..faults.plan import FaultPlan
from ..faults.transport import reliable_factory
from ..graphs.paths import tree_distances
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network, RunResult
from ..sim.process import Process

__all__ = [
    "rooted_tree_structure",
    "BroadcastProcess",
    "ConvergecastProcess",
    "run_tree_broadcast",
    "run_convergecast",
]


def rooted_tree_structure(
    tree: WeightedGraph, root: Vertex
) -> tuple[dict[Vertex, Vertex | None], dict[Vertex, list[Vertex]]]:
    """Orient ``tree`` away from ``root``: returns (parent, children) maps."""
    parent: dict[Vertex, Vertex | None] = {root: None}
    children: dict[Vertex, list[Vertex]] = {v: [] for v in tree.vertices}
    stack = [root]
    seen = {root}
    while stack:
        u = stack.pop()
        for v in tree.neighbors(u):
            if v not in seen:
                seen.add(v)
                parent[v] = u
                children[u].append(v)
                stack.append(v)
    if len(seen) != tree.num_vertices:
        raise ValueError("tree is not connected / root not in tree")
    return parent, children


class BroadcastProcess(Process):
    """Push ``value`` from the root down a known rooted tree."""

    def __init__(self, children: list[Vertex], is_root: bool, value: Any = None) -> None:
        self.children = children
        self.is_root = is_root
        self.value = value

    def on_start(self) -> None:
        if self.is_root:
            self._handle(self.value)

    def on_message(self, frm: Vertex, payload: Any) -> None:
        self._handle(payload)

    def _handle(self, value: Any) -> None:
        self.value = value
        self.finish(value)
        for c in self.children:
            self.send(c, value, tag="broadcast")


class ConvergecastProcess(Process):
    """Aggregate leaf-to-root with combiner ``g`` over per-node inputs.

    Every node finishes; the root's result is the aggregate
    ``g(x_1, ..., x_n)`` (combiner applied in tree order).
    """

    def __init__(
        self,
        parent: Vertex | None,
        children: list[Vertex],
        value: Any,
        combine: Callable[[Any, Any], Any],
    ) -> None:
        self.parent = parent
        self.children = children
        self.acc = value
        self.combine = combine
        self._waiting = len(children)

    def on_start(self) -> None:
        if self._waiting == 0:
            self._report()

    def on_message(self, frm: Vertex, payload: Any) -> None:
        self.acc = self.combine(self.acc, payload)
        self._waiting -= 1
        if self._waiting == 0:
            self._report()

    def _report(self) -> None:
        if self.parent is not None:
            self.send(self.parent, self.acc, tag="convergecast")
            self.finish(None)
        else:
            self.finish(self.acc)  # root holds the aggregate


def run_tree_broadcast(
    tree: WeightedGraph,
    root: Vertex,
    value: Any,
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
    faults: FaultPlan | None = None,
    reliable: bool = False,
    transport: dict | None = None,
) -> RunResult:
    """Broadcast ``value`` down ``tree`` from ``root``; cost w(T), time depth(T)."""
    _, children = rooted_tree_structure(tree, root)
    factory = lambda v: BroadcastProcess(children[v], v == root, value)
    if reliable:
        factory = reliable_factory(factory, **(transport or {}))
    net = Network(tree, factory, delay=delay, seed=seed, faults=faults)
    return net.run()


def run_convergecast(
    tree: WeightedGraph,
    root: Vertex,
    values: dict[Vertex, Any],
    combine: Callable[[Any, Any], Any],
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
    faults: FaultPlan | None = None,
    reliable: bool = False,
    transport: dict | None = None,
) -> tuple[RunResult, Any]:
    """Aggregate ``values`` up ``tree``; returns (run result, root aggregate)."""
    parent, children = rooted_tree_structure(tree, root)
    factory = lambda v: ConvergecastProcess(
        parent[v], children[v], values[v], combine
    )
    if reliable:
        factory = reliable_factory(factory, **(transport or {}))
    net = Network(tree, factory, delay=delay, seed=seed, faults=faults)
    result = net.run()
    return result, result.result_of(root)


def tree_depth(tree: WeightedGraph, root: Vertex) -> float:
    """Weighted depth of ``tree`` below ``root`` (time bound for both patterns)."""
    return max(tree_distances(tree, root).values(), default=0.0)
