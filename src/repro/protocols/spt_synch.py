"""Algorithm SPT_synch (Section 9.1): synchronous Bellman-Ford + gamma_w.

On a weighted *synchronous* network (delay on e exactly w(e)), the natural
distributed Bellman-Ford computes a shortest-path tree in ``script-D``
pulses with ``O(script-E)`` communication: a node that improves its
distance estimate relays it, and since a message on ``e`` takes exactly
``w(e)`` time, estimates propagate along shortest paths and every node
locks in ``dist(s, v)`` at pulse ``dist(s, v)`` — each edge carries O(1)
payload messages overall.

Running it through synchronizer gamma_w yields the paper's fastest SPT
algorithm: communication ``O(E + D * k n log n)`` and time
``O(D * log_k n * log n)`` (Corollary 9.1).
"""

from __future__ import annotations

from typing import Any

from ..graphs.paths import diameter
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.sync_runner import SynchronousProtocol, SynchronousRunner
from ..synch.gamma_w import GammaWResult, run_gamma_w

__all__ = ["SyncBellmanFord", "run_spt_synch", "run_spt_synchronous_reference"]


class SyncBellmanFord(SynchronousProtocol):
    """One node of synchronous weighted Bellman-Ford.

    ``stop_pulse`` must exceed the weighted graph distance from the source
    to this node (e.g. any upper bound on ``script-D``); the node finishes
    at that pulse with result ``(distance, parent)``.
    """

    def __init__(self, is_source: bool, stop_pulse: int) -> None:
        self.is_source = is_source
        self.stop_pulse = stop_pulse
        self.dist = 0.0 if is_source else float("inf")
        self.parent: Vertex | None = None

    def on_pulse(self, pulse: int, inbox: list[tuple[Vertex, Any]]) -> None:
        improved = pulse == 0 and self.is_source
        for frm, d in inbox:
            if d < self.dist:
                self.dist = d
                self.parent = frm
                improved = True
        if improved:
            for v in self.neighbors():
                self.send(v, self.dist + self.edge_weight(v))
        if pulse >= self.stop_pulse and not self.finished:
            self.finish((self.dist, self.parent))


def _tree_from_results(graph: WeightedGraph, results: dict) -> WeightedGraph:
    tree = WeightedGraph(vertices=graph.vertices)
    for v, (dist, parent) in results.items():
        if parent is not None:
            tree.add_edge(parent, v, graph.weight(parent, v))
    return tree


def run_spt_synchronous_reference(
    graph: WeightedGraph, source: Vertex, stop_pulse: int | None = None
):
    """Bellman-Ford on the weighted synchronous network (the c_pi baseline).

    Returns (SyncRunResult, tree).
    """
    if stop_pulse is None:
        stop_pulse = int(diameter(graph)) + 1
    runner = SynchronousRunner(
        graph, lambda v: SyncBellmanFord(v == source, stop_pulse)
    )
    # In-flight messages may take up to W extra pulses to drain after the
    # protocols finish.
    w_max = int(max(w for _, _, w in graph.edges()))
    result = runner.run(max_pulses=stop_pulse + w_max + 2)
    return result, _tree_from_results(graph, result.results())


def run_spt_synch(
    graph: WeightedGraph,
    source: Vertex,
    *,
    k: int = 2,
    stop_pulse: int | None = None,
    delay: DelayModel | None = None,
    seed: int = 0,
    budget: float | None = None,
) -> tuple[GammaWResult, WeightedGraph | None]:
    """Algorithm SPT_synch: Bellman-Ford under gamma_w on the async network.

    Returns (gamma_w result with overhead accounting, the SPT).  Note the
    hosted protocol observes *original* weights, so the tree equals the
    reference synchronous run's tree exactly.
    """
    if stop_pulse is None:
        stop_pulse = int(diameter(graph)) + 1
    w_max = int(max(w for _, _, w in graph.edges()))
    max_pulse = 4 * (stop_pulse + 1) + 4 * w_max + 8
    result = run_gamma_w(
        graph,
        lambda v: SyncBellmanFord(v == source, stop_pulse),
        k=k,
        max_pulse=max_pulse,
        delay=delay,
        seed=seed,
        budget=budget,
    )
    if not result.completed:
        return result, None
    return result, _tree_from_results(graph, result.results())
