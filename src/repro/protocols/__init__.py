"""Distributed algorithms: broadcast, DFS, MST, SPT suites and hybrid racers."""

from .broadcast import FloodProcess, run_flood
from .convergecast import (
    BroadcastProcess,
    ConvergecastProcess,
    rooted_tree_structure,
    run_convergecast,
    run_tree_broadcast,
)
from .dfs import DfsProcess, Governor, run_dfs
from .full_info import (
    FullInfoGrowthProcess,
    GrowthPlan,
    dijkstra_order,
    prim_order,
    run_mst_centr,
    run_spt_centr,
)
from .hybrid import (
    RaceOutcome,
    race,
    run_con_hybrid,
    run_mst_hybrid,
    run_spt_hybrid,
)
from .mst_ghs import GhsProcess, run_mst_fast, run_mst_ghs
from .spt_recur import StripBfsProcess, run_spt_recur, unit_expansion
from .spt_synch import (
    SyncBellmanFord,
    run_spt_synch,
    run_spt_synchronous_reference,
)

__all__ = [
    "FloodProcess",
    "run_flood",
    "BroadcastProcess",
    "ConvergecastProcess",
    "rooted_tree_structure",
    "run_convergecast",
    "run_tree_broadcast",
    "DfsProcess",
    "Governor",
    "run_dfs",
    "GrowthPlan",
    "FullInfoGrowthProcess",
    "prim_order",
    "dijkstra_order",
    "run_mst_centr",
    "run_spt_centr",
    "GhsProcess",
    "run_mst_ghs",
    "run_mst_fast",
    "StripBfsProcess",
    "unit_expansion",
    "run_spt_recur",
    "SyncBellmanFord",
    "run_spt_synch",
    "run_spt_synchronous_reference",
    "RaceOutcome",
    "race",
    "run_con_hybrid",
    "run_mst_hybrid",
    "run_spt_hybrid",
]

from .leader_election import run_leader_election  # noqa: E402
from .termination import DSHost, run_with_termination_detection  # noqa: E402

__all__ += [
    "run_leader_election",
    "DSHost",
    "run_with_termination_detection",
]

from .max_consensus import (  # noqa: E402
    SyncMaxConsensus,
    run_max_consensus_gamma_w,
    run_max_consensus_reference,
)

__all__ += [
    "SyncMaxConsensus",
    "run_max_consensus_reference",
    "run_max_consensus_gamma_w",
]
