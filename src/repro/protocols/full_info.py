"""Full-information tree-growth protocols: ``MST_centr`` and ``SPT_centr``.

Sections 6.3-6.4 of the paper.  Both algorithms assume every vertex knows
the entire weighted topology (only the protocol's dynamic state must be
communicated) and grow a tree one vertex per phase:

* ``MST_centr`` — Prim's order: each phase adds the minimum-weight edge
  leaving the current tree.  Communication ``O(n * script-V)``, time
  ``O(n * Diam(MST))`` (Corollary 6.4).
* ``SPT_centr`` — Dijkstra's order: each phase adds the non-tree vertex
  with the minimum label ``dist(s, y) + w(y, x)``.  Communication
  ``O(n * w(SPT)) = O(n^2 * script-V)`` (Fact 6.5), time ``O(n * script-D)``
  (Corollary 6.6).

The invariant "every tree vertex knows the whole tree" is maintained by
broadcasting each added vertex over the tree; we realize it with a
root-driven phase loop (broadcast PHASE down the current tree, JOIN/ACK
over the new edge, convergecast READY back up), which has the same
asymptotic costs and gives the root a *precise* root estimate of the
communication spent — the property the hybrid combinators of Sections
7.2/8.2 rely on.  The root consults a :class:`~repro.protocols.dfs.Governor`
before every phase, so a hybrid can suspend the algorithm between phases.
"""

from __future__ import annotations

from typing import Any

from ..graphs.mst import prim_mst
from ..graphs.paths import dijkstra
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network, RunResult
from ..sim.process import Process
from .dfs import Governor

__all__ = [
    "prim_order",
    "dijkstra_order",
    "GrowthPlan",
    "FullInfoGrowthProcess",
    "run_mst_centr",
    "run_spt_centr",
]


def prim_order(graph: WeightedGraph, root: Vertex) -> list[tuple[Vertex, Vertex]]:
    """The deterministic Prim edge sequence [(u_i, v_i)] from ``root``.

    u_i is the tree endpoint, v_i the vertex added at phase i.
    """
    tree = prim_mst(graph, root)
    return _addition_order(tree, root)


def dijkstra_order(graph: WeightedGraph, root: Vertex) -> list[tuple[Vertex, Vertex]]:
    """The deterministic Dijkstra (SPT) edge sequence from ``root``."""
    dist, parent = dijkstra(graph, root)
    if len(dist) != graph.num_vertices:
        raise ValueError("graph not connected")
    order = sorted((d, v) for v, d in dist.items() if v != root)
    return [(parent[v], v) for _, v in order]


def _addition_order(tree: WeightedGraph, root: Vertex) -> list[tuple[Vertex, Vertex]]:
    """Order tree edges so each new edge attaches to the already-built part.

    For Prim we re-derive the addition order by growing the known MST from
    the root, always picking the lightest frontier edge (matching Prim's
    own order on the MST's edges).
    """
    import heapq
    from itertools import count

    in_tree = {root}
    tie = count()
    heap = [
        (w, next(tie), root, v) for v, w in tree.neighbor_weights(root).items()
    ]
    heapq.heapify(heap)
    order = []
    while heap:
        w, _, u, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        order.append((u, v))
        for x, wx in tree.neighbor_weights(v).items():
            if x not in in_tree:
                heapq.heappush(heap, (wx, next(tie), v, x))
    return order


class GrowthPlan:
    """Precomputed common knowledge for a full-information growth run.

    Everything here is a deterministic function of (graph, root), so under
    the paper's full-information assumption every vertex can compute it
    locally with zero communication; we compute it once and share it
    read-only among all processes.
    """

    def __init__(self, graph: WeightedGraph, root: Vertex,
                 order: list[tuple[Vertex, Vertex]]) -> None:
        self.graph = graph
        self.root = root
        self.order = order  # order[i] = (u, v): phase i+1 attaches v below u
        n = len(order) + 1
        self.parent: dict[Vertex, Vertex | None] = {root: None}
        self.children: dict[Vertex, list[Vertex]] = {root: []}
        self.join_phase: dict[Vertex, int] = {root: 0}
        # Cumulative *protocol* cost after each phase (root's precise
        # estimate): per phase, PHASE broadcast + READY convergecast over the
        # pre-phase tree plus JOIN + ACK over the new edge.
        self.phase_cost: list[float] = [0.0]
        tree_weight = 0.0
        total = 0.0
        for i, (u, v) in enumerate(order, start=1):
            total += 2.0 * tree_weight + 2.0 * graph.weight(u, v)
            self.phase_cost.append(total)
            self.parent[v] = u
            self.children[v] = []
            self.children[u].append(v)
            self.join_phase[v] = i
            tree_weight += graph.weight(u, v)
        self.num_phases = len(order)
        self.tree_weight = tree_weight

    def tree(self) -> WeightedGraph:
        """The final tree as a weighted graph."""
        t = WeightedGraph(vertices=self.graph.vertices)
        for u, v in self.order:
            t.add_edge(u, v, self.graph.weight(u, v))
        return t

    def children_before(self, v: Vertex, phase: int) -> list[Vertex]:
        """v's tree children among vertices joined strictly before ``phase``."""
        return [c for c in self.children[v] if self.join_phase[c] < phase]


# Message kinds.
_PHASE = "phase"    # (kind, i) broadcast down the pre-phase tree
_JOIN = "join"      # (kind, i) over the new edge
_ACK = "ack"        # (kind, i) back over the new edge
_READY = "ready"    # (kind, i) convergecast to the root
_DONE = "done"      # final broadcast


class FullInfoGrowthProcess(Process):
    """One node of MST_centr / SPT_centr."""

    def __init__(self, plan: GrowthPlan, governor: Governor | None = None,
                 algo_name: str = "centr", tag: str = "centr") -> None:
        self.plan = plan
        self.governor = governor if governor is not None else Governor()
        self.algo_name = algo_name
        self.tag = tag
        self._phase = 0
        self._ready_waiting = 0
        self._got_ack = False
        self._got_phase = False

    # -------------------------------------------------------------- #

    @property
    def is_root(self) -> bool:
        return self.node_id == self.plan.root

    def on_start(self) -> None:
        if self.is_root:
            self._start_next_phase()

    def _start_next_phase(self) -> None:
        """Root only: consult the governor, then launch phase _phase + 1."""
        if self._phase >= self.plan.num_phases:
            self._broadcast_done()
            return
        nxt = self._phase + 1
        estimate = self.plan.phase_cost[nxt]
        self.governor.request(self.algo_name, estimate,
                              lambda: self._launch_phase(nxt))

    def _launch_phase(self, i: int) -> None:
        self._phase = i
        self._begin_phase_local(i)

    def _begin_phase_local(self, i: int) -> None:
        """A tree member learns phase ``i`` started: forward and participate."""
        u, v = self.plan.order[i - 1]
        me = self.node_id
        kids = self.plan.children_before(me, i)
        for c in kids:
            self.send(c, (_PHASE, i), tag=self.tag)
        self._ready_waiting = len(kids)
        self._got_ack = me != u
        if me == u:
            self.send(v, (_JOIN, i), tag=self.tag)
        self._maybe_ready(i)

    def _maybe_ready(self, i: int) -> None:
        if self._ready_waiting == 0 and self._got_ack:
            if self.is_root:
                self._start_next_phase()
            else:
                self.send(self.plan.parent[self.node_id], (_READY, i), tag=self.tag)

    def _broadcast_done(self) -> None:
        if self.is_root:
            self.governor.algorithm_finished(self.algo_name, self.plan.phase_cost[-1])
        for c in self.plan.children[self.node_id]:
            self.send(c, (_DONE,), tag=self.tag)
        self.finish(self.plan.parent.get(self.node_id))

    # -------------------------------------------------------------- #

    def on_message(self, frm: Vertex, payload: Any) -> None:
        kind = payload[0]
        if kind == _PHASE:
            self._phase = payload[1]
            self._begin_phase_local(payload[1])
        elif kind == _JOIN:
            # This node just joined the tree at phase payload[1].
            self._phase = payload[1]
            self.send(frm, (_ACK, payload[1]), tag=self.tag)
        elif kind == _ACK:
            self._got_ack = True
            self._maybe_ready(payload[1])
        elif kind == _READY:
            self._ready_waiting -= 1
            self._maybe_ready(payload[1])
        elif kind == _DONE:
            self._broadcast_done()
        else:  # pragma: no cover
            raise AssertionError(f"unknown message {kind!r}")


def _run_growth(
    graph: WeightedGraph,
    root: Vertex,
    order: list[tuple[Vertex, Vertex]],
    algo_name: str,
    *,
    governor: Governor | None = None,
    delay: DelayModel | None = None,
    seed: int = 0,
    budget: float | None = None,
) -> tuple[RunResult, WeightedGraph | None]:
    plan = GrowthPlan(graph, root, order)
    gov = governor if governor is not None else Governor()
    net = Network(
        graph,
        lambda v: FullInfoGrowthProcess(plan, gov, algo_name, algo_name),
        delay=delay,
        seed=seed,
        comm_budget=budget,
    )
    result = net.run()
    if not net.all_finished:
        return result, None
    return result, plan.tree()


def run_mst_centr(
    graph: WeightedGraph,
    root: Vertex,
    *,
    governor: Governor | None = None,
    delay: DelayModel | None = None,
    seed: int = 0,
    budget: float | None = None,
) -> tuple[RunResult, WeightedGraph | None]:
    """Run MST_centr; returns (run result, the MST or None on budget)."""
    return _run_growth(graph, root, prim_order(graph, root), "MST_centr",
                       governor=governor, delay=delay, seed=seed,
                       budget=budget)


def run_spt_centr(
    graph: WeightedGraph,
    root: Vertex,
    *,
    governor: Governor | None = None,
    delay: DelayModel | None = None,
    seed: int = 0,
    budget: float | None = None,
) -> tuple[RunResult, WeightedGraph | None]:
    """Run SPT_centr; returns (run result, the SPT or None on budget)."""
    return _run_growth(graph, root, dijkstra_order(graph, root), "SPT_centr",
                       governor=governor, delay=delay, seed=seed,
                       budget=budget)
