"""Leader election via MST construction ([Awe87]'s reduction).

[Awe87] (cited in Section 8) observes that leader election, counting and
related problems reduce to MST construction: once GHS terminates, the two
endpoints of the final core edge are distinguished, and one of them —
deterministically, the one with the larger identifier — becomes the
leader.  The HALT wave that ends GHS doubles as the leader announcement,
so leader election costs exactly one MST construction:
``O(script-E + script-V log n)`` communication.

Counting comes for free the same way (the size convergecast GHS already
performs), and is also available as the COUNT global function of
:mod:`repro.core.global_function`.
"""

from __future__ import annotations


from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import RunResult
from .mst_ghs import run_mst_ghs

__all__ = ["run_leader_election"]


def run_leader_election(
    graph: WeightedGraph,
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
) -> tuple[RunResult, Vertex]:
    """Elect a unique leader known to every node.

    Runs GHS; the HALT wave carries the elected identity (the larger-id
    endpoint of the final core edge).  Returns (run result, leader); every
    node's ``leader`` attribute holds the same vertex.
    """
    result, _tree = run_mst_ghs(graph, delay=delay, seed=seed)
    leaders = {p.leader for p in result.processes.values()}
    if len(leaders) != 1:  # pragma: no cover - GHS guarantees agreement
        raise AssertionError(f"leader disagreement: {leaders}")
    return result, leaders.pop()
