"""Synchronous max-consensus: a second client for the synchronizers.

A minimal synchronous algorithm (every node repeatedly forwards the
largest value it has seen; after ``script-D`` pulses every node holds the
global maximum) used to demonstrate that the Section 4 synchronizers are
*generic* protocol transformers, not Bellman-Ford-specific: the same
unmodified protocol runs under the synchronous reference runner and under
alpha_w / beta_w / gamma_w with identical outputs.

It is also the synchronous face of global MAX computation (Section
1.4.1): on the weighted synchronous network a value propagates along
shortest paths, so convergence takes exactly ``script-D`` pulses — another
view of the Omega(D) time bound of Theorem 2.1.
"""

from __future__ import annotations

from typing import Any

from ..graphs.paths import diameter
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.sync_runner import SynchronousProtocol, SynchronousRunner
from ..synch.gamma_w import GammaWResult, run_gamma_w

__all__ = ["SyncMaxConsensus", "run_max_consensus_reference",
           "run_max_consensus_gamma_w"]


class SyncMaxConsensus(SynchronousProtocol):
    """One node of synchronous max-consensus.

    ``stop_pulse`` must be at least the weighted diameter; the node
    finishes there holding the global maximum.
    """

    def __init__(self, value, stop_pulse: int) -> None:
        self.value = value
        self.stop_pulse = stop_pulse

    def on_pulse(self, pulse: int, inbox: list[tuple[Vertex, Any]]) -> None:
        improved = pulse == 0
        for _frm, v in inbox:
            if v > self.value:
                self.value = v
                improved = True
        if improved:
            for nbr in self.neighbors():
                self.send(nbr, self.value)
        if pulse >= self.stop_pulse and not self.finished:
            self.finish(self.value)


def run_max_consensus_reference(
    graph: WeightedGraph,
    values: dict[Vertex, Any],
    stop_pulse: int | None = None,
):
    """Reference synchronous run; returns the SyncRunResult."""
    if stop_pulse is None:
        stop_pulse = int(diameter(graph)) + 1
    w_max = int(max(w for _, _, w in graph.edges()))
    runner = SynchronousRunner(
        graph, lambda v: SyncMaxConsensus(values[v], stop_pulse)
    )
    return runner.run(max_pulses=stop_pulse + w_max + 2)


def run_max_consensus_gamma_w(
    graph: WeightedGraph,
    values: dict[Vertex, Any],
    *,
    k: int = 2,
    stop_pulse: int | None = None,
    delay: DelayModel | None = None,
    seed: int = 0,
) -> GammaWResult:
    """Max-consensus on the asynchronous network via synchronizer gamma_w."""
    if stop_pulse is None:
        stop_pulse = int(diameter(graph)) + 1
    w_max = int(max(w for _, _, w in graph.edges()))
    max_pulse = 4 * (stop_pulse + 1) + 4 * w_max + 8
    return run_gamma_w(
        graph,
        lambda v: SyncMaxConsensus(values[v], stop_pulse),
        k=k,
        max_pulse=max_pulse,
        delay=delay,
        seed=seed,
    )
