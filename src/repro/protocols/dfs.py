"""Distributed depth-first search with doubling root estimates (Section 6.2).

A token carries the algorithm's *center of activity* through the graph in
DFS order; every edge is traversed O(1) times, so the communication and
time complexities are both ``O(script-E)`` (Fact 6.2).

Following the paper, the algorithm maintains two estimates of the total
weight traversed so far:

* ``EST_C`` — the *center estimate*, carried inside the token and bumped by
  ``w(e)`` on every traversal;
* ``EST_R`` — the *root estimate*, stored at the root and refreshed (via a
  message routed up the DFS tree) whenever the center is about to traverse
  an edge that would make ``EST_C`` double the current ``EST_R``.

The refresh is implemented as a request/permit round trip so that the root
can *suspend* the search by withholding the permit — exactly the mechanism
the hybrid algorithms of Sections 7.2 / 8.2 need.  Suspension policy is
pluggable via a :class:`Governor`; the default grants immediately.  The
geometric spacing of refreshes keeps their total cost within a constant
factor of ``EST_C`` (the paper's "sum of a geometric progression").
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..faults.plan import FaultPlan
from ..faults.transport import reliable_factory
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network, RunResult
from ..sim.process import Process

__all__ = ["Governor", "DfsProcess", "run_dfs"]


class Governor:
    """Root-side admission policy for estimate refreshes.

    ``request(algo, new_estimate, grant)`` is called at the root whenever an
    algorithm raises its root estimate; calling ``grant()`` (immediately or
    later) lets the algorithm proceed.  Subclasses implement suspension
    policies; the default is always-grant.
    """

    def request(self, algo: str, new_estimate: float, grant: Callable[[], None]) -> None:
        grant()

    def algorithm_finished(self, algo: str, final_cost: float) -> None:
        """Notification hook: ``algo`` completed with the given root estimate."""


# Message kinds (first tuple element of every payload).
_TOKEN = "token"      # explore: (kind, est_c, est_r)
_BACK = "back"        # bounced off an already-visited node
_RETURN = "return"    # subtree finished, token returns to parent
_UPDATE = "update"    # (kind, value, path) routed up to the root
_PERMIT = "permit"    # (kind, est_r, path) routed back down


class DfsProcess(Process):
    """One node of the token-DFS protocol."""

    def __init__(self, is_root: bool, governor: Governor | None = None,
                 algo_name: str = "DFS") -> None:
        self.is_root = is_root
        self.governor = governor if governor is not None else Governor()
        self.algo_name = algo_name
        self.visited = False
        self.parent: Vertex | None = None
        self._unexplored: list[Vertex] = []
        self._pending: tuple[Vertex, float, float] | None = None
        self.est_root = 0.0  # meaningful at the root only
        self.children: list[Vertex] = []  # DFS tree children (filled as we go)

    # -------------------------------------------------------------- #

    def on_start(self) -> None:
        self._unexplored = list(self.neighbors())
        if self.is_root:
            self.visited = True
            self._proceed(est_c=0.0, est_r=0.0)

    def on_message(self, frm: Vertex, payload: Any) -> None:
        kind = payload[0]
        if kind == _TOKEN:
            _, est_c, est_r = payload
            if self.visited:
                self.send(frm, (_BACK, est_c + self.edge_weight(frm), est_r),
                          tag="dfs")
                return
            self.visited = True
            self.parent = frm
            if frm in self._unexplored:
                self._unexplored.remove(frm)
            self._proceed(est_c, est_r)
        elif kind == _BACK:
            _, est_c, est_r = payload
            self._proceed(est_c, est_r)
        elif kind == _RETURN:
            _, est_c, est_r = payload
            self.children.append(frm)
            self._proceed(est_c, est_r)
        elif kind == _UPDATE:
            _, value, path = payload
            if self.is_root:
                self.est_root = value
                self.governor.request(
                    self.algo_name, value, lambda: self._send_permit(value, path)
                )
            else:
                self.send(self.parent, (_UPDATE, value, path + [self.node_id]),
                          tag="dfs-control")
        elif kind == _PERMIT:
            _, est_r, path = payload
            if path and path[-1] == self.node_id:
                path = path[:-1]
            if path:
                self.send(path[-1], (_PERMIT, est_r, path), tag="dfs-control")
            else:
                self._resume(est_r)
        else:  # pragma: no cover
            raise AssertionError(f"unknown DFS message {kind!r}")

    # -------------------------------------------------------------- #

    def _proceed(self, est_c: float, est_r: float) -> None:
        """The token is at this node; explore the next edge or retreat."""
        if self._unexplored:
            nxt = self._unexplored.pop(0)
            w = self.edge_weight(nxt)
            if est_c + w > 2.0 * est_r:
                # Refresh the root estimate before traversing (paper's rule:
                # never let EST_C exceed twice EST_R).
                self._pending = (nxt, est_c, est_c + w)
                self._request_update(est_c + w)
                return
            self.send(nxt, (_TOKEN, est_c + w, est_r), tag="dfs")
            return
        # All edges done here: retreat or finish.
        if self.parent is not None:
            w = self.edge_weight(self.parent)
            self.send(self.parent, (_RETURN, est_c + w, est_r), tag="dfs")
            self.finish(None)
        else:
            self.est_root = max(self.est_root, est_c)
            self.governor.algorithm_finished(self.algo_name, self.est_root)
            self.finish(est_c)

    def _request_update(self, value: float) -> None:
        if self.is_root:
            # Root refreshes locally but still consults the governor so a
            # hybrid can suspend the search at the root.
            self.est_root = value
            self.governor.request(self.algo_name, value,
                                  lambda: self._resume(value))
        else:
            self.send(self.parent, (_UPDATE, value, [self.node_id]),
                      tag="dfs-control")

    def _send_permit(self, est_r: float, path: list) -> None:
        """Root grants: route the permit back down the recorded path."""
        if not path:
            self._resume(est_r)
            return
        self.send(path[-1], (_PERMIT, est_r, path), tag="dfs-control")

    def _resume(self, est_r: float) -> None:
        nxt, est_c, _ = self._pending
        self._pending = None
        self.send(nxt, (_TOKEN, est_c + self.edge_weight(nxt), est_r), tag="dfs")


def run_dfs(
    graph: WeightedGraph,
    root: Vertex,
    *,
    governor: Governor | None = None,
    delay: DelayModel | None = None,
    seed: int = 0,
    budget: float | None = None,
    faults: FaultPlan | None = None,
    reliable: bool = False,
    transport: dict | None = None,
) -> tuple[RunResult, WeightedGraph | None]:
    """Run token DFS from ``root``; returns (run result, DFS spanning tree).

    With a ``budget``, the run is aborted once the communication cost
    reaches it and the tree is returned as ``None`` (the hybrid racers of
    Section 7.2 use this to dovetail algorithms with doubling budgets).
    The same ``None``-tree contract covers a run stalled by a ``faults``
    adversary; ``reliable=True`` adds the retransmitting transport.
    """
    factory = lambda v: DfsProcess(v == root, governor)
    if reliable:
        factory = reliable_factory(factory, **(transport or {}))
    net = Network(
        graph,
        factory,
        delay=delay,
        seed=seed,
        comm_budget=budget,
        faults=faults,
    )
    result = net.run()
    if not result.processes[root].ctx.is_finished:
        return result, None
    tree = WeightedGraph(vertices=graph.vertices)
    for v, proc in result.processes.items():
        if proc.parent is not None:
            tree.add_edge(proc.parent, v, graph.weight(proc.parent, v))
    return result, tree
