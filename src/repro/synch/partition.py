"""Cluster partitions for synchronizer gamma ([Awe85a], used by Section 4).

Synchronizer gamma preprocesses the network into a *partition* of the
vertices into low-depth clusters, each with a rooted spanning tree and a
leader, plus one *preferred edge* between every pair of neighboring
clusters.  Per pulse, gamma's overhead is one message over every tree edge
(a few times) and every preferred edge, so the partition quality determines
the synchronizer's cost:

* growing a BFS ball layer-by-layer while each new layer multiplies the
  cluster size by more than ``k`` bounds the tree depth by ``log_k n``
  hops, and
* when growth stops, the final (rejected) layer has fewer than
  ``(k-1) * |cluster|`` vertices, so summing over clusters the number of
  neighboring-cluster pairs — hence preferred edges — is at most
  ``(k-1) * n``.

This gives the per-pulse totals ``O(k n)`` messages and ``O(log_k n)``
time that Section 4.4 quotes (within each level of gamma_w).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphs.weighted_graph import Vertex, WeightedGraph

__all__ = ["ClusterPartition", "ClusterInfo", "build_partition"]


@dataclass
class ClusterInfo:
    """One cluster of the partition, with its rooted spanning tree."""

    index: int
    leader: Vertex
    members: frozenset
    parent: dict = field(default_factory=dict)    # tree parent per member
    children: dict = field(default_factory=dict)  # tree children per member
    depth_hops: int = 0
    # Clusters adjacent to this one (sharing a graph edge), by index.
    neighbor_clusters: frozenset = frozenset()


@dataclass
class ClusterPartition:
    """A partition of (a subgraph of) G into clusters + preferred edges."""

    clusters: list[ClusterInfo]
    cluster_of: dict            # vertex -> cluster index
    # preferred[(i, j)] = (u, v): u in cluster i, v in cluster j, one per pair
    preferred: dict
    k: int

    @property
    def max_depth_hops(self) -> int:
        return max((c.depth_hops for c in self.clusters), default=0)

    @property
    def num_preferred(self) -> int:
        return len(self.preferred)

    def preferred_edges_at(self, v: Vertex) -> list[tuple[Vertex, int]]:
        """Preferred edges incident to v, as (neighbor, other-cluster index)."""
        mine = self.cluster_of[v]
        out = []
        for (i, j), (u, w) in self.preferred.items():
            if u == v:
                out.append((w, j))
            elif w == v:
                out.append((u, i))
        return out


def build_partition(graph: WeightedGraph, k: int = 2) -> ClusterPartition:
    """Partition ``graph`` into BFS-ball clusters with growth factor ``k``.

    Works per connected component; handles isolated vertices (singleton
    clusters).  ``k >= 2`` gives depth <= ``log_k n`` hops per cluster.
    """
    if k < 2:
        raise ValueError("growth factor k must be >= 2")
    unassigned = set(graph.vertices)
    cluster_of: dict = {}
    clusters: list[ClusterInfo] = []

    order = sorted(graph.vertices, key=repr)
    for seed in order:
        if seed not in unassigned:
            continue
        # Grow a BFS ball among unassigned vertices: absorb a layer while it
        # multiplies the ball size by more than k, reject it (leaving its
        # vertices for later clusters) otherwise.  The rejected layer has
        # < (k-1)|ball| vertices, which is what bounds preferred edges by
        # (k-1) * n overall; absorbed layers bound the depth by log_k n.
        ball = {seed}
        frontier = [seed]
        while True:
            next_layer = set()
            for u in frontier:
                for v in graph.neighbors(u):
                    if v in unassigned and v not in ball and v not in next_layer:
                        next_layer.add(v)
            if not next_layer or len(next_layer) <= (k - 1) * len(ball):
                break
            ball |= next_layer
            frontier = sorted(next_layer, key=repr)

        index = len(clusters)
        info = _make_cluster(graph, index, seed, ball)
        clusters.append(info)
        for v in sorted(ball, key=repr):  # deterministic cluster_of order
            cluster_of[v] = index
        unassigned -= ball

    # Preferred edges: one per adjacent cluster pair.
    preferred: dict = {}
    neighbor_sets: dict[int, set[int]] = {c.index: set() for c in clusters}
    for u, v, _ in graph.edges():
        ci, cj = cluster_of[u], cluster_of[v]
        if ci == cj:
            continue
        key = (min(ci, cj), max(ci, cj))
        if key not in preferred:
            preferred[key] = (u, v) if ci < cj else (v, u)
        neighbor_sets[ci].add(cj)
        neighbor_sets[cj].add(ci)
    for c in clusters:
        c.neighbor_clusters = frozenset(neighbor_sets[c.index])

    return ClusterPartition(clusters, cluster_of, preferred, k)


def _make_cluster(
    graph: WeightedGraph, index: int, leader: Vertex, members: set
) -> ClusterInfo:
    """Root a BFS spanning tree of the cluster's induced subgraph."""
    parent: dict = {leader: None}
    children: dict = {v: [] for v in sorted(members, key=repr)}
    depth = {leader: 0}
    frontier = [leader]
    max_depth = 0
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v in members and v not in parent:
                    parent[v] = u
                    children[u].append(v)
                    depth[v] = depth[u] + 1
                    max_depth = max(max_depth, depth[v])
                    nxt.append(v)
        frontier = sorted(nxt, key=repr)
    if len(parent) != len(members):  # pragma: no cover - balls are connected
        raise AssertionError("cluster ball not connected")
    return ClusterInfo(
        index=index,
        leader=leader,
        members=frozenset(members),
        parent=parent,
        children=children,
        depth_hops=max_depth,
    )
