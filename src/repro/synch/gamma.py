"""Synchronizer gamma ([Awe85a]) — the per-level building block of gamma_w.

Gamma combines the two trivial synchronizers: *beta* inside each cluster
(convergecast safety to the leader, broadcast the verdict back down) and
*alpha* between clusters (neighboring clusters exchange "my cluster is
safe" over preferred edges).  Per super-pulse ``P`` at each cluster:

1. every member reports ``SUBTREE_SAFE(P)`` to its tree parent once it is
   safe for P and all its tree children have reported;
2. the leader, once its whole cluster is safe, broadcasts
   ``CLUSTER_SAFE(P)`` down the tree;
3. members incident to preferred edges forward ``NBR_SAFE(P)`` across them,
   and the receiving cluster routes each such notice up to its leader;
4. the leader, once its own cluster and *all* neighboring clusters are
   safe for P, broadcasts ``GO(P+1)``; receiving GO is the permission for
   a member to generate (super-)pulse P+1.

The class below is one node's gamma state machine, written transport-
agnostically: the host supplies ``send(neighbor, message)`` and receives
``on_go(P)`` callbacks, so the same logic runs inside the gamma_w host
process (one instance per weight level) and in unit tests.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable
from typing import Any

from ..graphs.weighted_graph import Vertex
from .partition import ClusterPartition

__all__ = ["GammaNode", "gamma_configs"]

# Message kinds.
SUBTREE_SAFE = "subtree_safe"   # (kind, P)
CLUSTER_SAFE = "cluster_safe"   # (kind, P) broadcast down the tree
NBR_SAFE = "nbr_safe"           # (kind, P, from_cluster) across a preferred edge
NBR_RELAY = "nbr_relay"         # (kind, P, from_cluster) routed up to leader
GO = "go"                       # (kind, P) broadcast down the tree


class GammaNode:
    """One node's synchronizer-gamma state for one partition level.

    Parameters
    ----------
    node_id: this vertex.
    partition: the cluster partition this level runs on.
    send: ``send(neighbor, message)`` — transport provided by the host;
        messages are tuples as documented above.
    on_go: callback invoked with ``P`` when this node receives (or, at the
        leader, decides) permission to generate super-pulse ``P``.
    """

    def __init__(
        self,
        node_id: Vertex,
        partition: ClusterPartition,
        send: Callable[[Vertex, Any], None],
        on_go: Callable[[int], None],
    ) -> None:
        self.node_id = node_id
        self.send = send
        self.on_go = on_go
        cluster = partition.clusters[partition.cluster_of[node_id]]
        self.cluster = cluster
        self.is_leader = cluster.leader == node_id
        self.tree_parent = cluster.parent[node_id]
        self.tree_children = list(cluster.children[node_id])
        self.preferred_here = partition.preferred_edges_at(node_id)
        # --- per-super-pulse state ----------------------------------- #
        self._self_safe: set[int] = set()
        self._children_safe: dict[int, int] = defaultdict(int)
        self._reported: set[int] = set()
        # leader only:
        self._cluster_safe: set[int] = set()
        self._nbrs_safe: dict[int, set[int]] = defaultdict(set)
        self._go_issued: set[int] = set()

    # ------------------------------------------------------------------ #
    # Host-facing API
    # ------------------------------------------------------------------ #

    def node_safe(self, pulse: int) -> None:
        """The host declares this node safe w.r.t. super-pulse ``pulse``."""
        if pulse in self._self_safe:
            return
        self._self_safe.add(pulse)
        self._maybe_report(pulse)

    def handle(self, frm: Vertex, message: tuple) -> None:
        """Process one gamma control message."""
        kind = message[0]
        pulse = message[1]
        if kind == SUBTREE_SAFE:
            self._children_safe[pulse] += 1
            self._maybe_report(pulse)
        elif kind == CLUSTER_SAFE:
            self._on_cluster_safe(pulse)
        elif kind == NBR_SAFE:
            self._route_nbr(pulse, message[2])
        elif kind == NBR_RELAY:
            self._route_nbr(pulse, message[2])
        elif kind == GO:
            self._on_go_msg(pulse)
        else:  # pragma: no cover
            raise AssertionError(f"unknown gamma message {kind!r}")

    # ------------------------------------------------------------------ #
    # Phase 1: beta convergecast of safety
    # ------------------------------------------------------------------ #

    def _maybe_report(self, pulse: int) -> None:
        if pulse in self._reported:
            return
        if pulse not in self._self_safe:
            return
        if self._children_safe[pulse] < len(self.tree_children):
            return
        self._reported.add(pulse)
        if self.is_leader:
            self._leader_cluster_safe(pulse)
        else:
            self.send(self.tree_parent, (SUBTREE_SAFE, pulse))

    # ------------------------------------------------------------------ #
    # Phase 2: cluster-safe broadcast + preferred-edge exchange
    # ------------------------------------------------------------------ #

    def _leader_cluster_safe(self, pulse: int) -> None:
        self._cluster_safe.add(pulse)
        self._on_cluster_safe(pulse)
        self._maybe_go(pulse)

    def _on_cluster_safe(self, pulse: int) -> None:
        for c in self.tree_children:
            self.send(c, (CLUSTER_SAFE, pulse))
        for nbr, _other in self.preferred_here:
            self.send(nbr, (NBR_SAFE, pulse, self.cluster.index))

    def _route_nbr(self, pulse: int, from_cluster: int) -> None:
        if self.is_leader:
            self._nbrs_safe[pulse].add(from_cluster)
            self._maybe_go(pulse)
        else:
            self.send(self.tree_parent, (NBR_RELAY, pulse, from_cluster))

    # ------------------------------------------------------------------ #
    # Phase 3: GO
    # ------------------------------------------------------------------ #

    def _maybe_go(self, pulse: int) -> None:
        if pulse in self._go_issued:
            return
        if pulse not in self._cluster_safe:
            return
        if not self._nbrs_safe[pulse] >= self.cluster.neighbor_clusters:
            return
        self._go_issued.add(pulse)
        self._on_go_msg(pulse + 1)

    def _on_go_msg(self, pulse: int) -> None:
        for c in self.tree_children:
            self.send(c, (GO, pulse))
        self.on_go(pulse)


def gamma_configs(partition: ClusterPartition) -> dict:
    """Sanity statistics of a partition for gamma cost accounting."""
    return {
        "clusters": len(partition.clusters),
        "max_depth_hops": partition.max_depth_hops,
        "preferred_edges": partition.num_preferred,
    }
