"""Clock synchronizer beta* (Section 3.2).

A spanning tree with an elected leader coordinates the pulses: completion
of the current pulse is *convergecast* up the tree to the leader, which
then broadcasts permission for the next pulse.  Per pulse the cost is only
``2 w(T)`` but the delay is twice the tree depth — at least the network
diameter ``script-D`` — so beta* trades alpha*'s ``Theta(W)`` delay for a
``Theta(D)``-ish one and wins exactly when ``D << W``.

The tree defaults to a shortest-path tree rooted at a weighted center
(depth <= D), which is the best instantiation of the paper's "construct a
spanning tree and select a leader".
"""

from __future__ import annotations

from typing import Any

from ..graphs.paths import radius_center, shortest_path_tree
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..protocols.convergecast import rooted_tree_structure
from ..sim.delays import DelayModel
from .clock_base import ClockProcess, ClockStats, run_clock_sync

__all__ = ["BetaStarProcess", "run_beta_star", "center_spt"]


def center_spt(graph: WeightedGraph) -> tuple[WeightedGraph, Vertex]:
    """An SPT rooted at a weighted center: depth <= script-D."""
    _, center = radius_center(graph)
    return shortest_path_tree(graph, center), center


class BetaStarProcess(ClockProcess):
    """One node of synchronizer beta*."""

    def __init__(
        self,
        target: int,
        parent: Vertex | None,
        children: list[Vertex],
    ) -> None:
        super().__init__(target)
        self.parent = parent
        self.children = children
        self._child_done: dict[int, int] = {}

    def on_start(self) -> None:
        self.generate_pulse()  # pulse 0

    def after_pulse(self, pulse: int) -> None:
        self._maybe_report(pulse)

    def _maybe_report(self, pulse: int) -> None:
        if self.pulse < pulse:
            return
        if self._child_done.get(pulse, 0) < len(self.children):
            return
        if self.parent is not None:
            self.send(self.parent, ("done", pulse), tag="beta")
        else:
            # Leader: the whole tree is done with this pulse.
            self._go(pulse + 1)

    def _go(self, pulse: int) -> None:
        for c in self.children:
            self.send(c, ("go", pulse), tag="beta")
        self.generate_pulse()

    def on_message(self, frm: Vertex, payload: Any) -> None:
        kind, pulse = payload
        if kind == "done":
            self._child_done[pulse] = self._child_done.get(pulse, 0) + 1
            self._maybe_report(pulse)
        elif kind == "go":
            self._go(pulse)
        else:
            raise AssertionError(f"unknown beta* message {kind!r}")


def run_beta_star(
    graph: WeightedGraph,
    target: int,
    *,
    tree: WeightedGraph | None = None,
    root: Vertex | None = None,
    delay: DelayModel | None = None,
    seed: int = 0,
    serialize: bool = False,
) -> ClockStats:
    """Run beta* for ``target`` pulses over the given (or default) tree.

    Note the synchronizer's messages travel only on tree edges; the run is
    simulated on the tree subgraph, which is faithful since beta* never
    uses non-tree edges.
    """
    if tree is None:
        tree, root = center_spt(graph)
    elif root is None:
        raise ValueError("explicit tree needs an explicit root")
    parent, children = rooted_tree_structure(tree, root)
    return run_clock_sync(
        tree,
        lambda v: BetaStarProcess(target, parent[v], children[v]),
        target,
        delay=delay,
        seed=seed,
        serialize=serialize,
    )
