"""Network normalization and the in-synch protocol transform (Section 4.3).

Lemma 4.5: any synchronous protocol ``pi`` on a weighted synchronous
network ``G`` can be transformed into a protocol ``pi'`` on a *normalized*
network ``G'`` (all weights powers of two, Definition 4.3) such that
``pi'`` is *in synch* with ``G'`` (messages on an edge of weight ``w``
leave only at pulses divisible by ``w``, Definition 4.2), the outputs are
identical, and time / communication grow by at most a factor of 4 / 2.

The three steps of the paper map onto :class:`InSynchWrapper` as follows:

* **Step 1 (slow down x4):** inner pulse ``t`` executes at outer pulse
  ``4t``; a message sent at inner time ``S`` is *processed* by the receiver
  at inner time ``S + w`` (outer ``4(S + w)``), regardless of its actual
  earlier arrival — early arrivals sit in an edge buffer.
* **Step 2 (normalized weights):** the transformed protocol runs on
  ``G' = power(G)`` where ``power(w) = 2^ceil(log2 w)``, so transit takes
  ``power(w) <= 2w`` outer pulses.
* **Step 3 (align send times):** the actual transmission is deferred to
  ``next_power(4S)``, the first pulse ``>= 4S`` divisible by ``power(w)``;
  since ``next_power(4S) + power(w) <= 4S + 4w - 1 < 4(S + w)``, the
  message still arrives before its processing time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.sync_runner import SynchronousProtocol

__all__ = ["power", "next_multiple", "normalize_graph", "InSynchWrapper"]


def power(w: float) -> int:
    """``power(w)`` — the smallest power of two >= w (Definition 4.6)."""
    if w < 1:
        raise ValueError("weights must be >= 1 for normalization")
    p = 1
    while p < w:
        p *= 2
    return p


def next_multiple(t: int, m: int) -> int:
    """``next_m(t)`` — the first time >= t divisible by m (Definition 4.7)."""
    if t % m == 0:
        return t
    return (t // m + 1) * m


def normalize_graph(graph: WeightedGraph) -> WeightedGraph:
    """``G' = (V, E, power(w))`` — round every weight up to a power of two."""
    g = WeightedGraph(vertices=graph.vertices)
    for u, v, w in graph.edges():
        g.add_edge(u, v, float(power(w)))
    return g


class InSynchWrapper(SynchronousProtocol):
    """Lemma 4.5's ``pi'``: hosts ``inner`` slowed x4 and in synch with G'.

    Runs on the *normalized* graph; needs the original weights to compute
    inner processing times.  Message payloads on the wire are
    ``(inner_payload, inner_send_time)``.
    """

    SLOWDOWN = 4

    def __init__(self, inner: SynchronousProtocol,
                 original_weights: dict[Vertex, float]) -> None:
        self.inner = inner
        self.original_weights = original_weights
        # outgoing[outer_pulse] = [(to, payload_on_wire), ...]
        self._outgoing: dict[int, list] = defaultdict(list)
        # inner inbox buffered by inner processing time
        self._inner_inbox: dict[int, list] = defaultdict(list)
        self._pending_sends = 0
        self.inner.sync = InSynchWrapper._InnerSync(self)

    # The runner injects self.sync; the inner protocol gets a shim that
    # captures its sends so we can defer them.
    class _InnerSync:
        def __init__(self, outer: InSynchWrapper) -> None:
            self._outer = outer
            self.outbox: list = []
            self.finished = False
            self.result: Any = None

        @property
        def node_id(self):
            return self._outer.sync.node_id

        @property
        def neighbors(self):
            return self._outer.sync.neighbors

        @property
        def weights(self):
            # The inner protocol sees the ORIGINAL weights.
            return self._outer.original_weights

        def send(self, to, payload):
            if to not in self.weights:
                raise ValueError(f"no edge to {to!r}")
            self.outbox.append((to, payload))

        def finish(self, result=None):
            if not self.finished:
                self.finished = True
                self.result = result

        def drain(self):
            out, self.outbox = self.outbox, []
            return out

    def on_pulse(self, pulse: int, inbox: list[tuple[Vertex, Any]]) -> None:
        # Buffer arrivals until their inner processing time 4 * (S + w).
        for frm, wire in inbox:
            payload, sent_inner = wire
            deliver_inner = sent_inner + int(self.original_weights[frm])
            self._inner_inbox[deliver_inner].append((frm, payload))

        # Execute the inner pulse if this outer pulse is 4t.
        if pulse % self.SLOWDOWN == 0:
            t = pulse // self.SLOWDOWN
            self.inner.on_pulse(t, self._inner_inbox.pop(t, []))
            for to, payload in self.inner.sync.drain():
                w_hat = power(self.original_weights[to])
                send_at = next_multiple(pulse, w_hat)
                self._outgoing[send_at].append((to, (payload, t)))
                self._pending_sends += 1

        # Flush transmissions scheduled for this pulse (always divisible by
        # the normalized edge weight: in-synch by construction).
        for to, wire in self._outgoing.pop(pulse, []):
            self.sync.send(to, wire)
            self._pending_sends -= 1

        if self.inner.sync.finished and self._pending_sends == 0:
            self.finish(self.inner.sync.result)

    @property
    def inner_result(self) -> Any:
        sync = getattr(self.inner, "sync", None)
        return sync.result if sync is not None else None
