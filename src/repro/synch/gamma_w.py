"""Synchronizer gamma_w — weighted network synchronization (Section 4).

Simulates a *weighted synchronous* network (delay on edge e exactly w(e))
on a *weighted asynchronous* network (delays adversarial in [0, w(e)]).
The construction follows Section 4.2:

* the network is normalized (weights rounded to powers of two) and the
  hosted protocol transformed to be in synch with it
  (:mod:`repro.synch.normalize`, Lemma 4.5);
* edges are stratified by weight: level ``i`` holds the edges of weight
  exactly ``2^i``.  A message sent on a level-i edge leaves at a pulse
  divisible by ``2^i`` and must arrive ``2^i`` pulses later — i.e. by the
  *next super-pulse* of level i — so one synchronizer-gamma instance per
  level (on the subgraph ``G_i``) is exactly what is needed: gamma_i
  treats pulse ``P * 2^i`` as its super-pulse ``P`` and guarantees
  super-pulse P is executed only after all level-i messages of super-pulse
  P-1 arrived;
* a vertex executes pulse ``p`` once, for every level i with ``2^i | p``
  in which it has edges, gamma_i has issued GO for super-pulse ``p / 2^i``
  (the paper's example: pulse 24 = 3 * 2^3 waits for gamma_0..gamma_3 to
  carry their pulses 24, 12, 6 and 3).

Safety detection uses acknowledgments: every protocol message is acked on
arrival, and a vertex is *safe* w.r.t. super-pulse P of level i once it
has executed pulse ``P * 2^i`` and all its level-i messages from that
pulse are acked (Definition 4.1 specialized to the stratification).

Costs (Lemma 4.8): per pulse, amortized over the 2^i-pulse spacing of each
level, communication ``O(k n log W)`` and time ``O(log_k n log W)``; with
``W = poly(n)`` these are ``O(k n log n)`` and ``O(log_k n log n)``.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Callable
from typing import Any

from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network
from ..sim.process import Process
from ..sim.sync_runner import SynchronousProtocol, SynchronousRunner
from .gamma import GammaNode
from .normalize import InSynchWrapper, normalize_graph
from .partition import ClusterPartition, build_partition

__all__ = ["GammaWConfig", "GammaWHost", "GammaWResult", "run_gamma_w",
           "run_synchronous_baseline"]


class GammaWConfig:
    """Preprocessed structures shared by every host process.

    Holds the normalized graph, the per-level subgraphs ``G_i`` and their
    cluster partitions.  All of this is static preprocessing, computed once
    (the paper amortizes preprocessing away; we do not charge it to the
    per-pulse overheads either, but the benchmarks report it separately).
    """

    def __init__(self, graph: WeightedGraph, k: int = 2) -> None:
        self.original = graph
        self.normalized = normalize_graph(graph)
        self.k = k
        # Stratify edges by level: weight exactly 2^i in the normalized net.
        levels: dict[int, list] = defaultdict(list)
        for u, v, w in self.normalized.edges():
            i = int(round(math.log2(w)))
            levels[i].append((u, v, w))
        self.levels: dict[int, WeightedGraph] = {}
        self.partitions: dict[int, ClusterPartition] = {}
        self.participants: dict[int, frozenset] = {}
        for i, edges in sorted(levels.items()):
            sub = WeightedGraph(edges=edges)
            self.levels[i] = sub
            self.partitions[i] = build_partition(sub, k)
            self.participants[i] = frozenset(sub.vertices)

    def levels_of(self, v: Vertex) -> list[int]:
        return [i for i, parts in self.participants.items() if v in parts]


class _HostSyncShim:
    """The SyncContext look-alike handed to the hosted InSynchWrapper."""

    def __init__(self, host: GammaWHost) -> None:
        self._host = host
        self.node_id = host.node_id
        self.neighbors = host.ctx.neighbors
        self.weights = host.ctx.weights  # normalized weights
        self.finished = False
        self.result: Any = None

    def send(self, to: Vertex, payload: Any) -> None:
        self._host.protocol_send(to, payload)

    def finish(self, result: Any = None) -> None:
        if not self.finished:
            self.finished = True
            self.result = result
            self._host.wrapper_finished(result)


class GammaWHost(Process):
    """One node of the gamma_w synchronizer hosting one wrapped protocol."""

    def __init__(
        self,
        node_id: Vertex,
        config: GammaWConfig,
        inner_factory: Callable[[Vertex], SynchronousProtocol],
        max_pulse: int,
    ) -> None:
        self._node = node_id
        self.config = config
        self.max_pulse = max_pulse
        inner = inner_factory(node_id)
        self.wrapper = InSynchWrapper(
            inner, config.original.neighbor_weights(node_id)
        )
        self.my_levels = config.levels_of(node_id)
        self.gammas: dict[int, GammaNode] = {}
        self.go_level: dict[int, int] = {i: 0 for i in self.my_levels}
        self.pending_acks: dict[int, dict[int, int]] = {
            i: defaultdict(int) for i in self.my_levels
        }
        self.next_pulse = 0
        self.pulses_executed = 0
        self._inbox: dict[int, list] = defaultdict(list)
        self._advancing = False

    # -------------------------------------------------------------- #
    # Wiring
    # -------------------------------------------------------------- #

    def on_start(self) -> None:
        self.wrapper.sync = _HostSyncShim(self)
        for i in self.my_levels:
            self.gammas[i] = GammaNode(
                self._node,
                self.config.partitions[i],
                send=lambda to, msg, i=i: self._send_gamma(to, i, msg),
                on_go=lambda P, i=i: self._on_go(i, P),
            )
        self._advance()

    def _send_gamma(self, to: Vertex, i: int, msg: Any) -> None:
        with self.trace_span("sync-gamma", detail=i):
            self.send(to, ("gamma", i, msg), tag="sync-gamma")

    def on_message(self, frm: Vertex, payload: Any) -> None:
        kind = payload[0]
        if kind == "proto":
            _, wire, send_pulse = payload
            arrive_pulse = send_pulse + int(self.edge_weight(frm))
            self._inbox[arrive_pulse].append((frm, wire))
            with self.trace_span("sync-ack"):
                self.send(frm, ("ack", send_pulse), tag="sync-ack")
            self._advance()
        elif kind == "ack":
            _, send_pulse = payload
            i = self._level_of_edge(frm)
            big_p = send_pulse >> i
            self.pending_acks[i][big_p] -= 1
            self._check_safety(i, big_p)
        elif kind == "gamma":
            _, i, msg = payload
            self.gammas[i].handle(frm, msg)
            self._advance()
        else:  # pragma: no cover
            raise AssertionError(f"unknown gamma_w message {kind!r}")

    def _level_of_edge(self, nbr: Vertex) -> int:
        return int(round(math.log2(self.edge_weight(nbr))))

    # -------------------------------------------------------------- #
    # Protocol sends and safety
    # -------------------------------------------------------------- #

    def protocol_send(self, to: Vertex, wire: Any) -> None:
        """Transmit a wrapped-protocol message at the current local pulse."""
        pulse = self.next_pulse  # the pulse currently executing
        i = self._level_of_edge(to)
        if pulse % (1 << i) != 0:  # pragma: no cover - wrapper is in synch
            raise AssertionError(
                f"in-synch violation: pulse {pulse} on level-{i} edge"
            )
        self.pending_acks[i][pulse >> i] += 1
        self.send(to, ("proto", wire, pulse), tag="proto")

    def _check_safety(self, i: int, big_p: int) -> None:
        """Declare (i, P) safe if pulse P*2^i executed and all acks in."""
        if self.pending_acks[i][big_p] == 0 and self.next_pulse > (big_p << i):
            self.gammas[i].node_safe(big_p)

    def _on_go(self, i: int, big_p: int) -> None:
        self.go_level[i] = max(self.go_level[i], big_p)
        self._advance()

    def wrapper_finished(self, result: Any) -> None:
        self.finish(result)

    # -------------------------------------------------------------- #
    # Pulse engine
    # -------------------------------------------------------------- #

    def _may_execute(self, pulse: int) -> bool:
        if pulse > self.max_pulse:
            return False
        for i in self.my_levels:
            if pulse % (1 << i) == 0 and self.go_level[i] < (pulse >> i):
                return False
        return True

    def _advance(self) -> None:
        if self._advancing:  # guard against reentrancy via synchronous GOs
            return
        self._advancing = True
        try:
            while self._may_execute(self.next_pulse):
                pulse = self.next_pulse
                # Rolls this node's "pulse" trace span: protocol sends of
                # the pulse (and nested ack/gamma traffic until the next
                # pulse) are attributed under it (no-op untraced).
                self.trace_pulse(pulse)
                self.wrapper.on_pulse(pulse, self._inbox.pop(pulse, []))
                self.next_pulse = pulse + 1
                self.pulses_executed += 1
                for i in self.my_levels:
                    if pulse % (1 << i) == 0:
                        self._check_safety(i, pulse >> i)
        finally:
            self._advancing = False


class GammaWResult:
    """Outcome of a gamma_w run, with overhead accounting."""

    def __init__(self, net_result, config: GammaWConfig, max_pulse: int,
                 completed: bool = True) -> None:
        self.net_result = net_result
        self.config = config
        self.max_pulse = max_pulse
        self.completed = completed
        m = net_result.metrics
        self.proto_cost = m.cost_by_tag.get("proto", 0.0)
        self.ack_cost = m.cost_by_tag.get("sync-ack", 0.0)
        self.gamma_cost = m.cost_by_tag.get("sync-gamma", 0.0)
        self.overhead_cost = self.ack_cost + self.gamma_cost
        self.comm_cost = m.comm_cost
        self.time = m.completion_time
        self.pulses = max(
            p.pulses_executed for p in net_result.processes.values()
        )

    def result_of(self, v: Vertex) -> Any:
        return self.net_result.processes[v].wrapper.inner_result

    def results(self) -> dict:
        return {v: self.result_of(v) for v in self.net_result.processes}

    @property
    def comm_overhead_per_pulse(self) -> float:
        """The paper's C(gamma_w): synchronization cost amortized per pulse."""
        return self.overhead_cost / max(1, self.pulses)

    @property
    def time_per_pulse(self) -> float:
        """The paper's T(gamma_w): physical time amortized per pulse."""
        return self.time / max(1, self.pulses)


def run_gamma_w(
    graph: WeightedGraph,
    inner_factory: Callable[[Vertex], SynchronousProtocol],
    *,
    k: int = 2,
    max_pulse: int,
    delay: DelayModel | None = None,
    seed: int = 0,
    config: GammaWConfig | None = None,
    budget: float | None = None,
    recorder: Any | None = None,
) -> GammaWResult:
    """Run a synchronous protocol on an asynchronous network via gamma_w.

    ``max_pulse`` caps the outer (x4-slowed, normalized) pulse counter; it
    must be at least ``4 * (inner completion pulse + 1)``.  The run stops as
    soon as every node's hosted protocol has finished, or — when ``budget``
    is given — as soon as the communication cost reaches the budget (the
    result's ``completed`` flag is then False).

    ``recorder`` attaches structured tracing (``repro.obs``): each node's
    pulses roll a ``pulse`` span, with ``sync-ack``/``sync-gamma``
    sub-spans for the synchronizer's control traffic, so the per-span
    cost breakdown of the trace refines this function's tag accounting.
    """
    cfg = config if config is not None else GammaWConfig(graph, k)
    net = Network(
        cfg.normalized,
        lambda v: GammaWHost(v, cfg, inner_factory, max_pulse),
        delay=delay,
        seed=seed,
        comm_budget=budget,
        recorder=recorder,
    )
    net_result = net.run(stop_when=lambda nw: nw.all_finished)
    if not net.all_finished:
        if budget is not None:
            return GammaWResult(net_result, cfg, max_pulse, completed=False)
        unfinished = [
            v for v, p in net_result.processes.items() if not p.ctx.is_finished
        ]
        raise RuntimeError(
            f"gamma_w stalled: {len(unfinished)} nodes unfinished "
            f"(max_pulse={max_pulse} too small?)"
        )
    return GammaWResult(net_result, cfg, max_pulse)


def run_synchronous_baseline(
    graph: WeightedGraph,
    inner_factory: Callable[[Vertex], SynchronousProtocol],
    max_pulses: int = 1_000_000,
):
    """Reference run of the same protocol on the weighted synchronous net.

    Returns the :class:`~repro.sim.sync_runner.SyncRunResult`; used to
    measure ``c_pi`` / ``t_pi`` and to check output equivalence.
    """
    runner = SynchronousRunner(graph, inner_factory)
    return runner.run(max_pulses)
