"""Clock synchronizer alpha* (Section 3.1).

The naive rule: whenever a node generates pulse ``p`` it sends a message to
every neighbor, and when it has received the pulse-``p`` messages of *all*
neighbors it generates ``p+1``.  Correct, but each pulse costs
``2 * script-E`` communication and its delay is governed by the heaviest
incident edge — ``Theta(W)`` overall — whereas the lower bound is only
``Omega(d)``.  alpha* is the baseline gamma* improves on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from .clock_base import ClockProcess, ClockStats, run_clock_sync

__all__ = ["AlphaStarProcess", "run_alpha_star"]


class AlphaStarProcess(ClockProcess):
    """One node of synchronizer alpha*."""

    def __init__(self, target: int) -> None:
        super().__init__(target)
        self._received: dict[int, int] = defaultdict(int)

    def on_start(self) -> None:
        self.generate_pulse()  # pulse 0

    def after_pulse(self, pulse: int) -> None:
        for v in self.neighbors():
            self.send(v, pulse, tag="alpha")
        self._try_advance()

    def on_message(self, frm: Vertex, pulse: Any) -> None:
        self._received[pulse] += 1
        self._try_advance()

    def _try_advance(self) -> None:
        while self._received[self.pulse] == len(self.neighbors()):
            self.generate_pulse()


def run_alpha_star(
    graph: WeightedGraph,
    target: int,
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
    serialize: bool = False,
) -> ClockStats:
    """Run alpha* for ``target`` pulses; returns pulse-delay statistics."""
    return run_clock_sync(
        graph,
        lambda v: AlphaStarProcess(target),
        target,
        delay=delay,
        seed=seed,
        serialize=serialize,
    )
