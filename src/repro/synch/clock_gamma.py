"""Clock synchronizer gamma* (Section 3.3).

gamma* combines beta* inside each tree of a *tree edge-cover*
(Definition 3.1, built in :mod:`repro.covers.tree_cover`) with an alpha*-
style exchange between neighboring trees (trees sharing a node).  Per
pulse ``p``, each tree ``t``:

1. convergecasts "all of t generated pulse p" to t's leader (beta phase);
2. the leader broadcasts TREE_DONE down t; every member sitting in some
   other tree ``t'`` relays the notice up t' to t''s leader;
3. once a leader knows its own tree and all neighboring trees are done
   with pulse p it broadcasts GO(p+1); a node generates pulse p+1 when
   every tree containing it says GO.

Correctness: for every edge (u, v) some tree contains both endpoints
(property 3 of the cover), so v's GO implies u finished pulse p.  Delay:
each phase is a constant number of depth-``O(d log n)`` tree traversals,
and since every edge is shared by at most ``O(log n)`` trees the
congestion on a serialized link adds at most another ``O(log n)`` factor —
total pulse delay ``O(d log^2 n)``, against the ``Omega(d)`` lower bound.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..covers.tree_cover import TreeEdgeCover, build_tree_edge_cover
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..protocols.convergecast import rooted_tree_structure
from ..sim.delays import DelayModel
from .clock_base import ClockProcess, ClockStats, run_clock_sync

__all__ = ["GammaStarProcess", "GammaStarConfig", "run_gamma_star"]


class GammaStarConfig:
    """Preprocessed per-node views of the tree edge-cover."""

    def __init__(self, graph: WeightedGraph, cover: TreeEdgeCover) -> None:
        self.graph = graph
        self.cover = cover
        self.trees = cover.trees
        # Rooted orientation of every tree.
        self.parent: list[dict] = []
        self.children: list[dict] = []
        for ct in cover.trees:
            parent, children = rooted_tree_structure(ct.tree, ct.root)
            self.parent.append(parent)
            self.children.append(children)
        # Which trees contain each vertex.
        self.trees_of: dict[Vertex, list[int]] = defaultdict(list)
        for idx, ct in enumerate(cover.trees):
            for v in ct.vertices:
                self.trees_of[v].append(idx)
        # Neighboring trees: trees sharing at least one vertex.
        self.neighbor_trees: list[frozenset] = []
        shared: dict[int, set[int]] = defaultdict(set)
        for v, idxs in self.trees_of.items():
            for i in idxs:
                for j in idxs:
                    if i != j:
                        shared[i].add(j)
        for idx in range(len(cover.trees)):
            self.neighbor_trees.append(frozenset(shared[idx]))


# Message kinds: every payload is (kind, tree_index, pulse[, extra]).
_SUBTREE = "subtree_done"
_TREEDONE = "tree_done"
_RELAY = "nbr_done"       # extra = originating tree index
_GO = "go"


class GammaStarProcess(ClockProcess):
    """One node of synchronizer gamma*."""

    def __init__(self, node_id: Vertex, config: GammaStarConfig, target: int) -> None:
        super().__init__(target)
        self._node = node_id
        self.config = config
        self.my_trees = list(config.trees_of[node_id])
        # per-tree bookkeeping, keyed (tree, pulse)
        self._child_done: dict[tuple, int] = defaultdict(int)
        self._reported: set[tuple] = set()
        self._tree_done_seen: set[tuple] = set()
        self._go_received: dict[int, set[int]] = defaultdict(set)
        # leader state
        self._nbr_done: dict[tuple, set[int]] = defaultdict(set)
        self._own_done: set[tuple] = set()
        self._go_issued: set[tuple] = set()

    # -------------------------------------------------------------- #

    def on_start(self) -> None:
        self.generate_pulse()  # pulse 0

    def after_pulse(self, pulse: int) -> None:
        for t in self.my_trees:
            self._maybe_report(t, pulse)

    def on_message(self, frm: Vertex, payload: Any) -> None:
        kind, t, pulse = payload[0], payload[1], payload[2]
        if kind == _SUBTREE:
            self._child_done[(t, pulse)] += 1
            self._maybe_report(t, pulse)
        elif kind == _TREEDONE:
            self._on_tree_done(t, pulse)
        elif kind == _RELAY:
            self._route_relay(t, pulse, payload[3])
        elif kind == _GO:
            self._on_go(t, pulse)
        else:  # pragma: no cover
            raise AssertionError(f"unknown gamma* message {kind!r}")

    # ----- phase 1: beta convergecast inside each tree -------------- #

    def _maybe_report(self, t: int, pulse: int) -> None:
        key = (t, pulse)
        if key in self._reported or self.pulse < pulse:
            return
        if self._child_done[key] < len(self.config.children[t][self._node]):
            return
        self._reported.add(key)
        parent = self.config.parent[t][self._node]
        if parent is None:
            self._own_done.add(key)
            self._on_tree_done(t, pulse)
            self._maybe_issue_go(t, pulse)
        else:
            self.send(parent, (_SUBTREE, t, pulse), tag="gamma*")

    # ----- phase 2: TREE_DONE broadcast + inter-tree relay ---------- #

    def _on_tree_done(self, t: int, pulse: int) -> None:
        key = (t, pulse)
        if key in self._tree_done_seen:
            return
        self._tree_done_seen.add(key)
        for c in self.config.children[t][self._node]:
            self.send(c, (_TREEDONE, t, pulse), tag="gamma*")
        # Relay into every other tree containing this node.
        for t2 in self.my_trees:
            if t2 != t and t in self.config.neighbor_trees[t2]:
                self._route_relay(t2, pulse, t)

    def _route_relay(self, t2: int, pulse: int, origin: int) -> None:
        parent = self.config.parent[t2][self._node]
        if parent is None:
            self._nbr_done[(t2, pulse)].add(origin)
            self._maybe_issue_go(t2, pulse)
        else:
            self.send(parent, (_RELAY, t2, pulse, origin), tag="gamma*")

    # ----- phase 3: GO --------------------------------------------- #

    def _maybe_issue_go(self, t: int, pulse: int) -> None:
        key = (t, pulse)
        if key in self._go_issued or key not in self._own_done:
            return
        if not self._nbr_done[key] >= self.config.neighbor_trees[t]:
            return
        self._go_issued.add(key)
        self._on_go(t, pulse + 1)

    def _on_go(self, t: int, pulse: int) -> None:
        for c in self.config.children[t][self._node]:
            self.send(c, (_GO, t, pulse), tag="gamma*")
        self._go_received[pulse].add(t)
        self._try_pulse(pulse)

    def _try_pulse(self, pulse: int) -> None:
        if pulse != self.pulse + 1:
            return
        if self._go_received[pulse] >= set(self.my_trees):
            self.generate_pulse()


def run_gamma_star(
    graph: WeightedGraph,
    target: int,
    *,
    cover: TreeEdgeCover | None = None,
    delay: DelayModel | None = None,
    seed: int = 0,
    serialize: bool = False,
) -> ClockStats:
    """Run gamma* for ``target`` pulses; returns pulse-delay statistics."""
    if cover is None:
        cover = build_tree_edge_cover(graph)
    config = GammaStarConfig(graph, cover)
    return run_clock_sync(
        graph,
        lambda v: GammaStarProcess(v, config, target),
        target,
        delay=delay,
        seed=seed,
        serialize=serialize,
    )
