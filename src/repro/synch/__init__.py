"""Synchronizers: clock synchronization (Sec 3) and network synchronization (Sec 4)."""

from .clock_alpha import AlphaStarProcess, run_alpha_star
from .clock_base import ClockProcess, ClockStats, check_causality, run_clock_sync
from .clock_beta import BetaStarProcess, center_spt, run_beta_star
from .clock_gamma import GammaStarConfig, GammaStarProcess, run_gamma_star
from .gamma import GammaNode, gamma_configs
from .gamma_w import (
    GammaWConfig,
    GammaWHost,
    GammaWResult,
    run_gamma_w,
    run_synchronous_baseline,
)
from .normalize import InSynchWrapper, next_multiple, normalize_graph, power
from .partition import ClusterInfo, ClusterPartition, build_partition

__all__ = [
    "ClockProcess",
    "ClockStats",
    "run_clock_sync",
    "check_causality",
    "AlphaStarProcess",
    "run_alpha_star",
    "BetaStarProcess",
    "run_beta_star",
    "center_spt",
    "GammaStarProcess",
    "GammaStarConfig",
    "run_gamma_star",
    "GammaNode",
    "gamma_configs",
    "ClusterPartition",
    "ClusterInfo",
    "build_partition",
    "power",
    "next_multiple",
    "normalize_graph",
    "InSynchWrapper",
    "GammaWConfig",
    "GammaWHost",
    "GammaWResult",
    "run_gamma_w",
    "run_synchronous_baseline",
]

from .host_base import SynchronizerHostBase  # noqa: E402
from .simple_synchronizers import (  # noqa: E402
    AlphaWHost,
    BetaWHost,
    SimpleSyncResult,
    run_alpha_w,
    run_beta_w,
)

__all__ += [
    "SynchronizerHostBase",
    "AlphaWHost",
    "BetaWHost",
    "SimpleSyncResult",
    "run_alpha_w",
    "run_beta_w",
]
