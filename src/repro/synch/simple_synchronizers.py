"""Network synchronizers alpha_w and beta_w — the baselines gamma_w beats.

Section 4 builds gamma_w out of the two trivial synchronizers of [Awe85a],
generalized to the weighted setting:

* **alpha_w** — after executing pulse ``p`` and having all its pulse-p
  protocol messages acknowledged, a node floods SAFE(p) to every neighbor;
  pulse ``p+1`` runs once SAFE(p) arrived from *all* neighbors.
  Per pulse: communication ``Theta(script-E)`` (one SAFE per directed
  edge), time ``Theta(W)`` (the heaviest incident edge gates every pulse).

* **beta_w** — safety is convergecast over a rooted spanning tree to a
  leader, which broadcasts GO(p+1).  Per pulse: communication
  ``Theta(w(T))`` and time ``Theta(depth(T))`` — optimal in communication
  with a *shallow-light* tree (weight O(V), depth O(D)), but the time is
  always Omega(D).

gamma_w interpolates: O(k n log n) communication with O(log_k n log n)
time.  The ablation benchmark charts all three on the same workloads.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable
from typing import Any

from ..faults.plan import FaultPlan
from ..faults.transport import reliable_factory
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network
from ..sim.sync_runner import SynchronousProtocol
from ..protocols.convergecast import rooted_tree_structure
from .host_base import SynchronizerHostBase
from .normalize import normalize_graph

__all__ = ["AlphaWHost", "BetaWHost", "SimpleSyncResult", "run_alpha_w",
           "run_beta_w"]


class AlphaWHost(SynchronizerHostBase):
    """One node of synchronizer alpha_w."""

    def __init__(self, node_id, original, inner_factory, max_pulse) -> None:
        super().__init__(node_id, original, inner_factory, max_pulse)
        self._pending_acks: dict[int, int] = defaultdict(int)
        self._executed: set[int] = set()
        self._safe_sent: set[int] = set()
        self._nbr_safe: dict[int, int] = defaultdict(int)

    def _may_execute(self, pulse: int) -> bool:
        if pulse == 0:
            return True
        return self._nbr_safe[pulse - 1] >= len(self.neighbors())

    def _after_pulse(self, pulse: int) -> None:
        self._executed.add(pulse)
        self._maybe_safe(pulse)

    def _on_protocol_send(self, to: Vertex, pulse: int) -> None:
        self._pending_acks[pulse] += 1

    def _on_ack(self, frm: Vertex, send_pulse: int) -> None:
        self._pending_acks[send_pulse] -= 1
        self._maybe_safe(send_pulse)

    def _maybe_safe(self, pulse: int) -> None:
        if pulse in self._safe_sent or pulse not in self._executed:
            return
        if self._pending_acks[pulse] > 0:
            return
        self._safe_sent.add(pulse)
        with self.trace_span("sync-alpha", detail=pulse):
            for v in self.neighbors():
                self.send(v, ("safe", pulse), tag="sync-alpha")

    def handle_control(self, frm: Vertex, payload: Any) -> None:
        kind, pulse = payload
        assert kind == "safe"
        self._nbr_safe[pulse] += 1
        self._advance()


class BetaWHost(SynchronizerHostBase):
    """One node of synchronizer beta_w (tree-based).

    ``tree_parent`` / ``tree_children`` describe the preprocessing tree
    (weights of the tree edges are the network's — all control traffic
    stays on tree edges, which must exist in the simulated graph).
    """

    def __init__(self, node_id, original, inner_factory, max_pulse,
                 tree_parent: Vertex | None,
                 tree_children: list[Vertex]) -> None:
        super().__init__(node_id, original, inner_factory, max_pulse)
        self.tree_parent = tree_parent
        self.tree_children = tree_children
        self._pending_acks: dict[int, int] = defaultdict(int)
        self._executed: set[int] = set()
        self._reported: set[int] = set()
        self._children_safe: dict[int, int] = defaultdict(int)
        self._go_pulse = 0

    def _may_execute(self, pulse: int) -> bool:
        return pulse <= self._go_pulse

    def _after_pulse(self, pulse: int) -> None:
        self._executed.add(pulse)
        self._maybe_report(pulse)

    def _on_protocol_send(self, to: Vertex, pulse: int) -> None:
        self._pending_acks[pulse] += 1

    def _on_ack(self, frm: Vertex, send_pulse: int) -> None:
        self._pending_acks[send_pulse] -= 1
        self._maybe_report(send_pulse)

    def _maybe_report(self, pulse: int) -> None:
        if pulse in self._reported or pulse not in self._executed:
            return
        if self._pending_acks[pulse] > 0:
            return
        if self._children_safe[pulse] < len(self.tree_children):
            return
        self._reported.add(pulse)
        if self.tree_parent is not None:
            with self.trace_span("sync-beta", detail=pulse):
                self.send(self.tree_parent, ("subtree_safe", pulse),
                          tag="sync-beta")
        else:
            self._issue_go(pulse + 1)

    def _issue_go(self, pulse: int) -> None:
        self._go_pulse = max(self._go_pulse, pulse)
        with self.trace_span("sync-beta", detail=pulse):
            for c in self.tree_children:
                self.send(c, ("go", pulse), tag="sync-beta")
        self._advance()

    def handle_control(self, frm: Vertex, payload: Any) -> None:
        kind, pulse = payload
        if kind == "subtree_safe":
            self._children_safe[pulse] += 1
            self._maybe_report(pulse)
        elif kind == "go":
            self._issue_go(pulse)
        else:  # pragma: no cover
            raise AssertionError(f"unknown beta_w message {kind!r}")


class SimpleSyncResult:
    """Outcome of an alpha_w / beta_w run, mirroring GammaWResult."""

    def __init__(self, net_result, max_pulse: int, control_tag: str) -> None:
        self.net_result = net_result
        self.max_pulse = max_pulse
        m = net_result.metrics
        self.proto_cost = m.cost_by_tag.get("proto", 0.0)
        self.ack_cost = m.cost_by_tag.get("sync-ack", 0.0)
        self.control_cost = m.cost_by_tag.get(control_tag, 0.0)
        self.overhead_cost = self.ack_cost + self.control_cost
        self.comm_cost = m.comm_cost
        self.time = m.completion_time
        self.pulses = max(
            p.pulses_executed for p in net_result.processes.values()
        )

    def result_of(self, v: Vertex) -> Any:
        return self.net_result.processes[v].wrapper.inner_result

    def results(self) -> dict:
        return {v: self.result_of(v) for v in self.net_result.processes}

    @property
    def comm_overhead_per_pulse(self) -> float:
        return self.overhead_cost / max(1, self.pulses)

    @property
    def time_per_pulse(self) -> float:
        return self.time / max(1, self.pulses)


def _run_host(graph, factory, max_pulse, delay, seed, control_tag,
              faults=None, reliable=False, transport=None):
    normalized = normalize_graph(graph)
    if reliable:
        factory = reliable_factory(factory, **(transport or {}))
    net = Network(normalized, factory, delay=delay, seed=seed, faults=faults)
    result = net.run(stop_when=lambda n: n.all_finished)
    if not net.all_finished:
        if faults is not None:
            # Under an adversary a stall is a legitimate, detectable
            # outcome; hand the partial result back instead of raising.
            return SimpleSyncResult(result, max_pulse, control_tag)
        raise RuntimeError("synchronizer stalled (max_pulse too small?)")
    return SimpleSyncResult(result, max_pulse, control_tag)


def run_alpha_w(
    graph: WeightedGraph,
    inner_factory: Callable[[Vertex], SynchronousProtocol],
    *,
    max_pulse: int,
    delay: DelayModel | None = None,
    seed: int = 0,
    faults: FaultPlan | None = None,
    reliable: bool = False,
    transport: dict | None = None,
) -> SimpleSyncResult:
    """Run a synchronous protocol under synchronizer alpha_w."""
    return _run_host(
        graph,
        lambda v: AlphaWHost(v, graph, inner_factory, max_pulse),
        max_pulse, delay, seed, "sync-alpha",
        faults, reliable, transport,
    )


def run_beta_w(
    graph: WeightedGraph,
    inner_factory: Callable[[Vertex], SynchronousProtocol],
    *,
    max_pulse: int,
    tree: WeightedGraph | None = None,
    root: Vertex | None = None,
    delay: DelayModel | None = None,
    seed: int = 0,
    faults: FaultPlan | None = None,
    reliable: bool = False,
    transport: dict | None = None,
) -> SimpleSyncResult:
    """Run a synchronous protocol under synchronizer beta_w.

    The coordination tree defaults to a shallow-light tree (weight O(V),
    depth O(D)) rooted at an SLT root — the optimal instantiation.
    """
    if tree is None:
        from ..core.slt import shallow_light_tree

        root = graph.vertices[0]
        tree = shallow_light_tree(graph, root, q=2.0).tree
    elif root is None:
        raise ValueError("explicit tree needs an explicit root")
    parent, children = rooted_tree_structure(tree, root)
    return _run_host(
        graph,
        lambda v: BetaWHost(v, graph, inner_factory, max_pulse,
                            parent[v], children[v]),
        max_pulse, delay, seed, "sync-beta",
        faults, reliable, transport,
    )
