"""Shared machinery for network-synchronizer hosts (Section 4).

A *synchronizer host* is the per-node asynchronous process that executes a
wrapped synchronous protocol pulse by pulse.  All hosts share the same
data plane:

* the hosted protocol is an :class:`~repro.synch.normalize.InSynchWrapper`
  (Lemma 4.5's transformed protocol) running against the node's original
  weights;
* protocol messages travel tagged with their send pulse; the receiver
  buffers them into the inbox of pulse ``send + w_hat(e)`` and returns an
  acknowledgment (Definition 4.1's safety detection);
* a pulse executes as soon as the subclass's admission rule
  :meth:`_may_execute` allows it, up to ``max_pulse``.

Subclasses differ only in their *control plane* — how safety information
is disseminated and what the admission rule is: alpha_w floods per-pulse
safety to neighbors, beta_w convergecasts it over a spanning tree, gamma_w
(in :mod:`repro.synch.gamma_w`) runs one synchronizer-gamma instance per
weight level.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable
from typing import Any

from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.process import Process
from ..sim.sync_runner import SynchronousProtocol
from .normalize import InSynchWrapper

__all__ = ["HostSyncShim", "SynchronizerHostBase"]


class HostSyncShim:
    """SyncContext look-alike handed to the hosted InSynchWrapper."""

    def __init__(self, host: SynchronizerHostBase) -> None:
        self._host = host
        self.node_id = host.node_id
        self.neighbors = host.ctx.neighbors
        self.weights = host.ctx.weights  # normalized weights
        self.finished = False
        self.result: Any = None

    def send(self, to: Vertex, payload: Any) -> None:
        self._host.protocol_send(to, payload)

    def finish(self, result: Any = None) -> None:
        if not self.finished:
            self.finished = True
            self.result = result
            self._host.wrapper_finished(result)


class SynchronizerHostBase(Process):
    """Common pulse engine for synchronizer hosts.

    Parameters
    ----------
    node_id: this vertex.
    original: the original (pre-normalization) graph, for the wrapper.
    inner_factory: builds the hosted synchronous protocol per node.
    max_pulse: hard cap on the outer pulse counter.
    """

    def __init__(
        self,
        node_id: Vertex,
        original: WeightedGraph,
        inner_factory: Callable[[Vertex], SynchronousProtocol],
        max_pulse: int,
    ) -> None:
        self._node = node_id
        self.max_pulse = max_pulse
        self.wrapper = InSynchWrapper(
            inner_factory(node_id), original.neighbor_weights(node_id)
        )
        self.next_pulse = 0
        self.pulses_executed = 0
        self._inbox: dict[int, list] = defaultdict(list)
        self._advancing = False

    # ---------------- subclass surface ---------------- #

    def _may_execute(self, pulse: int) -> bool:
        """Admission rule: may this node run ``pulse`` now?"""
        raise NotImplementedError

    def _after_pulse(self, pulse: int) -> None:
        """Hook invoked right after executing ``pulse`` (safety checks)."""

    def _on_protocol_send(self, to: Vertex, pulse: int) -> None:
        """Hook invoked for every outgoing protocol message."""

    def _on_ack(self, frm: Vertex, send_pulse: int) -> None:
        """Hook invoked for every incoming acknowledgment."""

    def handle_control(self, frm: Vertex, payload: Any) -> None:
        """Hook for subclass-specific control messages."""
        raise AssertionError(f"unexpected control message {payload!r}")

    # ---------------- common data plane ---------------- #

    def on_start(self) -> None:
        self.wrapper.sync = HostSyncShim(self)
        self._start_control_plane()
        self._advance()

    def _start_control_plane(self) -> None:
        """Subclass hook run before the first pulse."""

    def on_message(self, frm: Vertex, payload: Any) -> None:
        kind = payload[0]
        if kind == "proto":
            _, wire, send_pulse = payload
            arrive_pulse = send_pulse + int(self.edge_weight(frm))
            self._inbox[arrive_pulse].append((frm, wire))
            with self.trace_span("sync-ack"):
                self.send(frm, ("ack", send_pulse), tag="sync-ack")
            self._advance()
        elif kind == "ack":
            self._on_ack(frm, payload[1])
        else:
            self.handle_control(frm, payload)

    def protocol_send(self, to: Vertex, wire: Any) -> None:
        pulse = self.next_pulse  # the pulse currently executing
        self._on_protocol_send(to, pulse)
        self.send(to, ("proto", wire, pulse), tag="proto")

    def wrapper_finished(self, result: Any) -> None:
        self.finish(result)

    # ---------------- pulse engine ---------------- #

    def _advance(self) -> None:
        if self._advancing:  # guard against reentrancy via synchronous GOs
            return
        self._advancing = True
        try:
            while self.next_pulse <= self.max_pulse and self._may_execute(
                self.next_pulse
            ):
                pulse = self.next_pulse
                # Rolls this node's "pulse" trace span (no-op untraced);
                # control traffic until the next pulse nests under it.
                self.trace_pulse(pulse)
                self.wrapper.on_pulse(pulse, self._inbox.pop(pulse, []))
                self.next_pulse = pulse + 1
                self.pulses_executed += 1
                self._after_pulse(pulse)
        finally:
            self._advancing = False
