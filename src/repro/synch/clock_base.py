"""Shared scaffolding for the clock synchronizers of Section 3.

Clock synchronization (after [ER90]): every node must generate a sequence
of pulses such that pulse ``p`` at a node happens causally after all its
neighbors generated pulse ``p-1``.  The figure of merit is the *pulse
delay* — the maximum physical time between two successive pulses at a node
— for which ``d = max_(u,v) in E dist(u, v)`` is a lower bound and the
paper's gamma* achieves ``O(d log^2 n)``.
"""

from __future__ import annotations


from ..graphs.weighted_graph import WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network, RunResult
from ..sim.process import Process

__all__ = ["ClockProcess", "ClockStats", "run_clock_sync", "check_causality"]


class ClockProcess(Process):
    """Base class: pulse bookkeeping common to alpha*, beta*, gamma*."""

    def __init__(self, target: int) -> None:
        self.target = target
        self.pulse = -1
        self.pulse_times: list[float] = []

    def generate_pulse(self) -> None:
        """Record the next pulse and let the subclass act on it."""
        self.pulse += 1
        self.pulse_times.append(self.now)
        if self.pulse >= self.target and not self.finished:
            self.finish(self.pulse_times)
        self.after_pulse(self.pulse)

    def after_pulse(self, pulse: int) -> None:
        """Subclass hook: emit whatever messages pulse ``pulse`` requires."""
        raise NotImplementedError


class ClockStats:
    """Pulse-delay and cost statistics of one clock-synchronization run."""

    def __init__(self, result: RunResult, target: int) -> None:
        self.result = result
        self.target = target
        self.pulse_times = {
            v: p.pulse_times for v, p in result.processes.items()
        }
        deltas = [
            times[i + 1] - times[i]
            for times in self.pulse_times.values()
            for i in range(min(target, len(times) - 1))
        ]
        self.max_pulse_delay = max(deltas) if deltas else 0.0
        self.mean_pulse_delay = sum(deltas) / len(deltas) if deltas else 0.0
        self.comm_cost_per_pulse = result.comm_cost / max(1, target)

    def __str__(self) -> str:
        return (
            f"pulses={self.target} max_delay={self.max_pulse_delay:g} "
            f"mean_delay={self.mean_pulse_delay:g} "
            f"cost/pulse={self.comm_cost_per_pulse:g}"
        )


def run_clock_sync(
    graph: WeightedGraph,
    factory,
    target: int,
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
    serialize: bool = False,
) -> ClockStats:
    """Run a clock synchronizer until every node generated ``target`` pulses."""
    net = Network(graph, factory, delay=delay, seed=seed, serialize=serialize)

    def reached(n: Network) -> bool:
        return all(p.pulse >= target for p in n.processes.values())

    result = net.run(stop_when=reached)
    if not reached(net):
        raise RuntimeError("clock synchronizer stalled before reaching target")
    return ClockStats(result, target)


def check_causality(graph: WeightedGraph, stats: ClockStats) -> None:
    """Assert pulse p at v happens at-or-after every neighbor's pulse p-1."""
    times = stats.pulse_times
    for u, v, _ in graph.edges():
        upper = min(len(times[u]), len(times[v]))
        for p in range(1, upper):
            if times[v][p] < times[u][p - 1] - 1e-9:
                raise AssertionError(
                    f"causality violated: {v!r} pulsed {p} at {times[v][p]} "
                    f"before {u!r} pulsed {p - 1} at {times[u][p - 1]}"
                )
            if times[u][p] < times[v][p - 1] - 1e-9:
                raise AssertionError(
                    f"causality violated: {u!r} pulsed {p} at {times[u][p]} "
                    f"before {v!r} pulsed {p - 1} at {times[v][p - 1]}"
                )
