"""Trace-driven replay: re-execute a recorded run and assert byte-identity.

A simulation here is a pure function of ``(graph, protocol, FaultPlan,
seed)``, so a JSONL trace (``repro.obs``) plus the few integers that
rebuilt its inputs is a *complete*, executable description of the run.
:class:`ReplaySpec` captures those inputs; :func:`record_run` stamps them
into the trace's meta header under the ``"replay"`` key; and
:func:`replay_trace` closes the loop — load the header, rebuild the exact
graph (refusing on a :func:`~repro.graphs.io.graph_fingerprint` mismatch),
re-run, and re-export.  :func:`verify_trace` then compares old and new
documents byte-for-byte and, on mismatch, localizes the **first divergent
event** (:mod:`repro.replay.diff`) instead of reporting a bare "differs".

:func:`record_golden` / :func:`check_golden` turn any directory of traces
into a regression corpus: each ``*.jsonl`` file is one pinned run, and a
pytest parametrized over :func:`golden_paths` replays every one on each
test run.

Protocols are addressed by their chaos-suite case name
(:func:`repro.experiments.chaos.make_cases`); importing
:mod:`repro.replay` additionally registers a ``gamma_w(max)`` case — the
paper's synchronizer hosting max-consensus — via
:func:`repro.experiments.parallel.register_case_provider`, so synchronizer
runs record and replay through the same header format.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from ..faults.plan import FaultPlan
from ..graphs.io import graph_fingerprint
from ..obs.exporters import LoadedTrace, jsonable, read_jsonl, to_jsonl
from ..obs.recorder import TraceRecorder

__all__ = [
    "ReplayError",
    "ReplaySpec",
    "RecordedRun",
    "ReplayReport",
    "record_run",
    "spec_of",
    "replay_trace",
    "verify_trace",
    "record_golden",
    "check_golden",
    "golden_paths",
]


class ReplayError(RuntimeError):
    """A trace cannot be replayed (missing header, unknown protocol,
    or the rebuilt graph no longer matches the recorded fingerprint)."""


_SPEC_KEYS = frozenset({
    "protocol", "n", "extra_edges", "graph_seed", "seed", "reliable",
    "plan", "limit", "race", "graph_fp",
})


@dataclass(frozen=True)
class ReplaySpec:
    """Everything needed to re-execute one chaos run from scratch.

    ``protocol`` names a case in the chaos suite (including
    provider-registered ones such as ``gamma_w(max)``); ``n`` /
    ``extra_edges`` / ``graph_seed`` parameterize the benchmark graph the
    suite is built on; ``seed`` drives delays and fault sampling; ``plan``
    is the fault adversary (``None`` = fault-free); ``limit`` is the
    recorder's ring-buffer bound; ``race`` arms the shared-state detector
    in ``"record"`` mode.  ``graph_fp`` is stamped by :func:`record_run`,
    never supplied by hand.
    """

    protocol: str
    n: int = 14
    extra_edges: int = 20
    graph_seed: int = 2
    seed: int = 0
    reliable: bool = True
    plan: FaultPlan | None = None
    limit: int | None = None
    race: bool = False
    graph_fp: str | None = None

    def header(self, graph_fp: str) -> dict:
        """The jsonable ``"replay"`` meta entry (canonical plan dict)."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "extra_edges": self.extra_edges,
            "graph_seed": self.graph_seed,
            "seed": self.seed,
            "reliable": self.reliable,
            "plan": None if self.plan is None else self.plan.to_dict(),
            "limit": self.limit,
            "race": self.race,
            "graph_fp": graph_fp,
        }

    @classmethod
    def from_header(cls, header: dict) -> ReplaySpec:
        """Rebuild a spec from a trace's ``"replay"`` meta entry."""
        unknown = set(header) - _SPEC_KEYS
        if unknown:
            raise ReplayError(f"unknown replay header keys: {sorted(unknown)}")
        if "protocol" not in header:
            raise ReplayError("replay header missing 'protocol'")
        plan = header.get("plan")
        return cls(
            protocol=header["protocol"],
            n=int(header.get("n", 14)),
            extra_edges=int(header.get("extra_edges", 20)),
            graph_seed=int(header.get("graph_seed", 2)),
            seed=int(header.get("seed", 0)),
            reliable=bool(header.get("reliable", True)),
            plan=None if plan is None else FaultPlan.from_dict(plan),
            limit=header.get("limit"),
            race=bool(header.get("race", False)),
            graph_fp=header.get("graph_fp"),
        )


@dataclass
class RecordedRun:
    """One executed-and-exported run: outcome, live recorder, JSONL text."""

    spec: ReplaySpec
    outcome: Any
    recorder: TraceRecorder
    text: str


def _case(spec: ReplaySpec):
    """Resolve the spec's chaos case (suite + registered providers)."""
    from ..experiments.parallel import _cases_by_name

    cases = _cases_by_name(spec.n, spec.extra_edges, spec.graph_seed)
    try:
        return cases[spec.protocol]
    except KeyError:
        raise ReplayError(
            f"unknown protocol {spec.protocol!r}; "
            f"known: {sorted(cases)}"
        ) from None


def record_run(spec: ReplaySpec) -> RecordedRun:
    """Execute ``spec`` with a replay header stamped into its trace.

    The fault-free reference run (memoized per process) supplies the
    expected answer — so a faulted run that completes wrong classifies
    ``"wrong"`` — and the watchdog deadline, using the same formula as the
    sweep engine so a cell and its replay see identical cutoffs.
    """
    from ..experiments.parallel import _reference
    from ..faults.runner import run_chaos

    case = _case(spec)
    reference = _reference(spec.n, spec.extra_edges, spec.graph_seed,
                           spec.protocol)
    watchdog = 500.0 * max(reference.result.time, 1.0) + 1000.0
    recorder = TraceRecorder(limit=spec.limit)
    recorder.meta["replay"] = jsonable(
        spec.header(graph_fingerprint(case.graph))
    )
    outcome = run_chaos(
        case.graph, case.factory, plan=spec.plan, reliable=spec.reliable,
        watchdog_time=watchdog, seed=spec.seed, answer=case.answer,
        expect=reference.answer, recorder=recorder,
        race_detect="record" if spec.race else False,
    )
    return RecordedRun(spec, outcome, recorder, to_jsonl(recorder))


def spec_of(trace: LoadedTrace) -> ReplaySpec:
    """Extract the :class:`ReplaySpec` a trace was recorded under."""
    header = trace.meta.get("replay")
    if not isinstance(header, dict):
        raise ReplayError(
            "trace has no 'replay' meta header; only traces produced by "
            "record_run / the fuzzer are replayable"
        )
    return ReplaySpec.from_header(header)


def replay_trace(trace: LoadedTrace) -> RecordedRun:
    """Re-execute a loaded trace's run from its replay header.

    Refuses (``ReplayError``) when the rebuilt graph's fingerprint differs
    from the recorded one — generator drift would otherwise surface as a
    baffling event-level divergence.
    """
    spec = spec_of(trace)
    fp = graph_fingerprint(_case(spec).graph)
    if spec.graph_fp is not None and fp != spec.graph_fp:
        raise ReplayError(
            f"graph fingerprint mismatch: trace recorded {spec.graph_fp}, "
            f"rebuild produced {fp} (generator or suite drift)"
        )
    return record_run(spec)


@dataclass
class ReplayReport:
    """Outcome of :func:`verify_trace`: byte-identical, or where not."""

    ok: bool
    spec: ReplaySpec
    replayed: RecordedRun
    divergence: Any = None  # repro.replay.diff.Divergence | None

    def describe(self) -> str:
        if self.ok:
            return (f"replay of {self.spec.protocol!r} "
                    f"(seed={self.spec.seed}): byte-identical")
        return (f"replay of {self.spec.protocol!r} "
                f"(seed={self.spec.seed}) DIVERGED: "
                f"{self.divergence.describe()}")


def verify_trace(trace: LoadedTrace) -> ReplayReport:
    """Replay ``trace`` and compare documents byte-for-byte.

    On mismatch the report carries the first divergent event
    (:func:`repro.replay.diff.first_divergence`) with send-linked context,
    not just a boolean.
    """
    from .diff import first_divergence

    replayed = replay_trace(trace)
    original = trace.source if trace.source is not None else to_jsonl(trace)
    if original == replayed.text:
        return ReplayReport(True, replayed.spec, replayed)
    divergence = first_divergence(original, replayed.text)
    return ReplayReport(False, replayed.spec, replayed,
                        divergence=divergence)


# --------------------------------------------------------------------- #
# Golden-trace corpus
# --------------------------------------------------------------------- #

def record_golden(spec: ReplaySpec, path: str) -> str:
    """Record ``spec`` and pin its trace at ``path``; returns the path."""
    run = record_run(spec)
    with open(path, "w") as fh:
        fh.write(run.text)
    return path


def check_golden(path: str) -> ReplayReport:
    """Replay one pinned trace file and verify byte-identity."""
    return verify_trace(read_jsonl(path))


def golden_paths(dirpath: str) -> list[str]:
    """All ``*.jsonl`` golden traces under ``dirpath`` (sorted, may be
    empty) — the shape pytest parametrization wants."""
    if not os.path.isdir(dirpath):
        return []
    return sorted(
        os.path.join(dirpath, name)
        for name in os.listdir(dirpath)
        if name.endswith(".jsonl")
    )


# --------------------------------------------------------------------- #
# gamma_w as a replayable chaos case
# --------------------------------------------------------------------- #

def _gamma_w_cases(n: int, extra_edges: int, graph_seed: int) -> list:
    """The paper's synchronizer, packaged as a chaos-suite case.

    ``gamma_w(max)`` runs :class:`~repro.synch.gamma_w.GammaWHost` nodes
    (hosting synchronous max-consensus) on the *normalized* benchmark
    graph, so the full stack — in-synch transform, per-level gamma
    clusters, pulse engine — sits under the fault adversary and the replay
    contract.  The answer is every node's hosted result (all must hold the
    global maximum).
    """
    from ..experiments.chaos import ChaosCase
    from ..graphs.generators import random_connected_graph
    from ..graphs.paths import diameter
    from ..protocols.max_consensus import SyncMaxConsensus
    from ..synch.gamma_w import GammaWConfig, GammaWHost

    g = random_connected_graph(n, extra_edges, seed=graph_seed)
    cfg = GammaWConfig(g, k=2)
    stop_pulse = int(diameter(g)) + 1
    w_max = int(max(w for _u, _v, w in g.edges()))
    max_pulse = 4 * (stop_pulse + 1) + 4 * w_max + 8
    values = {v: (v * 37 + 11) % (3 * n) for v in g.vertices}

    def inner(u: Any) -> SyncMaxConsensus:
        return SyncMaxConsensus(values[u], stop_pulse)

    def factory(v: Any) -> GammaWHost:
        return GammaWHost(v, cfg, inner, max_pulse)

    def answer(result: Any) -> Any:
        return sorted(
            (repr(v), p.wrapper.inner_result)
            for v, p in result.processes.items()
        )

    return [ChaosCase("gamma_w(max)", cfg.normalized, factory, answer)]


def register_cases() -> None:
    """Register the gamma_w case with the sweep engine (idempotent)."""
    from ..experiments.parallel import register_case_provider

    register_case_provider(_gamma_w_cases)
