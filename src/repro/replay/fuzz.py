"""Coverage-guided chaos fuzzer over :class:`~repro.faults.plan.FaultPlan`.

``python -m repro.replay.fuzz`` mutates fault plans with a seeded mutator
(rate nudges, crash-window shifts, edge-target swaps), runs each mutant
through the chaos harness, and keeps only plans that produce a **novel
behavior signature** — status, observed event kinds, span paths, a
log-bucketed retry count, and race-detector violations
(:func:`outcome_signature`).  Every kept *failing* plan is then
ddmin-minimized (:func:`ddmin`, Zeller's delta debugging over plan
"atoms") so the corpus stores the smallest adversary that still breaks
the run, and the whole corpus is emitted as deterministic JSONL:
same seed + same budget ⇒ byte-identical output, because the budget is an
iteration count (never wall-clock), the mutator RNG is seeded, plans are
canonicalized through ``FaultPlan.from_dict(...).to_dict()``, and every
line is ``json.dumps(..., sort_keys=True)``.

Each corpus entry embeds enough to re-run it through the replay engine
(:mod:`repro.replay.engine`); ``--verify`` re-executes every failing
entry, asserting the minimized plan still fails, is no larger than its
parent, and replays byte-identically.

Mutant batches shard across the persistent sweep pool
(:func:`repro.experiments.parallel.run_parallel`): batch composition
depends only on the mutator RNG and prior batches' (deterministic)
results, so serial and parallel fuzzing produce identical corpora.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..faults.plan import CrashWindow, FaultPlan

__all__ = [
    "FuzzCell",
    "FuzzResult",
    "evaluate_cell",
    "outcome_signature",
    "mutate_plan",
    "plan_atoms",
    "plan_from_atoms",
    "ddmin",
    "minimize_plan",
    "fuzz",
    "write_corpus",
    "verify_entry",
    "main",
]

#: Rate values the mutator snaps to — a coarse grid keeps the search
#: space small and mutants canonical.
_RATE_STEPS = (0.0, 0.02, 0.05, 0.1, 0.2, 0.35, 0.6)
_CRASH_STARTS = (0.0, 2.0, 5.0, 10.0, 25.0)
_CRASH_SPANS = (3.0, 10.0, 40.0, None)  # None = permanent crash


def plan_key(plan: FaultPlan) -> str:
    """The plan's canonical JSON string (corpus/cache/dedup key)."""
    return json.dumps(plan.to_dict(), sort_keys=True)


@dataclass(frozen=True)
class FuzzCell:
    """One fuzz evaluation: a protocol and a canonical plan, picklable.

    The plan travels as its canonical JSON string so cells are hashable
    and shard across the process pool unchanged.
    """

    protocol: str
    plan_json: str
    n: int = 10
    extra_edges: int = 10
    graph_seed: int = 2
    seed: int = 0
    reliable: bool = True

    def spec(self):
        """The cell's :class:`~repro.replay.engine.ReplaySpec`
        (aggregate-only recorder, race detector recording)."""
        from .engine import ReplaySpec

        return ReplaySpec(
            protocol=self.protocol,
            n=self.n, extra_edges=self.extra_edges,
            graph_seed=self.graph_seed, seed=self.seed,
            reliable=self.reliable,
            plan=FaultPlan.from_dict(json.loads(self.plan_json)),
            limit=0, race=True,
        )


def evaluate_cell(cell: FuzzCell) -> dict:
    """Run one cell and flatten the outcome to a primitive row.

    Module-level and closed over nothing so it shards across the
    persistent pool; the first cell a worker unpickles imports this
    module, which registers the extra replay cases before the case memo
    is consulted.
    """
    from .engine import record_run

    run = record_run(cell.spec())
    outcome = run.outcome
    trace = outcome.trace
    counts = trace.counts if trace is not None else {}
    spans = trace.count_by_span if trace is not None else {}
    return {
        "protocol": cell.protocol,
        "plan": json.loads(cell.plan_json),
        "status": outcome.status,
        "crashed": outcome.crashed,
        "violations": [list(v) for v in outcome.violations],
        "retry_count": outcome.retry_count,
        "kinds": sorted(k for k, c in counts.items() if c),
        "spans": sorted(spans),
    }


def _retry_bucket(count: int) -> int:
    # Log-bucketed so "a few retries" and "retry storm" are distinct
    # coverage points without every exact count being novel.
    return int(count).bit_length()


def outcome_signature(row: dict) -> tuple:
    """The coverage key: what *behavior* did this plan provoke?"""
    return (
        row["status"],
        row["crashed"],
        tuple(row["kinds"]),
        tuple(row["spans"]),
        _retry_bucket(row["retry_count"]),
        tuple(tuple(v) for v in row["violations"]),
    )


# --------------------------------------------------------------------- #
# Mutation
# --------------------------------------------------------------------- #

def mutate_plan(plan: FaultPlan, rng: random.Random,
                vertices: Sequence, edges: Sequence) -> FaultPlan:
    """One seeded mutation of ``plan`` (always returns a *valid* plan).

    Mutation kinds: nudge one fault rate to a grid value, add / shift /
    remove a crash window, swap the edge-target restriction, or reseed
    the adversary RNG.  ``vertices``/``edges`` supply the graph-aware
    target pools (deterministically ordered by the caller).
    """
    ops = ["rate", "rate", "crash_add", "crash_shift", "crash_remove",
           "edges", "reseed"]
    op = ops[rng.randrange(len(ops))]
    if op == "rate":
        name = FaultPlan._RATE_FIELDS[rng.randrange(
            len(FaultPlan._RATE_FIELDS))]
        current = getattr(plan, name)
        choices = [r for r in _RATE_STEPS if r != current]
        return plan.replace(**{name: choices[rng.randrange(len(choices))]})
    if op == "crash_add":
        node = vertices[rng.randrange(len(vertices))]
        start = _CRASH_STARTS[rng.randrange(len(_CRASH_STARTS))]
        span = _CRASH_SPANS[rng.randrange(len(_CRASH_SPANS))]
        window = CrashWindow(node, start,
                             None if span is None else start + span)
        return plan.replace(crashes=plan.crashes + (window,))
    if op == "crash_shift" and plan.crashes:
        i = rng.randrange(len(plan.crashes))
        cw = plan.crashes[i]
        start = _CRASH_STARTS[rng.randrange(len(_CRASH_STARTS))]
        span = _CRASH_SPANS[rng.randrange(len(_CRASH_SPANS))]
        shifted = CrashWindow(cw.node, start,
                              None if span is None else start + span)
        crashes = plan.crashes[:i] + (shifted,) + plan.crashes[i + 1:]
        return plan.replace(crashes=crashes)
    if op == "crash_remove" and plan.crashes:
        i = rng.randrange(len(plan.crashes))
        return plan.replace(crashes=plan.crashes[:i] + plan.crashes[i + 1:])
    if op == "edges":
        if plan.edges is not None and rng.randrange(2):
            return plan.replace(edges=None)  # lift the restriction
        k = 1 + rng.randrange(min(3, len(edges)))
        picked = sorted(rng.sample(range(len(edges)), k))
        return plan.replace(edges=[edges[i] for i in picked])
    if op == "reseed":
        return plan.replace(seed=rng.randrange(1_000_000))
    # crash_shift / crash_remove with no windows: fall back to a rate nudge.
    name = FaultPlan._RATE_FIELDS[rng.randrange(len(FaultPlan._RATE_FIELDS))]
    choices = [r for r in _RATE_STEPS if r != getattr(plan, name)]
    return plan.replace(**{name: choices[rng.randrange(len(choices))]})


# --------------------------------------------------------------------- #
# ddmin over plan atoms
# --------------------------------------------------------------------- #

def plan_atoms(plan: FaultPlan) -> list[tuple]:
    """Decompose a plan into independently removable fault "atoms".

    Atoms: each nonzero rate, each crash window, each edge-restriction
    entry.  Removing a rate atom zeroes it; removing a crash atom drops
    the window; removing an edge atom shrinks the faultable edge set
    (down to the empty set — *no* message faults — never back to "all
    edges", so removal always weakens the adversary).
    """
    atoms: list[tuple] = []
    for name in FaultPlan._RATE_FIELDS:
        value = getattr(plan, name)
        if value > 0.0:
            atoms.append(("rate", name, value))
    for cw in sorted(plan.crashes, key=lambda c: (c.start, repr(c.node))):
        atoms.append(("crash", (cw.node, cw.start, cw.end)))
    if plan._edge_set is not None:
        for pair in sorted((sorted(e, key=repr) for e in plan._edge_set),
                           key=lambda p: [repr(v) for v in p]):
            atoms.append(("edge", tuple(pair)))
    return atoms


def plan_from_atoms(base: FaultPlan, atoms: Sequence[tuple]) -> FaultPlan:
    """Rebuild a plan holding only ``atoms`` (seed/bound from ``base``)."""
    kwargs: dict[str, Any] = {name: 0.0 for name in FaultPlan._RATE_FIELDS}
    kwargs["reorder_bound"] = base.reorder_bound
    kwargs["seed"] = base.seed
    crashes: list[CrashWindow] = []
    edge_pairs: list[tuple] = []
    for atom in atoms:
        if atom[0] == "rate":
            kwargs[atom[1]] = atom[2]
        elif atom[0] == "crash":
            crashes.append(CrashWindow(*atom[1]))
        elif atom[0] == "edge":
            edge_pairs.append(atom[1])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown atom {atom!r}")
    kwargs["crashes"] = tuple(crashes)
    if base._edge_set is not None:
        kwargs["edges"] = edge_pairs
    return FaultPlan(**kwargs)


def ddmin(atoms: list, test: Callable[[list], bool]) -> list:
    """Zeller's delta debugging: a 1-minimal subset with ``test`` true.

    ``test(atoms)`` must already hold.  The result is *1-minimal*:
    removing any single remaining atom makes ``test`` false.  ``test``
    must be deterministic; callers memoize it because each probe is a
    full simulation.
    """
    if not test(atoms):
        raise ValueError("ddmin requires test(atoms) to hold on entry")
    granularity = 2
    while len(atoms) >= 2:
        size = len(atoms) // granularity
        chunks = [atoms[i:i + size or 1]
                  for i in range(0, len(atoms), size or 1)]
        reduced = False
        for chunk in chunks:  # a single chunk suffices?
            if len(chunk) < len(atoms) and test(chunk):
                atoms, granularity, reduced = chunk, 2, True
                break
        if not reduced:
            for i in range(len(chunks)):  # a complement suffices?
                rest = [a for c in chunks[:i] + chunks[i + 1:] for a in c]
                if len(rest) < len(atoms) and test(rest):
                    atoms, reduced = rest, True
                    granularity = max(granularity - 1, 2)
                    break
        if not reduced:
            if granularity >= len(atoms):
                break
            granularity = min(len(atoms), granularity * 2)
    return atoms


def minimize_plan(cell: FuzzCell) -> tuple[FaultPlan, int]:
    """ddmin-minimize a failing cell's plan.

    Returns ``(minimized_plan, evaluations_spent)``.  The failure
    predicate is ``status != "ok"`` re-run through :func:`evaluate_cell`
    (memoized on the canonical plan key — probes repeat heavily).
    """
    base = FaultPlan.from_dict(json.loads(cell.plan_json))
    cache: dict[str, bool] = {}

    def failing(atoms: list) -> bool:
        key = plan_key(plan_from_atoms(base, atoms))
        if key not in cache:
            row = evaluate_cell(dataclasses.replace(cell, plan_json=key))
            cache[key] = row["status"] != "ok"
        return cache[key]

    atoms = plan_atoms(base)
    if not atoms:
        return base, 0
    minimal = ddmin(atoms, failing)
    return plan_from_atoms(base, minimal), len(cache)


# --------------------------------------------------------------------- #
# The fuzz loop
# --------------------------------------------------------------------- #

def _seed_plans() -> list[FaultPlan]:
    """The deterministic starting population (canonical, graph-agnostic)."""
    return [
        FaultPlan(),
        FaultPlan(drop=0.05, seed=1),
        FaultPlan(drop=0.35, seed=2),
        FaultPlan(corrupt=0.2, seed=3),
        FaultPlan(crashes=(CrashWindow(0, 5.0, None),), seed=4),
        FaultPlan(drop=0.1, duplicate=0.1, reorder=0.2, seed=5),
    ]


@dataclass
class FuzzResult:
    """A completed fuzz campaign: settings, kept entries, accounting."""

    settings: dict
    entries: list[dict] = field(default_factory=list)
    evaluations: int = 0
    minimize_evaluations: int = 0

    @property
    def failing(self) -> list[dict]:
        return [e for e in self.entries if e["status"] != "ok"]


def fuzz(
    protocols: Sequence[str],
    *,
    budget: int = 60,
    seed: int = 0,
    n: int = 10,
    extra_edges: int = 10,
    graph_seed: int = 2,
    reliable: bool = True,
    jobs: int | None = None,
    batch: int = 8,
    minimize: bool = True,
    log: Callable[[str], None] | None = None,
) -> FuzzResult:
    """Run a fuzz campaign of exactly ``budget`` mutant evaluations.

    The budget is an iteration count, never wall-clock, so a campaign is
    a pure function of its arguments (``jobs`` only changes where cells
    execute).  Minimization probes are accounted separately
    (``minimize_evaluations``) and do not consume the budget.
    """
    from ..experiments.parallel import run_parallel
    from ..graphs.generators import random_connected_graph

    say = log if log is not None else (lambda _msg: None)
    graph = random_connected_graph(n, extra_edges, seed=graph_seed)
    vertices = sorted(graph.vertices, key=repr)
    edge_pairs = sorted(
        ((u, v) for u, v, _w in graph.edges()),
        key=lambda e: (repr(e[0]), repr(e[1])),
    )
    rng = random.Random(seed)
    population = [plan_key(p) for p in _seed_plans()]
    coverage: dict[tuple, int] = {}
    result = FuzzResult(settings={
        "protocols": list(protocols), "budget": budget, "seed": seed,
        "n": n, "extra_edges": extra_edges, "graph_seed": graph_seed,
        "reliable": reliable,
    })
    while result.evaluations < budget:
        cells = []
        for _ in range(min(batch, budget - result.evaluations)):
            protocol = protocols[rng.randrange(len(protocols))]
            parent = population[rng.randrange(len(population))]
            mutant = mutate_plan(FaultPlan.from_dict(json.loads(parent)),
                                 rng, vertices, edge_pairs)
            cells.append(FuzzCell(
                protocol=protocol, plan_json=plan_key(mutant),
                n=n, extra_edges=extra_edges, graph_seed=graph_seed,
                reliable=reliable,
            ))
        rows = run_parallel(evaluate_cell, cells, jobs=jobs)
        for cell, row in zip(cells, rows):
            result.evaluations += 1
            signature = outcome_signature(row)
            if signature in coverage:
                continue
            coverage[signature] = result.evaluations
            population.append(cell.plan_json)
            entry = {
                "found_at": result.evaluations,
                "protocol": cell.protocol,
                "n": n, "extra_edges": extra_edges,
                "graph_seed": graph_seed, "seed": cell.seed,
                "reliable": reliable,
                "plan": row["plan"],
                "status": row["status"],
                "signature": [signature[0], signature[1],
                              list(signature[2]), list(signature[3]),
                              signature[4],
                              [list(v) for v in signature[5]]],
                "violations": row["violations"],
            }
            if minimize and row["status"] != "ok":
                minimized, probes = minimize_plan(cell)
                result.minimize_evaluations += probes
                entry["minimized"] = minimized.to_dict()
                entry["minimized_atoms"] = len(plan_atoms(minimized))
                entry["parent_atoms"] = len(plan_atoms(
                    FaultPlan.from_dict(row["plan"])))
                say(f"[{result.evaluations}/{budget}] novel "
                    f"{row['status']!r} on {cell.protocol} "
                    f"(minimized {entry['parent_atoms']} -> "
                    f"{entry['minimized_atoms']} atoms)")
            else:
                say(f"[{result.evaluations}/{budget}] novel "
                    f"{row['status']!r} on {cell.protocol}")
            result.entries.append(entry)
    return result


def write_corpus(result: FuzzResult, path: str) -> str:
    """Emit the campaign as deterministic JSONL; returns ``path``."""
    lines = [json.dumps({"kind": "fuzz-corpus", "version": 1,
                         "settings": result.settings,
                         "evaluations": result.evaluations,
                         "novel": len(result.entries),
                         "failing": len(result.failing)},
                        sort_keys=True)]
    lines.extend(json.dumps(e, sort_keys=True) for e in result.entries)
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return path


def verify_entry(entry: dict) -> list[str]:
    """Re-execute one failing corpus entry; returns failure strings.

    Checks: the minimized plan still fails with a detectable-or-wrong
    status, it is no larger (in atoms) than its parent, and the parent
    plan's run replays byte-identically through the replay engine.
    """
    from ..obs.exporters import load_jsonl
    from .engine import record_run, verify_trace

    problems: list[str] = []
    cell = FuzzCell(
        protocol=entry["protocol"],
        plan_json=json.dumps(entry["plan"], sort_keys=True),
        n=entry["n"], extra_edges=entry["extra_edges"],
        graph_seed=entry["graph_seed"], seed=entry["seed"],
        reliable=entry["reliable"],
    )
    row = evaluate_cell(cell)
    if row["status"] != entry["status"]:
        problems.append(
            f"status drifted: recorded {entry['status']!r}, "
            f"re-run gave {row['status']!r}"
        )
    if "minimized" in entry:
        min_plan = FaultPlan.from_dict(entry["minimized"])
        if len(plan_atoms(min_plan)) > entry["parent_atoms"]:
            problems.append("minimized plan is larger than its parent")
        min_row = evaluate_cell(dataclasses.replace(
            cell, plan_json=plan_key(min_plan)))
        if min_row["status"] == "ok":
            problems.append("minimized plan no longer fails")
    run = record_run(cell.spec())
    report = verify_trace(load_jsonl(run.text))
    if not report.ok:
        problems.append(f"replay divergence: {report.divergence.describe()}")
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replay.fuzz",
        description="Coverage-guided chaos fuzzer over fault plans.",
    )
    parser.add_argument("--protocols", default="broadcast,mst_ghs",
                        help="comma-separated chaos case names")
    parser.add_argument("--budget", type=int, default=60,
                        help="mutant evaluations (iteration count)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n", type=int, default=10)
    parser.add_argument("--extra-edges", type=int, default=10)
    parser.add_argument("--graph-seed", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--unreliable", action="store_true",
                        help="fuzz the raw transport instead of the "
                             "reliable one")
    parser.add_argument("--no-minimize", action="store_true")
    parser.add_argument("--out", default=None,
                        help="corpus JSONL path (default: no file)")
    parser.add_argument("--min-novel", type=int, default=0,
                        help="fail unless at least this many novel "
                             "signatures were found")
    parser.add_argument("--verify", action="store_true",
                        help="re-execute every failing entry: minimized "
                             "still fails, no larger, replays "
                             "byte-identically")
    args = parser.parse_args(argv)

    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    result = fuzz(
        protocols, budget=args.budget, seed=args.seed, n=args.n,
        extra_edges=args.extra_edges, graph_seed=args.graph_seed,
        reliable=not args.unreliable, jobs=args.jobs,
        minimize=not args.no_minimize, log=print,
    )
    print(f"{result.evaluations} evaluations "
          f"(+{result.minimize_evaluations} minimization probes), "
          f"{len(result.entries)} novel signatures, "
          f"{len(result.failing)} failing")
    if args.out:
        write_corpus(result, args.out)
        print(f"corpus written to {args.out}")
    status = 0
    if args.verify:
        for entry in result.failing:
            problems = verify_entry(entry)
            label = f"{entry['protocol']} @{entry['found_at']}"
            if problems:
                status = 1
                for p in problems:
                    print(f"VERIFY FAIL {label}: {p}")
            else:
                print(f"verify ok: {label} ({entry['status']})")
    if len(result.entries) < args.min_novel:
        print(f"FAIL: only {len(result.entries)} novel signatures "
              f"(< {args.min_novel})")
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
