"""CLI for the replay engine: record, verify, and diff traces.

    python -m repro.replay record --protocol broadcast --out t.jsonl
    python -m repro.replay verify t.jsonl [more.jsonl ...]
    python -m repro.replay diff a.jsonl b.jsonl

(The fuzzer has its own entry point: ``python -m repro.replay.fuzz``.)
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from ..faults.plan import FaultPlan
from .diff import first_divergence
from .engine import ReplaySpec, check_golden, record_golden


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.replay")
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="record a replayable trace")
    rec.add_argument("--protocol", required=True)
    rec.add_argument("--n", type=int, default=10)
    rec.add_argument("--extra-edges", type=int, default=10)
    rec.add_argument("--graph-seed", type=int, default=2)
    rec.add_argument("--seed", type=int, default=0)
    rec.add_argument("--unreliable", action="store_true")
    rec.add_argument("--plan", default=None,
                     help="FaultPlan as a JSON object (canonical form)")
    rec.add_argument("--out", required=True)

    ver = sub.add_parser("verify", help="replay traces, assert identity")
    ver.add_argument("paths", nargs="+")

    dif = sub.add_parser("diff", help="first divergent event of two traces")
    dif.add_argument("left")
    dif.add_argument("right")

    args = parser.parse_args(argv)

    if args.command == "record":
        plan = (FaultPlan.from_dict(json.loads(args.plan))
                if args.plan else None)
        spec = ReplaySpec(
            protocol=args.protocol, n=args.n, extra_edges=args.extra_edges,
            graph_seed=args.graph_seed, seed=args.seed,
            reliable=not args.unreliable, plan=plan,
        )
        path = record_golden(spec, args.out)
        print(f"recorded {args.protocol!r} -> {path}")
        return 0

    if args.command == "verify":
        status = 0
        for path in args.paths:
            report = check_golden(path)
            print(f"{path}: {report.describe()}")
            if not report.ok:
                status = 1
        return status

    # diff
    with open(args.left) as fh:
        left = fh.read()
    with open(args.right) as fh:
        right = fh.read()
    divergence = first_divergence(left, right)
    if divergence is None:
        print("traces are identical")
        return 0
    print(divergence.describe())
    return 1


if __name__ == "__main__":
    sys.exit(main())
