"""Fleet-scale golden corpora: many pinned traces, sharded over the pool.

The committed golden corpus (``tests/fixtures/golden/``) pins a handful
of hand-picked runs; a *fleet* corpus scales the same byte-identity net
to hundreds or thousands of pinned traces by deriving a deterministic
spec matrix and pushing recording/checking through the persistent
process pool:

* :func:`fleet_specs` enumerates ``count`` :class:`ReplaySpec`\\ s over a
  protocol x seed x adversary grid (every knob derived from the fleet
  seed via :func:`~repro.experiments.parallel.cell_seed`, so the corpus
  is identical on every host);
* :func:`record_fleet` records them into ``shard-NN/`` subdirectories
  (shard chosen by spec-name hash, so the layout is path-stable as the
  fleet grows) plus a ``manifest.json`` of name -> trace SHA-256;
* :func:`check_fleet` replays a corpus — all of it, or a deterministic
  ``sample`` — through the pool and reports per-trace verdicts.

The cell workers are module-level and close over nothing, so they shard
across the pool exactly like chaos cells do; serial (``jobs=None``) and
pooled runs produce byte-identical corpora and verdicts.

CLI: ``python scripts/record_golden.py --fleet N [--check] [--jobs J]``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

from ..faults.plan import FaultPlan
from .engine import ReplaySpec, check_golden, record_run

__all__ = [
    "FLEET_PROTOCOLS",
    "fleet_specs",
    "record_fleet",
    "check_fleet",
    "fleet_paths",
    "fleet_sample",
]

#: Protocols the fleet grid cycles through — the chaos suite's core five.
#: (``gamma_w(max)`` is excluded: its traces are large and the committed
#: corpus already pins one.)
FLEET_PROTOCOLS = ("broadcast", "convergecast", "dfs", "mst_ghs",
                   "global_fn(slt)")

#: Adversary templates the grid cycles through; drop rates stay modest so
#: reliable runs terminate fast enough for thousand-trace fleets.
_ADVERSARIES = (None, 0.1, 0.25)

_SHARD_COUNT = 16


def fleet_specs(
    count: int,
    *,
    protocols: tuple[str, ...] = FLEET_PROTOCOLS,
    n: int = 10,
    extra_edges: int = 10,
    graph_seed: int = 2,
    fleet_seed: int = 0,
    limit: int | None = 200,
) -> list[tuple[str, ReplaySpec]]:
    """``count`` deterministic ``(name, spec)`` pairs of the fleet grid.

    Index ``i`` fixes every knob: the protocol and adversary cycle, and
    the run/fault seeds are derived by hashing ``(fleet_seed, i)`` — so
    the corpus is a pure function of its arguments.  ``limit`` bounds
    each trace's event ring (keeps a 10^3-trace corpus in tens of MB).
    """
    from ..experiments.parallel import cell_seed

    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    out = []
    for i in range(count):
        protocol = protocols[i % len(protocols)]
        drop = _ADVERSARIES[(i // len(protocols)) % len(_ADVERSARIES)]
        seed = cell_seed(fleet_seed, "fleet-run", i) % 1_000_000
        plan = None
        if drop is not None:
            plan = FaultPlan(
                drop=drop,
                seed=cell_seed(fleet_seed, "fleet-fault", i) % 1_000_000,
            )
        name = f"fleet-{i:05d}-{protocol.replace('(', '_').rstrip(')')}"
        out.append((name, ReplaySpec(
            protocol=protocol, n=n, extra_edges=extra_edges,
            graph_seed=graph_seed, seed=seed, plan=plan, limit=limit,
        )))
    return out


def _shard_of(name: str) -> str:
    h = int(hashlib.sha256(name.encode()).hexdigest()[:8], 16)
    return f"shard-{h % _SHARD_COUNT:02d}"


def _record_cell(item: tuple[str, ReplaySpec]) -> tuple[str, str, str]:
    """Pool worker: record one spec; returns ``(name, sha256, text)``."""
    name, spec = item
    text = record_run(spec).text
    return name, hashlib.sha256(text.encode()).hexdigest(), text


def _check_cell(path: str) -> tuple[str, bool, str]:
    """Pool worker: replay one pinned trace; returns ``(path, ok, desc)``.
    (:class:`ReplayReport` holds live process graphs and cannot cross the
    pool boundary, so only its verdict does.)"""
    report = check_golden(path)
    return path, report.ok, report.describe()


def record_fleet(
    dirpath: str,
    count: int,
    *,
    jobs: int | None = None,
    force: str | None = None,
    **grid: Any,
) -> dict:
    """Record a ``count``-trace fleet corpus under ``dirpath``.

    Recording shards across the pool (``jobs``); traces land in
    ``shard-NN/<name>.jsonl`` and the manifest (name, shard, sha256 per
    trace, plus the grid parameters) is written to
    ``dirpath/manifest.json``.  Returns the manifest.
    """
    from ..experiments.parallel import run_parallel

    specs = fleet_specs(count, **grid)
    warm_shapes = sorted({(s.n, s.extra_edges, s.graph_seed) for _n, s in specs})
    warm = tuple((n, e, g, None) for n, e, g in warm_shapes)
    results = run_parallel(_record_cell, specs, jobs=jobs, warm=warm,
                           force=force)
    entries = {}
    for name, sha, text in results:
        shard = _shard_of(name)
        os.makedirs(os.path.join(dirpath, shard), exist_ok=True)
        with open(os.path.join(dirpath, shard, f"{name}.jsonl"), "w") as fh:
            fh.write(text)
        entries[name] = {"shard": shard, "sha256": sha}
    manifest = {
        "version": 1,
        "count": count,
        "grid": {k: v for k, v in sorted(grid.items())},
        "traces": entries,
    }
    with open(os.path.join(dirpath, "manifest.json"), "w") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return manifest


def fleet_paths(dirpath: str) -> list[str]:
    """Every pinned trace in a fleet corpus, sorted (manifest order-free)."""
    out = []
    for root, _dirs, files in os.walk(dirpath):
        for f in files:
            if f.endswith(".jsonl"):
                out.append(os.path.join(root, f))
    return sorted(out)


def fleet_sample(paths: list[str], k: int, *, sample_seed: int = 0) -> list[str]:
    """A deterministic ``k``-subset of ``paths``: ranked by hashing each
    path's basename with the seed — stable across hosts and corpus
    layout, unlike ``random.sample``."""
    ranked = sorted(
        paths,
        key=lambda p: hashlib.sha256(
            f"{sample_seed}:{os.path.basename(p)}".encode()
        ).hexdigest(),
    )
    return sorted(ranked[:k])


def check_fleet(
    dirpath: str,
    *,
    jobs: int | None = None,
    sample: int | None = None,
    sample_seed: int = 0,
    force: str | None = None,
) -> dict:
    """Replay a fleet corpus (or a deterministic sample) through the pool.

    Every checked trace is re-executed from its replay header and
    compared byte-for-byte.  Returns ``{"checked", "ok", "failures"}``
    where failures maps path -> divergence description; also verifies
    manifest SHAs before replaying (cheap corruption triage first).
    """
    from ..experiments.parallel import run_parallel

    paths = fleet_paths(dirpath)
    if not paths:
        raise FileNotFoundError(f"no fleet traces under {dirpath!r}")
    failures: dict[str, str] = {}
    manifest_path = os.path.join(dirpath, "manifest.json")
    if os.path.exists(manifest_path):
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        for path in paths:
            name = os.path.basename(path)[:-len(".jsonl")]
            entry = manifest.get("traces", {}).get(name)
            if entry is None:
                failures[path] = "not in manifest"
                continue
            with open(path, "rb") as fh:
                sha = hashlib.sha256(fh.read()).hexdigest()
            if sha != entry["sha256"]:
                failures[path] = (
                    f"manifest sha mismatch ({sha[:12]} != "
                    f"{entry['sha256'][:12]})"
                )
    to_check = [p for p in paths if p not in failures]
    if sample is not None and sample < len(to_check):
        to_check = fleet_sample(to_check, sample, sample_seed=sample_seed)
    verdicts = run_parallel(_check_cell, to_check, jobs=jobs, force=force)
    for path, ok, desc in verdicts:
        if not ok:
            failures[path] = desc
    return {
        "total": len(paths),
        "replayed": len(to_check),
        "ok": not failures,
        "failures": failures,
    }
