"""repro.replay — trace-driven replay, differential debugging, fuzzing.

Closes the loop between the fault adversary (``repro.faults``), the
structured tracer (``repro.obs``), and the determinism tooling
(``repro.analysis``): because every run is a pure function of
``(graph, protocol, FaultPlan, seed)``, a recorded JSONL trace is an
*executable* artifact, not just a log.

* :mod:`~repro.replay.engine` — :func:`record_run` stamps a replay
  header into the trace; :func:`replay_trace` / :func:`verify_trace`
  re-execute it and assert byte-identity (graph-fingerprint-checked);
  :func:`record_golden` / :func:`check_golden` pin directories of traces
  as pytest-collected regression corpora.
* :mod:`~repro.replay.diff` — :func:`first_divergence` localizes the
  first divergent event between two traces with send-linked context;
  :func:`bisect_divergence` binary-searches an integer knob for the
  first value whose trace diverges.
* :mod:`~repro.replay.fuzz` — ``python -m repro.replay.fuzz``: a
  coverage-guided, self-minimizing chaos fuzzer over
  :class:`~repro.faults.plan.FaultPlan` mutants (deterministic corpus;
  ddmin-minimized failures; ``--verify`` replays every failure).

Importing this package registers the ``gamma_w(max)`` chaos case — the
paper's synchronizer hosting max-consensus — with the sweep engine, so
synchronizer runs record, replay, and fuzz like any other protocol.
"""

from .diff import Divergence, bisect_divergence, first_divergence
from .engine import (
    RecordedRun,
    ReplayError,
    ReplayReport,
    ReplaySpec,
    check_golden,
    golden_paths,
    record_golden,
    record_run,
    register_cases,
    replay_trace,
    spec_of,
    verify_trace,
)
from .fleet import (
    FLEET_PROTOCOLS,
    check_fleet,
    fleet_paths,
    fleet_sample,
    fleet_specs,
    record_fleet,
)
#: Fuzzer names re-exported lazily (module ``__getattr__`` below) so that
#: ``python -m repro.replay.fuzz`` does not import the submodule twice
#: (once here, once as ``__main__`` — runpy warns about that).
_FUZZ_NAMES = frozenset({
    "FuzzCell", "FuzzResult", "evaluate_cell", "outcome_signature",
    "mutate_plan", "plan_atoms", "plan_from_atoms", "ddmin",
    "minimize_plan", "write_corpus", "verify_entry",
})


def __getattr__(name):
    # "fuzz" itself resolves to the submodule (call repro.replay.fuzz.fuzz
    # for the campaign driver); the import sets the package attribute, so
    # later accesses bypass this hook.  importlib, not ``from . import``:
    # the from-import form probes the package attribute first, which
    # re-enters this hook and recurses.
    if name == "fuzz" or name in _FUZZ_NAMES:
        import importlib

        _fuzz = importlib.import_module(".fuzz", __name__)
        return _fuzz if name == "fuzz" else getattr(_fuzz, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ReplayError",
    "ReplaySpec",
    "RecordedRun",
    "ReplayReport",
    "record_run",
    "spec_of",
    "replay_trace",
    "verify_trace",
    "record_golden",
    "check_golden",
    "golden_paths",
    "register_cases",
    "Divergence",
    "first_divergence",
    "bisect_divergence",
    "FLEET_PROTOCOLS",
    "fleet_specs",
    "fleet_paths",
    "fleet_sample",
    "record_fleet",
    "check_fleet",
    "FuzzCell",
    "FuzzResult",
    "evaluate_cell",
    "outcome_signature",
    "mutate_plan",
    "plan_atoms",
    "plan_from_atoms",
    "ddmin",
    "minimize_plan",
    "fuzz",
    "write_corpus",
    "verify_entry",
]

# The gamma_w case rides along whenever the replay subsystem is in play —
# including in pool workers, which import this package while unpickling
# their first replay/fuzz cell.
register_cases()
