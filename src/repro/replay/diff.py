"""Differential replay: localize *where* two traces part ways.

``verify_trace`` tells you a replay diverged; this module tells you at
which event, and with what context.  Two JSONL documents from the same
run prefix are identical line-for-line up to the first divergent event
(sequence numbers are totally ordered and export is deterministic), so a
lockstep walk finds the exact boundary — no alignment heuristics needed.

For send-linked kinds (``deliver``/``drop`` carry a ``ref`` back to the
``send`` they answer), :func:`first_divergence` resolves each side's
``ref`` to the originating send record, so the report reads "this deliver
answers *that* send" instead of a bare integer.

:func:`bisect_divergence` drives the same comparison as a search
primitive: given an integer knob (a seed, a rate step, a version in a
list) and a trace function, it finds the smallest knob value whose trace
differs from the low end's — the "which change broke determinism"
question asked as a binary search.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Divergence", "first_divergence", "bisect_divergence"]


@dataclass
class Divergence:
    """The first point where two trace documents disagree.

    ``index`` is the event position (0-based, counting event lines only);
    ``-1`` means the *meta headers* differ — the runs disagreed before any
    event, e.g. different final status or aggregate totals on truncated
    traces.  ``left``/``right`` are the event dicts (``None`` when that
    side's document ended first).  ``left_send``/``right_send`` are the
    resolved originating send records when the divergent events carry a
    ``ref``.
    """

    index: int
    left: dict | None
    right: dict | None
    left_send: dict | None = None
    right_send: dict | None = None
    fields: tuple = field(default_factory=tuple)

    def describe(self) -> str:
        if self.index == -1:
            keys = ", ".join(self.fields) if self.fields else "?"
            return f"meta headers differ (keys: {keys})"
        if self.left is None:
            return (f"event #{self.index}: left trace ended, right "
                    f"continues with {_brief(self.right)}")
        if self.right is None:
            return (f"event #{self.index}: right trace ended, left "
                    f"continues with {_brief(self.left)}")
        keys = ", ".join(self.fields) if self.fields else "?"
        out = (f"event #{self.index} differs on [{keys}]: "
               f"{_brief(self.left)}  vs  {_brief(self.right)}")
        if self.left_send or self.right_send:
            out += (f"  (answers send {_brief(self.left_send)}"
                    f" vs {_brief(self.right_send)})")
        return out


def _brief(ev: dict | None) -> str:
    if ev is None:
        return "<none>"
    parts = [f"{ev.get('kind', '?')}@t={ev.get('t', '?')}"]
    for k in ("node", "peer", "tag", "span", "detail"):
        if k in ev:
            parts.append(f"{k}={ev[k]!r}")
    return " ".join(parts)


def _parse(text: str) -> tuple[dict, list[dict]]:
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        return {}, []
    return json.loads(lines[0]), [json.loads(ln) for ln in lines[1:]]


def _send_index(events: list[dict]) -> dict[int, dict]:
    return {ev["seq"]: ev for ev in events if ev.get("kind") == "send"}


def _differing_keys(a: dict, b: dict) -> tuple:
    keys = sorted(set(a) | set(b))
    return tuple(k for k in keys if a.get(k) != b.get(k))


def first_divergence(left_text: str, right_text: str) -> Divergence | None:
    """The first divergent event between two JSONL documents, or ``None``.

    Compares parsed records rather than raw lines, so the report names the
    differing *fields*; because export is key-sorted and deterministic,
    record equality and line equality coincide.
    """
    left_meta, left_events = _parse(left_text)
    right_meta, right_events = _parse(right_text)
    for i in range(max(len(left_events), len(right_events))):
        lo = left_events[i] if i < len(left_events) else None
        hi = right_events[i] if i < len(right_events) else None
        if lo == hi:
            continue
        lsends, rsends = _send_index(left_events), _send_index(right_events)
        return Divergence(
            index=i, left=lo, right=hi,
            left_send=lsends.get(lo.get("ref")) if lo else None,
            right_send=rsends.get(hi.get("ref")) if hi else None,
            fields=_differing_keys(lo or {}, hi or {}),
        )
    if left_meta != right_meta:
        # Events agree (or there are none) but the headers disagree —
        # aggregate-only / ring-truncated traces diverge here.
        return Divergence(index=-1, left=None, right=None,
                          fields=_differing_keys(left_meta, right_meta))
    return None


def bisect_divergence(
    lo: int,
    hi: int,
    trace_of: Callable[[int], str],
    *,
    baseline: str | None = None,
) -> tuple[int, Divergence]:
    """Find the smallest ``x`` in ``(lo, hi]`` whose trace differs from
    ``lo``'s.

    ``trace_of(x)`` must be deterministic (cache it if expensive).  The
    usual single-boundary assumption of bisection applies: every ``x``
    past the first divergent one must also diverge from the baseline —
    true for "bad change at some step" questions (a seed list, a commit
    range, a rate ramp), not for knobs that oscillate.

    Returns ``(x, divergence_of_x_vs_baseline)``; raises ``ValueError``
    when ``hi``'s trace equals the baseline (nothing to find).
    """
    if hi <= lo:
        raise ValueError(f"empty bisection range ({lo}, {hi}]")
    base = baseline if baseline is not None else trace_of(lo)
    if first_divergence(base, trace_of(hi)) is None:
        raise ValueError(
            f"trace_of({hi}) matches the baseline; no divergence in range"
        )
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if first_divergence(base, trace_of(mid)) is None:
            lo = mid
        else:
            hi = mid
    div = first_divergence(base, trace_of(hi))
    assert div is not None  # hi diverged when we entered the loop
    return hi, div
