"""Undirected weighted graphs: the substrate of every protocol in the paper.

The paper's model (Section 1.2) is a static communication graph
``G = (V, E, w)`` where ``w(e)`` is simultaneously the *cost* of sending a
message over ``e`` and an upper bound on the *delay* a message may suffer
on ``e``.  This module provides the plain data structure; algorithms live
in sibling modules (:mod:`repro.graphs.mst`, :mod:`repro.graphs.paths`) and
in the protocol packages.

Vertices are arbitrary hashable objects (the test-suite and benchmarks use
integers).  Edges are undirected; both orientations report the same weight.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

__all__ = ["Vertex", "Edge", "WeightedGraph", "edge_key"]


def edge_key(u: Vertex, v: Vertex) -> Edge:
    """Return a canonical (order-independent) key for the undirected edge (u, v).

    Vertices of mixed non-comparable types are ordered by ``repr`` as a
    tiebreaker so that canonical keys stay deterministic.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class WeightedGraph:
    """An undirected graph with positive edge weights.

    Supports the operations every algorithm in the paper needs: adjacency
    queries, weight lookups, subgraph extraction, connectivity, and the
    aggregate weight ``w(G)`` (the paper's script-E when applied to the whole
    graph).

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v, weight)`` triples.
    vertices:
        Optional iterable of isolated vertices to add up front.
    """

    # Lazily attached by :func:`repro.graphs.cache.param_cache`; declared
    # here (untyped to avoid the import cycle) so the attachment
    # type-checks.
    _param_cache: object

    def __init__(
        self,
        edges: Iterable[tuple[Vertex, Vertex, float]] | None = None,
        vertices: Iterable[Vertex] | None = None,
    ) -> None:
        self._adj: dict[Vertex, dict[Vertex, float]] = {}
        # Mutation counter consumed by repro.graphs.cache.GraphParamCache;
        # bumped by every operation that can change a derived parameter.
        self._version = 0
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v, w in edges:
                self.add_edge(u, v, w)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (no-op if already present)."""
        if v not in self._adj:
            self._adj[v] = {}
            self._version += 1

    def add_edge(self, u: Vertex, v: Vertex, weight: float) -> None:
        """Add (or overwrite) the undirected edge (u, v) with the given weight.

        Weights must be strictly positive: a zero-cost edge would break both
        the cost model and the delay model (``w(e)`` bounds the delay).
        """
        if u == v:
            raise ValueError(f"self-loop at {u!r} is not allowed")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight!r}")
        self._adj.setdefault(u, {})[v] = weight
        self._adj.setdefault(v, {})[u] = weight
        self._version += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge (u, v); raise KeyError if absent."""
        del self._adj[u][v]
        del self._adj[v][u]
        self._version += 1

    @property
    def version(self) -> int:
        """Monotone mutation counter (see :mod:`repro.graphs.cache`).

        Any change made through the public API (``add_vertex`` of a new
        vertex, ``add_edge`` — including weight overwrites — and
        ``remove_edge``) increments it; derived-parameter caches compare it
        to detect staleness.
        """
        return self._version

    def copy(self) -> WeightedGraph:
        """Return an independent deep copy of this graph."""
        g = WeightedGraph()
        for v, nbrs in self._adj.items():
            # Bulk-init of a fresh instance: nothing can hold a cache
            # entry for `g` before it is returned, so version 0 is sound.
            g._adj[v] = dict(nbrs)  # repro: allow RS004 -- fresh instance bulk-init
        return g

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def vertices(self) -> list[Vertex]:
        """All vertices, in insertion order."""
        return list(self._adj)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Vertex, v: Vertex) -> float:
        """Weight of edge (u, v); raise KeyError if the edge is absent."""
        return self._adj[u][v]

    def neighbors(self, v: Vertex) -> list[Vertex]:
        """Neighbors of v, in insertion order."""
        return list(self._adj[v])

    def neighbor_weights(self, v: Vertex) -> dict[Vertex, float]:
        """Mapping ``neighbor -> w(v, neighbor)`` (a copy; safe to mutate)."""
        return dict(self._adj[v])

    def degree(self, v: Vertex) -> int:
        return len(self._adj[v])

    def edges(self) -> Iterator[tuple[Vertex, Vertex, float]]:
        """Iterate over each undirected edge exactly once as (u, v, w)."""
        seen: set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield u, v, w

    def edge_list(self) -> list[tuple[Vertex, Vertex, float]]:
        """All undirected edges as a list of (u, v, w) triples."""
        return list(self.edges())

    def total_weight(self) -> float:
        """``w(G)`` — the sum of all edge weights (the paper's script-E)."""
        return sum(w for _, _, w in self.edges())

    def max_weight(self) -> float:
        """``W = max_e w(e)``; 0.0 on an edgeless graph."""
        return max((w for _, _, w in self.edges()), default=0.0)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    def induced_subgraph(self, vertices: Iterable[Vertex]) -> WeightedGraph:
        """``G(S)`` — the subgraph induced by the given vertex set."""
        keep = set(vertices)
        g = WeightedGraph(vertices=keep)
        for u, v, w in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v, w)
        return g

    def edge_subgraph(
        self, edges: Iterable[Edge], *, vertices: Iterable[Vertex] | None = None
    ) -> WeightedGraph:
        """Subgraph containing the given edges (weights copied from self).

        All endpoints are included; extra isolated vertices may be supplied
        via ``vertices`` (e.g. to keep the full vertex set of ``self``).
        """
        g = WeightedGraph(vertices=vertices)
        for u, v in edges:
            g.add_edge(u, v, self.weight(u, v))
        return g

    def connected_components(self) -> list[set[Vertex]]:
        """All connected components, as a list of vertex sets.

        Components are discovered from roots in vertex *insertion* order
        (never hash order), so the returned list order is deterministic
        for any vertex type regardless of ``PYTHONHASHSEED``.
        """
        remaining = set(self._adj)
        components: list[set[Vertex]] = []
        for root in self._adj:  # insertion order, not set hash order
            if root not in remaining:
                continue
            seen = {root}
            stack = [root]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        stack.append(v)
            components.append(seen)
            remaining -= seen
        return components

    def is_connected(self) -> bool:
        if not self._adj:
            return True
        return len(self.connected_components()) == 1

    def is_tree(self) -> bool:
        """True iff the graph is connected and acyclic (and non-empty)."""
        n = self.num_vertices
        return n > 0 and self.num_edges == n - 1 and self.is_connected()

    def __repr__(self) -> str:
        return (
            f"WeightedGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"w={self.total_weight():g})"
        )
