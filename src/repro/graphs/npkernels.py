"""NumPy-vectorized CSR kernel backend (optional; pure Python remains golden).

The flat-array kernels in :mod:`repro.graphs.csr` replaced dict-of-dicts
traversal with list-indexed loops, but every relaxation is still a Python
bytecode dispatch.  At the graph scales the related-work models demand
(message-optimal MST, the latency+capacity model — n in the 10^5..10^6
range) that per-element interpretation dominates sweep wall time.  This
module ports the hot kernels to true array programs in the style of the
per-edge delay-matrix idiom (SNIPPETS.md Snippet 2): whole frontiers and
edge sets move per NumPy call, no per-element Python.

Backend contract
----------------
NumPy is an *optional extra*, never a hard dependency.  Which backend the
public API (``GraphParamCache``, ``prim_mst``, ``kruskal_mst``, the
``params`` functions) uses is decided by :func:`kernel_backend`:

* ``REPRO_KERNEL_BACKEND=python`` — always the pure-Python CSR kernels;
* ``REPRO_KERNEL_BACKEND=numpy`` — the kernels below, falling back to
  ``python`` gracefully when numpy is not importable (no ImportError ever
  escapes);
* unset / ``auto`` — numpy when available, python otherwise.

:func:`set_kernel_backend` installs a process-local override (used by the
pool worker initializer so every worker resolves the same backend the
parent did, keeping serial == pool byte-identity trivially true).

Identity contract
-----------------
Every kernel here returns *value-identical* results to its pure-Python
oracle — same floats bit-for-bit, same MST edge sets chosen under the
same tie-break rule, same exception on disconnected input — pinned by
``tests/test_npkernels_differential.py``.  The arguments:

* **Distances.**  Both Dijkstra (heap or Dial) and the batched
  fixpoint relaxation below compute, for every vertex ``v``, the minimum
  over all paths of the *left-to-right IEEE-754 sum* of the path's
  weights: relaxations only ever lower a distance to ``fl(d[u] + w)``,
  float addition of a non-negative weight is monotone, and any maximal
  sequence of relaxations reaches the same least fixpoint.  Integral
  weights additionally use exact ``int64`` sums whenever every possible
  distance stays below 2**53, where int and float arithmetic agree
  exactly (the same regime the Dial bucket queue relies on).
* **Dense all-pairs.**  In the exact-integer regime the batched scan
  upgrades to an in-place ``int32`` Floyd–Warshall over the full n x n
  matrix when the graph is dense enough (:func:`_fw_applicable`).
  Min-plus closure over *exact integer* arithmetic yields the true
  shortest-path distances regardless of summation order, and those
  integers convert to float64 exactly below 2**53 — so the result is
  value-identical to Dial/Dijkstra.  Floyd–Warshall is *never* used for
  float weights: it associates path sums differently than the oracle's
  left-to-right order, which only exact arithmetic makes harmless.
* **MST tie-breaking.**  ``csr_prim_mst`` pops ``(w, tie)`` keys where
  ``tie`` counts heap pushes: root adjacency first, then each newly
  added vertex's adjacency in CSR order.  Among live frontier edges that
  ordering is exactly lexicographic ``(weight, add-step of the tree
  endpoint, CSR position)``, which :func:`np_prim_mst` encodes as an
  integer rank and minimizes with a masked argmin.  ``csr_kruskal_mst``
  stable-sorts by weight, preserving ``graph.edges()`` order among equal
  weights — exactly what a stable ``argsort`` over the frozen edge
  arrays yields.

Tree-building (``WeightedGraph.add_edge``) inserts the *original* weight
objects out of the CSR snapshot, never ``numpy.float64`` conversions, so
``total_weight()`` sums are bit-equal to the oracle's, including int
versus float reprs.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any

from .csr import CSRGraph, FlatGraph, GraphScan
from .weighted_graph import WeightedGraph

__all__ = [
    "KERNEL_BACKEND_ENV",
    "numpy_available",
    "requested_backend",
    "kernel_backend",
    "set_kernel_backend",
    "backend_info",
    "NPGraph",
    "np_graph_of",
    "NPFlat",
    "np_flat_of",
    "np_flat_source_stats",
    "np_all_sources_scan",
    "np_sssp_dist",
    "np_delay_propagation",
    "np_prim_mst",
    "np_kruskal_mst",
]

KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

_BACKENDS = ("auto", "numpy", "python")

# Integer distance sums are exact in float64 strictly below 2**53; above
# it the int64 path would diverge from the float oracle, so it is gated.
_EXACT_INT_BOUND = 2**53

_np_module: Any = None
_np_checked = False
_forced: str | None = None


def _numpy() -> Any:
    """The numpy module, or ``None`` when not importable (checked once)."""
    global _np_module, _np_checked
    if not _np_checked:
        try:
            import numpy
        except ImportError:
            _np_module = None
        else:
            _np_module = numpy
        _np_checked = True
    return _np_module


def numpy_available() -> bool:
    """True when numpy can be imported in this process."""
    return _numpy() is not None


def requested_backend() -> str:
    """The backend the environment (or an override) asks for, unresolved.

    One of ``auto`` / ``numpy`` / ``python``.  Raises ``ValueError`` on an
    unrecognized ``REPRO_KERNEL_BACKEND`` value — a typo should fail
    loudly, only a genuinely missing numpy falls back silently.
    """
    if _forced is not None:
        return _forced
    raw = os.environ.get(KERNEL_BACKEND_ENV, "auto").strip().lower() or "auto"
    if raw not in _BACKENDS:
        raise ValueError(
            f"{KERNEL_BACKEND_ENV}={raw!r} is not a valid kernel backend; "
            f"expected one of {_BACKENDS}"
        )
    return raw


def kernel_backend() -> str:
    """The *resolved* backend: ``"numpy"`` or ``"python"``.

    ``auto`` and ``numpy`` both resolve to ``python`` when numpy is
    absent (graceful fallback — the pure-Python kernels are complete), so
    callers can branch on this without ever touching an ImportError.
    """
    requested = requested_backend()
    if requested == "python":
        return "python"
    return "numpy" if numpy_available() else "python"


def set_kernel_backend(name: str | None) -> None:
    """Install a process-local backend override (``None`` clears it).

    Overrides take precedence over ``REPRO_KERNEL_BACKEND``.  The sweep
    engine's worker initializer calls this with the parent's resolved
    backend so a pool never mixes backends within one sweep.
    """
    global _forced
    if name is not None and name not in _BACKENDS:
        raise ValueError(
            f"invalid kernel backend {name!r}; expected one of {_BACKENDS}"
        )
    _forced = name


def backend_info() -> dict[str, Any]:
    """Diagnostics: requested vs resolved backend and the numpy version."""
    np = _numpy()
    return {
        "requested": requested_backend(),
        "resolved": kernel_backend(),
        "numpy": None if np is None else str(np.__version__),
    }


def _require_numpy() -> Any:
    np = _numpy()
    if np is None:
        raise RuntimeError(
            "numpy is not available; use the pure-Python kernels "
            "(repro.graphs.csr) or install the 'numpy' extra"
        )
    return np


# --------------------------------------------------------------------- #
# Array snapshot
# --------------------------------------------------------------------- #


class NPGraph:
    """NumPy mirror of a :class:`~repro.graphs.csr.CSRGraph` snapshot.

    Holds the CSR arrays as ``ndarray``s plus the derived structures the
    vectorized kernels need: per-position source vertex (``edge_u``),
    the reverse-edge permutation (``rev``, lazily built), and the exact
    ``int64`` weight view for the integral-weight fast path.  Keeps a
    reference to the originating ``CSRGraph`` so tree-building kernels
    can insert the *original* weight objects (bit-identical sums).

    Snapshots are immutable and version-stamped like the CSR they mirror;
    :meth:`repro.graphs.cache.GraphParamCache.npg` memoizes one per graph
    version and drops it on mutation.
    """

    __slots__ = (
        "csr", "n", "m2", "indptr", "indices", "indices_pad", "weights",
        "iweights", "edge_u", "deg", "use_int", "int_bound",
        "edge_weight_f", "version", "_rev",
    )

    def __init__(self, csr: CSRGraph) -> None:
        np = _require_numpy()
        self.csr = csr
        n = csr.n
        self.n = n
        self.indptr = np.asarray(csr.indptr, dtype=np.int64)
        self.indices = np.asarray(csr.indices, dtype=np.int64)
        self.weights = np.asarray(csr.weights, dtype=np.float64)
        self.m2 = int(self.indices.shape[0])
        # One dummy trailing position: `indptr` starts may equal 2m for
        # trailing degree-0 vertices, and reduceat needs every segment
        # start to index into the candidate row — the relaxation kernels
        # pad their per-edge value arrays with a sentinel to match.
        self.indices_pad = np.append(self.indices, 0)
        self.deg = np.diff(self.indptr)
        self.edge_u = np.repeat(np.arange(n, dtype=np.int64), self.deg)
        bound = max(1, (n - 1) * csr.wmax + 1) if n else 1
        self.use_int = csr.iadj is not None and bound < _EXACT_INT_BOUND
        self.int_bound = int(bound) if self.use_int else 0
        self.iweights = (
            self.weights.astype(np.int64) if self.use_int else None
        )
        self.edge_weight_f = np.asarray(csr.edge_weight, dtype=np.float64)
        self.version = csr.version
        self._rev: Any = None

    @property
    def rev(self) -> Any:
        """Permutation mapping each directed CSR position to its reverse.

        ``rev[j]`` is the CSR position of edge ``(v, u)`` when position
        ``j`` holds ``(u, v)``.  Built on first use (only the asymmetric
        delay-propagation kernel needs it): the directed key ``u*n + v``
        is unique per position, and sorting both orientations aligns each
        edge with its reverse.
        """
        if self._rev is None:
            np = _require_numpy()
            key_fwd = self.edge_u * self.n + self.indices
            key_bwd = self.indices * self.n + self.edge_u
            fwd_order = np.argsort(key_fwd, kind="stable")
            bwd_order = np.argsort(key_bwd, kind="stable")
            rev = np.empty(self.m2, dtype=np.int64)
            rev[bwd_order] = fwd_order
            self._rev = rev
        return self._rev

    def __repr__(self) -> str:
        return (
            f"NPGraph(n={self.n}, m={self.m2 // 2}, "
            f"int={self.use_int}, version={self.version})"
        )


def np_graph_of(graph: WeightedGraph) -> NPGraph:
    """The memoized NumPy snapshot of ``graph`` (rebuilt after mutations).

    Routed through :class:`~repro.graphs.cache.GraphParamCache` alongside
    the CSR snapshot, sharing its version-checked invalidation.
    """
    from .cache import param_cache  # deferred: cache imports our kernels

    return param_cache(graph).npg()


class NPFlat:
    """NumPy view of a :class:`~repro.graphs.csr.FlatGraph` snapshot.

    Mirrors exactly the :class:`NPGraph` attributes the batched
    relaxation kernel reads, built **zero-copy**: ``np.frombuffer`` over
    the flat buffers, which may live in a shared-memory segment — the
    whole point of the big tier is that this constructor touches no graph
    bytes.  Only the derived sentinel pad and degree arrays allocate
    (O(m) int64, built once per process per snapshot via
    :func:`np_flat_of`'s memo on ``FlatGraph.np_cache``).
    """

    __slots__ = (
        "n", "m2", "indptr", "indices", "indices_pad", "weights",
        "iweights", "deg", "use_int", "int_bound",
    )

    def __init__(self, flat: FlatGraph) -> None:
        np = _require_numpy()
        self.n = flat.n
        self.indptr = np.frombuffer(flat.indptr, dtype=np.int64)
        self.indices = np.frombuffer(flat.indices, dtype=np.int64)
        self.weights = np.frombuffer(flat.weights, dtype=np.float64)
        self.m2 = int(self.indices.shape[0])
        self.indices_pad = np.append(self.indices, 0)
        self.deg = np.diff(self.indptr)
        # Same exact-integer gate as NPGraph, in exact int arithmetic
        # (float wmax is integer-valued whenever `integral` is set).
        bound = max(1, (flat.n - 1) * int(flat.wmax) + 1) if flat.n else 1
        self.use_int = flat.integral and bound < _EXACT_INT_BOUND
        self.int_bound = int(bound) if self.use_int else 0
        self.iweights = (
            self.weights.astype(np.int64) if self.use_int else None
        )

    def __repr__(self) -> str:
        return f"NPFlat(n={self.n}, m={self.m2 // 2}, int={self.use_int})"


def np_flat_of(flat: FlatGraph) -> NPFlat:
    """The memoized :class:`NPFlat` view of ``flat`` (built on first use)."""
    cached = flat.np_cache
    if cached is None:
        cached = NPFlat(flat)
        flat.np_cache = cached
    return cached


def np_flat_source_stats(flat: FlatGraph, lo: int, hi: int) -> dict[str, Any]:
    """Batched per-source sweep stats; byte-identical to the Python kernel.

    Runs the blocked fixpoint relaxation (:func:`_dist_rows`) over the
    source range and folds each row into the same three aggregates as
    :func:`repro.graphs.csr.flat_source_stats` — including the sha256
    digest over the float64 distance bytes, which match the heap
    Dijkstra's bit-for-bit (exact int64 below 2**53, float least-fixpoint
    above; see the module docstring's identity contract).
    """
    np = _require_numpy()
    n = flat.n
    if not 0 <= lo <= hi <= n:
        raise IndexError(f"source range [{lo}, {hi}) out of bounds 0..{n}")
    npf = np_flat_of(flat)
    h = hashlib.sha256()
    ecc_max = 0.0
    reach_min = n if hi > lo else 0
    block = max(1, _SCAN_BLOCK_ELEMS // max(n, npf.m2, 1))
    for blo in range(lo, hi, block):
        bhi = min(hi, blo + block)
        dist = _dist_rows(npf, blo, bhi)
        if npf.use_int:
            finite = dist < npf.int_bound
            rows = dist.astype(np.float64)
            rows[~finite] = np.inf
        else:
            finite = dist < np.inf
            rows = dist
        reach = finite.sum(axis=1)
        block_reach_min = int(reach.min())
        if block_reach_min < reach_min:
            reach_min = block_reach_min
        # ecc per row: the max finite distance when everything was
        # reached, else inf — rows.max() is exactly that, because a row
        # with any unreached vertex maxes to the inf sentinel itself.
        block_ecc = float(rows.max())
        if block_ecc > ecc_max:
            ecc_max = block_ecc
        h.update(np.ascontiguousarray(rows).tobytes())
    return {
        "kind": "sources",
        "lo": lo,
        "hi": hi,
        "sources": hi - lo,
        "reach_min": reach_min,
        "ecc_max": ecc_max,
        "digest": h.hexdigest()[:16],
    }


# --------------------------------------------------------------------- #
# Batched shortest-path relaxation
# --------------------------------------------------------------------- #

# Cap on the (rows x columns) scratch the batched scan holds at once;
# sources are processed in row blocks sized to stay under it.
_SCAN_BLOCK_ELEMS = 1 << 22


def _dist_rows(npg: NPGraph | NPFlat, lo: int, hi: int) -> Any:
    """Shortest-path distances from sources ``lo..hi-1`` as a 2-D array.

    Frontier-at-a-time array relaxation: each round gathers every
    vertex's in-neighbor distances (one fancy-index + segment-min over
    the CSR layout — rows of the symmetric CSR *are* the in-edge lists),
    adds the per-edge weights, and folds the result into the distance
    matrix with an elementwise min.  Rows are independent single-source
    problems, so rows that reach their fixpoint drop out of later rounds
    (the array analog of Dial's bucket queue draining in distance order).

    Integral weights run in exact ``int64`` with ``npg.int_bound`` as the
    infinity sentinel; fractional (or 2**53-exceeding) weights run in
    ``float64`` with ``inf``.  Either way the fixpoint equals the oracle
    Dijkstra distances bit-for-bit (see the module docstring).
    """
    np = _require_numpy()
    n = npg.n
    size = hi - lo
    if npg.use_int:
        weights = npg.iweights
        sentinel: Any = npg.int_bound
        dist = np.full((size, n), sentinel, dtype=np.int64)
    else:
        weights = npg.weights
        sentinel = np.inf
        dist = np.full((size, n), sentinel, dtype=np.float64)
    dist[np.arange(size), np.arange(lo, hi)] = 0
    if npg.m2 == 0:
        return dist
    # Candidate rows carry one sentinel pad column so every reduceat
    # segment start (including the 2m of trailing degree-0 vertices) is
    # a valid index without clamping — clamping would silently truncate
    # the preceding vertex's segment.  Degree-0 columns (whose "segment"
    # is empty and reads an arbitrary neighbor candidate) are masked
    # back to the sentinel afterwards.
    indices = npg.indices_pad
    weights_pad = np.append(weights, sentinel)
    starts = npg.indptr[:-1]
    deg0 = npg.deg == 0
    any_deg0 = bool(deg0.any())
    active = np.arange(size)
    while active.size:
        rows = dist[active]
        cand = rows[:, indices] + weights_pad
        relaxed = np.minimum.reduceat(cand, starts, axis=1)
        if any_deg0:
            relaxed[:, deg0] = sentinel
        new_rows = np.minimum(rows, relaxed)
        changed = (new_rows != rows).any(axis=1)
        dist[active] = new_rows
        active = active[changed]
    return dist


# Dense-regime Floyd-Warshall dispatch.  The n x n int32 matrix stays
# cache-resident up to _FW_MAX_N (~1.1ns per element on one core), so an
# n-pass min-plus closure beats both the per-source Dial scan and the
# batched relaxation whenever the graph carries enough edges per vertex
# (or is small enough that n^3 is cheap regardless).  The sentinel is
# chosen so SENTINEL + SENTINEL still fits in int32 — no overflow wraps
# a "still infinite" candidate below a real distance.
_FW_SENTINEL = (1 << 30) - 1
_FW_MAX_N = 2048
_FW_SMALL_N = 512
_FW_DENSE_FACTOR = 64


def _fw_applicable(npg: NPGraph) -> bool:
    """True when the scan should run the dense Floyd-Warshall kernel.

    Requires the exact-integer regime with every distance (and every
    sentinel sum) representable in int32, and a shape where n^3 wins:
    small graphs unconditionally, larger ones only when the edge count
    clears ``n^2 / _FW_DENSE_FACTOR`` (sparser graphs fall back to the
    blocked relaxation, whose work scales with m rather than n^2).
    """
    n = npg.n
    if not npg.use_int or n < 2 or n > _FW_MAX_N:
        return False
    if npg.int_bound > _FW_SENTINEL:
        return False
    return n <= _FW_SMALL_N or npg.m2 * _FW_DENSE_FACTOR >= n * n


def _fw_all_pairs(npg: NPGraph) -> Any:
    """All-pairs distances via in-place int32 Floyd-Warshall.

    Returns the dense ``(n, n)`` matrix with ``_FW_SENTINEL`` marking
    unreachable pairs.  Exact integer min-plus closure: the result is
    the true shortest-path distance for every pair, independent of the
    order path sums associate in — which is why this path is gated to
    ``use_int`` (see the module docstring's identity contract).
    """
    np = _require_numpy()
    n = npg.n
    dist = np.full((n, n), _FW_SENTINEL, dtype=np.int32)
    dist[npg.edge_u, npg.indices] = npg.iweights.astype(np.int32)
    np.fill_diagonal(dist, 0)
    for k in range(n):
        cand = dist[:, k, None] + dist[k, None, :]
        np.minimum(dist, cand, out=dist)
    return dist


def np_all_sources_scan(npg: NPGraph) -> GraphScan:
    """Batched eccentricities / diameter / max neighbor distance.

    Value-identical to :func:`repro.graphs.csr.all_sources_scan`: the
    same ``GraphScan`` floats bit-for-bit, computed from 2-D distance
    blocks instead of one Python Dijkstra per source.  Dense graphs in
    the exact-integer regime run the Floyd-Warshall closure instead of
    blocked relaxation (:func:`_fw_applicable`); either way the values
    are identical.  Memory is bounded by processing sources in
    contiguous row blocks (the dense path holds one n x n int32 matrix).
    """
    np = _require_numpy()
    n = npg.n
    if n == 0:
        return GraphScan([], 0.0, 0.0)
    if _fw_applicable(npg):
        dist = _fw_all_pairs(npg)
        reached_all = (dist < _FW_SENTINEL).all(axis=1)
        row_max = dist.max(axis=1).astype(np.float64)
        ecc_arr = np.where(reached_all, row_max, np.inf)
        max_nbr = (
            float(dist[npg.edge_u, npg.indices].max()) if npg.m2 else 0.0
        )
        diameter = float(ecc_arr.max())
        return GraphScan(
            [float(e) for e in ecc_arr.tolist()], diameter, max_nbr
        )
    block = max(1, _SCAN_BLOCK_ELEMS // max(n, npg.m2, 1))
    ecc = np.empty(n, dtype=np.float64)
    max_nbr = 0.0
    indices = npg.indices
    edge_u = npg.edge_u
    indptr = npg.indptr
    for lo in range(0, n, block):
        hi = min(n, lo + block)
        dist = _dist_rows(npg, lo, hi)
        if npg.use_int:
            reached_all = (dist < npg.int_bound).all(axis=1)
            row_max = dist.max(axis=1).astype(np.float64)
            ecc[lo:hi] = np.where(reached_all, row_max, np.inf)
        else:
            # A row max of inf is exactly "some vertex unreached".
            ecc[lo:hi] = dist.max(axis=1)
        a, b = int(indptr[lo]), int(indptr[hi])
        if b > a:
            # dist(u, v) for every directed edge (u, v) with u in block:
            # neighbors are always reachable, so these are finite.
            nbr = dist[edge_u[a:b] - lo, indices[a:b]]
            block_max = float(nbr.max())
            if block_max > max_nbr:
                max_nbr = block_max
    diameter = float(ecc.max())
    return GraphScan([float(e) for e in ecc.tolist()], diameter, max_nbr)


def np_sssp_dist(npg: NPGraph, source: int) -> list[float]:
    """Distances from one dense source index (``inf`` where unreachable).

    Value-identical to the ``dist`` side of
    :func:`repro.graphs.csr.sssp_maps` (which additionally reports
    parents and discovery order — those are inherently sequential and
    stay on the Python kernel under every backend).
    """
    np = _require_numpy()
    if not 0 <= source < npg.n:
        raise IndexError(f"source index {source} out of range 0..{npg.n - 1}")
    row = _dist_rows(npg, source, source + 1)[0]
    if npg.use_int:
        out = row.astype(np.float64)
        out[row >= npg.int_bound] = np.inf
        return [float(x) for x in out.tolist()]
    return [float(x) for x in row.tolist()]


def np_delay_propagation(
    npg: NPGraph, source: int, delays: Any = None
) -> list[float]:
    """Earliest flood/pulse arrival times under per-edge delays.

    The paper's delay model lets each directed traversal of ``e`` take
    any delay in ``[0, w(e)]``; a flood started at ``source`` delivers to
    ``v`` at ``min`` over in-edges of ``arrival[u] + delay(u -> v)``.
    ``delays`` is an array aligned with the directed CSR positions
    (``delays[j]`` is the delay of the edge stored at position ``j``);
    ``None`` means the worst case ``delays = weights``, which makes this
    exactly single-source shortest paths.

    Asymmetric delays are supported via the reverse-edge permutation:
    relaxing *into* ``v`` over row ``v`` of the CSR reads the delay of
    the *opposite* orientation, i.e. ``delays[rev[j]]``.  Updated
    per-iteration as one fused array op per frontier round — the
    delay-matrix idiom of SNIPPETS.md Snippet 2.
    """
    np = _require_numpy()
    n = npg.n
    if not 0 <= source < n:
        raise IndexError(f"source index {source} out of range 0..{n - 1}")
    if delays is None:
        if npg.use_int:
            return np_sssp_dist(npg, source)
        in_delay = npg.weights
    else:
        delays = np.asarray(delays, dtype=np.float64)
        if delays.shape != (npg.m2,):
            raise ValueError(
                f"delays must have one entry per directed CSR position "
                f"({npg.m2}), got shape {delays.shape}"
            )
        if bool((delays < 0).any()):
            raise ValueError("delays must be non-negative")
        in_delay = delays[npg.rev]
    arrival = np.full(n, np.inf, dtype=np.float64)
    arrival[source] = 0.0
    if npg.m2 == 0:
        return [float(x) for x in arrival.tolist()]
    # Same sentinel pad column as _dist_rows (see there for why).
    starts = npg.indptr[:-1]
    deg0 = npg.deg == 0
    any_deg0 = bool(deg0.any())
    indices = npg.indices_pad
    in_delay_pad = np.append(in_delay, np.inf)
    while True:
        cand = arrival[indices] + in_delay_pad
        relaxed = np.minimum.reduceat(cand, starts)
        if any_deg0:
            relaxed[deg0] = np.inf
        new = np.minimum(arrival, relaxed)
        if bool((new == arrival).all()):
            break
        arrival = new
    return [float(x) for x in arrival.tolist()]


# --------------------------------------------------------------------- #
# Minimum spanning trees
# --------------------------------------------------------------------- #


def np_prim_mst(npg: NPGraph, root: int = 0) -> WeightedGraph:
    """Array Prim; byte-identical to :func:`~repro.graphs.csr.csr_prim_mst`.

    Maintains, per non-tree vertex, the best frontier edge keyed by
    ``(weight, rank)`` where ``rank = add_step * 2m + CSR position``
    replays the heap push counter's ordering exactly (see the module
    docstring).  Each step is two vectorized passes — a masked update of
    the frontier arrays over the new vertex's adjacency, and a masked
    argmin to select the next tree edge — so the per-step work is one
    adjacency row plus O(n) array ops, with no per-edge Python.

    Raises ``ValueError`` on a disconnected graph, like every oracle.
    """
    np = _require_numpy()
    n = npg.n
    if n == 0:
        return WeightedGraph()
    csr = npg.csr
    verts = csr.verts
    raw_weights = csr.weights  # original weight objects for add_edge
    indptr = npg.indptr
    indices = npg.indices
    weights = npg.weights
    edge_u = npg.edge_u
    m2 = max(npg.m2, 1)
    int64_max = np.iinfo(np.int64).max
    best_w = np.full(n, np.inf, dtype=np.float64)
    best_rank = np.full(n, int64_max, dtype=np.int64)
    best_pos = np.full(n, -1, dtype=np.int64)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[root] = True
    tree = WeightedGraph(vertices=[verts[root]])
    add_edge = tree.add_edge
    u = root
    step = 0
    for _ in range(n - 1):
        a, b = int(indptr[u]), int(indptr[u + 1])
        if b > a:
            nbrs = indices[a:b]
            ws = weights[a:b]
            pos = np.arange(a, b, dtype=np.int64)
            # Strict < : an equal-weight edge pushed later loses the tie,
            # exactly as the heap's monotone push counter decides it.
            improves = ~in_tree[nbrs] & (ws < best_w[nbrs])
            if bool(improves.any()):
                target = nbrs[improves]
                best_w[target] = ws[improves]
                best_rank[target] = step * m2 + pos[improves]
                best_pos[target] = pos[improves]
        step += 1
        frontier_w = np.where(in_tree, np.inf, best_w)
        w_min = frontier_w.min()
        if not w_min < np.inf:
            raise ValueError("graph is not connected; MST undefined")
        tie_rank = np.where(frontier_w == w_min, best_rank, int64_max)
        v = int(tie_rank.argmin())
        j = int(best_pos[v])
        add_edge(verts[int(edge_u[j])], verts[v], raw_weights[j])
        in_tree[v] = True
        u = v
    return tree


def np_kruskal_mst(npg: NPGraph) -> WeightedGraph:
    """Kruskal via stable argsort; byte-identical to the CSR/dict oracles.

    A stable ``argsort`` over the frozen edge-weight array yields exactly
    the order Python's stable ``sorted(..., key=weight)`` visits —
    ``graph.edges()`` order among equal weights, which *is* the pinned
    tie-break rule.  The union-find admission pass stays a sequential
    loop (each union depends on every prior one — that data dependence,
    not the implementation, is what fixes the admitted edge set), run
    over plain int lists with path halving.
    """
    np = _require_numpy()
    csr = npg.csr
    n = npg.n
    verts = csr.verts
    es = csr.edge_src
    ed = csr.edge_dst
    ew = csr.edge_weight
    tree = WeightedGraph(vertices=verts)
    add_edge = tree.add_edge
    order = np.argsort(npg.edge_weight_f, kind="stable").tolist()
    parent = list(range(n))
    rank = [0] * n
    added = 0
    for j in order:
        ru = es[j]
        while parent[ru] != ru:
            parent[ru] = parent[parent[ru]]
            ru = parent[ru]
        rv = ed[j]
        while parent[rv] != rv:
            parent[rv] = parent[parent[rv]]
            rv = parent[rv]
        if ru == rv:
            continue
        if rank[ru] < rank[rv]:
            ru, rv = rv, ru
        parent[rv] = ru
        if rank[ru] == rank[rv]:
            rank[ru] += 1
        add_edge(verts[es[j]], verts[ed[j]], ew[j])
        added += 1
    if added != n - 1 and n > 0:
        raise ValueError("graph is not connected; MST undefined")
    return tree
