"""Indexed flat-array graph core: CSR layout + array-based kernels.

The dict-of-dicts :class:`~repro.graphs.weighted_graph.WeightedGraph` is
the right *mutation* structure, but its traversal API pays a dict copy per
neighborhood visit (``neighbor_weights``), boxed-key hashing per
relaxation, and per-call closure/dict allocation — the dominant cost of
the paper's weighted parameters (script-V via MST, script-D via all-pairs
eccentricities, ``d`` via max neighbor distance), which each need ``n``
Dijkstra runs or a whole-graph edge scan.

:class:`CSRGraph` freezes one immutable snapshot of a graph in compressed
sparse row form: vertices are interned to dense indices ``0..n-1`` (in
insertion order, so every kernel below replays the dict path's iteration
order exactly), adjacency lives in parallel ``indptr``/``indices``/
``weights`` arrays, and the undirected edge list is captured once in
``graph.edges()`` order for Kruskal.  Kernels operate on preallocated
list buffers indexed by ``int`` — no hashing, no per-visit allocation:

* :func:`sssp_into` — Dijkstra into caller-owned ``dist``/``parent``/
  ``order`` buffers (``order`` records discovery order so buffers reset
  in O(touched), and so dict views rebuild with the exact insertion
  order of :func:`repro.graphs.paths.dijkstra`);
* :func:`sssp_maps` — drop-in dict view of one source's run,
  byte-identical to ``paths.dijkstra`` (same values, same tie-breaking,
  same dict insertion order);
* :func:`all_sources_scan` — eccentricities, diameter, and the max
  neighbor distance ``d`` in a *single* batched pass over all sources,
  reusing one scratch buffer set (the dict path pays two full all-source
  sweeps for the same three quantities);
* :func:`csr_prim_mst` — Prim over the flat adjacency, byte-identical to
  :func:`repro.graphs.mst.prim_mst` (same tie sequence, same tree edge
  insertion order, hence bit-equal ``total_weight()`` sums);
* :func:`csr_kruskal_mst` — Kruskal over the frozen edge arrays with an
  int-indexed union-find, byte-identical to the dict Kruskal (stable
  sort preserves ``graph.edges()`` order among equal weights).

Snapshots are versioned: :func:`csr_of` memoizes the CSR build per graph
through :class:`~repro.graphs.cache.GraphParamCache`, which invalidates
it via the ``WeightedGraph.version`` mutation counter, so a stale
snapshot is impossible through the public API.
"""

from __future__ import annotations

import hashlib
import heapq
from array import array
from typing import Any, NamedTuple

from .weighted_graph import Vertex, WeightedGraph

__all__ = [
    "CSRGraph",
    "csr_of",
    "sssp_into",
    "sssp_maps",
    "all_sources_scan",
    "GraphScan",
    "csr_prim_mst",
    "csr_kruskal_mst",
    "FlatGraph",
    "edges_to_flat",
    "flat_of",
    "flat_sssp_dist",
    "flat_source_stats",
    "flat_stripe_stats",
]

_INF = float("inf")

# Largest Dial bucket array the all-sources scan will allocate.  The
# bucket count is (n-1)*wmax + 1, so heavy-weight integral families —
# the paper's lower-bound graphs G_n carry bypass edges of weight X^4
# with X = n + 1 — would otherwise demand billions of list allocations
# (an OOM, not a slowdown).  Past the cap the scan uses the heap
# discipline, which is value-identical in every weight regime.
_DIAL_BOUND_CAP = 1 << 22


class CSRGraph:
    """An immutable CSR snapshot of a :class:`WeightedGraph`.

    Attributes
    ----------
    n:
        Vertex count.
    verts:
        Dense index -> original vertex object, in graph insertion order.
    index:
        Original vertex object -> dense index (the interning map).
    indptr:
        ``indptr[i]:indptr[i+1]`` delimits vertex *i*'s adjacency in the
        parallel arrays; length ``n + 1``.
    indices / weights:
        Flat neighbor indices and edge weights, both length ``2m``
        (each undirected edge appears once per endpoint), in the same
        neighbor order the dict adjacency reports.
    adj:
        ``adj[i]`` is vertex *i*'s ``(neighbor, weight)`` pair list —
        the ``indptr`` slices of ``zip(indices, weights)`` materialized
        once at build time, so the kernels' hot loops pay zero per-visit
        allocation (a fresh slice per settled vertex costs ~30% of scan
        time at bench sizes).
    iadj / wmax:
        When every weight is a non-negative integer (the paper's
        ``W = poly(n)`` regime and all of this repo's generators),
        ``iadj`` mirrors ``adj`` with ``int`` weights and ``wmax`` is the
        largest; :func:`all_sources_scan` then runs a Dial bucket queue
        instead of a binary heap (as long as the bucket count stays
        under :data:`_DIAL_BOUND_CAP`).  ``iadj`` is ``None`` for
        fractional or negative weights.
    edge_src / edge_dst / edge_weight:
        The undirected edge list as index triples, in ``graph.edges()``
        order (each edge exactly once) — Kruskal's input.
    version:
        The ``WeightedGraph.version`` this snapshot was built from.
    """

    __slots__ = (
        "n", "verts", "index", "indptr", "indices", "weights", "adj",
        "iadj", "wmax", "edge_src", "edge_dst", "edge_weight", "version",
    )

    def __init__(self, graph: WeightedGraph) -> None:
        verts = graph.vertices
        index = {v: i for i, v in enumerate(verts)}
        indptr = [0]
        indices: list[int] = []
        weights: list[float] = []
        append_i = indices.append
        append_w = weights.append
        for v in verts:
            for u, w in graph.neighbor_weights(v).items():
                append_i(index[u])
                append_w(w)
            indptr.append(len(indices))
        self.n = len(verts)
        self.verts = verts
        self.index = index
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        pairs = list(zip(indices, weights, strict=True))
        self.adj = [pairs[indptr[i]:indptr[i + 1]] for i in range(self.n)]
        # Integral non-negative weights (the paper's W = poly(n) integer
        # regime, and what every generator in this repo emits) admit a
        # Dial bucket queue in the all-sources scan; detect once here.
        # Integer sums below 2**53 are exact in float, so the scan's
        # results are bit-equal either way.
        integral = True
        wmax = 0
        for w in weights:
            if w != int(w) or w < 0:
                integral = False
                break
            if w > wmax:
                wmax = int(w)
        if integral:
            # Generators store randint weights as ints already; only
            # float-typed integral weights (e.g. unit 1.0) need copying.
            if all(type(w) is int for w in weights):
                self.iadj: list | None = self.adj
            else:
                self.iadj = [
                    [(v, int(w)) for v, w in row] for row in self.adj
                ]
            self.wmax = wmax
        else:
            self.iadj = None
            self.wmax = 0
        es: list[int] = []
        ed: list[int] = []
        ew: list[float] = []
        for u, v, w in graph.edges():
            es.append(index[u])
            ed.append(index[v])
            ew.append(w)
        self.edge_src = es
        self.edge_dst = ed
        self.edge_weight = ew
        self.version = graph.version

    @property
    def m(self) -> int:
        return len(self.edge_weight)

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, m={self.m}, version={self.version})"


def csr_of(graph: WeightedGraph) -> CSRGraph:
    """The memoized CSR snapshot of ``graph`` (rebuilt after mutations).

    Routed through :func:`repro.graphs.cache.param_cache`, which owns the
    version-checked invalidation; callers get a snapshot that is always
    consistent with the graph's current contents.
    """
    from .cache import param_cache  # deferred: cache imports our kernels

    return param_cache(graph).csr()


# --------------------------------------------------------------------- #
# Shortest paths
# --------------------------------------------------------------------- #


def sssp_into(
    csr: CSRGraph,
    source: int,
    dist: list[float],
    parent: list[int],
    order: list[int],
) -> None:
    """Dijkstra from ``source`` (a dense index) into caller-owned buffers.

    Requires clean buffers: ``dist[i] == inf`` and ``parent[i] == -1``
    for every i, ``order`` empty.  On return ``order`` lists every
    reached index in first-discovery order — exactly the dict-path
    insertion order — and resetting only those entries restores the
    buffers in O(touched).

    The tie-breaking counter replays :func:`repro.graphs.paths.dijkstra`
    push-for-push, so the settled order, final distances, and parent
    choices are identical to the dict implementation.
    """
    adj = csr.adj
    push = heapq.heappush
    pop = heapq.heappop
    dist[source] = 0.0
    order.append(source)
    tie = 1
    heap: list[tuple[float, int, int]] = [(0.0, 0, source)]
    while heap:
        d, _, u = pop(heap)
        if d > dist[u]:
            continue  # stale entry; u was settled at a smaller distance
        for v, w in adj[u]:
            nd = d + w
            dv = dist[v]
            if nd < dv:
                if dv == _INF:
                    order.append(v)
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, tie, v))
                tie += 1


def sssp_maps(
    csr: CSRGraph, source: Vertex
) -> tuple[dict[Vertex, float], dict[Vertex, Vertex | None]]:
    """One source's ``(dist, parent)`` as vertex-keyed dicts.

    Byte-compatible with :func:`repro.graphs.paths.dijkstra`: same
    values, same reachable set, and the same dict insertion order
    (first-discovery order), so downstream consumers that iterate the
    dicts see an unchanged sequence.
    """
    s = csr.index.get(source)
    if s is None:
        raise KeyError(f"source {source!r} not in graph")
    n = csr.n
    dist = [_INF] * n
    parent = [-1] * n
    order: list[int] = []
    sssp_into(csr, s, dist, parent, order)
    verts = csr.verts
    dist_map: dict[Vertex, float] = {}
    parent_map: dict[Vertex, Vertex | None] = {}
    for i in order:
        v = verts[i]
        dist_map[v] = dist[i]
        p = parent[i]
        parent_map[v] = verts[p] if p >= 0 else None
    return dist_map, parent_map


class GraphScan(NamedTuple):
    """Everything one batched all-sources sweep yields."""

    ecc: list[float]        # eccentricity per dense index (inf if disconnected)
    diameter: float         # max eccentricity (0.0 on an empty graph)
    max_neighbor_distance: float  # d = max over edges of dist(u, v)


def all_sources_scan(csr: CSRGraph) -> GraphScan:
    """Eccentricities, diameter, and ``d`` in one pass over all sources.

    One Dijkstra per source against a single reused buffer set; the
    eccentricity is accumulated from settled pop distances (no second
    max() pass) and the neighbor-distance bound ``d`` reads each source's
    finished ``dist`` row directly.  Values are identical to the
    dict-path formulas in :mod:`repro.graphs.cache`.

    Unlike :func:`sssp_into`, nothing here exposes parents or discovery
    order, and final distances are canonical under any tie-breaking
    (every tied pop order settles the same minima, and an exactly-tied
    float sum is the same float) — so the scan skips the replay
    bookkeeping the map-building kernel must keep.  Two queue
    disciplines, same results bit-for-bit:

    * integral weights (``csr.iadj`` is set) with a bucket count
      ``(n-1)*wmax + 1`` at most :data:`_DIAL_BOUND_CAP`: a Dial bucket
      queue — O(1) appends per relaxation, buckets consumed in distance
      order up to the source's eccentricity, the whole bucket array
      allocated once and recycled across sources (integer distance sums
      are exact in float, so converting at the end loses nothing);
    * fractional weights, or integral weights too heavy to bucket: a
      binary heap of bare ``(d, v)`` pairs.
    """
    n = csr.n
    ecc: list[float] = [0.0] * n
    diam = 0.0
    max_nbr = 0.0
    # Distances are < n * wmax; one spare slot for the +w overshoot.
    bound = max(1, (n - 1) * csr.wmax + 1) if n else 1
    if csr.iadj is not None and bound <= _DIAL_BOUND_CAP:
        iadj = csr.iadj
        buckets: list[list[int]] = [[] for _ in range(bound)]
        idist = [bound] * n  # bound acts as the integer infinity
        imax_nbr = 0
        for s in range(n):
            touched = [s]
            touch = touched.append
            idist[s] = 0
            buckets[0].append(s)
            pending = 1
            far = 0
            d = 0
            while pending:
                b = buckets[d]
                if b:
                    # A zero-weight relaxation appends to b mid-loop; the
                    # list iterator picks it up, so the whole same-distance
                    # closure settles in this pass and len(b) afterwards
                    # counts every consumed entry.
                    for u in b:
                        if idist[u] != d:
                            continue  # superseded by a shorter relaxation
                        far = d
                        for v, w in iadj[u]:
                            nd = d + w
                            if nd < idist[v]:
                                if idist[v] == bound:
                                    touch(v)
                                idist[v] = nd
                                buckets[nd].append(v)
                                pending += 1
                    pending -= len(b)
                    b.clear()
                d += 1
            e = float(far) if len(touched) == n else _INF
            ecc[s] = e
            if e > diam:
                diam = e
            for v, _w in iadj[s]:
                dv = idist[v]
                if dv > imax_nbr:
                    imax_nbr = dv
            for i in touched:
                idist[i] = bound
        max_nbr = float(imax_nbr)
        return GraphScan(ecc, diam, max_nbr)
    adj = csr.adj
    push = heapq.heappush
    pop = heapq.heappop
    dist = [_INF] * n
    for s in range(n):
        touched = [s]
        touch = touched.append
        dist[s] = 0.0
        far = 0.0
        heap: list[tuple[float, int]] = [(0.0, s)]
        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                continue
            far = d  # pops are monotone in d: the last settled d is the max
            for v, w in adj[u]:
                nd = d + w
                dv = dist[v]
                if nd < dv:
                    if dv == _INF:
                        touch(v)
                    dist[v] = nd
                    push(heap, (nd, v))
        e = far if len(touched) == n else _INF
        ecc[s] = e
        if e > diam:
            diam = e
        for v, _w in adj[s]:
            dv = dist[v]
            if dv > max_nbr:
                max_nbr = dv
        for i in touched:
            dist[i] = _INF
    return GraphScan(ecc, diam, max_nbr)


# --------------------------------------------------------------------- #
# Minimum spanning trees
# --------------------------------------------------------------------- #


def csr_prim_mst(csr: CSRGraph, root: int = 0) -> WeightedGraph:
    """Prim over the flat adjacency; byte-identical to ``prim_mst``.

    The tie counter advances push-for-push with the dict implementation
    (root adjacency first, then each newly added vertex's non-tree
    neighbors in adjacency order), so equal-weight choices, the tree's
    edge insertion order, and therefore ``total_weight()`` rounding are
    all bit-equal.  Raises ``ValueError`` on a disconnected graph.
    """
    n = csr.n
    if n == 0:
        return WeightedGraph()
    verts = csr.verts
    adj = csr.adj
    push = heapq.heappush
    pop = heapq.heappop
    in_tree = bytearray(n)
    in_tree[root] = 1
    tree = WeightedGraph(vertices=[verts[root]])
    add_edge = tree.add_edge
    tie = 0
    heap: list[tuple[float, int, int, int]] = []
    for v, w in adj[root]:
        push(heap, (w, tie, root, v))
        tie += 1
    added = 1
    while heap:
        w, _, u, v = pop(heap)
        if in_tree[v]:
            continue
        in_tree[v] = 1
        added += 1
        add_edge(verts[u], verts[v], w)
        for x, wx in adj[v]:
            if not in_tree[x]:
                push(heap, (wx, tie, v, x))
                tie += 1
    if added != n:
        raise ValueError("graph is not connected; MST undefined")
    return tree


def csr_kruskal_mst(csr: CSRGraph) -> WeightedGraph:
    """Kruskal over the frozen edge arrays; byte-identical to the dict path.

    A stable sort of edge indices by weight preserves ``graph.edges()``
    order among equal weights — the same order ``sorted(graph.edges(),
    key=weight)`` yields — and the int-indexed union-find admits exactly
    the same edges, so the resulting tree matches
    :func:`repro.graphs.mst.kruskal_mst` edge-for-edge.
    """
    n = csr.n
    verts = csr.verts
    es = csr.edge_src
    ed = csr.edge_dst
    ew = csr.edge_weight
    tree = WeightedGraph(vertices=verts)
    add_edge = tree.add_edge
    uf_parent = list(range(n))
    uf_rank = [0] * n
    added = 0
    for j in sorted(range(len(ew)), key=ew.__getitem__):
        # find(u), find(v) with path compression, inline and iterative.
        ru = es[j]
        while uf_parent[ru] != ru:
            ru = uf_parent[ru]
        x = es[j]
        while uf_parent[x] != ru:
            uf_parent[x], x = ru, uf_parent[x]
        rv = ed[j]
        while uf_parent[rv] != rv:
            rv = uf_parent[rv]
        x = ed[j]
        while uf_parent[x] != rv:
            uf_parent[x], x = rv, uf_parent[x]
        if ru == rv:
            continue
        if uf_rank[ru] < uf_rank[rv]:
            ru, rv = rv, ru
        uf_parent[rv] = ru
        if uf_rank[ru] == uf_rank[rv]:
            uf_rank[ru] += 1
        add_edge(verts[es[j]], verts[ed[j]], ew[j])
        added += 1
    if added != n - 1 and n > 0:
        raise ValueError("graph is not connected; MST undefined")
    return tree


# --------------------------------------------------------------------- #
# Flat buffer-backed snapshots (the zero-copy / shared-memory substrate)
# --------------------------------------------------------------------- #


def _byte_view(buf: Any) -> memoryview:
    """A flat unsigned-byte view over an ``array``/``memoryview`` buffer."""
    return memoryview(buf).cast("B")


class FlatGraph:
    """A dense-index CSR snapshot held in flat C buffers.

    Where :class:`CSRGraph` keeps Python lists (and interning maps back to
    the original vertex objects), ``FlatGraph`` keeps exactly three
    contiguous buffers — ``indptr`` (int64, length ``n + 1``), ``indices``
    (int64, length ``2m``) and ``weights`` (float64, length ``2m``) — and
    nothing else.  That shape is what makes a graph *transportable*: the
    buffers can be copied byte-for-byte into a
    ``multiprocessing.shared_memory`` segment and re-viewed zero-copy in
    every pool worker (:mod:`repro.graphs.shm`), and they can be built
    *streamed* from an edge generator without ever materializing the
    dict-of-dicts ``WeightedGraph`` (:func:`edges_to_flat`) — the only way
    the paper's lower-bound families fit in memory at n = 10^6.

    ``indptr``/``indices``/``weights`` are either ``array.array`` (local
    build) or typed ``memoryview`` casts over a shared segment (attach
    path); both index to plain Python ints/floats, so every kernel below
    runs on either backing unchanged.

    ``spec`` is an optional picklable rebuild recipe (see
    ``repro.graphs.shm.build_spec``) used as the last-resort fallback when
    a worker cannot attach the shared segment.  ``version`` mirrors the
    ``WeightedGraph.version`` counter when the snapshot derives from a
    live graph (0 for streamed builds, which have no mutable source).
    """

    __slots__ = (
        "n", "indptr", "indices", "weights", "integral", "wmax",
        "spec", "version", "np_cache", "_fp",
    )

    def __init__(
        self,
        n: int,
        indptr: Any,
        indices: Any,
        weights: Any,
        *,
        integral: bool,
        wmax: float,
        spec: tuple[Any, ...] | None = None,
        version: int = 0,
    ) -> None:
        if len(indptr) != n + 1:
            raise ValueError(f"indptr must have n+1={n + 1} entries, got {len(indptr)}")
        m2 = int(indptr[n]) if n else 0
        if len(indices) != m2 or len(weights) != m2:
            raise ValueError(
                f"indices/weights must have indptr[-1]={m2} entries, "
                f"got {len(indices)}/{len(weights)}"
            )
        self.n = n
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.integral = integral
        self.wmax = wmax
        self.spec = spec
        self.version = version
        self.np_cache: Any = None  # NPFlat memo, owned by repro.graphs.npkernels
        self._fp: str | None = None

    @property
    def m2(self) -> int:
        """Directed slot count (each undirected edge appears twice)."""
        return len(self.indices)

    @property
    def m(self) -> int:
        return self.m2 // 2

    @property
    def nbytes(self) -> int:
        """Total payload bytes across the three buffers."""
        return 8 * (self.n + 1 + 2 * self.m2)

    def buffers(self) -> tuple[memoryview, memoryview, memoryview]:
        """Byte views of ``(indptr, indices, weights)`` — the shm payload."""
        return (
            _byte_view(self.indptr),
            _byte_view(self.indices),
            _byte_view(self.weights),
        )

    @property
    def fingerprint(self) -> str:
        """16-hex sha256 over the header and all three buffers.

        Content-addressed and backing-independent: a streamed build, a
        ``flat_of`` conversion, and a shared-memory attachment of the same
        graph all report the same fingerprint.  Computed once and cached.
        """
        if self._fp is None:
            h = hashlib.sha256()
            h.update(
                f"flat|n={self.n}|m2={self.m2}|integral={int(self.integral)}"
                f"|wmax={self.wmax!r}".encode()
            )
            for view in self.buffers():
                h.update(view)
            self._fp = h.hexdigest()[:16]
        return self._fp

    def __repr__(self) -> str:
        return (
            f"FlatGraph(n={self.n}, m={self.m}, integral={self.integral}, "
            f"nbytes={self.nbytes})"
        )


def edges_to_flat(
    n: int,
    us: Any,
    vs: Any,
    ws: Any,
    *,
    integral: bool,
    wmax: float,
    spec: tuple[Any, ...] | None = None,
    use_numpy: bool | None = None,
) -> FlatGraph:
    """Build a :class:`FlatGraph` from parallel edge arrays in O(m).

    ``us``/``vs`` are dense endpoint indices and ``ws`` the weights of the
    undirected edge list *in insertion order*.  Placement replays the
    dict-of-dicts adjacency order exactly: ``WeightedGraph.add_edge``
    appends to both endpoints' neighbor dicts at edge-add time, so vertex
    ``i``'s CSR row must list its incident edges in edge-index order —
    which is precisely what counting-sort placement (or a stable lexsort
    keyed ``(src, edge index)``) produces.  The numpy fast path and the
    pure-Python fallback yield byte-identical buffers; ``use_numpy``
    forces one for differential testing.
    """
    e_cnt = len(us)
    if len(vs) != e_cnt or len(ws) != e_cnt:
        raise ValueError("us/vs/ws must have equal lengths")
    if use_numpy is None or use_numpy:
        from .npkernels import _numpy  # deferred: npkernels imports this module

        np = _numpy()
        if np is None and use_numpy:
            raise RuntimeError("numpy requested but not importable")
    else:
        np = None
    if np is not None and e_cnt:
        u_arr = np.frombuffer(us, dtype=np.int64)
        v_arr = np.frombuffer(vs, dtype=np.int64)
        w_arr = np.frombuffer(ws, dtype=np.float64)
        src = np.concatenate([u_arr, v_arr])
        dst = np.concatenate([v_arr, u_arr])
        wt = np.concatenate([w_arr, w_arr])
        tag = np.arange(e_cnt, dtype=np.int64)
        tag = np.concatenate([tag, tag])
        # Primary key src, secondary the edge index: both half-edges of
        # one edge land in distinct rows, so the tag tie never fires
        # within a pair and rows come out in edge-insertion order.
        order = np.lexsort((tag, src))
        indptr_np = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr_np[1:])
        indptr = array("q")
        indptr.frombytes(indptr_np.tobytes())
        indices = array("q")
        indices.frombytes(dst[order].tobytes())
        weights = array("d")
        weights.frombytes(wt[order].tobytes())
        return FlatGraph(
            n, indptr, indices, weights,
            integral=integral, wmax=wmax, spec=spec,
        )
    deg = [0] * n
    for e in range(e_cnt):
        deg[us[e]] += 1
        deg[vs[e]] += 1
    indptr = array("q", bytes(8 * (n + 1)))
    total = 0
    for i in range(n):
        total += deg[i]
        indptr[i + 1] = total
    cursor = list(indptr[:n])
    indices = array("q", bytes(8 * 2 * e_cnt))
    weights = array("d", bytes(8 * 2 * e_cnt))
    for e in range(e_cnt):
        u = us[e]
        v = vs[e]
        w = ws[e]
        ju = cursor[u]
        indices[ju] = v
        weights[ju] = w
        cursor[u] = ju + 1
        jv = cursor[v]
        indices[jv] = u
        weights[jv] = w
        cursor[v] = jv + 1
    return FlatGraph(
        n, indptr, indices, weights,
        integral=integral, wmax=wmax, spec=spec,
    )


def flat_of(csr: CSRGraph, spec: tuple[Any, ...] | None = None) -> FlatGraph:
    """Convert a :class:`CSRGraph` into flat C buffers (one copy).

    The dense indexing, adjacency order, and weight values carry over
    unchanged, so a streamed build of the same graph
    (:mod:`repro.graphs.generators`) produces byte-identical buffers and
    the same :attr:`FlatGraph.fingerprint`.
    """
    if csr.iadj is not None:
        wmax = float(csr.wmax)
    else:
        wmax = float(max(csr.weights)) if csr.weights else 0.0
    return FlatGraph(
        csr.n,
        array("q", csr.indptr),
        array("q", csr.indices),
        array("d", csr.weights),
        integral=csr.iadj is not None,
        wmax=wmax,
        spec=spec,
        version=csr.version,
    )


def flat_sssp_dist(flat: FlatGraph, source: int) -> array[float]:
    """Heap Dijkstra over the flat buffers; float64 distances, inf unreached.

    Value-identical to :func:`sssp_maps` distances (same left-to-right
    IEEE sums) and bit-identical to the numpy batched relaxation
    (``np_flat_source_stats``) under the PR 7 fixpoint argument.
    """
    n = flat.n
    if not 0 <= source < n:
        raise IndexError(f"source index {source} out of range 0..{n - 1}")
    indptr = flat.indptr
    indices = flat.indices
    weights = flat.weights
    push = heapq.heappush
    pop = heapq.heappop
    dist = [_INF] * n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = pop(heap)
        if d > dist[u]:
            continue
        for j in range(indptr[u], indptr[u + 1]):
            v = indices[j]
            nd = d + weights[j]
            if nd < dist[v]:
                dist[v] = nd
                push(heap, (nd, v))
    return array("d", dist)


def flat_source_stats(flat: FlatGraph, lo: int, hi: int) -> dict[str, Any]:
    """Per-source sweep stats over sources ``lo..hi-1`` (pure Python).

    For each source runs one Dijkstra and folds the row into three
    aggregates — the sweep's row payload stays O(1) no matter how large
    the graph is (the aggregates-only discipline the big tier needs):

    * ``reach_min`` — the fewest vertices any source reached;
    * ``ecc_max`` — the largest eccentricity (``inf`` once any source
      fails to reach the whole graph);
    * ``digest`` — 16-hex sha256 over the concatenated float64 distance
      rows, byte-for-byte.  This is the identity anchor: the numpy
      variant hashes the same bytes, so serial python == pooled numpy
      digests prove value equality without shipping any distances.
    """
    n = flat.n
    if not 0 <= lo <= hi <= n:
        raise IndexError(f"source range [{lo}, {hi}) out of bounds 0..{n}")
    indptr = flat.indptr
    indices = flat.indices
    weights = flat.weights
    push = heapq.heappush
    pop = heapq.heappop
    h = hashlib.sha256()
    dist: list[float] = [_INF] * n
    ecc_max = 0.0
    reach_min = n if hi > lo else 0
    for s in range(lo, hi):
        touched = [s]
        touch = touched.append
        dist[s] = 0.0
        far = 0.0
        heap: list[tuple[float, int]] = [(0.0, s)]
        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                continue
            far = d  # pops are monotone: the last settled d is the ecc
            for j in range(indptr[u], indptr[u + 1]):
                v = indices[j]
                nd = d + weights[j]
                dv = dist[v]
                if nd < dv:
                    if dv == _INF:
                        touch(v)
                    dist[v] = nd
                    push(heap, (nd, v))
        reach = len(touched)
        ecc = far if reach == n else _INF
        if ecc > ecc_max:
            ecc_max = ecc
        if reach < reach_min:
            reach_min = reach
        h.update(array("d", dist).tobytes())
        for i in touched:
            dist[i] = _INF
    return {
        "kind": "sources",
        "lo": lo,
        "hi": hi,
        "sources": hi - lo,
        "reach_min": reach_min,
        "ecc_max": ecc_max,
        "digest": h.hexdigest()[:16],
    }


def flat_stripe_stats(flat: FlatGraph, lo: int, hi: int) -> dict[str, Any]:
    """Local adjacency stats for the vertex stripe ``lo..hi-1``.

    O(stripe edges), zero-copy: reads the three buffers directly (byte
    slices feed the digest, a typed view feeds the float accumulators)
    and never materializes per-vertex structures.  Backend-independent by
    construction — there is nothing to vectorize, the cost *is* the read
    — so stripe sweeps exercise pure snapshot-attachment overhead, which
    is what the one-build-per-sweep acceptance counter measures.
    """
    n = flat.n
    if not 0 <= lo <= hi <= n:
        raise IndexError(f"vertex range [{lo}, {hi}) out of bounds 0..{n}")
    indptr = flat.indptr
    j0 = int(indptr[lo])
    j1 = int(indptr[hi])
    ipb, idb, wb = flat.buffers()
    h = hashlib.sha256()
    h.update(ipb[8 * lo:8 * (hi + 1)])
    h.update(idb[8 * j0:8 * j1])
    h.update(wb[8 * j0:8 * j1])
    wmax = 0.0
    wsum = 0.0
    wview = memoryview(flat.weights)
    for w in wview[j0:j1]:
        wsum += w
        if w > wmax:
            wmax = w
    return {
        "kind": "stripe",
        "lo": lo,
        "hi": hi,
        "verts": hi - lo,
        "edges": j1 - j0,
        "wmax": wmax,
        "wsum": wsum,
        "digest": h.hexdigest()[:16],
    }
