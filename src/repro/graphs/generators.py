"""Graph generators: random workloads and the paper's explicit constructions.

Includes the lower-bound family ``G_n`` of Section 7.1 / Figure 7 (a light
path with heavy "bypassing" edges) and its split variant ``G_n^i`` of
Figure 8 used in the indistinguishability argument of Lemma 7.1, plus
standard workloads (random connected graphs, grids, rings) and the
``d << W`` clock-synchronization instances of Section 3.
"""

from __future__ import annotations

import random
from array import array

from .csr import FlatGraph, edges_to_flat
from .weighted_graph import WeightedGraph

__all__ = [
    "path_graph",
    "ring_graph",
    "grid_graph",
    "star_graph",
    "complete_graph",
    "binary_tree",
    "hypercube_graph",
    "caterpillar_graph",
    "random_connected_graph",
    "random_tree",
    "lower_bound_graph",
    "lower_bound_split_graph",
    "heavy_edge_clock_graph",
    "spoke_graph",
    "lower_bound_flat",
    "lower_bound_split_flat",
    "random_connected_flat",
]


def path_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """A path 0 - 1 - ... - (n-1) with uniform edge weight."""
    g = WeightedGraph(vertices=range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1, weight)
    return g


def ring_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """A cycle on n >= 3 vertices with uniform edge weight."""
    if n < 3:
        raise ValueError("ring needs n >= 3")
    g = path_graph(n, weight)
    g.add_edge(n - 1, 0, weight)
    return g


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> WeightedGraph:
    """A rows x cols grid; vertices are (r, c) tuples."""
    g = WeightedGraph(vertices=[(r, c) for r in range(rows) for c in range(cols)])
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c), weight)
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1), weight)
    return g


def star_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """A star: center 0 connected to 1..n-1."""
    g = WeightedGraph(vertices=range(n))
    for i in range(1, n):
        g.add_edge(0, i, weight)
    return g


def complete_graph(n: int, weight: float = 1.0) -> WeightedGraph:
    """K_n with uniform edge weight."""
    g = WeightedGraph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j, weight)
    return g


def random_tree(n: int, rng: random.Random, max_weight: float = 10.0) -> WeightedGraph:
    """A uniformly-shaped random tree with integer weights in [1, max_weight]."""
    g = WeightedGraph(vertices=range(n))
    for v in range(1, n):
        u = rng.randrange(v)
        g.add_edge(u, v, rng.randint(1, int(max_weight)))
    return g


def random_connected_graph(
    n: int,
    extra_edges: int,
    *,
    seed: int = 0,
    max_weight: float = 10.0,
    rng: random.Random | None = None,
) -> WeightedGraph:
    """Random connected graph: a random tree plus ``extra_edges`` random chords.

    Integer weights uniform in [1, max_weight] keep ``W = poly(n)`` as the
    paper assumes.  Deterministic for a given seed.
    """
    if rng is None:
        rng = random.Random(seed)
    g = random_tree(n, rng, max_weight)
    attempts = 0
    added = 0
    max_possible = n * (n - 1) // 2 - (n - 1)
    target = min(extra_edges, max_possible)
    while added < target and attempts < 50 * (target + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, rng.randint(1, int(max_weight)))
            added += 1
    return g


def lower_bound_graph(n: int, heavy: float | None = None) -> WeightedGraph:
    """The family ``G_n`` of Section 7.1 (Figure 7).

    Vertices 1..n.  A light path ``E_p = {(i, i+1)}`` with weight ``X`` and
    heavy bypassing edges ``E_b = {(i, n+1-i) : 1 <= i < n/2}`` with weight
    ``X^4``, where X > n (default ``X = n + 1``).  The MST is the path alone,
    so script-V = (n-1)X, while any protocol using a bypass edge pays X^4 at
    once.  On this family every correct spanning-tree algorithm needs
    Omega(n * V) communication (Lemma 7.2).
    """
    if n < 4:
        raise ValueError("G_n needs n >= 4")
    x = float(n + 1) if heavy is None else heavy
    if x <= n:
        raise ValueError("X must exceed n")
    g = path_graph_1_indexed(n, x)
    for i in range(1, (n + 1) // 2):
        j = n + 1 - i
        if j != i and j != i + 1 and not g.has_edge(i, j):
            g.add_edge(i, j, x**4)
    return g


def path_graph_1_indexed(n: int, weight: float) -> WeightedGraph:
    """A path on vertices 1..n (the paper indexes G_n from 1)."""
    g = WeightedGraph(vertices=range(1, n + 1))
    for i in range(1, n):
        g.add_edge(i, i + 1, weight)
    return g


def lower_bound_split_graph(n: int, i: int, heavy: float | None = None) -> WeightedGraph:
    """The family ``G_n^i`` of Lemma 7.1 (Figure 8).

    Obtained from ``G_n`` by removing the bypass edge ``(i, n+1-i)`` and
    attaching two fresh pendant vertices ``('v', i)`` to ``i`` and
    ``('w', i)`` to ``n+1-i``, each over an edge of weight X^4.  Runs of a
    cheap algorithm on G_n and G_n^i are indistinguishable unless some vertex
    ever holds both the id of ``i`` and the content of the bypassing register
    of ``n+1-i`` (or vice versa) — the crux of the Omega(n*V) lower bound.
    """
    if not 1 <= i < (n + 1) / 2:
        raise ValueError(f"need 1 <= i < n/2, got i={i}")
    g = lower_bound_graph(n, heavy)
    x = float(n + 1) if heavy is None else heavy
    j = n + 1 - i
    if g.has_edge(i, j):
        g.remove_edge(i, j)
    g.add_edge(i, ("v", i), x**4)
    g.add_edge(j, ("w", i), x**4)
    return g


def heavy_edge_clock_graph(n: int, heavy: float, light: float = 1.0) -> WeightedGraph:
    """A ring of light edges plus one heavy chord: the ``d << W`` regime of §3.

    The chord (0, n//2) has weight ``heavy`` = W, but its endpoints are at
    distance ~ (n/2) * light through the ring, so
    ``d = max_neighbor_distance <= n/2 * light << W`` when heavy is large.
    Synchronizer alpha* pays Theta(W) per pulse on this graph while gamma*
    pays only O(d log^2 n).
    """
    if n < 4:
        raise ValueError("need n >= 4")
    g = ring_graph(n, light)
    mid = n // 2
    if not g.has_edge(0, mid):
        g.add_edge(0, mid, heavy)
    return g


def spoke_graph(n_spokes: int, spoke_weight: float, rim_weight: float) -> WeightedGraph:
    """Hub-and-spoke with a heavy rim: the classic SLT tension instance.

    Hub 0 with spokes to 1..n_spokes (weight ``spoke_weight``) and rim edges
    i - (i+1) between consecutive spoke tips (weight ``rim_weight``).  With
    spoke_weight >> rim_weight the MST is the rim plus one spoke (light but
    deep) while the SPT is the star (shallow but heavy) — the instance from
    [BKJ83] that motivates shallow-light trees, in the style of Figure 6.
    """
    if n_spokes < 3:
        raise ValueError("need n_spokes >= 3")
    g = WeightedGraph(vertices=range(n_spokes + 1))
    for i in range(1, n_spokes + 1):
        g.add_edge(0, i, spoke_weight)
    for i in range(1, n_spokes):
        g.add_edge(i, i + 1, rim_weight)
    return g


def binary_tree(depth: int, weight: float = 1.0) -> WeightedGraph:
    """A complete binary tree of the given depth (vertices 1..2^(d+1)-1)."""
    if depth < 0:
        raise ValueError("depth must be >= 0")
    n = 2 ** (depth + 1) - 1
    g = WeightedGraph(vertices=range(1, n + 1))
    for v in range(2, n + 1):
        g.add_edge(v // 2, v, weight)
    return g


def hypercube_graph(dim: int, weight: float = 1.0) -> WeightedGraph:
    """The dim-dimensional hypercube (the [PU89] synchronizer topology).

    Vertices are 0..2^dim - 1; edges connect words at Hamming distance 1.
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    n = 1 << dim
    g = WeightedGraph(vertices=range(n))
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                g.add_edge(v, u, weight)
    return g


def caterpillar_graph(spine: int, legs: int, spine_weight: float = 1.0,
                      leg_weight: float = 1.0) -> WeightedGraph:
    """A caterpillar: a spine path with ``legs`` pendant vertices per node.

    A classic worst case for tree-depth-sensitive algorithms.  Spine
    vertices are 0..spine-1; leg vertices are (i, j) tuples.
    """
    if spine < 1 or legs < 0:
        raise ValueError("need spine >= 1 and legs >= 0")
    g = path_graph(spine, spine_weight)
    for i in range(spine):
        for j in range(legs):
            g.add_edge(i, ("leg", i, j), leg_weight)
    return g


# --------------------------------------------------------------------- #
# Streaming direct-to-CSR builders (the n = 10^5..10^6 tier)
# --------------------------------------------------------------------- #
#
# The dict-of-dicts WeightedGraph costs hundreds of bytes per edge (boxed
# keys, two nested dicts); at n = 10^6 the lower-bound family would need
# tens of gigabytes before a single kernel runs.  The builders below emit
# the same graphs straight into FlatGraph's three flat buffers — ~48
# bytes per edge, one pass — and are *byte-identical* to converting the
# dict build (`flat_of(csr_of(gen(...)))`): same dense indexing (vertex
# insertion order), same adjacency order (edge insertion order, which
# edges_to_flat's counting placement replays), same weight floats.
# tests/test_flat_stream.py pins the equivalence at dict-friendly sizes.


def _lower_bound_x(n: int, heavy: float | None) -> float:
    if n < 4:
        raise ValueError("G_n needs n >= 4")
    x = float(n + 1) if heavy is None else heavy
    if x <= n:
        raise ValueError("X must exceed n")
    return x


def lower_bound_flat(
    n: int,
    heavy: float | None = None,
    *,
    use_numpy: bool | None = None,
) -> FlatGraph:
    """``G_n`` (Section 7.1 / Figure 7) streamed straight into flat buffers.

    Byte-identical to ``flat_of(csr_of(lower_bound_graph(n, heavy)))``:
    vertices 1..n intern to dense indices 0..n-1, path edges come first
    in index order, bypass edges follow in increasing ``i``.  The dict
    builder's ``has_edge`` guard is replayed arithmetically: bypass pairs
    ``(i, n+1-i)`` are pairwise distinct and only ever collide with a
    path edge when ``n+1-i == i+1``, so the two index checks are the
    whole predicate.
    """
    x = _lower_bound_x(n, heavy)
    x4 = x**4
    us = array("q", range(n - 1))
    vs = array("q", range(1, n))
    ws = array("d", [x]) * (n - 1)
    for i in range(1, (n + 1) // 2):
        j = n + 1 - i
        if j != i and j != i + 1:
            us.append(i - 1)
            vs.append(j - 1)
            ws.append(x4)
    return edges_to_flat(
        n, us, vs, ws,
        integral=x == int(x),
        wmax=x4 if len(ws) > n - 1 else x,
        spec=("lower_bound", n, heavy),
        use_numpy=use_numpy,
    )


def lower_bound_split_flat(
    n: int,
    i: int,
    heavy: float | None = None,
    *,
    use_numpy: bool | None = None,
) -> FlatGraph:
    """``G_n^i`` (Lemma 7.1 / Figure 8) streamed into flat buffers.

    Byte-identical to the dict construction: deleting the bypass edge
    ``(i, n+1-i)`` from a dict preserves the order of every remaining
    neighbor, so *never emitting it* yields the same adjacency order; the
    two pendant vertices are interned last (dense indices ``n`` and
    ``n+1``) and their edges appended last, exactly as ``add_edge`` does.
    """
    if not 1 <= i < (n + 1) / 2:
        raise ValueError(f"need 1 <= i < n/2, got i={i}")
    x = _lower_bound_x(n, heavy)
    x4 = x**4
    j = n + 1 - i
    us = array("q", range(n - 1))
    vs = array("q", range(1, n))
    ws = array("d", [x]) * (n - 1)
    for b in range(1, (n + 1) // 2):
        jb = n + 1 - b
        if jb != b and jb != b + 1 and b != i:
            us.append(b - 1)
            vs.append(jb - 1)
            ws.append(x4)
    us.append(i - 1)
    vs.append(n)  # ('v', i) interns after 1..n
    ws.append(x4)
    us.append(j - 1)
    vs.append(n + 1)  # ('w', i) interns last
    ws.append(x4)
    return edges_to_flat(
        n + 2, us, vs, ws,
        integral=x == int(x),
        wmax=x4,
        spec=("lower_bound_split", n, i, heavy),
        use_numpy=use_numpy,
    )


def random_connected_flat(
    n: int,
    extra_edges: int,
    *,
    seed: int = 0,
    max_weight: float = 10.0,
    rng: random.Random | None = None,
    use_numpy: bool | None = None,
) -> FlatGraph:
    """:func:`random_connected_graph` streamed into flat buffers.

    Replays the dict builder's RNG consumption draw-for-draw — tree
    parent + weight per vertex, then endpoint pairs with a weight drawn
    *only* for accepted chords — so the same ``seed`` yields the same
    graph whether built here or through the dict path (pinned by
    tests/test_flat_stream.py).  ``has_edge`` is replayed with a packed
    ``min*n + max`` edge set.
    """
    from_seed = rng is None
    if rng is None:
        rng = random.Random(seed)
    mw = int(max_weight)
    us = array("q")
    vs = array("q")
    ws = array("d")
    edge_set: set[int] = set()
    wmax = 0
    for v in range(1, n):
        u = rng.randrange(v)
        w = rng.randint(1, mw)
        us.append(u)
        vs.append(v)
        ws.append(w)
        edge_set.add(u * n + v)  # tree parents satisfy u < v
        if w > wmax:
            wmax = w
    attempts = 0
    added = 0
    max_possible = n * (n - 1) // 2 - (n - 1)
    target = min(extra_edges, max_possible)
    while added < target and attempts < 50 * (target + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            key = u * n + v if u < v else v * n + u
            if key not in edge_set:
                w = rng.randint(1, mw)
                us.append(u)
                vs.append(v)
                ws.append(w)
                edge_set.add(key)
                added += 1
                if w > wmax:
                    wmax = w
    spec = (
        ("random_connected", n, extra_edges, seed, max_weight)
        if from_seed else None
    )
    return edges_to_flat(
        n, us, vs, ws,
        integral=True,
        wmax=float(wmax),
        spec=spec,
        use_numpy=use_numpy,
    )
