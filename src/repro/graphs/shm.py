"""Zero-copy shared-memory graph snapshots for the sweep engine.

A sweep of 10^4 cells over one n = 10^6 graph must cost **one** graph
build — not one per worker per cell.  This module is the transport that
makes that true: a :class:`~repro.graphs.csr.FlatGraph`'s three flat
buffers are copied once into a ``multiprocessing.shared_memory`` segment,
and every pool worker *attaches* the segment and re-views the bytes
zero-copy (``memoryview.cast``) instead of rebuilding or unpickling the
graph.  Cells then carry only a :class:`SnapshotHandle` — a few hundred
bytes of metadata — across the pool boundary.

Registry semantics
------------------
Snapshots are keyed by ``(fingerprint, version)``:

* :func:`publish` is idempotent per key — re-publishing the same content
  returns the existing handle; re-publishing a *changed* graph under the
  same logical key unlinks the stale segment first (version-bump
  invalidation, mirroring ``GraphParamCache``'s version counter).
* :func:`attach` resolves a handle through a three-level fallback:
  the publishing process's own ``FlatGraph`` (serial sweeps never touch
  shm bytes at all), a process-local attachment cache (each worker maps
  a segment once per sweep, not once per cell), the real shared segment,
  and finally — when shared memory is unavailable or the segment is gone
  — a from-scratch rebuild via the handle's generator ``spec``.  Every
  step is counted in :func:`stats`; nothing in the chain can crash a
  sweep that a plain per-worker rebuild would have survived.
* :func:`unlink_all` (called by ``shutdown_pool()`` and at interpreter
  exit) closes and unlinks every published segment, so no ``rshm-*``
  files outlive the process and the POSIX resource tracker has nothing
  to warn about.  Worker-side attachments are never *registered* with
  the resource tracker in the first place (Python < 3.13 registers
  attachments like creations, which would otherwise produce spurious
  "leaked shared_memory" warnings and double-unlink attempts — see
  :func:`_open_segment`); the publishing process is the only owner, and
  forked children explicitly disown any inherited publisher state
  (:func:`_after_fork_in_child`).
"""

from __future__ import annotations

import atexit
import os
import warnings
from dataclasses import dataclass
from typing import Any

from .csr import FlatGraph

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover
    _shm_mod = None  # type: ignore[assignment]

__all__ = [
    "SEGMENT_PREFIX",
    "SnapshotHandle",
    "SnapshotUnavailable",
    "shm_available",
    "publish",
    "attach",
    "build_spec",
    "unlink_all",
    "detach_all",
    "shutdown",
    "stats",
    "reset_for_tests",
]

# POSIX shm names share one flat namespace; keep ours greppable in
# /dev/shm and short enough for macOS's 31-char name limit.
SEGMENT_PREFIX = "rshm-"


class SnapshotUnavailable(RuntimeError):
    """No way to resolve a handle: no local copy, no segment, no spec."""


@dataclass(frozen=True)
class SnapshotHandle:
    """Picklable reference to a published graph snapshot.

    This is what crosses the pool boundary instead of the graph: workers
    resolve it through :func:`attach`.  ``segment`` is ``None`` when
    shared memory was unavailable at publish time (workers then rebuild
    from ``spec``).
    """

    key: str
    fingerprint: str
    version: int
    n: int
    m2: int
    integral: bool
    wmax: float
    spec: tuple[Any, ...] | None
    segment: str | None
    nbytes: int


# key -> (handle, segment-or-None, local FlatGraph); publisher side.
_published: dict[str, tuple[SnapshotHandle, Any, FlatGraph]] = {}
# (fingerprint, version) -> (FlatGraph, segment-or-None); attacher side.
_attached: dict[tuple[str, int], tuple[FlatGraph, Any]] = {}
# Attached wrappers retained for the process lifetime (see attach()).
_retained: list[Any] = []

_counters = {
    "shm_creates": 0,
    "shm_attaches": 0,
    "shm_rebuilds": 0,
    "shm_local_hits": 0,
    "shm_failures": 0,
    "shm_bytes": 0,
}

_available: bool | None = None
_warned = False


def _note_failure(exc: BaseException | str) -> None:
    """Count a shm failure and warn exactly once per process."""
    global _warned
    _counters["shm_failures"] += 1
    if not _warned:
        _warned = True
        warnings.warn(
            f"shared-memory snapshots unavailable ({exc}); "
            "falling back to per-worker graph rebuild",
            RuntimeWarning,
            stacklevel=3,
        )


def shm_available() -> bool:
    """Whether this process can create shared-memory segments (probed once)."""
    global _available
    if _available is None:
        if _shm_mod is None:
            _available = False
        else:
            try:
                probe = _shm_mod.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()
                _available = True
            except Exception:
                _available = False
    return _available


def _segment_name(fingerprint: str, version: int) -> str:
    # pid-scoped so concurrent test processes never collide; 12 hex of
    # the content fingerprint keeps the full name under 31 chars.
    return f"{SEGMENT_PREFIX}{fingerprint[:12]}-{version}-{os.getpid() % 100000}"


def _open_segment(name: str) -> Any:
    """Attach ``name`` without registering it with the resource tracker.

    Only the publisher owns the segment's lifecycle.  Before Python 3.13
    (``track=False``), ``SharedMemory(name, create=False)`` registers the
    attachment just like the creator does — and because forked pool
    workers *share* the publisher's tracker process, unregistering after
    the fact would remove the publisher's own entry (one shared set per
    tracker), making its final unlink log a tracker ``KeyError``.  So on
    old Pythons the registration call is suppressed for the duration of
    the constructor instead: the tracker never hears about attachments at
    all, exactly what ``track=False`` implements natively.
    """
    if _shm_mod is None:
        raise SnapshotUnavailable("multiprocessing.shared_memory not importable")
    try:
        return _shm_mod.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **kw: None  # type: ignore[assignment]
        try:
            return _shm_mod.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = orig  # type: ignore[assignment]


def _create_segment(name: str, nbytes: int) -> Any:
    assert _shm_mod is not None
    try:
        return _shm_mod.SharedMemory(name=name, create=True, size=nbytes)
    except FileExistsError:
        # Stale segment from a crashed previous run of this pid slot:
        # reclaim it and retry once.
        stale = _shm_mod.SharedMemory(name=name, create=False)
        stale.close()
        stale.unlink()
        return _shm_mod.SharedMemory(name=name, create=True, size=nbytes)


def publish(flat: FlatGraph, key: str | None = None) -> SnapshotHandle:
    """Publish ``flat`` for zero-copy attachment; returns its handle.

    Idempotent per ``(fingerprint, version)`` under the same ``key``
    (defaults to the content fingerprint).  Publishing different content
    under an existing key unlinks the stale segment first.  When segment
    creation fails — no shared memory on the platform, /dev/shm full —
    the handle is still returned with ``segment=None`` and the sweep
    proceeds on the rebuild fallback, with the failure counted and
    warned once.
    """
    k = key if key is not None else flat.fingerprint
    entry = _published.get(k)
    if entry is not None:
        prev = entry[0]
        if prev.fingerprint == flat.fingerprint and prev.version == flat.version:
            return prev
        _drop_published(k)
    segment_name: str | None = None
    seg: Any = None
    nbytes = flat.nbytes
    if shm_available():
        name = _segment_name(flat.fingerprint, flat.version)
        try:
            seg = _create_segment(name, nbytes)
            ipb, idb, wb = flat.buffers()
            o1 = len(ipb)
            o2 = o1 + len(idb)
            buf = seg.buf
            buf[:o1] = ipb
            buf[o1:o2] = idb
            buf[o2:o2 + len(wb)] = wb
            segment_name = name
            _counters["shm_creates"] += 1
            _counters["shm_bytes"] += nbytes
        except Exception as exc:
            if seg is not None:
                try:
                    seg.close()
                    seg.unlink()
                except Exception:
                    pass
            seg = None
            _note_failure(exc)
    else:
        _note_failure("shared memory not available on this platform")
    handle = SnapshotHandle(
        key=k,
        fingerprint=flat.fingerprint,
        version=flat.version,
        n=flat.n,
        m2=flat.m2,
        integral=flat.integral,
        wmax=flat.wmax,
        spec=flat.spec,
        segment=segment_name,
        nbytes=nbytes,
    )
    _published[k] = (handle, seg, flat)
    return handle


def _flat_from_segment(seg: Any, handle: SnapshotHandle) -> FlatGraph:
    o1 = 8 * (handle.n + 1)
    o2 = o1 + 8 * handle.m2
    o3 = o2 + 8 * handle.m2
    mv = seg.buf.toreadonly()
    flat = FlatGraph(
        handle.n,
        mv[:o1].cast("q"),
        mv[o1:o2].cast("q"),
        mv[o2:o3].cast("d"),
        integral=handle.integral,
        wmax=handle.wmax,
        spec=handle.spec,
        version=handle.version,
    )
    flat._fp = handle.fingerprint  # trusted: content-addressed at publish
    return flat


def attach(handle: SnapshotHandle) -> FlatGraph:
    """Resolve a handle to a :class:`FlatGraph`, cheapest path first.

    Publisher-local copy -> process-local attachment cache -> zero-copy
    shared segment -> generator-spec rebuild.  Raises
    :class:`SnapshotUnavailable` only when every level fails *and* the
    handle carries no rebuild spec.
    """
    entry = _published.get(handle.key)
    if (
        entry is not None
        and entry[0].fingerprint == handle.fingerprint
        and entry[0].version == handle.version
    ):
        _counters["shm_local_hits"] += 1
        return entry[2]
    ck = (handle.fingerprint, handle.version)
    cached = _attached.get(ck)
    if cached is not None:
        _counters["shm_local_hits"] += 1
        return cached[0]
    if handle.segment is not None:
        try:
            seg = _open_segment(handle.segment)
        except Exception as exc:
            _note_failure(exc)
        else:
            flat = _flat_from_segment(seg, handle)
            # The attachment's zero-copy views stay exported for as long
            # as any cell holds the FlatGraph, so the wrapper must never
            # try to tear down the mapping (close() would raise
            # BufferError from __del__, spamming worker stderr).  The
            # publisher owns unlink; the OS releases the mapping at
            # process exit.  Disarm close() and pin the wrapper.
            seg.close = lambda: None
            _retained.append(seg)
            _attached[ck] = (flat, seg)
            _counters["shm_attaches"] += 1
            return flat
    if handle.spec is not None:
        flat = build_spec(handle.spec)
        _attached[ck] = (flat, None)
        _counters["shm_rebuilds"] += 1
        return flat
    raise SnapshotUnavailable(
        f"snapshot {handle.fingerprint}/v{handle.version}: segment "
        f"{handle.segment!r} unreachable and no rebuild spec"
    )


def build_spec(spec: tuple[Any, ...]) -> FlatGraph:
    """Rebuild a streamed graph from its generator spec (the last resort)."""
    from . import generators as gen

    kind = spec[0]
    if kind == "lower_bound":
        return gen.lower_bound_flat(spec[1], spec[2])
    if kind == "lower_bound_split":
        return gen.lower_bound_split_flat(spec[1], spec[2], spec[3])
    if kind == "random_connected":
        return gen.random_connected_flat(
            spec[1], spec[2], seed=spec[3], max_weight=spec[4]
        )
    raise SnapshotUnavailable(f"unknown snapshot spec {spec!r}")


def _drop_published(key: str) -> None:
    handle, seg, _flat = _published.pop(key)
    if seg is not None:
        try:
            seg.close()
            seg.unlink()
        except Exception:
            pass
        _counters["shm_bytes"] -= handle.nbytes


def unlink_all() -> int:
    """Close and unlink every segment this process published."""
    n = 0
    for key in list(_published):
        if _published[key][1] is not None:
            n += 1
        _drop_published(key)
    return n


def detach_all() -> int:
    """Forget every attachment (mappings are released when views die)."""
    n = len(_attached)
    _attached.clear()
    return n


def shutdown() -> None:
    """Full teardown: drop attachments and unlink published segments."""
    detach_all()
    unlink_all()


def stats() -> dict[str, Any]:
    """Snapshot transport counters (parent or worker side, per process)."""
    out: dict[str, Any] = dict(_counters)
    out["shm_segments"] = sum(1 for _h, seg, _f in _published.values() if seg is not None)
    out["shm_available"] = shm_available()
    return out


def reset_for_tests() -> None:
    """Tear down all state and zero the counters (test isolation helper)."""
    global _warned, _available
    shutdown()
    for c in _counters:
        _counters[c] = 0
    _warned = False
    _available = None


def _after_fork_in_child() -> None:
    """Disown inherited publisher state in forked children.

    Pool workers are forked from the publishing process, so they inherit
    the registry — including live segment wrappers.  A child must never
    tear those down: its ``atexit`` :func:`shutdown` would otherwise
    unlink segments the parent still serves (e.g. on a mid-session pool
    rebuild), and ``close()`` on an inherited wrapper raises
    ``BufferError`` while views are exported.  Disarm and retain the
    wrappers, clear the registries so workers resolve handles through the
    real :func:`attach` path, and zero the counters so worker-side
    :func:`stats` reports only the child's own transport activity.
    """
    for _handle, seg, _flat in _published.values():
        if seg is not None:
            seg.close = lambda: None
            seg.unlink = lambda: None
            _retained.append(seg)
    _published.clear()
    _attached.clear()
    for c in _counters:
        _counters[c] = 0


if hasattr(os, "register_at_fork"):  # POSIX only; spawn needs no disowning
    os.register_at_fork(after_in_child=_after_fork_in_child)

atexit.register(shutdown)
