"""Memoized per-graph network parameters with mutation invalidation.

The paper (Sections 1-2) treats script-V ``w(MST(G))``, script-D
``Diam(G)``, and the shortest-path structure of ``G`` as *fixed per-graph
quantities*, yet every protocol construction and experiment sweep used to
recompute them from scratch on each call — an O(n * m log n) tax per run
that dominated sweep wall time.  :class:`GraphParamCache` memoizes them
per :class:`~repro.graphs.weighted_graph.WeightedGraph` instance and
invalidates automatically when the graph mutates.

Since PR 3 the cache also owns the graph's flat-array snapshot
(:class:`~repro.graphs.csr.CSRGraph`, built once per graph version) and
computes every parameter through the CSR kernels instead of the
dict-of-dicts algorithms: per-source shortest paths via
:func:`~repro.graphs.csr.sssp_maps`, eccentricities/diameter/max
neighbor distance via one batched :func:`~repro.graphs.csr.all_sources_scan`
pass, and the MST via :func:`~repro.graphs.csr.csr_prim_mst`.  The
kernels replay the dict path's iteration and tie-breaking order exactly,
so every answer — including dict insertion order, MST edge order, and
float rounding — is byte-identical to what the dict algorithms return
(``tests/test_csr_kernels.py`` pins this).

Since PR 7 the whole-graph kernels (the batched scan and Prim) dispatch
on :func:`~repro.graphs.npkernels.kernel_backend`: under the ``numpy``
backend they run the vectorized kernels against a memoized
:class:`~repro.graphs.npkernels.NPGraph` mirror of the CSR snapshot,
which is value-identical by the same contract
(``tests/test_npkernels_differential.py`` pins it) and wiped by the same
version check.  Per-source :func:`~repro.graphs.csr.sssp_maps` stays on
the Python kernel under every backend — its parent/discovery-order dict
views are inherently sequential.

Invalidation contract (see docs/PERF.md):

* every mutating ``WeightedGraph`` operation (``add_vertex``,
  ``add_edge``, ``remove_edge``) bumps the graph's ``version`` counter;
* every cache accessor compares the stored version against the graph's
  before answering and wipes all memoized state — including the CSR
  snapshot — on mismatch; a stale answer is therefore impossible as long
  as mutations go through the ``WeightedGraph`` API (mutating ``_adj``
  directly is out of contract);
* cached aggregate values (floats, :class:`NetworkParams`) are immutable
  and safe to share; cached *structures* (the MST tree, shortest-path
  dicts, the CSR snapshot) are shared read-only views — callers must
  copy before mutating.

The cache attaches lazily to the graph instance (``param_cache(g)``), so
its lifetime — and memory — is tied to the graph it describes.  Per-source
shortest-path tables are cached only for the sources actually queried;
the whole-graph scan keeps one O(n) result row (eccentricities plus two
floats), never the O(n^2) distance matrix.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .csr import (
    CSRGraph,
    FlatGraph,
    GraphScan,
    all_sources_scan,
    csr_prim_mst,
    flat_of,
    sssp_maps,
)
from .npkernels import (
    NPGraph,
    kernel_backend,
    np_all_sources_scan,
    np_prim_mst,
)
from .weighted_graph import Vertex, WeightedGraph

if TYPE_CHECKING:  # runtime import is deferred: params imports this module
    from .params import NetworkParams
    from .shm import SnapshotHandle

__all__ = ["GraphParamCache", "param_cache"]


class GraphParamCache:
    """Version-checked memo of one graph's weighted parameters."""

    __slots__ = (
        "graph", "_version", "_csrg", "_npg", "_flat", "_sssp", "_scan",
        "_ecc", "_mst", "_mst_weight", "_params", "_connected",
        "hits", "misses", "invalidations", "csr_builds", "np_builds",
        "flat_builds",
    )

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.csr_builds = 0
        self.np_builds = 0
        self.flat_builds = 0
        self._wipe()
        self._version = graph.version

    # ------------------------------------------------------------------ #
    # Invalidation plumbing
    # ------------------------------------------------------------------ #

    def _wipe(self) -> None:
        self._csrg: CSRGraph | None = None
        self._npg: NPGraph | None = None
        self._flat: FlatGraph | None = None
        self._sssp: dict[Vertex, tuple[dict, dict]] = {}
        # GraphScan: ecc row + diameter + max nbr dist.
        self._scan: GraphScan | None = None
        self._ecc: dict[Vertex, float] | None = None
        self._mst: WeightedGraph | None = None
        self._mst_weight: float | None = None
        self._params: NetworkParams | None = None
        self._connected: bool | None = None

    def _sync(self) -> None:
        if self._version != self.graph.version:
            self._wipe()
            self._version = self.graph.version
            self.invalidations += 1

    # ------------------------------------------------------------------ #
    # CSR snapshot
    # ------------------------------------------------------------------ #

    def csr(self) -> CSRGraph:
        """The flat-array snapshot of the graph at its current version.

        Built once per version and shared by every kernel below; treat it
        as read-only (it is immutable by construction).
        """
        self._sync()
        if self._csrg is None:
            self._csrg = CSRGraph(self.graph)
            self.csr_builds += 1
        return self._csrg

    def npg(self) -> NPGraph:
        """The NumPy mirror of the CSR snapshot at the current version.

        Built lazily (only when the numpy backend actually runs a
        kernel) and wiped together with the CSR snapshot on mutation, so
        the two views can never disagree about graph contents.  Raises
        ``RuntimeError`` when numpy is unavailable — callers dispatch on
        :func:`~repro.graphs.npkernels.kernel_backend` first.
        """
        self._sync()
        if self._npg is None:
            self._npg = NPGraph(self.csr())
            self.np_builds += 1
        return self._npg

    def flat(self) -> FlatGraph:
        """The transportable flat-buffer snapshot at the current version.

        One conversion per graph version (``flat_builds`` mirrors
        ``csr_builds``); the result is what :func:`publish` ships into a
        shared-memory segment.  Wiped by the same version check as the
        CSR snapshot, so a published handle for a mutated graph can never
        alias stale bytes — re-publishing bumps ``version`` and unlinks
        the old segment.
        """
        self._sync()
        if self._flat is None:
            self._flat = flat_of(self.csr())
            self.flat_builds += 1
        return self._flat

    def publish(self, key: str | None = None) -> SnapshotHandle:
        """Publish the flat snapshot for zero-copy pool attachment."""
        from . import shm  # deferred: keep shared-memory optional at import

        return shm.publish(self.flat(), key=key)

    # ------------------------------------------------------------------ #
    # Shortest-path structure
    # ------------------------------------------------------------------ #

    def sssp(self, source: Vertex) -> tuple[dict, dict]:
        """Cached ``(dist, parent)`` of a Dijkstra run from ``source``.

        The returned dicts are the cache's own — treat them as read-only
        (use :func:`repro.graphs.paths.dijkstra` for a private copy).
        """
        self._sync()
        hit = self._sssp.get(source)
        if hit is not None:
            self.hits += 1
            return hit
        self.misses += 1
        result = sssp_maps(self.csr(), source)
        self._sssp[source] = result
        return result

    def _full_scan(self) -> GraphScan:
        if self._scan is None:
            self.misses += 1
            if kernel_backend() == "numpy":
                self._scan = np_all_sources_scan(self.npg())
            else:
                self._scan = all_sources_scan(self.csr())
        return self._scan

    def eccentricities(self) -> dict[Vertex, float]:
        """``Rad(v, G)`` for every vertex (inf where G is disconnected)."""
        self._sync()
        if self._ecc is not None:
            self.hits += 1
            return self._ecc
        scan = self._full_scan()
        self._ecc = dict(zip(self.csr().verts, scan.ecc, strict=True))
        return self._ecc

    def eccentricity(self, v: Vertex) -> float:
        return self.eccentricities()[v]

    def diameter(self) -> float:
        """script-D — the weighted diameter ``Diam(G)``."""
        self._sync()
        if self._scan is not None:
            self.hits += 1
        return self._full_scan().diameter

    def max_neighbor_distance(self) -> float:
        """``d = max_{(u,v) in E} dist(u, v)`` (clock-sync lower bound)."""
        self._sync()
        if self._scan is not None:
            self.hits += 1
        return self._full_scan().max_neighbor_distance

    # ------------------------------------------------------------------ #
    # Spanning structure
    # ------------------------------------------------------------------ #

    def mst(self) -> WeightedGraph:
        """The memoized MST (read-only; copy before mutating)."""
        self._sync()
        if self._mst is not None:
            self.hits += 1
            return self._mst
        self.misses += 1
        if kernel_backend() == "numpy":
            self._mst = np_prim_mst(self.npg())
        else:
            self._mst = csr_prim_mst(self.csr())
        return self._mst

    def mst_weight(self) -> float:
        """script-V — ``w(MST(G))``."""
        self._sync()
        if self._mst_weight is None:
            self._mst_weight = self.mst().total_weight()
        else:
            self.hits += 1
        return self._mst_weight

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def is_connected(self) -> bool:
        self._sync()
        if self._connected is None:
            self._connected = self.graph.is_connected()
        else:
            self.hits += 1
        return self._connected

    def network_params(self) -> NetworkParams:
        """The full :class:`~repro.graphs.params.NetworkParams` record."""
        self._sync()
        if self._params is not None:
            self.hits += 1
            return self._params
        from .params import NetworkParams  # deferred: params imports us

        if not self.is_connected():
            raise ValueError("network parameters require a connected graph")
        g = self.graph
        self._params = NetworkParams(
            n=g.num_vertices,
            m=g.num_edges,
            E=g.total_weight(),
            V=self.mst_weight(),
            D=self.diameter(),
            W=g.max_weight(),
            d=self.max_neighbor_distance(),
        )
        return self._params

    def stats(self) -> dict:
        """Counters for tests and the bench harness.

        Includes the process-wide shared-memory snapshot counters
        (``shm_creates`` / ``shm_attaches`` / ``shm_bytes`` ...) so sweep
        call sites read build *and* transport behavior from one place.
        """
        from . import shm  # deferred: keep shared-memory optional at import

        out = {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "csr_builds": self.csr_builds,
            "np_builds": self.np_builds,
            "flat_builds": self.flat_builds,
            "sssp_sources": len(self._sssp),
        }
        out.update(shm.stats())
        return out


def param_cache(graph: WeightedGraph) -> GraphParamCache:
    """The cache attached to ``graph``, creating it on first use."""
    cache = getattr(graph, "_param_cache", None)
    if cache is None:
        cache = GraphParamCache(graph)
        graph._param_cache = cache
    return cache
