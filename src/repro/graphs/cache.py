"""Memoized per-graph network parameters with mutation invalidation.

The paper (Sections 1-2) treats script-V ``w(MST(G))``, script-D
``Diam(G)``, and the shortest-path structure of ``G`` as *fixed per-graph
quantities*, yet every protocol construction and experiment sweep used to
recompute them from scratch on each call — an O(n * m log n) tax per run
that dominated sweep wall time.  :class:`GraphParamCache` memoizes them
per :class:`~repro.graphs.weighted_graph.WeightedGraph` instance and
invalidates automatically when the graph mutates.

Invalidation contract (see docs/PERF.md):

* every mutating ``WeightedGraph`` operation (``add_vertex``,
  ``add_edge``, ``remove_edge``) bumps the graph's ``version`` counter;
* every cache accessor compares the stored version against the graph's
  before answering and wipes all memoized state on mismatch — a stale
  answer is therefore impossible as long as mutations go through the
  ``WeightedGraph`` API (mutating ``_adj`` directly is out of contract);
* cached aggregate values (floats, :class:`NetworkParams`) are immutable
  and safe to share; cached *structures* (the MST tree, shortest-path
  dicts) are shared read-only views — callers must copy before mutating.

The cache attaches lazily to the graph instance (``param_cache(g)``), so
its lifetime — and memory — is tied to the graph it describes.  Per-source
shortest-path tables are cached only for the sources actually queried;
whole-graph scans (:meth:`eccentricities`) stream their Dijkstra runs
without retaining the per-source tables, keeping memory O(n) instead of
O(n^2) on large graphs.
"""

from __future__ import annotations

from typing import Optional

from .mst import prim_mst
from .paths import dijkstra
from .weighted_graph import Vertex, WeightedGraph

__all__ = ["GraphParamCache", "param_cache"]


class GraphParamCache:
    """Version-checked memo of one graph's weighted parameters."""

    __slots__ = (
        "graph", "_version", "_sssp", "_ecc", "_mst", "_mst_weight",
        "_diameter", "_max_nbr", "_params", "_connected",
        "hits", "misses", "invalidations",
    )

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._wipe()
        self._version = graph.version

    # ------------------------------------------------------------------ #
    # Invalidation plumbing
    # ------------------------------------------------------------------ #

    def _wipe(self) -> None:
        self._sssp: dict[Vertex, tuple[dict, dict]] = {}
        self._ecc: Optional[dict[Vertex, float]] = None
        self._mst: Optional[WeightedGraph] = None
        self._mst_weight: Optional[float] = None
        self._diameter: Optional[float] = None
        self._max_nbr: Optional[float] = None
        self._params = None
        self._connected: Optional[bool] = None

    def _sync(self) -> None:
        if self._version != self.graph.version:
            self._wipe()
            self._version = self.graph.version
            self.invalidations += 1

    # ------------------------------------------------------------------ #
    # Shortest-path structure
    # ------------------------------------------------------------------ #

    def sssp(self, source: Vertex) -> tuple[dict, dict]:
        """Cached ``(dist, parent)`` of a Dijkstra run from ``source``.

        The returned dicts are the cache's own — treat them as read-only
        (use :func:`repro.graphs.paths.dijkstra` for a private copy).
        """
        self._sync()
        hit = self._sssp.get(source)
        if hit is not None:
            self.hits += 1
            return hit
        self.misses += 1
        result = dijkstra(self.graph, source)
        self._sssp[source] = result
        return result

    def eccentricities(self) -> dict[Vertex, float]:
        """``Rad(v, G)`` for every vertex (inf where G is disconnected)."""
        self._sync()
        if self._ecc is not None:
            self.hits += 1
            return self._ecc
        self.misses += 1
        g = self.graph
        n = g.num_vertices
        ecc: dict[Vertex, float] = {}
        for v in g.vertices:
            pair = self._sssp.get(v)
            dist = pair[0] if pair is not None else dijkstra(g, v)[0]
            ecc[v] = max(dist.values()) if len(dist) == n else float("inf")
        self._ecc = ecc
        return ecc

    def eccentricity(self, v: Vertex) -> float:
        return self.eccentricities()[v]

    def diameter(self) -> float:
        """script-D — the weighted diameter ``Diam(G)``."""
        self._sync()
        if self._diameter is None:
            self._diameter = max(self.eccentricities().values(), default=0.0)
        else:
            self.hits += 1
        return self._diameter

    def max_neighbor_distance(self) -> float:
        """``d = max_{(u,v) in E} dist(u, v)`` (clock-sync lower bound)."""
        self._sync()
        if self._max_nbr is not None:
            self.hits += 1
            return self._max_nbr
        self.misses += 1
        g = self.graph
        best = 0.0
        for u in g.vertices:
            pair = self._sssp.get(u)
            dist = pair[0] if pair is not None else dijkstra(g, u)[0]
            for v in g.neighbors(u):
                d = dist[v]
                if d > best:
                    best = d
        self._max_nbr = best
        return best

    # ------------------------------------------------------------------ #
    # Spanning structure
    # ------------------------------------------------------------------ #

    def mst(self) -> WeightedGraph:
        """The memoized MST (read-only; copy before mutating)."""
        self._sync()
        if self._mst is not None:
            self.hits += 1
            return self._mst
        self.misses += 1
        self._mst = prim_mst(self.graph)
        return self._mst

    def mst_weight(self) -> float:
        """script-V — ``w(MST(G))``."""
        self._sync()
        if self._mst_weight is None:
            self._mst_weight = self.mst().total_weight()
        else:
            self.hits += 1
        return self._mst_weight

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def is_connected(self) -> bool:
        self._sync()
        if self._connected is None:
            self._connected = self.graph.is_connected()
        else:
            self.hits += 1
        return self._connected

    def network_params(self):
        """The full :class:`~repro.graphs.params.NetworkParams` record."""
        self._sync()
        if self._params is not None:
            self.hits += 1
            return self._params
        from .params import NetworkParams  # deferred: params imports us

        if not self.is_connected():
            raise ValueError("network parameters require a connected graph")
        g = self.graph
        self._params = NetworkParams(
            n=g.num_vertices,
            m=g.num_edges,
            E=g.total_weight(),
            V=self.mst_weight(),
            D=self.diameter(),
            W=g.max_weight(),
            d=self.max_neighbor_distance(),
        )
        return self._params

    def stats(self) -> dict:
        """Counters for tests and the bench harness."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "sssp_sources": len(self._sssp),
        }


def param_cache(graph: WeightedGraph) -> GraphParamCache:
    """The cache attached to ``graph``, creating it on first use."""
    cache = getattr(graph, "_param_cache", None)
    if cache is None:
        cache = GraphParamCache(graph)
        graph._param_cache = cache
    return cache
