"""Minimum spanning trees (array-kernel fast path + dict reference).

Used as (a) the preprocessing step of the SLT algorithm (Section 2.2),
(b) the definition of the paper's script-V parameter ``V = w(MST(G))``
(Section 1.3), and (c) a correctness oracle for the distributed MST
protocols of Section 8.

The public entry points (:func:`prim_mst`, :func:`kruskal_mst`,
:func:`minimum_spanning_tree`) route through the flat-array kernels in
:mod:`repro.graphs.csr` (CSR snapshot memoized per graph version via
:mod:`repro.graphs.cache`), or — when
:func:`repro.graphs.npkernels.kernel_backend` resolves to ``numpy`` —
through the vectorized kernels in :mod:`repro.graphs.npkernels`; the
output is byte-identical either way, including under the original
dict-of-dicts algorithms kept here as :func:`prim_mst_dicts` /
:func:`kruskal_mst_dicts` — the independent reference implementations
the golden and differential tests compare every kernel against.
"""

from __future__ import annotations

import heapq
from itertools import count

from .weighted_graph import Vertex, WeightedGraph

__all__ = [
    "prim_mst",
    "kruskal_mst",
    "prim_mst_dicts",
    "kruskal_mst_dicts",
    "minimum_spanning_tree",
    "mst_weight",
    "UnionFind",
]


class UnionFind:
    """Disjoint-set forest with path compression and union by rank."""

    def __init__(self) -> None:
        self._parent: dict[Vertex, Vertex] = {}
        self._rank: dict[Vertex, int] = {}

    def find(self, x: Vertex) -> Vertex:
        parent = self._parent
        if x not in parent:
            parent[x] = x
            self._rank[x] = 0
            return x
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: Vertex, y: Vertex) -> bool:
        """Merge the sets of x and y; return False if already merged."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._rank[rx] < self._rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if self._rank[rx] == self._rank[ry]:
            self._rank[rx] += 1
        return True


def prim_mst(graph: WeightedGraph, root: Vertex | None = None) -> WeightedGraph:
    """Prim's algorithm; returns the MST as a fresh :class:`WeightedGraph`.

    Runs on the memoized CSR snapshot (:mod:`repro.graphs.csr`);
    deterministic given insertion order (ties broken by discovery order)
    and byte-identical to :func:`prim_mst_dicts`.  Raises ``ValueError``
    on a disconnected graph.
    """
    from .cache import param_cache
    from .csr import csr_prim_mst
    from .npkernels import kernel_backend, np_prim_mst

    if graph.num_vertices == 0:
        return WeightedGraph()
    cache = param_cache(graph)
    csr = cache.csr()
    r = csr.index[root] if root is not None else 0
    if kernel_backend() == "numpy":
        return np_prim_mst(cache.npg(), r)
    return csr_prim_mst(csr, r)


def kruskal_mst(graph: WeightedGraph) -> WeightedGraph:
    """Kruskal's algorithm; returns the MST (raises on disconnected input).

    Runs on the frozen edge arrays of the CSR snapshot with an
    int-indexed union-find; byte-identical to :func:`kruskal_mst_dicts`.
    """
    from .cache import param_cache
    from .csr import csr_kruskal_mst
    from .npkernels import kernel_backend, np_kruskal_mst

    cache = param_cache(graph)
    if kernel_backend() == "numpy":
        return np_kruskal_mst(cache.npg())
    return csr_kruskal_mst(cache.csr())


def prim_mst_dicts(
    graph: WeightedGraph, root: Vertex | None = None
) -> WeightedGraph:
    """Reference dict-of-dicts Prim (the pre-CSR implementation).

    Kept as the independent oracle the CSR kernel is golden-tested
    against; not on any hot path.
    """
    if graph.num_vertices == 0:
        return WeightedGraph()
    if root is None:
        root = graph.vertices[0]
    in_tree = {root}
    tree = WeightedGraph(vertices=[root])
    tie = count()
    heap: list[tuple[float, int, Vertex, Vertex]] = []
    for v, w in graph.neighbor_weights(root).items():
        heapq.heappush(heap, (w, next(tie), root, v))
    while heap:
        w, _, u, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        tree.add_edge(u, v, w)
        for x, wx in graph.neighbor_weights(v).items():
            if x not in in_tree:
                heapq.heappush(heap, (wx, next(tie), v, x))
    if len(in_tree) != graph.num_vertices:
        raise ValueError("graph is not connected; MST undefined")
    return tree


def kruskal_mst_dicts(graph: WeightedGraph) -> WeightedGraph:
    """Reference dict-based Kruskal (the pre-CSR implementation)."""
    uf = UnionFind()
    tree = WeightedGraph(vertices=graph.vertices)
    edges = sorted(graph.edges(), key=lambda e: e[2])
    added = 0
    for u, v, w in edges:
        if uf.union(u, v):
            tree.add_edge(u, v, w)
            added += 1
    if added != graph.num_vertices - 1 and graph.num_vertices > 0:
        raise ValueError("graph is not connected; MST undefined")
    return tree


def minimum_spanning_tree(graph: WeightedGraph) -> WeightedGraph:
    """Default MST routine (Prim)."""
    return prim_mst(graph)


def mst_weight(graph: WeightedGraph) -> float:
    """``V = w(MST(G))`` — the paper's script-V parameter (memoized per graph)."""
    from .cache import param_cache

    return param_cache(graph).mst_weight()
