"""Weighted shortest paths: Dijkstra, shortest-path trees, distances, diameter.

These are the sequential building blocks used by the SLT construction
(Section 2), the cover machinery (Sections 3-4) and as correctness oracles
for the distributed SPT protocols (Section 9).

Terminology follows the paper: ``dist(u, v, G)`` is the weighted distance,
``Path(u, v, G)`` an arbitrary shortest path, ``Diam(G)`` the weighted
diameter, and an *SPT* rooted at ``s`` is the tree formed by shortest paths
from ``s`` to every other vertex.
"""

from __future__ import annotations

import heapq
from itertools import count

from .weighted_graph import Vertex, WeightedGraph

__all__ = [
    "dijkstra",
    "distance",
    "shortest_path",
    "shortest_path_tree",
    "tree_path",
    "tree_distances",
    "eccentricity",
    "diameter",
    "radius_center",
    "max_neighbor_distance",
]


def dijkstra(
    graph: WeightedGraph, source: Vertex
) -> tuple[dict[Vertex, float], dict[Vertex, Vertex | None]]:
    """Single-source shortest paths.

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the weighted distance from ``source`` to ``v`` (only
        reachable vertices appear); ``parent[v]`` is v's predecessor on a
        shortest path (``None`` for the source).
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    dist: dict[Vertex, float] = {source: 0.0}
    parent: dict[Vertex, Vertex | None] = {source: None}
    done: set[Vertex] = set()
    tie = count()
    heap: list[tuple[float, int, Vertex]] = [(0.0, next(tie), source)]
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for v, w in graph.neighbor_weights(u).items():
            nd = d + w
            if v not in dist or nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, next(tie), v))
    return dist, parent


def distance(graph: WeightedGraph, u: Vertex, v: Vertex) -> float:
    """``dist(u, v, G)``; ``inf`` if disconnected."""
    from .cache import param_cache

    dist, _ = param_cache(graph).sssp(u)
    return dist.get(v, float("inf"))


def shortest_path(graph: WeightedGraph, u: Vertex, v: Vertex) -> list[Vertex]:
    """``Path(u, v, G)`` as a vertex list from u to v; raise if disconnected."""
    from .cache import param_cache

    dist, parent = param_cache(graph).sssp(u)
    if v not in dist:
        raise ValueError(f"{v!r} unreachable from {u!r}")
    path = [v]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def shortest_path_tree(graph: WeightedGraph, source: Vertex) -> WeightedGraph:
    """The SPT of ``graph`` rooted at ``source``.

    Raises ``ValueError`` on a disconnected graph (the paper's model assumes
    connectivity).  The returned tree is freshly built and safe to mutate.
    """
    from .cache import param_cache

    dist, parent = param_cache(graph).sssp(source)
    if len(dist) != graph.num_vertices:
        raise ValueError("graph is not connected; SPT undefined")
    tree = WeightedGraph(vertices=graph.vertices)
    for v, p in parent.items():
        if p is not None:
            tree.add_edge(p, v, graph.weight(p, v))
    return tree


def tree_path(tree: WeightedGraph, x: Vertex, y: Vertex) -> list[Vertex]:
    """``P(x, y, T)`` — the unique path between x and y in a tree.

    Implemented as a BFS from ``x`` (trees are sparse, so this is linear).
    """
    if x == y:
        return [x]
    parent: dict[Vertex, Vertex] = {x: x}
    frontier = [x]
    while frontier and y not in parent:
        nxt = []
        for u in frontier:
            for v in tree.neighbors(u):
                if v not in parent:
                    parent[v] = u
                    nxt.append(v)
        frontier = nxt
    if y not in parent:
        raise ValueError(f"{y!r} not connected to {x!r} in tree")
    path = [y]
    while path[-1] != x:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def tree_distances(tree: WeightedGraph, root: Vertex) -> dict[Vertex, float]:
    """Weighted depth of every vertex in ``tree`` below ``root``."""
    dist = {root: 0.0}
    stack = [root]
    while stack:
        u = stack.pop()
        for v, w in tree.neighbor_weights(u).items():
            if v not in dist:
                dist[v] = dist[u] + w
                stack.append(v)
    return dist


def eccentricity(graph: WeightedGraph, v: Vertex) -> float:
    """``Rad(v, G)`` — the largest weighted distance from v to any vertex."""
    from .cache import param_cache

    return param_cache(graph).eccentricity(v)


def diameter(graph: WeightedGraph) -> float:
    """``Diam(G)`` — the maximum weighted distance between any vertex pair.

    Exact computation via n Dijkstra runs (memoized per graph; see
    :mod:`repro.graphs.cache`); fine at the scales the paper's experiments
    need (n up to a few thousand).
    """
    from .cache import param_cache

    return param_cache(graph).diameter()


def radius_center(graph: WeightedGraph) -> tuple[float, Vertex]:
    """``(Rad(S), center)`` — minimum eccentricity and a vertex achieving it."""
    if graph.num_vertices == 0:
        raise ValueError("empty graph has no center")
    from .cache import param_cache

    best_v = None
    best_r = float("inf")
    for v, r in param_cache(graph).eccentricities().items():
        if r < best_r:
            best_r, best_v = r, v
    return best_r, best_v


def max_neighbor_distance(graph: WeightedGraph) -> float:
    """``d = max_{(u,v) in E} dist(u, v)`` — the clock-sync lower bound (§1.4.2).

    Note d <= W always, and the clock synchronization problem is interesting
    precisely when d << W (a heavy edge whose endpoints are close through the
    rest of the network).
    """
    from .cache import param_cache

    return param_cache(graph).max_neighbor_distance()
