"""Plain-text persistence for weighted graphs.

A tiny, dependency-free interchange format so workloads can be saved,
versioned and shared:

    # comment lines start with '#'
    v <vertex>              # optional: declare an isolated vertex
    e <u> <v> <weight>      # an undirected weighted edge

Vertex tokens are stored as strings; integer-looking tokens round-trip
back to ints (the common case for generated workloads).
"""

from __future__ import annotations

import hashlib
import io
from pathlib import Path

from .weighted_graph import Vertex, WeightedGraph

__all__ = ["dump_graph", "dumps_graph", "graph_fingerprint", "load_graph",
           "loads_graph"]


def _token(v: Vertex) -> str:
    s = str(v)
    if any(c.isspace() for c in s):
        raise ValueError(f"vertex {v!r} renders with whitespace; not storable")
    return s


def _parse_vertex(token: str) -> Vertex:
    try:
        return int(token)
    except ValueError:
        return token


def dumps_graph(graph: WeightedGraph) -> str:
    """Serialize to the text format (deterministic ordering)."""
    out = io.StringIO()
    out.write(f"# weighted graph: n={graph.num_vertices} m={graph.num_edges}\n")
    adjacent = set()
    for u, v, _w in graph.edges():
        adjacent.add(u)
        adjacent.add(v)
    for v in sorted(graph.vertices, key=repr):
        if v not in adjacent:
            out.write(f"v {_token(v)}\n")
    for u, v, w in sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1]))):
        out.write(f"e {_token(u)} {_token(v)} {w:g}\n")
    return out.getvalue()


def dump_graph(graph: WeightedGraph, path: str | Path) -> None:
    """Write the graph to ``path``."""
    Path(path).write_text(dumps_graph(graph))


def loads_graph(text: str) -> WeightedGraph:
    """Parse the text format back into a graph."""
    g = WeightedGraph()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "v" and len(parts) == 2:
            g.add_vertex(_parse_vertex(parts[1]))
        elif parts[0] == "e" and len(parts) == 4:
            g.add_edge(
                _parse_vertex(parts[1]), _parse_vertex(parts[2]),
                float(parts[3]),
            )
        else:
            raise ValueError(f"line {lineno}: cannot parse {raw!r}")
    return g


def load_graph(path: str | Path) -> WeightedGraph:
    """Read a graph from ``path``."""
    return loads_graph(Path(path).read_text())


def graph_fingerprint(graph: WeightedGraph) -> str:
    """A short stable content hash of a graph (16 hex chars).

    SHA-256 over the canonical text serialization, so it is independent of
    insertion order, process, platform, and ``PYTHONHASHSEED``.  Replay
    headers embed it to detect generator drift: a trace recorded against
    one graph refuses to replay against a structurally different rebuild.
    """
    return hashlib.sha256(dumps_graph(graph).encode()).hexdigest()[:16]
