"""Weighted-graph substrate: data structure, generators, MST, shortest paths.

Public surface of :mod:`repro.graphs`; every symbol here is stable API.
"""

from .cache import GraphParamCache, param_cache
from .csr import (
    CSRGraph,
    GraphScan,
    all_sources_scan,
    csr_kruskal_mst,
    csr_of,
    csr_prim_mst,
    sssp_maps,
)
from .generators import (
    binary_tree,
    caterpillar_graph,
    complete_graph,
    hypercube_graph,
    grid_graph,
    heavy_edge_clock_graph,
    lower_bound_graph,
    lower_bound_split_graph,
    path_graph,
    random_connected_graph,
    random_tree,
    ring_graph,
    spoke_graph,
    star_graph,
)
from .io import (
    dump_graph,
    dumps_graph,
    graph_fingerprint,
    load_graph,
    loads_graph,
)
from .mst import kruskal_mst, minimum_spanning_tree, mst_weight, prim_mst, UnionFind
from .npkernels import (
    KERNEL_BACKEND_ENV,
    NPGraph,
    backend_info,
    kernel_backend,
    np_all_sources_scan,
    np_delay_propagation,
    np_graph_of,
    np_kruskal_mst,
    np_prim_mst,
    np_sssp_dist,
    numpy_available,
    set_kernel_backend,
)
from .params import NetworkParams, network_params, script_D, script_E, script_V
from .paths import (
    diameter,
    dijkstra,
    distance,
    eccentricity,
    max_neighbor_distance,
    radius_center,
    shortest_path,
    shortest_path_tree,
    tree_distances,
    tree_path,
)
from .weighted_graph import Edge, Vertex, WeightedGraph, edge_key

__all__ = [
    "WeightedGraph",
    "Vertex",
    "Edge",
    "edge_key",
    # generators
    "path_graph",
    "ring_graph",
    "grid_graph",
    "star_graph",
    "complete_graph",
    "binary_tree",
    "hypercube_graph",
    "caterpillar_graph",
    "random_connected_graph",
    "random_tree",
    "lower_bound_graph",
    "lower_bound_split_graph",
    "heavy_edge_clock_graph",
    "spoke_graph",
    # io
    "dump_graph",
    "dumps_graph",
    "graph_fingerprint",
    "load_graph",
    "loads_graph",
    # mst
    "prim_mst",
    "kruskal_mst",
    "minimum_spanning_tree",
    "mst_weight",
    "UnionFind",
    # paths
    "dijkstra",
    "distance",
    "shortest_path",
    "shortest_path_tree",
    "tree_path",
    "tree_distances",
    "eccentricity",
    "diameter",
    "radius_center",
    "max_neighbor_distance",
    # params
    "NetworkParams",
    "network_params",
    "script_E",
    "script_V",
    "script_D",
    # cache
    "GraphParamCache",
    "param_cache",
    # csr kernels
    "CSRGraph",
    "GraphScan",
    "csr_of",
    "sssp_maps",
    "all_sources_scan",
    "csr_prim_mst",
    "csr_kruskal_mst",
    # numpy kernel backend (optional; value-identical to the CSR kernels)
    "KERNEL_BACKEND_ENV",
    "kernel_backend",
    "set_kernel_backend",
    "numpy_available",
    "backend_info",
    "NPGraph",
    "np_graph_of",
    "np_all_sources_scan",
    "np_sssp_dist",
    "np_delay_propagation",
    "np_prim_mst",
    "np_kruskal_mst",
]
