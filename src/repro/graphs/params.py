"""The paper's weighted network parameters (Section 1.3).

Cost-sensitive complexity is expressed in terms of the weighted analogs of
the classical |E|, |V|, D:

* ``script_E = w(G)``            — cost of one message over every edge;
* ``script_V = w(MST(G))``       — minimal cost of reaching all vertices;
* ``script_D = Diam(G)``         — maximal cost between any vertex pair;

plus the auxiliary quantities

* ``W = max_e w(e)``             — heaviest edge;
* ``d = max_{(u,v) in E} dist(u,v)`` — largest weighted distance between
  *neighbors* (the clock-synchronization lower bound, Section 1.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .mst import mst_weight
from .paths import diameter
from .weighted_graph import WeightedGraph

__all__ = ["NetworkParams", "network_params", "script_E", "script_V", "script_D"]


def script_E(graph: WeightedGraph) -> float:
    """Total edge weight ``w(G)``."""
    return graph.total_weight()


def script_V(graph: WeightedGraph) -> float:
    """MST weight ``w(MST(G))``."""
    return mst_weight(graph)


def script_D(graph: WeightedGraph) -> float:
    """Weighted diameter ``Diam(G)``."""
    return diameter(graph)


@dataclass(frozen=True)
class NetworkParams:
    """All weighted parameters of a network, computed once and cached.

    Attributes mirror the paper's notation; ``n``/``m`` are the classical
    vertex/edge counts.
    """

    n: int
    m: int
    E: float  # script-E: total edge weight w(G)
    V: float  # script-V: MST weight
    D: float  # script-D: weighted diameter
    W: float  # max edge weight
    d: float  # max weighted distance between neighbors

    def __str__(self) -> str:
        return (
            f"n={self.n} m={self.m} E={self.E:g} V={self.V:g} "
            f"D={self.D:g} W={self.W:g} d={self.d:g}"
        )


def network_params(graph: WeightedGraph) -> NetworkParams:
    """Compute every weighted parameter of ``graph`` (requires connectivity).

    Memoized per graph via :mod:`repro.graphs.cache` and invalidated when
    the graph mutates.  Sanity relations that always hold (and are
    property-tested): ``D <= V <= E``, ``d <= W``, and ``V <= (n-1) * D``
    (Fact 6.3).
    """
    from .cache import param_cache

    return param_cache(graph).network_params()
