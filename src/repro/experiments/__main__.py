"""CLI: regenerate the paper's tables and figures.

    python -m repro.experiments               # run everything, plain text
    python -m repro.experiments fig1 clock    # a subset by key
    python -m repro.experiments --markdown    # markdown output
    python -m repro.experiments --jobs 4      # shard experiments across 4 processes
    python -m repro.experiments --list        # show available experiments
    python -m repro.experiments --trace       # trace every run; print the span profile
    python -m repro.experiments --trace --trace-out DIR  # also write profile.jsonl
"""

from __future__ import annotations

import json
import os
import sys

from .base import all_experiments, render_markdown, render_text
from .parallel import run_experiment_by_key, run_parallel


def _pop_jobs(args: list[str]) -> int | None:
    """Extract ``--jobs N`` (or ``--jobs=N``) from ``args``, mutating it."""
    for i, a in enumerate(args):
        if a == "--jobs":
            if i + 1 >= len(args):
                raise SystemExit("--jobs requires an argument")
            jobs = int(args[i + 1])
            del args[i:i + 2]
            return jobs
        if a.startswith("--jobs="):
            jobs = int(a.split("=", 1)[1])
            del args[i]
            return jobs
    return None


def _pop_trace_out(args: list[str]) -> str | None:
    """Extract ``--trace-out PATH`` (or ``--trace-out=PATH``), mutating."""
    for i, a in enumerate(args):
        if a == "--trace-out":
            if i + 1 >= len(args):
                raise SystemExit("--trace-out requires an argument")
            path = args[i + 1]
            del args[i:i + 2]
            return path
        if a.startswith("--trace-out="):
            path = a.split("=", 1)[1]
            del args[i]
            return path
    return None


def main(argv: list[str]) -> int:
    args = list(argv)
    markdown = "--markdown" in args
    args = [a for a in args if a != "--markdown"]
    jobs = _pop_jobs(args)
    trace_out = _pop_trace_out(args)
    trace = "--trace" in args or trace_out is not None
    args = [a for a in args if a != "--trace"]
    registry = all_experiments()

    if "--list" in args:
        for key, (desc, _fn) in sorted(registry.items()):
            print(f"{key:12s} {desc}")
        return 0

    keys = args or sorted(registry)
    unknown = [k for k in keys if k not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(registry))}", file=sys.stderr)
        return 2

    if trace and jobs is not None and jobs > 1:
        # The ambient trace session is process-local: recorders created in
        # pool workers would never reach this process.  Sweep-level traced
        # sharding goes through chaos_rows(trace=True) instead.
        print("--trace forces serial execution (ignoring --jobs)",
              file=sys.stderr)
        jobs = None

    render = render_markdown if markdown else render_text

    def report(results) -> None:
        # One experiment per cell: outputs come back in request order, so
        # the report reads identically whether sharded or serial.
        for key, desc, elapsed, tables in results:
            header = f"# {key}: {desc}  ({elapsed:.1f}s)"
            print(header if markdown else header.lstrip("# "))
            for table in tables:
                print()
                print(render(table))
            print()

    if not trace:
        report(run_parallel(run_experiment_by_key, keys, jobs=jobs))
        return 0

    from repro.obs import tracing

    # Aggregate-only recorders (limit=0): every Network the experiments
    # build gets one; the per-span profile prints after the tables.
    with tracing(limit=0) as session:
        report(run_parallel(run_experiment_by_key, keys, jobs=jobs))
    profiler = session.profiler()
    print(profiler.report())
    if trace_out is not None:
        os.makedirs(trace_out, exist_ok=True)
        path = os.path.join(trace_out, "profile.jsonl")
        with open(path, "w") as fh:
            for label, rec in session.recorders:
                line = {"label": label}
                line.update(rec.summary().as_dict())
                fh.write(json.dumps(line, sort_keys=True) + "\n")
        print(f"wrote {len(session.recorders)} run summaries to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
