"""CLI: regenerate the paper's tables and figures.

    python -m repro.experiments               # run everything, plain text
    python -m repro.experiments fig1 clock    # a subset by key
    python -m repro.experiments --markdown    # markdown output
    python -m repro.experiments --jobs 4      # shard experiments across 4 processes
    python -m repro.experiments --list        # show available experiments
"""

from __future__ import annotations

import sys

from .base import all_experiments, render_markdown, render_text
from .parallel import run_experiment_by_key, run_parallel


def _pop_jobs(args: list[str]) -> int | None:
    """Extract ``--jobs N`` (or ``--jobs=N``) from ``args``, mutating it."""
    for i, a in enumerate(args):
        if a == "--jobs":
            if i + 1 >= len(args):
                raise SystemExit("--jobs requires an argument")
            jobs = int(args[i + 1])
            del args[i:i + 2]
            return jobs
        if a.startswith("--jobs="):
            jobs = int(a.split("=", 1)[1])
            del args[i]
            return jobs
    return None


def main(argv: list[str]) -> int:
    args = list(argv)
    markdown = "--markdown" in args
    args = [a for a in args if a != "--markdown"]
    jobs = _pop_jobs(args)
    registry = all_experiments()

    if "--list" in args:
        for key, (desc, _fn) in sorted(registry.items()):
            print(f"{key:12s} {desc}")
        return 0

    keys = args or sorted(registry)
    unknown = [k for k in keys if k not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(registry))}", file=sys.stderr)
        return 2

    render = render_markdown if markdown else render_text
    # One experiment per cell: outputs come back in request order, so the
    # report reads identically whether sharded or serial.
    for key, desc, elapsed, tables in run_parallel(
        run_experiment_by_key, keys, jobs=jobs
    ):
        header = f"# {key}: {desc}  ({elapsed:.1f}s)"
        print(header if markdown else header.lstrip("# "))
        for table in tables:
            print()
            print(render(table))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
