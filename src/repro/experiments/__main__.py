"""CLI: regenerate the paper's tables and figures.

    python -m repro.experiments               # run everything, plain text
    python -m repro.experiments fig1 clock    # a subset by key
    python -m repro.experiments --markdown    # markdown output
    python -m repro.experiments --list        # show available experiments
"""

from __future__ import annotations

import sys
import time

from .base import all_experiments, render_markdown, render_text


def main(argv: list[str]) -> int:
    args = list(argv)
    markdown = "--markdown" in args
    args = [a for a in args if a != "--markdown"]
    registry = all_experiments()

    if "--list" in args:
        for key, (desc, _fn) in sorted(registry.items()):
            print(f"{key:12s} {desc}")
        return 0

    keys = args or sorted(registry)
    unknown = [k for k in keys if k not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(registry))}", file=sys.stderr)
        return 2

    render = render_markdown if markdown else render_text
    for key in keys:
        desc, runner = registry[key]
        start = time.perf_counter()
        tables = runner()
        elapsed = time.perf_counter() - start
        header = f"# {key}: {desc}  ({elapsed:.1f}s)"
        print(header if markdown else header.lstrip("# "))
        for table in tables:
            print()
            print(render(table))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
