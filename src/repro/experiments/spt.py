"""Experiment F4/F9 — Figure 4: SPT algorithms + the strip-method ablation."""

from __future__ import annotations

import math

from ..graphs import (
    WeightedGraph,
    dijkstra,
    network_params,
    random_connected_graph,
    tree_distances,
)
from ..protocols import (
    run_spt_centr,
    run_spt_hybrid,
    run_spt_recur,
    run_spt_synch,
)
from .base import Table, experiment

__all__ = ["run", "spt_suite", "strip_sweep", "weight_regime_sweep"]

K = 2


def _check_tree(graph, tree, source):
    dist, _ = dijkstra(graph, source)
    got = tree_distances(tree, source)
    assert all(abs(got[v] - dist[v]) < 1e-9 for v in graph.vertices)


def spt_suite(graph, source=0):
    """Run the four Figure-4 algorithms; verify the exact SPT; return costs."""
    p = network_params(graph)
    out = {}
    res, tree = run_spt_centr(graph, source)
    _check_tree(graph, tree, source)
    out["SPT_centr"] = (res.comm_cost, res.time)
    res, tree = run_spt_recur(graph, source)
    _check_tree(graph, tree, source)
    out["SPT_recur"] = (res.comm_cost, res.time)
    gres, tree = run_spt_synch(graph, source, k=K)
    _check_tree(graph, tree, source)
    out["SPT_synch"] = (gres.comm_cost, gres.time)
    hyb = run_spt_hybrid(graph, source)
    _check_tree(graph, hyb.output, source)
    out["SPT_hybrid"] = (hyb.total_comm_cost, hyb.total_time)
    return p, out


def figure4_bounds(p):
    logn = math.log2(p.n)
    return {
        "SPT_centr": p.n * p.n * p.V,
        "SPT_recur": p.E ** 1.5,                      # E^{1+eps} envelope
        "SPT_synch": p.E + p.D * K * p.n * logn,
        "SPT_hybrid": None,
    }


def strip_sweep(graph, source=0, strides=(1, 2, 4, 8, 16, 64)):
    """Figure 9 ablation rows: (stride, comm, sync cost, explore cost, time)."""
    rows = []
    for stride in strides:
        r, t = run_spt_recur(graph, source, stride=stride)
        _check_tree(graph, t, source)
        sync_cost = r.metrics.cost_by_tag.get("bfs-sync", 0.0)
        explore_cost = (
            r.metrics.cost_by_tag.get("bfs-explore", 0.0)
            + r.metrics.cost_by_tag.get("bfs-ack", 0.0)
            + r.metrics.cost_by_tag.get("bfs-child", 0.0)
        )
        rows.append([stride, r.comm_cost, sync_cost, explore_cost, r.time])
    return rows


def weight_regime_sweep(scales=(1, 16, 256)):
    """Section 1.4.3's regime claim: SPT_synch wins when weights are heavy.

    Uniformly scaling the weights inflates SPT_recur's unit expansion
    (its message count tracks total weight) while SPT_synch only pays a
    log W factor in synchronizer levels -- the crossover where SPT_synch
    becomes "the best known shortest path algorithm for certain values of
    V, D, E".
    """
    base = random_connected_graph(20, 30, seed=8, max_weight=4)
    rows = []
    for scale in scales:
        g = WeightedGraph(vertices=base.vertices)
        for u, v, w in base.edges():
            g.add_edge(u, v, w * scale)
        p = network_params(g)
        synch, t1 = run_spt_synch(g, 0, k=K)
        _check_tree(g, t1, 0)
        recur, t2 = run_spt_recur(g, 0)
        _check_tree(g, t2, 0)
        rows.append([
            scale, p.W,
            synch.comm_cost, recur.comm_cost,
            synch.comm_cost / recur.comm_cost,
            synch.time, recur.time,
        ])
    return rows


@experiment("fig4", "Figure 4: SPT algorithm suite + Figure 9 strips")
def run() -> list[Table]:
    graph = random_connected_graph(30, 50, seed=4, max_weight=6)
    p, costs = spt_suite(graph)
    bounds = figure4_bounds(p)
    rows = []
    for name, (c, t) in costs.items():
        b = bounds[name]
        rows.append([name, c, t, b if b else "min", c / b if b else ""])
    main = Table(
        title=f"Figure 4: SPT algorithms  [{p}]",
        header=["algorithm", "comm", "time", "paper bound", "comm/bound"],
        rows=rows,
        notes="every algorithm outputs the exact Dijkstra SPT (asserted)",
    )
    strips = Table(
        title="Figure 9 ablation: SPT_recur strip stride d",
        header=["stride d", "comm", "sync cost", "explore cost", "time"],
        rows=strip_sweep(graph),
        notes="global-sync cost falls like D/d; exploration stays O(E)",
    )
    regimes = Table(
        title="Section 1.4.3 regimes: SPT_synch vs SPT_recur as weights grow",
        header=["scale", "W", "synch comm", "recur comm", "synch/recur",
                "synch time", "recur time"],
        rows=weight_regime_sweep(),
        notes="the unit expansion makes SPT_recur track total weight; "
              "SPT_synch only pays log W levels -- it wins the heavy regime",
    )
    return [main, strips, regimes]
