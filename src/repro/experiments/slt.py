"""Experiment F5/F6 — the shallow-light tree trade-off and Theorem 2.7."""

from __future__ import annotations

from ..core import run_distributed_slt, shallow_light_tree
from ..graphs import (
    network_params,
    prim_mst,
    random_connected_graph,
    shortest_path_tree,
    spoke_graph,
    tree_distances,
)
from .base import Table, experiment

__all__ = ["run", "q_sweep", "distributed_sweep"]


def q_sweep(graph, root=0, qs=(0.25, 0.5, 1.0, 2.0, 4.0, 16.0)):
    """Rows for the SLT trade-off curve on one instance."""
    p = network_params(graph)
    mst = prim_mst(graph, root)
    spt = shortest_path_tree(graph, root)
    rows = [
        ["MST (q=inf)", mst.total_weight(), 1.0,
         2 * max(tree_distances(mst, root).values()), ""],
        ["SPT (q=0)", spt.total_weight(), spt.total_weight() / p.V,
         2 * max(tree_distances(spt, root).values()), ""],
    ]
    for q in qs:
        res = shallow_light_tree(graph, root, q=q)
        assert res.weight <= (1 + 2 / q) * p.V + 1e-6
        assert res.depth() <= (2 * q + 1) * p.D + 1e-6
        rows.append([
            f"SLT q={q:g}", res.weight, res.weight / p.V,
            2 * res.depth(), (1 + 2 / q),
        ])
    return p, rows


def distributed_sweep(sizes=((10, 15), (20, 30), (40, 60))):
    """Theorem 2.7 rows: distributed SLT construction cost ratios."""
    rows = []
    for n, extra in sizes:
        g = random_connected_graph(n, extra, seed=1)
        p = network_params(g)
        out = run_distributed_slt(g, 0, q=2.0)
        rows.append([
            p.n, out.comm_cost, out.comm_cost / (p.V * p.n**2),
            out.time, out.time / (p.D * p.n**2),
            out.tree.total_weight() / p.V,
        ])
    return rows


@experiment("fig5", "Figures 5/6: shallow-light trees + Theorem 2.7")
def run() -> list[Table]:
    graph = spoke_graph(30, spoke_weight=100.0, rim_weight=1.0)
    p, rows = q_sweep(graph)
    curve = Table(
        title=f"Figure 5/6: SLT trade-off on the spoke graph  [{p}]",
        header=["tree", "weight", "weight/V", "diam<=2depth", "(1+2/q)"],
        rows=rows,
        notes="Lemma 2.4 bound w(T) <= (1+2/q) V holds exactly at every q",
    )
    distributed = Table(
        title="Theorem 2.7: distributed SLT construction (q = 2)",
        header=["n", "comm", "comm/(V n^2)", "time", "time/(D n^2)",
                "w(T)/V"],
        rows=distributed_sweep(),
        notes="MST_centr + local derivation + SPT_centr on G'",
    )
    return [curve, distributed]
