"""Experiment F3 — Figure 3: MST algorithms, plus the GHS decomposition."""

from __future__ import annotations

import math

from ..graphs import (
    lower_bound_graph,
    mst_weight,
    network_params,
    random_connected_graph,
)
from ..protocols import (
    run_mst_centr,
    run_mst_fast,
    run_mst_ghs,
    run_mst_hybrid,
)
from .base import Table, experiment

__all__ = ["run", "mst_suite"]


def mst_suite(graph, root):
    """Run the four Figure-3 algorithms on one graph; verify, return costs."""
    p = network_params(graph)
    v_opt = mst_weight(graph)
    out = {}
    for name, runner in (
        ("MST_ghs", lambda: run_mst_ghs(graph)),
        ("MST_fast", lambda: run_mst_fast(graph)),
        ("MST_centr", lambda: run_mst_centr(graph, root)),
    ):
        res, tree = runner()
        assert abs(tree.total_weight() - v_opt) < 1e-6
        out[name] = (res.comm_cost, res.time)
    hyb = run_mst_hybrid(graph, root)
    assert abs(hyb.output.total_weight() - v_opt) < 1e-6
    out["MST_hybrid"] = (hyb.total_comm_cost, hyb.total_time)
    return p, out, hyb.winner


def figure3_bounds(p):
    """The Figure 3 communication bounds for a given parameter set."""
    logn = math.log2(p.n)
    logv = max(1.0, math.log2(p.V))
    return {
        "MST_ghs": p.E + p.V * logn,
        "MST_fast": p.E * logn * logv,
        "MST_centr": p.n * p.V,
        "MST_hybrid": min(p.E + p.V * logn, p.n * p.V),
    }


def _suite_table(label, p, costs, winner):
    bounds = figure3_bounds(p)
    rows = [
        [name, costs[name][0], costs[name][1], b, costs[name][0] / b]
        for name, b in bounds.items()
    ]
    return Table(
        title=f"Figure 3: MST algorithms on {label}  [{p}]",
        header=["algorithm", "comm", "time", "paper bound", "comm/bound"],
        rows=rows,
        notes=f"hybrid race won by {winner}",
    )


def ghs_decomposition():
    """Where O(E + V log n) comes from: probe traffic vs tree coordination."""
    rows = []
    for n, extra in ((20, 60), (40, 140), (60, 240)):
        g = random_connected_graph(n, extra, seed=13, max_weight=6)
        p = network_params(g)
        res, _ = run_mst_ghs(g)
        by = res.metrics.cost_by_tag
        probe = by.get("ghs-test", 0.0)
        tree = (by.get("ghs-initiate", 0.0) + by.get("ghs-report", 0.0)
                + by.get("ghs-connect", 0.0) + by.get("ghs-halt", 0.0))
        rows.append([
            p.n, p.E, p.V, probe, probe / p.E,
            tree, tree / (p.V * math.log2(p.n)),
        ])
    return Table(
        title="Ablation: GHS cost decomposition (E-term vs V log n-term)",
        header=["n", "E", "V", "probe cost", "probe/E", "tree cost",
                "tree/(V log n)"],
        rows=rows,
        notes="Test/Accept/Reject traffic scales with E; "
              "Initiate/Report/Connect with V log n (Lemma 8.1)",
    )


@experiment("fig3", "Figure 3: MST algorithm suite")
def run() -> list[Table]:
    light = random_connected_graph(40, 100, seed=4, max_weight=4)
    heavy = lower_bound_graph(18)
    p1, costs1, winner1 = mst_suite(light, 0)
    p2, costs2, winner2 = mst_suite(heavy, 1)
    return [
        _suite_table("light random graph", p1, costs1, winner1),
        _suite_table("lower-bound family G_18", p2, costs2, winner2),
        ghs_decomposition(),
    ]
