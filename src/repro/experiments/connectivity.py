"""Experiment F2 — Figure 2: connectivity / spanning tree algorithms.

Includes the hybrid-initial-budget ablation (the race's total cost must be
insensitive to where the doubling starts).
"""

from __future__ import annotations

from ..graphs import lower_bound_graph, network_params, random_connected_graph
from ..protocols import run_con_hybrid, run_dfs, run_flood, run_mst_centr
from ..protocols.hybrid import race
from .base import Table, experiment

__all__ = ["run", "connectivity_suite"]


def connectivity_suite(graph, root):
    """Run CON_flood, DFS and CON_hybrid on one graph; returns costs."""
    p = network_params(graph)
    flood_res, flood_tree = run_flood(graph, root)
    dfs_res, dfs_tree = run_dfs(graph, root)
    hyb = run_con_hybrid(graph, root)
    assert flood_tree.is_tree() and dfs_tree.is_tree()
    assert hyb.output.is_tree()
    costs = {
        "CON_flood": (flood_res.comm_cost, flood_res.finish_time),
        "DFS": (dfs_res.comm_cost, dfs_res.time),
        "CON_hybrid": (hyb.total_comm_cost, hyb.total_time),
    }
    return p, costs, hyb.winner


def _suite_table(label, p, costs):
    min_bound = min(p.E, p.n * p.V)
    rows = [[name, c, t, c / min_bound] for name, (c, t) in costs.items()]
    rows.append(["Omega(min{E,nV})", min_bound, p.D, 1.0])
    return Table(
        title=f"Figure 2: connectivity on {label}  [{p}]",
        header=["algorithm", "comm", "time", "comm/min(E,nV)"],
        rows=rows,
    )


def _budget_ablation():
    g = random_connected_graph(25, 40, seed=14, max_weight=4)

    def dfs_attempt(budget):
        r, t = run_dfs(g, 0, budget=budget)
        return r.comm_cost, r.time, t

    def centr_attempt(budget):
        r, t = run_mst_centr(g, 0, budget=budget)
        return r.comm_cost, r.time, t

    rows = []
    for b0 in (1.0, 8.0, 64.0, 512.0):
        outcome = race({"DFS": dfs_attempt, "MST_centr": centr_attempt}, b0)
        rows.append([b0, outcome.rounds, outcome.winner,
                     outcome.total_comm_cost])
    return Table(
        title="Ablation: hybrid race initial budget",
        header=["initial budget", "rounds", "winner", "total cost"],
        rows=rows,
        notes="doubling makes the race's cost insensitive to the start",
    )


@experiment("fig2", "Figure 2: connectivity Theta(min{E, nV})")
def run() -> list[Table]:
    light = random_connected_graph(40, 80, seed=2, max_weight=4)
    heavy = lower_bound_graph(20)
    p1, costs1, winner1 = connectivity_suite(light, 0)
    p2, costs2, winner2 = connectivity_suite(heavy, 1)
    t1 = _suite_table("light random graph (E << nV)", p1, costs1)
    t1.notes = f"hybrid race won by {winner1}"
    t2 = _suite_table("lower-bound family G_20 (E >> nV)", p2, costs2)
    t2.notes = f"hybrid race won by {winner2}"
    return [t1, t2, _budget_ablation()]
