"""Experiment F1 — Figure 1: global function computation bounds."""

from __future__ import annotations

from ..core import (
    SUM,
    compute_global_function,
    global_function_comm_lower_bound,
    global_function_time_lower_bound,
)
from ..graphs import network_params, random_connected_graph
from .base import Table, experiment

__all__ = ["run"]

Q = 2.0
SIZES = [(20, 30), (40, 60), (80, 120), (160, 240)]


@experiment("fig1", "Figure 1: global function computation Theta(V)/Theta(D)")
def run() -> list[Table]:
    rows = []
    for n, extra in SIZES:
        g = random_connected_graph(n, extra, seed=0)
        p = network_params(g)
        inputs = {v: 1 for v in g.vertices}
        result, value = compute_global_function(g, inputs, SUM, q=Q)
        assert value == n
        comm_lb = global_function_comm_lower_bound(g)
        time_lb = global_function_time_lower_bound(g)
        rows.append([
            p.n, p.m, p.V, p.D,
            result.comm_cost, result.comm_cost / comm_lb,
            result.finish_time, result.finish_time / time_lb,
        ])
    return [Table(
        title=f"Figure 1: global function computation (q = {Q:g})",
        header=["n", "m", "V", "D", "comm", "comm/V", "time", "time/D"],
        rows=rows,
        notes="upper bound O(V)/O(D) via the SLT protocol; "
              "lower bound Omega(V)/Omega(D) (Thm 2.1)",
    )]
