"""Experiment CH — the chaos matrix: every protocol under fault injection.

Sweeps seeded message-loss rates across the protocol suite (flooding
broadcast, tree convergecast, token DFS, GHS MST plus its parallel-scan
fast variant, SLT global function),
with and without the cost-accounted reliable transport, and verifies the
robustness contract:

* with :class:`~repro.faults.transport.ReliableProcess`, every run
  completes with the *same final answer* as the fault-free run, and the
  retransmission overhead — measured in the paper's cost-sensitive units,
  each retry on ``e`` costing another ``w(e)`` — stays a small multiple
  of the fault-free communication cost;
* without the transport, a faulted run either still completes correctly
  (some protocols, e.g. flooding, are naturally redundant) or fails
  *detectably* (stall / watchdog timeout / abort) — never silently wrong.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from ..core.global_function import SUM, GlobalFunctionProcess
from ..core.slt import shallow_light_tree
from ..faults import ChaosOutcome, FaultPlan, run_chaos
from ..graphs import WeightedGraph, random_connected_graph
from ..protocols.broadcast import FloodProcess
from ..protocols.convergecast import ConvergecastProcess, rooted_tree_structure
from ..protocols.dfs import DfsProcess
from ..protocols.mst_ghs import GhsProcess
from ..sim.network import RunResult
from .base import Table, experiment

__all__ = ["ChaosCase", "make_cases", "chaos_matrix", "run"]

DROP_RATES = (0.0, 0.05, 0.2)


@dataclass
class ChaosCase:
    """One protocol under test: how to build it and how to read its answer."""

    name: str
    graph: WeightedGraph
    factory: Callable[[Any], Any]
    answer: Callable[[RunResult], Any]


def _flood_answer(result: RunResult) -> Any:
    # The broadcast answer is "every node holds the payload" — parents may
    # legitimately differ between delay schedules, so they are not part of it.
    return sorted((repr(v), p.payload) for v, p in result.processes.items())


def _dfs_answer(result: RunResult) -> Any:
    # The token walk is serial and deterministic, so the DFS tree itself is
    # part of the answer.
    return sorted(
        (repr(v), repr(p.parent)) for v, p in result.processes.items()
    )


def _mst_answer(result: RunResult) -> Any:
    edges = set()
    for v, p in result.processes.items():
        for u in p._branch_edges():
            edges.add(frozenset((repr(u), repr(v))))
    return sorted(tuple(sorted(e)) for e in edges)


def _global_answer(result: RunResult) -> Any:
    return sorted(
        (repr(v), p.ctx.result) for v, p in result.processes.items()
    )


def make_cases(n: int = 14, extra_edges: int = 20,
               graph_seed: int = 2) -> list[ChaosCase]:
    """The protocol suite on one benchmark graph (plus its SLT for the
    tree-structured protocols)."""
    g = random_connected_graph(n, extra_edges, seed=graph_seed)
    root = g.vertices[0]
    slt = shallow_light_tree(g, root, 2.0).tree
    parent, children = rooted_tree_structure(slt, root)
    inputs = {v: 1 for v in g.vertices}

    def flood_factory(v):
        return FloodProcess(v == root, "chaos-payload")

    def converge_factory(v):
        return ConvergecastProcess(parent[v], children[v], inputs[v],
                                   lambda a, b: a + b)

    def dfs_factory(v):
        return DfsProcess(v == root)

    def ghs_factory(v):
        return GhsProcess(False, n_total=g.num_vertices)

    def ghs_fast_factory(v):
        # The parallel-scan ("fast") GHS variant: first slice of the
        # hybrid/fast protocol family in the chaos matrix.
        return GhsProcess(True, n_total=g.num_vertices)

    def global_factory(v):
        return GlobalFunctionProcess(parent[v], children[v], inputs[v], SUM)

    return [
        ChaosCase("broadcast", g, flood_factory, _flood_answer),
        ChaosCase("convergecast", slt, converge_factory,
                  lambda r: r.result_of(root)),
        ChaosCase("dfs", g, dfs_factory, _dfs_answer),
        ChaosCase("mst_ghs", g, ghs_factory, _mst_answer),
        ChaosCase("mst_fast", g, ghs_fast_factory, _mst_answer),
        ChaosCase("global_fn(slt)", slt, global_factory, _global_answer),
    ]


def chaos_matrix(
    cases: list[ChaosCase] | None = None,
    *,
    drop_rates: tuple = DROP_RATES,
    fault_seed: int = 7,
    include_raw: bool = True,
) -> list[dict]:
    """Run the full matrix; one result dict per (case, rate, transport).

    Each dict carries the :class:`~repro.faults.runner.ChaosOutcome`, the
    fault-free reference cost, and the overhead ratio the acceptance bound
    is asserted against.
    """
    if cases is None:
        cases = make_cases()
    rows: list[dict] = []
    for case in cases:
        reference = run_chaos(case.graph, case.factory, plan=None,
                              reliable=False, answer=case.answer)
        if reference.status != "ok":  # pragma: no cover - suite invariant
            raise RuntimeError(
                f"fault-free reference run failed for {case.name}: "
                f"{reference.status}"
            )
        ff_cost = reference.result.comm_cost
        # Success ends by quiescence; the watchdog only has to be generous
        # enough that backoff-stretched runs are not misclassified.
        watchdog = 500.0 * max(reference.result.time, 1.0) + 1000.0
        for rate in drop_rates:
            plan = (FaultPlan.message_loss(rate, seed=fault_seed)
                    if rate > 0 else None)
            modes = [True] + ([False] if include_raw and rate > 0 else [])
            for reliable in modes:
                outcome = run_chaos(
                    case.graph, case.factory, plan=plan, reliable=reliable,
                    watchdog_time=watchdog, answer=case.answer,
                    expect=reference.answer,
                )
                rows.append({
                    "protocol": case.name,
                    "drop": rate,
                    "reliable": reliable,
                    "outcome": outcome,
                    "ff_cost": ff_cost,
                    "overhead_ratio": (
                        outcome.retry_cost / ff_cost if ff_cost else 0.0
                    ),
                })
    return rows


def _status_label(outcome: ChaosOutcome) -> str:
    return outcome.status


@experiment("chaos", "Chaos matrix: protocols x loss rates, reliability cost")
def run() -> list[Table]:
    rows = []
    for entry in chaos_matrix():
        outcome = entry["outcome"]
        comm = outcome.result.comm_cost if outcome.result else float("nan")
        rows.append([
            entry["protocol"],
            entry["drop"],
            "reliable" if entry["reliable"] else "raw",
            _status_label(outcome),
            comm,
            outcome.retry_count,
            outcome.retry_cost,
            outcome.ack_cost,
            entry["overhead_ratio"],
        ])
    return [Table(
        title="Chaos matrix: seeded message loss across the protocol suite",
        header=["protocol", "drop", "transport", "status", "comm",
                "retries", "retry_cost", "ack_cost", "retry/ff"],
        rows=rows,
        notes="reliable runs must be 'ok' with the fault-free answer; raw "
              "runs under loss must never be silently wrong (retry costs "
              "in cost-sensitive units: each retry on e costs w(e))",
    )]
