"""Multiprocessing sweep engine: shard experiment cells across workers.

Experiment sweeps are embarrassingly parallel — every *cell* (one
(graph, seed, protocol) combination) is an independent simulation — but the
serial runners execute them one at a time.  This module provides the
machinery to shard cells across a process pool while keeping the two
properties the test-suite pins down:

**Determinism.**  A cell's outcome depends only on the cell description,
never on which worker ran it or in what order: cell descriptions are
immutable, carry every seed explicitly, and :func:`cell_seed` derives
per-cell seeds by hashing the cell key with SHA-256 (stable across
processes and interpreter runs, unlike ``hash()`` under hash
randomization).  ``run_parallel`` returns results in cell order
regardless of completion order, so a parallel sweep merges to exactly the
serial table.

**Picklability.**  Full :class:`~repro.faults.runner.ChaosOutcome` objects
hold live process graphs (closures, bound methods) and cannot cross a
process boundary, so workers return flat summary rows
(:func:`summarize_chaos_entry`) containing only primitives.  The serial
path (``jobs=None``/``1``) runs the same worker in-process, so serial and
parallel sweeps produce byte-identical row lists.

Reconstruction cost is amortized per worker: each process memoizes the
case suite and the fault-free reference runs (:func:`_cases_by_name`,
:func:`_reference`), so a worker pays the graph/SLT construction once per
distinct graph, not once per cell.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

__all__ = [
    "cell_seed",
    "run_parallel",
    "ChaosCell",
    "chaos_cells",
    "run_chaos_cell",
    "chaos_rows",
    "summarize_chaos_entry",
    "run_experiment_by_key",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def cell_seed(master_seed: int, *key: Any) -> int:
    """A deterministic 63-bit seed for the sweep cell identified by ``key``.

    Derived by hashing ``(master_seed, *key)`` with SHA-256, so it is
    stable across processes, platforms, and ``PYTHONHASHSEED`` values —
    the properties Python's built-in ``hash()`` lacks.  Distinct cells get
    (overwhelmingly likely) distinct, uncorrelated seeds, which is what a
    sweep needs to vary randomness *between* cells while keeping every
    cell individually reproducible.
    """
    digest = hashlib.sha256(repr((master_seed,) + key).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def run_parallel(
    fn: Callable[[_T], _R],
    cells: Iterable[_T],
    *,
    jobs: Optional[int] = None,
    chunksize: int = 1,
) -> list[_R]:
    """Map ``fn`` over ``cells``, optionally across a process pool.

    ``jobs=None``/``0``/``1`` runs serially in-process (no pool, no
    pickling) — the reference path the parallel one must match.  With
    ``jobs > 1``, cells are sharded across ``jobs`` worker processes;
    ``fn`` and each cell must be picklable (module-level function, frozen
    dataclass cells).  Results always come back in cell order, so callers
    can merge by concatenation.
    """
    cells = list(cells)
    if jobs is None or jobs <= 1 or len(cells) <= 1:
        return [fn(c) for c in cells]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, cells, chunksize=chunksize))


# --------------------------------------------------------------------- #
# Chaos-matrix sharding
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ChaosCell:
    """One chaos-matrix cell, fully described by picklable primitives.

    The graph and protocol are carried as *construction parameters*
    (``make_cases`` arguments plus the protocol name), not as objects:
    process factories close over precomputed structures and cannot cross a
    process boundary.  Workers rebuild — and memoize — the suite locally.
    """

    n: int
    extra_edges: int
    graph_seed: int
    protocol: str
    drop: float
    reliable: bool
    fault_seed: int


def chaos_cells(
    *,
    n: int = 14,
    extra_edges: int = 20,
    graph_seed: int = 2,
    drop_rates: Sequence[float] = (0.0, 0.05, 0.2),
    fault_seed: int = 7,
    include_raw: bool = True,
    protocols: Optional[Sequence[str]] = None,
) -> list[ChaosCell]:
    """The cell list of a chaos sweep, in serial-matrix row order."""
    if protocols is None:
        from .chaos import make_cases

        protocols = [c.name for c in make_cases(n, extra_edges, graph_seed)]
    cells = []
    for name in protocols:
        for rate in drop_rates:
            modes = [True] + ([False] if include_raw and rate > 0 else [])
            for reliable in modes:
                cells.append(ChaosCell(n, extra_edges, graph_seed, name,
                                       rate, reliable, fault_seed))
    return cells


@lru_cache(maxsize=8)
def _cases_by_name(n: int, extra_edges: int, graph_seed: int) -> dict:
    """Per-process memo of the case suite for one benchmark graph."""
    from .chaos import make_cases

    return {c.name: c for c in make_cases(n, extra_edges, graph_seed)}


@lru_cache(maxsize=64)
def _reference(n: int, extra_edges: int, graph_seed: int, protocol: str):
    """Per-process memo of one protocol's fault-free reference run."""
    from ..faults import run_chaos

    case = _cases_by_name(n, extra_edges, graph_seed)[protocol]
    reference = run_chaos(case.graph, case.factory, plan=None,
                          reliable=False, answer=case.answer)
    if reference.status != "ok":  # pragma: no cover - suite invariant
        raise RuntimeError(
            f"fault-free reference run failed for {protocol}: "
            f"{reference.status}"
        )
    return reference


def _summarize(protocol: str, drop: float, reliable: bool,
               outcome, ff_cost: float) -> dict:
    """Flatten one outcome to primitives (identical serial vs. parallel)."""
    result = outcome.result
    answer_digest = hashlib.sha256(
        repr(outcome.answer).encode()
    ).hexdigest()[:16] if outcome.answer is not None else None
    return {
        "protocol": protocol,
        "drop": drop,
        "reliable": reliable,
        "status": outcome.status,
        "comm_cost": result.comm_cost if result else None,
        "time": result.time if result else None,
        "messages": result.message_count if result else None,
        "retry_count": outcome.retry_count,
        "retry_cost": outcome.retry_cost,
        "ack_cost": outcome.ack_cost,
        "ff_cost": ff_cost,
        "overhead_ratio": outcome.retry_cost / ff_cost if ff_cost else 0.0,
        "answer_digest": answer_digest,
    }


def run_chaos_cell(cell: ChaosCell) -> dict:
    """Execute one chaos cell and return its flat summary row.

    Module-level and closed over nothing, so it shards cleanly across a
    process pool; the expensive shared state (case suite, fault-free
    reference) is rebuilt once per worker process via the ``lru_cache``
    memos above.
    """
    from ..faults import FaultPlan, run_chaos

    case = _cases_by_name(cell.n, cell.extra_edges, cell.graph_seed)[cell.protocol]
    reference = _reference(cell.n, cell.extra_edges, cell.graph_seed,
                           cell.protocol)
    ff_cost = reference.result.comm_cost
    watchdog = 500.0 * max(reference.result.time, 1.0) + 1000.0
    plan = (FaultPlan.message_loss(cell.drop, seed=cell.fault_seed)
            if cell.drop > 0 else None)
    outcome = run_chaos(
        case.graph, case.factory, plan=plan, reliable=cell.reliable,
        watchdog_time=watchdog, answer=case.answer, expect=reference.answer,
    )
    return _summarize(cell.protocol, cell.drop, cell.reliable, outcome,
                      ff_cost)


def summarize_chaos_entry(entry: dict) -> dict:
    """Flatten one :func:`~repro.experiments.chaos.chaos_matrix` row to the
    same summary shape :func:`run_chaos_cell` emits (for serial-vs-parallel
    equality checks)."""
    return _summarize(entry["protocol"], entry["drop"], entry["reliable"],
                      entry["outcome"], entry["ff_cost"])


def chaos_rows(
    *,
    jobs: Optional[int] = None,
    n: int = 14,
    extra_edges: int = 20,
    graph_seed: int = 2,
    drop_rates: Sequence[float] = (0.0, 0.05, 0.2),
    fault_seed: int = 7,
    include_raw: bool = True,
) -> list[dict]:
    """The chaos matrix as flat summary rows, optionally sharded.

    Serial (``jobs<=1``) and parallel runs return byte-identical lists:
    the same cells, executed by the same worker function, merged in the
    same order.
    """
    cells = chaos_cells(n=n, extra_edges=extra_edges, graph_seed=graph_seed,
                        drop_rates=drop_rates, fault_seed=fault_seed,
                        include_raw=include_raw)
    return run_parallel(run_chaos_cell, cells, jobs=jobs)


# --------------------------------------------------------------------- #
# Whole-experiment sharding (the CLI's --jobs)
# --------------------------------------------------------------------- #


def run_experiment_by_key(key: str) -> tuple[str, str, float, list]:
    """Run one registered experiment; return ``(key, desc, secs, tables)``.

    The coarse sharding unit for ``python -m repro.experiments --jobs N``:
    whole experiments are independent, and their :class:`Table` outputs
    contain only primitives, so they pickle cleanly back to the parent.
    """
    from .base import all_experiments

    desc, fn = all_experiments()[key]
    start = time.perf_counter()
    tables = fn()
    return key, desc, time.perf_counter() - start, tables
