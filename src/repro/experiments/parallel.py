"""Multiprocessing sweep engine: shard experiment cells across workers.

Experiment sweeps are embarrassingly parallel — every *cell* (one
(graph, seed, protocol) combination) is an independent simulation — but the
serial runners execute them one at a time.  This module provides the
machinery to shard cells across a process pool while keeping the two
properties the test-suite pins down:

**Determinism.**  A cell's outcome depends only on the cell description,
never on which worker ran it or in what order: cell descriptions are
immutable, carry every seed explicitly, and :func:`cell_seed` derives
per-cell seeds by hashing the cell key with SHA-256 (stable across
processes and interpreter runs, unlike ``hash()`` under hash
randomization).  ``run_parallel`` returns results in cell order
regardless of completion order, so a parallel sweep merges to exactly the
serial table.

**Picklability.**  Full :class:`~repro.faults.runner.ChaosOutcome` objects
hold live process graphs (closures, bound methods) and cannot cross a
process boundary, so workers return flat summary rows
(:func:`summarize_chaos_entry`) containing only primitives.  The serial
path (``jobs=None``/``1``) runs the same worker in-process, so serial and
parallel sweeps produce byte-identical row lists.

**Amortization.**  Three layers keep per-cell overhead flat:

* the worker pool is *persistent*: the first parallel call creates it and
  later calls with the same ``(jobs, warm)`` shape reuse it, so pool
  spin-up (fork + interpreter init per worker) is paid once per sweep
  session instead of once per call (``shutdown_pool`` disposes it; an
  ``atexit`` hook does so at interpreter exit);
* each worker runs :func:`_worker_init` on startup, pre-building the case
  suite and fault-free reference runs for every *warm spec* — one
  ``(n, extra_edges, graph_seed, protocols)`` tuple per graph shape in
  the sweep — so no cell ever pays graph/SLT construction inside its own
  timing; anything not pre-warmed is still memoized on first use by the
  ``lru_cache`` memos (:func:`_cases_by_name`, :func:`_reference`);
* :func:`parallel_plan` picks the execution mode: serial when the pool
  cannot pay for itself (``jobs <= 1``, a single cell, fewer than two
  usable CPUs, or too few cells per worker), otherwise a chunksize sized
  for ~4 dispatch waves per worker — big enough to amortize pickling,
  small enough to keep workers balanced on skewed cell costs.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import lru_cache
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING, Any, TypeVar

if TYPE_CHECKING:
    from ..graphs.shm import SnapshotHandle

__all__ = [
    "cell_seed",
    "parallel_plan",
    "run_parallel",
    "register_case_provider",
    "shutdown_pool",
    "ChaosCell",
    "chaos_cells",
    "run_chaos_cell",
    "chaos_rows",
    "summarize_chaos_entry",
    "run_experiment_by_key",
    "SnapshotCell",
    "snapshot_cells",
    "run_snapshot_cell",
    "snapshot_rows",
    "pool_shm_stats",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def cell_seed(master_seed: int, *key: Any) -> int:
    """A deterministic 63-bit seed for the sweep cell identified by ``key``.

    Derived by hashing ``(master_seed, *key)`` with SHA-256, so it is
    stable across processes, platforms, and ``PYTHONHASHSEED`` values —
    the properties Python's built-in ``hash()`` lacks.  Distinct cells get
    (overwhelmingly likely) distinct, uncorrelated seeds, which is what a
    sweep needs to vary randomness *between* cells while keeping every
    cell individually reproducible.
    """
    digest = hashlib.sha256(repr((master_seed,) + key).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# Target number of map dispatch waves per worker when auto-chunking.
_CHUNK_WAVES = 4

# A pool only pays for itself when every worker gets at least this many
# cells; below that, fork + pickle overhead beats the parallel win.
_MIN_CELLS_PER_WORKER = 2

# The one live pool, keyed by the (jobs, warm, kernel backend) shape
# that built it.
_pool: ProcessPoolExecutor | None = None
_pool_key: tuple | None = None
_atexit_registered = False


def parallel_plan(
    n_cells: int,
    jobs: int | None,
    *,
    cpu_count: int | None = None,
) -> tuple[str, int]:
    """Decide how to run ``n_cells``: ``("serial", 1)`` or ``("pool", chunksize)``.

    Pure and deterministic given its inputs (``cpu_count`` defaults to
    ``os.cpu_count()``), so the fallback policy is unit-testable without
    spawning processes.  Serial is chosen whenever the pool cannot pay for
    its spin-up: ``jobs`` unset or <= 1, a single cell, fewer than two
    usable CPUs, or fewer than ``_MIN_CELLS_PER_WORKER`` cells per worker.
    Otherwise the chunksize targets ~``_CHUNK_WAVES`` dispatch waves per
    worker.
    """
    if jobs is None or jobs <= 1 or n_cells <= 1:
        return ("serial", 1)
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if cpus < 2:
        return ("serial", 1)
    if n_cells < _MIN_CELLS_PER_WORKER * jobs:
        return ("serial", 1)
    return ("pool", max(1, n_cells // (jobs * _CHUNK_WAVES)))


def _worker_init(
    warm: tuple = (),
    kernel_backend: str | None = None,
    snapshots: tuple = (),
) -> None:
    """Per-worker initializer: pre-build shared state for each warm spec.

    Runs once in every pool process before it receives cells.  Each spec
    is ``(n, extra_edges, graph_seed, protocols)`` — ``protocols=None``
    warms every case of that graph shape.  Filling :func:`_cases_by_name`
    and :func:`_reference` here moves graph construction, SLT building,
    and the fault-free reference runs out of the first cell each worker
    executes (they are by far the dominant per-cell setup cost).

    ``kernel_backend`` pins the graph-kernel backend the parent resolved
    (see :func:`repro.graphs.npkernels.kernel_backend`) so every worker
    computes graph parameters through the same kernels as a serial run —
    one leg of the serial == pool byte-identity contract.  (The kernels
    are value-identical anyway; pinning makes the guarantee structural
    rather than incidental.)
    """
    if kernel_backend is not None:
        from ..graphs.npkernels import set_kernel_backend

        set_kernel_backend(kernel_backend)
    if snapshots:
        # Attach every published graph snapshot once, up front: cells
        # then resolve their handles from the process-local cache
        # (zero-copy views of the shared segment), never rebuilding.
        # Attachment failures are deliberately swallowed here — attach()
        # falls back to a spec rebuild at cell time, and a snapshot that
        # is truly unreachable should fail the *cell*, not kill the
        # worker before it ever ran one.
        from ..graphs import shm

        for handle in snapshots:
            try:
                shm.attach(handle)
            except Exception:
                pass
    for n, extra_edges, graph_seed, protocols in warm:
        cases = _cases_by_name(n, extra_edges, graph_seed)
        names = protocols if protocols is not None else tuple(cases)
        for name in names:
            _reference(n, extra_edges, graph_seed, name)


def shutdown_pool() -> None:
    """Dispose the persistent worker pool (no-op when none is live).

    Tests use this to force a fresh pool (e.g. to observe the warm
    initializer); an ``atexit`` hook calls it so interpreter shutdown
    never hangs on live workers.
    """
    _dispose_pool()
    # Workers are gone, so nothing maps the published graph segments any
    # more: unlink them all.  Guarded on the module being imported — a
    # process that never published has nothing to clean, and this also
    # runs from atexit where fresh imports are unwelcome.  (Internal pool
    # *rebuilds* use _dispose_pool directly: a key change must not unlink
    # segments the next sweep just published.)
    shm = sys.modules.get("repro.graphs.shm")
    if shm is not None:
        shm.unlink_all()


def _dispose_pool() -> None:
    global _pool, _pool_key
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_key = None


def _get_pool(jobs: int, warm: tuple, snapshots: tuple = ()) -> ProcessPoolExecutor:
    """The persistent pool for ``(jobs, warm, backend, snapshots)``.

    Snapshot handles join the pool key so a sweep over different (or
    re-published) graphs gets fresh workers that attach the right
    segments in their initializer; handles are frozen dataclasses of
    primitives, so the key stays hashable and comparison is by value.
    """
    global _pool, _pool_key, _atexit_registered
    from ..graphs.npkernels import kernel_backend

    backend = kernel_backend()
    key = (jobs, warm, backend, snapshots)
    if _pool is not None and _pool_key != key:
        _dispose_pool()
    if _pool is None:
        _pool = ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(warm, backend, snapshots),
        )
        _pool_key = key
        if not _atexit_registered:
            atexit.register(shutdown_pool)
            _atexit_registered = True
    return _pool


def _run_cell_batch(item: tuple) -> list:
    """Execute one batched dispatch group ``(fn, cells)`` in a worker."""
    fn, group = item
    return [fn(c) for c in group]


def run_parallel(
    fn: Callable[[_T], _R],
    cells: Iterable[_T],
    *,
    jobs: int | None = None,
    chunksize: int | None = None,
    warm: tuple = (),
    force: str | None = None,
    snapshots: tuple = (),
    batch: int | None = None,
) -> list[_R]:
    """Map ``fn`` over ``cells``, sharding across the persistent pool.

    ``jobs=None``/``0``/``1`` runs serially in-process (no pool, no
    pickling) — the reference path the parallel one must match.  With
    ``jobs > 1`` the :func:`parallel_plan` policy decides whether a pool
    can pay for itself; when it can, cells are sharded across the
    persistent ``jobs``-worker pool (created on first use, reused across
    calls, workers pre-warmed per ``warm`` spec).  ``fn`` and each cell
    must then be picklable (module-level function, frozen dataclass
    cells).  Results always come back in cell order, so callers can merge
    by concatenation.

    ``chunksize=None`` uses the plan's adaptive chunksize.  ``force``
    overrides the plan: ``"serial"`` never touches a pool, ``"pool"``
    shards even when the plan would fall back (benchmarks and tests use
    it to exercise the real pool path regardless of host CPU count).  If
    the pool's workers die mid-map (``BrokenProcessPool``), the pool is
    disposed and the whole map re-runs serially — cells are pure
    functions of their description, so a re-run is byte-identical.

    ``snapshots`` is a tuple of published :class:`SnapshotHandle`\\ s the
    workers attach once in their initializer (and part of the pool key —
    see :func:`_get_pool`).  ``batch`` groups that many cells per task so
    huge sweeps of cheap cells pay one pickle round-trip per *group*
    instead of per cell; results are flattened back to cell order, so
    batching is invisible in the output (serial runs ignore it).
    """
    cells = list(cells)
    if force not in (None, "serial", "pool"):
        raise ValueError(f"force must be None, 'serial', or 'pool': {force!r}")
    if force == "pool":
        workers = jobs if jobs and jobs > 1 else 2
        mode, auto_chunk = "pool", max(1, len(cells) // (workers * _CHUNK_WAVES))
    else:
        workers = jobs or 0
        mode, auto_chunk = parallel_plan(len(cells), jobs)
    if force == "serial" or mode == "serial":
        return [fn(c) for c in cells]
    pool = _get_pool(workers, tuple(warm), tuple(snapshots))
    try:
        if batch is not None and batch > 1 and len(cells) > batch:
            groups = [
                (fn, tuple(cells[i:i + batch]))
                for i in range(0, len(cells), batch)
            ]
            gchunk = chunksize or max(1, len(groups) // (workers * _CHUNK_WAVES))
            nested = pool.map(_run_cell_batch, groups, chunksize=gchunk)
            return [row for group_rows in nested for row in group_rows]
        return list(pool.map(fn, cells, chunksize=chunksize or auto_chunk))
    except BrokenProcessPool:
        shutdown_pool()
        return [fn(c) for c in cells]


# --------------------------------------------------------------------- #
# Chaos-matrix sharding
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ChaosCell:
    """One chaos-matrix cell, fully described by picklable primitives.

    The graph and protocol are carried as *construction parameters*
    (``make_cases`` arguments plus the protocol name), not as objects:
    process factories close over precomputed structures and cannot cross a
    process boundary.  Workers rebuild — and memoize — the suite locally.
    """

    n: int
    extra_edges: int
    graph_seed: int
    protocol: str
    drop: float
    reliable: bool
    fault_seed: int
    # Attach a trace recorder to the run and ship its aggregate-only
    # summary back in the row (defaulted so untraced sweeps keep their
    # exact historical row shape and byte-identity).
    trace: bool = False
    # Run under the shared-state race detector (repro.analysis.race); a
    # violation surfaces as status "error" in the row.  Defaulted off so
    # existing sweeps keep byte-identity and zero overhead.
    race_detect: bool = False


def chaos_cells(
    *,
    n: int = 14,
    extra_edges: int = 20,
    graph_seed: int = 2,
    drop_rates: Sequence[float] = (0.0, 0.05, 0.2),
    fault_seed: int = 7,
    include_raw: bool = True,
    protocols: Sequence[str] | None = None,
    trace: bool = False,
    race_detect: bool = False,
) -> list[ChaosCell]:
    """The cell list of a chaos sweep, in serial-matrix row order."""
    if protocols is None:
        from .chaos import make_cases

        protocols = [c.name for c in make_cases(n, extra_edges, graph_seed)]
    cells = []
    for name in protocols:
        for rate in drop_rates:
            modes = [True] + ([False] if include_raw and rate > 0 else [])
            for reliable in modes:
                cells.append(ChaosCell(n, extra_edges, graph_seed, name,
                                       rate, reliable, fault_seed, trace,
                                       race_detect))
    return cells


# Extra chaos-case builders beyond the core suite, registered by other
# subsystems (repro.replay adds a gamma_w-hosted case).  Each provider is
# called as provider(n, extra_edges, graph_seed) -> iterable of ChaosCase.
_case_providers: list[Callable[[int, int, int], Iterable]] = []


def register_case_provider(provider: Callable[[int, int, int], Iterable]) -> None:
    """Register an additional chaos-case builder (idempotent).

    Providers extend the suite :func:`run_chaos_cell` can address by
    protocol name.  Registration clears the per-process case/reference
    memos: a pool worker may import the registering module (via the first
    cell it unpickles) *after* its warm initializer already populated the
    memos for the same graph shape.
    """
    if provider not in _case_providers:
        _case_providers.append(provider)
        _cases_by_name.cache_clear()
        _reference.cache_clear()


@lru_cache(maxsize=8)
def _cases_by_name(n: int, extra_edges: int, graph_seed: int) -> dict:
    """Per-process memo of the case suite for one benchmark graph."""
    from .chaos import make_cases

    cases = {c.name: c for c in make_cases(n, extra_edges, graph_seed)}
    for provider in _case_providers:
        for case in provider(n, extra_edges, graph_seed):
            cases[case.name] = case
    return cases


@lru_cache(maxsize=64)
def _reference(n: int, extra_edges: int, graph_seed: int, protocol: str):
    """Per-process memo of one protocol's fault-free reference run."""
    from ..faults import run_chaos

    case = _cases_by_name(n, extra_edges, graph_seed)[protocol]
    reference = run_chaos(case.graph, case.factory, plan=None,
                          reliable=False, answer=case.answer)
    if reference.status != "ok":  # pragma: no cover - suite invariant
        raise RuntimeError(
            f"fault-free reference run failed for {protocol}: "
            f"{reference.status}"
        )
    return reference


def _summarize(protocol: str, drop: float, reliable: bool,
               outcome, ff_cost: float) -> dict:
    """Flatten one outcome to primitives (identical serial vs. parallel)."""
    result = outcome.result
    answer_digest = hashlib.sha256(
        repr(outcome.answer).encode()
    ).hexdigest()[:16] if outcome.answer is not None else None
    return {
        "protocol": protocol,
        "drop": drop,
        "reliable": reliable,
        "status": outcome.status,
        "comm_cost": result.comm_cost if result else None,
        "time": result.time if result else None,
        "messages": result.message_count if result else None,
        "retry_count": outcome.retry_count,
        "retry_cost": outcome.retry_cost,
        "ack_cost": outcome.ack_cost,
        "ff_cost": ff_cost,
        "overhead_ratio": outcome.retry_cost / ff_cost if ff_cost else 0.0,
        "answer_digest": answer_digest,
    }


def run_chaos_cell(cell: ChaosCell) -> dict:
    """Execute one chaos cell and return its flat summary row.

    Module-level and closed over nothing, so it shards cleanly across a
    process pool; the expensive shared state (case suite, fault-free
    reference) is rebuilt once per worker process via the ``lru_cache``
    memos above.
    """
    from ..faults import FaultPlan, run_chaos

    case = _cases_by_name(cell.n, cell.extra_edges, cell.graph_seed)[cell.protocol]
    reference = _reference(cell.n, cell.extra_edges, cell.graph_seed,
                           cell.protocol)
    ff_cost = reference.result.comm_cost
    watchdog = 500.0 * max(reference.result.time, 1.0) + 1000.0
    plan = (FaultPlan.message_loss(cell.drop, seed=cell.fault_seed)
            if cell.drop > 0 else None)
    recorder = None
    if cell.trace:
        # Aggregate-only recorder (limit=0): the per-span breakdown ships
        # back as plain primitives without hauling event logs over IPC.
        from ..obs import TraceRecorder

        recorder = TraceRecorder(limit=0)
    outcome = run_chaos(
        case.graph, case.factory, plan=plan, reliable=cell.reliable,
        watchdog_time=watchdog, answer=case.answer, expect=reference.answer,
        recorder=recorder, race_detect=cell.race_detect,
    )
    row = _summarize(cell.protocol, cell.drop, cell.reliable, outcome,
                     ff_cost)
    if cell.trace and outcome.trace is not None:
        # Added only when tracing, so untraced rows keep their exact
        # historical shape (serial == pool byte-identity tests).
        row["trace"] = outcome.trace.as_dict()
    return row


def summarize_chaos_entry(entry: dict) -> dict:
    """Flatten one :func:`~repro.experiments.chaos.chaos_matrix` row to the
    same summary shape :func:`run_chaos_cell` emits (for serial-vs-parallel
    equality checks)."""
    return _summarize(entry["protocol"], entry["drop"], entry["reliable"],
                      entry["outcome"], entry["ff_cost"])


def chaos_rows(
    *,
    jobs: int | None = None,
    n: int = 14,
    extra_edges: int = 20,
    graph_seed: int = 2,
    drop_rates: Sequence[float] = (0.0, 0.05, 0.2),
    fault_seed: int = 7,
    include_raw: bool = True,
    force: str | None = None,
    trace: bool = False,
    race_detect: bool = False,
) -> list[dict]:
    """The chaos matrix as flat summary rows, optionally sharded.

    Serial (``jobs<=1``) and parallel runs return byte-identical lists:
    the same cells, executed by the same worker function, merged in the
    same order.  Pool workers are pre-warmed with this sweep's graph
    shape, so no cell pays suite/reference construction; ``force``
    passes through to :func:`run_parallel`.  ``trace=True`` adds a
    ``"trace"`` per-span summary dict to every row (identical serial vs.
    pool — the recorder travels inside the cell, not via ambient state).
    ``race_detect=True`` runs every cell under the shared-state race
    detector; clean protocols produce identical rows either way.
    """
    cells = chaos_cells(n=n, extra_edges=extra_edges, graph_seed=graph_seed,
                        drop_rates=drop_rates, fault_seed=fault_seed,
                        include_raw=include_raw, trace=trace,
                        race_detect=race_detect)
    warm = ((n, extra_edges, graph_seed, None),)
    return run_parallel(run_chaos_cell, cells, jobs=jobs, warm=warm,
                        force=force)


# --------------------------------------------------------------------- #
# Snapshot sweeps: zero-copy cells over a published shared-memory graph
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SnapshotCell:
    """One cell of a sweep over a published graph snapshot.

    Carries the :class:`~repro.graphs.shm.SnapshotHandle` itself —
    handles are frozen dataclasses of primitives, so the cell pickles in
    O(1) regardless of graph size; the worker resolves it against its
    process-local attachment cache (populated by :func:`_worker_init`),
    so no cell ever copies or rebuilds graph buffers.

    ``kind`` selects the kernel: ``"stripe"`` computes O(deg) local
    adjacency stats for vertices ``lo..hi-1`` (pure snapshot-read cells —
    the acceptance sweep's shape), ``"sources"`` runs per-source SSSP
    aggregates for sources ``lo..hi-1``.  ``kernel`` pins the backend for
    ``"sources"`` cells (``"python"`` or ``"numpy"``); it is resolved at
    *cell-creation* time so serial and pooled executions of the same cell
    list are structurally guaranteed to run the same kernel.
    """

    handle: SnapshotHandle
    kind: str
    lo: int
    hi: int
    kernel: str


def snapshot_cells(
    handle: SnapshotHandle,
    *,
    kind: str = "sources",
    limit: int | None = None,
    cell_size: int = 1,
    kernel: str | None = None,
) -> list[SnapshotCell]:
    """The cell list of a snapshot sweep, in vertex/source order.

    ``limit`` caps how many vertices (``"stripe"``) or sources
    (``"sources"``) the sweep covers — big-tier runs sample a prefix
    rather than all ``n``.  ``cell_size`` vertices/sources go into each
    cell.  ``kernel=None`` resolves the ambient backend once, here, so
    the cells carry it explicitly (see :class:`SnapshotCell`).
    """
    if kind not in ("stripe", "sources"):
        raise ValueError(f"kind must be 'stripe' or 'sources': {kind!r}")
    if cell_size < 1:
        raise ValueError(f"cell_size must be >= 1: {cell_size}")
    if kernel is None:
        from ..graphs.npkernels import kernel_backend

        kernel = kernel_backend()
    count = handle.n if limit is None else min(limit, handle.n)
    return [
        SnapshotCell(handle, kind, lo, min(lo + cell_size, count), kernel)
        for lo in range(0, count, cell_size)
    ]


def run_snapshot_cell(cell: SnapshotCell) -> dict:
    """Execute one snapshot cell against the attached shared segment.

    :func:`~repro.graphs.shm.attach` resolves the handle zero-copy from
    the worker's attachment cache (or the segment itself on a cold
    process; or a spec rebuild when shared memory is unavailable — the
    graceful-degradation path).  Dispatches on the cell's pinned kind and
    kernel; both kernels return the same row shape with a byte-identity
    digest, so serial == pool comparisons are plain ``==`` on row lists.
    """
    from ..graphs import shm
    from ..graphs.csr import flat_source_stats, flat_stripe_stats
    from ..graphs.npkernels import np_flat_source_stats, numpy_available

    flat = shm.attach(cell.handle)
    if cell.kind == "stripe":
        return flat_stripe_stats(flat, cell.lo, cell.hi)
    if cell.kernel == "numpy" and numpy_available():
        return np_flat_source_stats(flat, cell.lo, cell.hi)
    return flat_source_stats(flat, cell.lo, cell.hi)


def snapshot_rows(
    handle: SnapshotHandle,
    *,
    jobs: int | None = None,
    kind: str = "sources",
    limit: int | None = None,
    cell_size: int = 1,
    kernel: str | None = None,
    force: str | None = None,
    batch: int | None = None,
    chunksize: int | None = None,
) -> list[dict]:
    """Sweep a published snapshot, optionally sharded; rows in cell order.

    The handle joins the pool key via ``snapshots=(handle,)``, so workers
    attach the segment once in their initializer and every cell runs
    zero-copy against it — exactly one graph build per sweep, which
    :func:`pool_shm_stats` lets callers assert.  Serial (``jobs<=1`` or
    ``force="serial"``) runs the same cells in-process against the same
    published flat, so serial and pool row lists are byte-identical.
    """
    cells = snapshot_cells(handle, kind=kind, limit=limit,
                           cell_size=cell_size, kernel=kernel)
    return run_parallel(run_snapshot_cell, cells, jobs=jobs, force=force,
                        snapshots=(handle,), batch=batch,
                        chunksize=chunksize)


def _probe_shm_stats(_cell: int) -> dict:
    """Worker-side probe: this process's shm counters, keyed by pid."""
    from ..graphs import shm

    return {"pid": os.getpid(), **shm.stats()}


def pool_shm_stats(
    jobs: int | None = None,
    *,
    warm: tuple = (),
    snapshots: tuple = (),
) -> list[dict]:
    """Per-worker shared-memory counters from the live pool, one dict per pid.

    Dispatches a wave of probe cells with ``chunksize=1`` so every worker
    (very likely) answers at least once, then dedups by pid.  ``warm`` and
    ``snapshots`` must match the sweep that built the pool — they are part
    of the pool key, and a mismatch would silently rebuild the pool and
    probe fresh workers instead.  This is how the acceptance criterion
    "one graph build per sweep" is *measured*: after an shm-backed sweep,
    every worker reports ``shm_creates == 0`` (only the parent creates)
    and the rebuild counter stays zero.
    """
    workers = jobs if jobs and jobs > 1 else 2
    rows = run_parallel(_probe_shm_stats, list(range(workers * 4)),
                        jobs=workers, warm=warm, snapshots=snapshots,
                        force="pool", chunksize=1)
    by_pid: dict[int, dict] = {}
    for row in rows:
        by_pid.setdefault(row["pid"], row)
    return [by_pid[pid] for pid in sorted(by_pid)]


# --------------------------------------------------------------------- #
# Whole-experiment sharding (the CLI's --jobs)
# --------------------------------------------------------------------- #


def run_experiment_by_key(key: str) -> tuple[str, str, float, list]:
    """Run one registered experiment; return ``(key, desc, secs, tables)``.

    The coarse sharding unit for ``python -m repro.experiments --jobs N``:
    whole experiments are independent, and their :class:`Table` outputs
    contain only primitives, so they pickle cleanly back to the parent.
    """
    from .base import all_experiments

    desc, fn = all_experiments()[key]
    start = time.perf_counter()  # repro: allow RS003 -- harness wall-time, not simulation state
    tables = fn()
    elapsed = time.perf_counter() - start  # repro: allow RS003 -- harness wall-time
    return key, desc, elapsed, tables
