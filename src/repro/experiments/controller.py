"""Experiment T-CTL — Section 5: controller overhead and runaway capping."""

from __future__ import annotations

import math

from ..control import run_controlled
from ..graphs import path_graph
from ..sim import Process
from .base import Table, experiment

__all__ = ["run", "ChunkStream", "overhead_sweep", "runaway_sweep"]


class ChunkStream(Process):
    """Diffusing protocol: flood a wake-up, then stream chunks to parents."""

    def __init__(self, start_it, chunks):
        self.start_it = start_it
        self.chunks = chunks
        self._joined = start_it

    def on_start(self):
        if self.start_it:
            for v in self.neighbors():
                self.send(v, ("wake",), tag="wake")

    def on_message(self, frm, payload):
        kind = payload[0]
        if kind == "wake":
            if self._joined:
                return  # re-flooded wake-up: already part of the wave
            self._joined = True
            for v in self.neighbors():
                if v != frm:
                    self.send(v, ("wake",), tag="wake")
            for i in range(self.chunks):
                self.send(frm, ("chunk", i), tag="chunk")
        elif kind == "chunk":
            pass  # chunks terminate at the node that woke us
        else:
            raise AssertionError(f"unknown ChunkStream message {kind!r}")


class Storm(Process):
    """A runaway diffusing protocol (re-floods every message forever)."""

    def on_start(self):
        if getattr(self, "start_it", False):
            for v in self.neighbors():
                self.send(v, 0, tag="storm")

    def on_message(self, frm, k):
        for v in self.neighbors():
            self.send(v, k + 1, tag="storm")


def overhead_sweep(cases=((10, 8), (20, 16), (30, 32), (40, 64))):
    rows = []
    for n, chunks in cases:
        g = path_graph(n, weight=2.0)
        c_pi = 2.0 * (2 * g.num_edges + chunks * (g.num_vertices - 1))

        def factory(v, chunks=chunks):
            return ChunkStream(v == 0, chunks)

        naive = run_controlled(g, factory, 0, c_pi, mode="naive")
        aggr = run_controlled(g, factory, 0, c_pi, mode="aggregated")
        assert not naive.halted and not aggr.halted
        bound = c_pi * math.log2(max(4.0, c_pi)) ** 2
        rows.append([
            n, chunks, c_pi,
            naive.control_cost, aggr.control_cost,
            aggr.control_cost / bound,
            naive.control_cost / max(1.0, aggr.control_cost),
        ])
    return rows


def runaway_sweep(thresholds=(100.0, 400.0, 1600.0)):
    g = path_graph(12, weight=3.0)
    rows = []
    for threshold in thresholds:
        def factory(v):
            p = Storm()
            p.start_it = v == 0
            return p

        out = run_controlled(g, factory, 0, threshold, max_events=2_000_000)
        assert out.halted
        rows.append([threshold, out.consumed, out.consumed / threshold])
    return rows


@experiment("controller", "Section 5: controller O(c log^2 c) + 2x capping")
def run() -> list[Table]:
    return [
        Table(
            title="Controller overhead (correct executions, threshold = c_pi)",
            header=["n", "chunks", "c_pi", "naive ctl cost", "aggr ctl cost",
                    "aggr / (c log^2 c)", "naive/aggr"],
            rows=overhead_sweep(),
            notes="Cor 5.1: the aggregated controller stays inside "
                  "O(c log^2 c); the naive one pays O(c * depth)",
        ),
        Table(
            title="Runaway protocols halted (consumption <= 2 x threshold)",
            header=["threshold", "consumed", "consumed/threshold"],
            rows=runaway_sweep(),
        ),
    ]
