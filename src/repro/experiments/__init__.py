"""Programmatic reproduction of every table and figure in the paper.

Each experiment module regenerates one artifact of the paper's evaluation
and returns :class:`~repro.experiments.base.Table` objects:

>>> from repro.experiments import all_experiments
>>> desc, runner = all_experiments()["fig1"]
>>> tables = runner()        # measured rows + bound ratios

Render the full report from the command line:

    python -m repro.experiments              # plain text, all experiments
    python -m repro.experiments fig3 clock   # a subset
    python -m repro.experiments --markdown   # markdown (for EXPERIMENTS.md)
"""

from .base import Table, all_experiments, experiment, render_markdown, render_text
from .parallel import (
    ChaosCell,
    SnapshotCell,
    cell_seed,
    chaos_cells,
    chaos_rows,
    pool_shm_stats,
    register_case_provider,
    run_chaos_cell,
    run_parallel,
    run_snapshot_cell,
    shutdown_pool,
    snapshot_cells,
    snapshot_rows,
    summarize_chaos_entry,
)

__all__ = [
    "Table",
    "experiment",
    "all_experiments",
    "render_text",
    "render_markdown",
    # parallel sweep engine
    "run_parallel",
    "cell_seed",
    "ChaosCell",
    "chaos_cells",
    "run_chaos_cell",
    "chaos_rows",
    "summarize_chaos_entry",
    "register_case_provider",
    "shutdown_pool",
    # snapshot sweeps (zero-copy shared-memory graphs)
    "SnapshotCell",
    "snapshot_cells",
    "run_snapshot_cell",
    "snapshot_rows",
    "pool_shm_stats",
]
