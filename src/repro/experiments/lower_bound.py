"""Experiment F7/F8 — the Omega(min{E, nV}) lower bound (Section 7.1).

Two sides: the ``Omega(nV)`` id-transport bound on the G_n family
(Lemmas 7.1/7.2) and the ``Omega(E)`` bound of [AGPV89] for unity
weights (every edge must carry a message for the algorithm to be correct
on all id assignments).
"""

from __future__ import annotations

from ..core.lower_bounds import id_transport_cost
from ..graphs import lower_bound_graph, network_params, random_connected_graph
from ..protocols import run_con_hybrid
from .base import Table, experiment

__all__ = ["run", "gn_sweep", "unity_sweep"]

NS = (8, 12, 16, 24, 32)


def gn_sweep(ns=NS):
    """Rows: (n, E, nV, lower bound, measured hybrid cost, ratio, winner)."""
    rows = []
    for n in ns:
        g = lower_bound_graph(n)
        p = network_params(g)
        lb = id_transport_cost(n)
        outcome = run_con_hybrid(g, 1)
        assert outcome.output.is_tree()
        rows.append([
            n, p.E, p.n * p.V, lb,
            outcome.total_comm_cost,
            outcome.total_comm_cost / lb,
            outcome.winner,
        ])
    return rows


def unity_sweep(sizes=((20, 60), (40, 160), (80, 400))):
    """The Omega(E) side ([AGPV89]): unity weights, E << nV.

    Rows: (n, m, E = m, measured hybrid cost, cost / E, winner).
    """
    rows = []
    for n, extra in sizes:
        g = random_connected_graph(n, extra, seed=n, max_weight=1)
        p = network_params(g)
        outcome = run_con_hybrid(g, 0)
        assert outcome.output.is_tree()
        rows.append([
            p.n, p.m, p.E, outcome.total_comm_cost,
            outcome.total_comm_cost / p.E, outcome.winner,
        ])
    return rows


@experiment("fig7", "Figures 7/8: the Omega(min{E, nV}) lower bound")
def run() -> list[Table]:
    return [
        Table(
            title="Figure 7: connectivity on G_n (X = n+1; bypass edges X^4)",
            header=["n", "E", "nV", "Omega(n^2 X/4)", "measured", "ratio",
                    "winner"],
            rows=gn_sweep(),
            notes="Lemma 7.2's id-transport sum vs the best correct "
                  "algorithm; a flat ratio means the bounds meet at "
                  "Theta(n^2 X)",
        ),
        Table(
            title="[AGPV89] side: unity weights (E << nV)",
            header=["n", "m", "E", "measured", "measured/E", "winner"],
            rows=unity_sweep(),
            notes="with unity weights the best algorithm pays Theta(E): "
                  "the ratio to E stays O(1) as m scales",
        ),
    ]
