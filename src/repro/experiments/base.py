"""Experiment infrastructure: tables, registry, markdown/text rendering.

Every table and figure of the paper has a corresponding experiment
function here that *regenerates* it: it runs the relevant protocols on the
paper's workloads and returns :class:`Table` objects pairing measured
cost-sensitive complexities with the claimed bounds.  The benchmark suite
(``benchmarks/``) calls the same functions and asserts the shape claims;
``python -m repro.experiments`` renders the full report.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["Table", "experiment", "all_experiments", "render_text",
           "render_markdown"]


@dataclass
class Table:
    """One rendered result table (a paper figure/table analog)."""

    title: str
    header: list[str]
    rows: list[list]
    notes: str = ""

    def column(self, name: str) -> list:
        idx = self.header.index(name)
        return [row[idx] for row in self.rows]


_REGISTRY: dict[str, tuple[str, Callable[[], list[Table]]]] = {}


def experiment(key: str, description: str):
    """Register an experiment function ``() -> list[Table]`` under ``key``."""

    def deco(fn):
        _REGISTRY[key] = (description, fn)
        return fn

    return deco


def all_experiments() -> dict[str, tuple[str, Callable[[], list[Table]]]]:
    """The registry: key -> (description, runner)."""
    # Import the experiment modules for their registration side effects.
    from . import (  # noqa: F401
        chaos,
        clock_sync,
        connectivity,
        controller,
        global_function,
        lower_bound,
        mst,
        slt,
        spt,
        synchronizer,
    )

    return dict(_REGISTRY)


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def render_text(table: Table) -> str:
    """Aligned plain-text rendering."""
    str_rows = [[_fmt(c) for c in row] for row in table.rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(table.header)
    ]
    lines = [f"=== {table.title} ==="]
    lines.append("  ".join(h.rjust(w) for h, w in zip(table.header, widths,
                                                      strict=True)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths, strict=True)))
    if table.notes:
        lines.append(f"  note: {table.notes}")
    return "\n".join(lines)


def render_markdown(table: Table) -> str:
    """GitHub-flavored markdown rendering."""
    lines = [f"### {table.title}", ""]
    lines.append("| " + " | ".join(table.header) + " |")
    lines.append("|" + "|".join("---" for _ in table.header) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    if table.notes:
        lines.append("")
        lines.append(f"*{table.notes}*")
    return "\n".join(lines)
