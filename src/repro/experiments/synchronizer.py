"""Experiment T-SYN — Section 4.4: synchronizer gamma_w overheads.

Includes the alpha_w / beta_w / gamma_w ablation that motivates gamma_w.
"""

from __future__ import annotations

import math

from ..graphs import (
    diameter,
    dijkstra,
    heavy_edge_clock_graph,
    network_params,
    path_graph,
    random_connected_graph,
)
from ..protocols import run_spt_synch
from ..protocols.spt_synch import SyncBellmanFord
from ..synch import run_alpha_w, run_beta_w, run_gamma_w
from .base import Table, experiment

__all__ = ["run", "k_sweep", "n_sweep", "synchronizer_comparison"]


def _verify(graph, res, source=0):
    dist, _ = dijkstra(graph, source)
    for v in graph.vertices:
        d, _p = res.result_of(v)
        assert abs(d - dist[v]) < 1e-9


def k_sweep(ks=(2, 3, 4, 6)):
    graph = random_connected_graph(24, 36, seed=6, max_weight=8)
    p = network_params(graph)
    rows = []
    for k in ks:
        res, _tree = run_spt_synch(graph, 0, k=k)
        _verify(graph, res)
        c_bound = k * p.n * math.log2(p.n)
        t_bound = (math.log(p.n) / math.log(k)) * math.log2(p.n)
        rows.append([
            k, res.pulses,
            res.comm_overhead_per_pulse,
            res.comm_overhead_per_pulse / c_bound,
            res.time_per_pulse, res.time_per_pulse / t_bound,
        ])
    return p, rows


def n_sweep(sizes=((12, 18), (24, 36), (48, 72))):
    rows = []
    for n, extra in sizes:
        graph = random_connected_graph(n, extra, seed=7, max_weight=8)
        p = network_params(graph)
        res, _tree = run_spt_synch(graph, 0, k=2)
        _verify(graph, res)
        c_bound = 2 * p.n * math.log2(p.n)
        rows.append([
            p.n, res.pulses, res.proto_cost, res.overhead_cost,
            res.comm_overhead_per_pulse,
            res.comm_overhead_per_pulse / c_bound,
        ])
    return rows


def _factory(graph, source=0):
    stop = int(diameter(graph)) + 1
    w_max = int(max(w for _, _, w in graph.edges()))
    max_pulse = 4 * (stop + 1) + 4 * w_max + 8
    return (lambda v: SyncBellmanFord(v == source, stop)), max_pulse


def synchronizer_comparison(graph):
    """alpha_w / beta_w / gamma_w on one graph; returns (rows, results)."""
    factory, max_pulse = _factory(graph)
    rows = []
    results = {}
    for name, runner in (
        ("alpha_w", lambda: run_alpha_w(graph, factory, max_pulse=max_pulse)),
        ("beta_w", lambda: run_beta_w(graph, factory, max_pulse=max_pulse)),
        ("gamma_w", lambda: run_gamma_w(graph, factory, k=2,
                                        max_pulse=max_pulse)),
    ):
        res = runner()
        _verify(graph, res)
        results[name] = res
        rows.append([
            name, res.pulses, res.comm_overhead_per_pulse,
            res.time_per_pulse, res.comm_cost, res.time,
        ])
    return rows, results


@experiment("synch", "Section 4.4: synchronizer gamma_w overheads + ablation")
def run() -> list[Table]:
    p, k_rows = k_sweep()
    tables = [
        Table(
            title=f"gamma_w: k sweep  [{p}]",
            header=["k", "pulses", "C/pulse", "C / (k n log n)",
                    "T/pulse", "T / (log_k n log n)"],
            rows=k_rows,
            notes="Lemma 4.8: C = O(k n log n), T = O(log_k n log n)",
        ),
        Table(
            title="gamma_w: n sweep (k = 2)",
            header=["n", "pulses", "payload cost", "overhead cost",
                    "C/pulse", "C / (k n log n)"],
            rows=n_sweep(),
        ),
    ]
    for label, graph in (
        ("heavy edge (W >> d)", heavy_edge_clock_graph(14, heavy=128.0)),
        ("deep path (large D)", path_graph(24, weight=2.0)),
        ("dense random", random_connected_graph(20, 60, seed=12,
                                                max_weight=4)),
    ):
        rows, _results = synchronizer_comparison(graph)
        tables.append(Table(
            title=(f"Synchronizer ablation on {label}  "
                   f"[{network_params(graph)}]"),
            header=["synchronizer", "pulses", "C/pulse", "T/pulse",
                    "total comm", "total time"],
            rows=rows,
            notes="alpha_w: C~E, T~W;  beta_w: C~V, T~D;  gamma_w: both "
                  "polylog-normalized",
        ))
    return tables
