"""Experiment T-CLK — Section 3: clock synchronization pulse delays.

Includes the tree edge-cover parameter ablation (gamma*'s preprocessing
knob) and the serialized-link (congestion) variant the Section 3 analysis
accounts for.
"""

from __future__ import annotations

from ..covers import build_tree_edge_cover
from ..graphs import heavy_edge_clock_graph, network_params
from ..synch import (
    check_causality,
    run_alpha_star,
    run_beta_star,
    run_gamma_star,
)
from .base import Table, experiment

__all__ = ["run", "weight_sweep", "cover_sweep"]

PULSES = 5
N = 20
WEIGHTS = (100.0, 400.0, 1600.0, 6400.0)


def weight_sweep(n=N, weights=WEIGHTS, pulses=PULSES, serialize=False):
    """Rows: per heavy-chord weight, the three synchronizers' pulse delays."""
    rows = []
    for heavy in weights:
        g = heavy_edge_clock_graph(n, heavy=heavy)
        p = network_params(g)
        a = run_alpha_star(g, pulses, serialize=serialize)
        b = run_beta_star(g, pulses, serialize=serialize)
        c = run_gamma_star(g, pulses, serialize=serialize)
        for stats in (a, c):
            check_causality(g, stats)
        rows.append([
            p.W, p.d,
            a.max_pulse_delay, b.max_pulse_delay, c.max_pulse_delay,
            c.max_pulse_delay / p.d,
        ])
    return rows


def cover_sweep(pulses=4, ks=(1, 2, 4, 8)):
    """Tree edge-cover parameter k: cover quality vs gamma*'s delay."""
    g = heavy_edge_clock_graph(18, heavy=800.0)
    p = network_params(g)
    rows = []
    for k in ks:
        cover = build_tree_edge_cover(g, k=k)
        stats = run_gamma_star(g, pulses, cover=cover)
        rows.append([
            k, len(cover.trees), cover.max_depth, cover.max_edge_load,
            stats.max_pulse_delay, stats.comm_cost_per_pulse,
        ])
    return p, rows


@experiment("clock", "Section 3: clock synchronizers alpha*/beta*/gamma*")
def run() -> list[Table]:
    main = Table(
        title=(f"Clock synchronization on ring({N}) + heavy chord "
               f"(pulse delay over {PULSES} pulses)"),
        header=["W", "d", "alpha* delay", "beta* delay", "gamma* delay",
                "gamma*/d"],
        rows=weight_sweep(),
        notes="alpha* tracks W; gamma* stays at O(d log^2 n), flat in W; "
              "lower bound Omega(d)",
    )
    serialized = Table(
        title="Same sweep under serialized links (the congestion regime)",
        header=["W", "d", "alpha* delay", "beta* delay", "gamma* delay",
                "gamma*/d"],
        rows=weight_sweep(serialize=True),
        notes="per-channel store-and-forward; gamma*'s O(log n) edge "
              "sharing costs at most another log factor",
    )
    p, rows = cover_sweep()
    cover = Table(
        title=f"Ablation: tree edge-cover parameter k for gamma*  [{p}]",
        header=["k", "#trees", "max depth", "edge load", "pulse delay",
                "cost/pulse"],
        rows=rows,
        notes="larger k: fewer/deeper trees, lower edge load, "
              "cheaper pulses, slightly larger delay",
    )
    return [main, serialized, cover]
