"""repro.serve — simulation-as-a-service over the deterministic engine.

The repo's sweep engine is a pure function: every result is fully
determined by ``(graph fingerprint or generator spec, FaultPlan, seeds,
protocol, kernel backend, limit/race flags)``.  That purity — enforced
byte-for-byte by the serial==pool identity tests and the replay corpus —
makes every result *immutable* and therefore infinitely cacheable.  This
subsystem turns that property into a service:

* :mod:`~repro.serve.address` canonicalizes a JSON request (defaults
  filled, key order erased, generator specs normalized) and derives a
  SHA-256 **content address** for it;
* :mod:`~repro.serve.store` is a persistent on-disk content-addressed
  result store with integrity re-verification on every read and
  deterministic FIFO eviction;
* :class:`~repro.serve.service.ServeService` is the asyncio core:
  cache lookup, **single-flight** dedupe of identical in-flight
  requests, capacity-limited admission, and fan-out of cold requests to
  the persistent process pool (:mod:`repro.experiments.parallel`) with
  batched dispatch of small cells;
* :class:`~repro.serve.server.ServeServer` speaks a JSON-lines protocol
  over TCP (``python -m repro.serve``), streaming rows/trace chunks back
  as JSONL;
* :class:`~repro.serve.client.ServeClient` is the in-process client the
  tests and benches drive (plus :class:`~repro.serve.client.TCPServeClient`
  for the wire protocol);
* :class:`~repro.serve.stats.ServeStats` counts hits, misses,
  single-flight coalesces, evictions, queue depth and p50/p99 service
  time — the requests/sec instrumentation the bench gates on.

The cache is correct *because* the engine is deterministic: a cached
response is byte-identical to re-execution (asserted per request kind in
``tests/test_serve_service.py``), and cached traces still pass
:func:`repro.replay.verify_trace`.
"""

from .address import (
    RequestError,
    SCHEMA_VERSION,
    canonical_request,
    payload_bytes,
    payload_sha,
    request_address,
)
from .client import ServeClient, TCPServeClient
from .executor import execute_request
from .server import ServeServer
from .service import ServeError, ServeService
from .stats import ServeStats
from .store import ResultStore

__all__ = [
    "SCHEMA_VERSION",
    "RequestError",
    "ServeError",
    "ServeClient",
    "TCPServeClient",
    "ServeServer",
    "ServeService",
    "ServeStats",
    "ResultStore",
    "canonical_request",
    "execute_request",
    "payload_bytes",
    "payload_sha",
    "request_address",
]
