"""Request canonicalization and SHA-256 content addressing.

A request names an immutable computation, so two requests that *mean* the
same thing must hash to the same address: key order, omitted-vs-explicit
defaults, and dict-vs-flat generator specs are all erased by
:func:`canonical_request` before :func:`request_address` hashes the
canonical JSON.  Conversely every knob that can change a result — seeds,
rates, protocol, graph shape, kernel backend, limit/race flags — is a
canonical field, so changing any of them changes the address.

Four request kinds cover the engine's workloads:

``sweep``
    a chaos-matrix sweep (:func:`repro.experiments.parallel.chaos_rows`
    cells) over drop rates and protocols on one benchmark graph;
``chaos``
    a single chaos cell (one ``(protocol, drop, reliable)`` run);
``snapshot``
    a sweep over a published shared-memory graph snapshot
    (:func:`repro.experiments.parallel.snapshot_rows`), addressed by its
    *generator spec* — the spec is the graph's content address;
``trace``
    one recorded, replayable run (:func:`repro.replay.record_run`); the
    payload is the JSONL trace document itself.

``backend`` defaults to the ambient kernel backend resolved *at
canonicalization time* (``auto`` never reaches an address): two hosts
with different backends produce different addresses, which is the
conservative choice — the kernels are value-identical by test, but the
cache never has to rely on that.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "RequestError",
    "REQUEST_KINDS",
    "canonical_request",
    "request_address",
    "payload_bytes",
    "payload_sha",
]

#: Bumped whenever canonical form changes; part of every address, so a
#: schema change can never alias an old cache entry.
SCHEMA_VERSION = 1

REQUEST_KINDS = ("sweep", "chaos", "snapshot", "trace")

_BACKENDS = ("python", "numpy")


class RequestError(ValueError):
    """A request that cannot be canonicalized (unknown kind/field,
    out-of-range value, malformed plan or generator spec)."""


# ---------------------------------------------------------------------- #
# Field normalizers
# ---------------------------------------------------------------------- #


def _as_int(name: str, v: Any) -> int:
    # JSON round-trips may widen ints to floats; 8.0 means 8, 8.5 is an
    # error.
    if isinstance(v, float) and v.is_integer():
        v = int(v)
    if isinstance(v, bool) or not isinstance(v, int):
        raise RequestError(f"{name} must be an int, got {v!r}")
    return v


def _as_bool(name: str, v: Any) -> bool:
    if not isinstance(v, bool):
        raise RequestError(f"{name} must be a bool, got {v!r}")
    return v


def _as_rate(name: str, v: Any) -> float:
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        raise RequestError(f"{name} must be a number, got {v!r}")
    f = float(v)
    if not 0.0 <= f <= 1.0:
        raise RequestError(f"{name} {f!r} outside [0, 1]")
    return f


def _as_str(name: str, v: Any) -> str:
    if not isinstance(v, str):
        raise RequestError(f"{name} must be a string, got {v!r}")
    return v


def _as_backend(name: str, v: Any) -> str:
    if v is None:
        from ..graphs.npkernels import kernel_backend

        return kernel_backend()
    if v not in _BACKENDS:
        raise RequestError(f"{name} must be one of {_BACKENDS}, got {v!r}")
    return str(v)


def _as_opt_int(name: str, v: Any) -> int | None:
    return None if v is None else _as_int(name, v)


def _as_rates(name: str, v: Any) -> list[float]:
    if not isinstance(v, (list, tuple)) or not v:
        raise RequestError(f"{name} must be a non-empty list, got {v!r}")
    return [_as_rate(f"{name}[{i}]", r) for i, r in enumerate(v)]


def _as_protocols(name: str, v: Any) -> list[str] | None:
    if v is None:
        return None
    if not isinstance(v, (list, tuple)) or not v:
        raise RequestError(f"{name} must be null or a non-empty list")
    return [_as_str(f"{name}[{i}]", p) for i, p in enumerate(v)]


def _as_plan(name: str, v: Any) -> dict | None:
    """Round a plan dict through :class:`~repro.faults.plan.FaultPlan` so
    the canonical form is the plan's own canonical ``to_dict`` (sorted
    crashes, normalized edges, every rate explicit) and validation is the
    plan's own."""
    if v is None:
        return None
    if not isinstance(v, dict):
        raise RequestError(f"{name} must be null or a FaultPlan dict")
    from ..faults.plan import FaultPlan

    try:
        return FaultPlan.from_dict(v).to_dict()
    except (ValueError, TypeError) as exc:
        raise RequestError(f"invalid {name}: {exc}") from None


# Generator-spec families: name -> (positional arg names, defaults).
# The canonical form is the flat list shm.build_spec consumes, with every
# default filled, so ["random_connected", 100, 200] and
# {"family": "random_connected", "n": 100, "extra_edges": 200} collide.
_SPEC_FAMILIES: dict[str, tuple[tuple[str, ...], dict[str, Any]]] = {
    "lower_bound": (("n", "heavy"), {"heavy": None}),
    "lower_bound_split": (("n", "i", "heavy"), {"heavy": None}),
    "random_connected": (
        ("n", "extra_edges", "seed", "max_weight"),
        {"seed": 0, "max_weight": 10.0},
    ),
}


def _as_spec(name: str, v: Any) -> list[Any]:
    if isinstance(v, dict):
        family = v.get("family")
        if family not in _SPEC_FAMILIES:
            raise RequestError(
                f"{name}.family must be one of {sorted(_SPEC_FAMILIES)}, "
                f"got {family!r}"
            )
        fields, defaults = _SPEC_FAMILIES[family]
        unknown = set(v) - set(fields) - {"family"}
        if unknown:
            raise RequestError(f"unknown {name} fields: {sorted(unknown)}")
        args = []
        for f in fields:
            if f in v:
                args.append(v[f])
            elif f in defaults:
                args.append(defaults[f])
            else:
                raise RequestError(f"{name} missing required field {f!r}")
    elif isinstance(v, (list, tuple)):
        if not v or v[0] not in _SPEC_FAMILIES:
            raise RequestError(
                f"{name}[0] must be one of {sorted(_SPEC_FAMILIES)}"
            )
        fields, defaults = _SPEC_FAMILIES[v[0]]
        given = list(v[1:])
        if len(given) > len(fields):
            raise RequestError(f"{name} has too many arguments: {v!r}")
        args = []
        for i, f in enumerate(fields):
            if i < len(given):
                args.append(given[i])
            elif f in defaults:
                args.append(defaults[f])
            else:
                raise RequestError(f"{name} missing required argument {f!r}")
        family = v[0]
    else:
        raise RequestError(f"{name} must be a list or dict, got {v!r}")
    fields, _defaults = _SPEC_FAMILIES[family]
    canon: list[Any] = [family]
    for f, a in zip(fields, args):
        if f == "heavy":
            canon.append(None if a is None else float(a))
        elif f == "max_weight":
            canon.append(float(a))
        else:
            canon.append(_as_int(f"{name}.{f}", a))
    return canon


def _as_sweep_kind(name: str, v: Any) -> str:
    if v not in ("stripe", "sources"):
        raise RequestError(f"{name} must be 'stripe' or 'sources', got {v!r}")
    return str(v)


# ---------------------------------------------------------------------- #
# Kind schemas: field -> (default-or-_REQUIRED, normalizer)
# ---------------------------------------------------------------------- #

_REQUIRED = object()

_SCHEMAS: dict[str, dict[str, tuple[Any, Any]]] = {
    "sweep": {
        "n": (14, _as_int),
        "extra_edges": (20, _as_int),
        "graph_seed": (2, _as_int),
        "drop_rates": ([0.0, 0.05, 0.2], _as_rates),
        "fault_seed": (7, _as_int),
        "include_raw": (True, _as_bool),
        "protocols": (None, _as_protocols),
        "trace": (False, _as_bool),
        "race_detect": (False, _as_bool),
        "backend": (None, _as_backend),
    },
    "chaos": {
        "protocol": (_REQUIRED, _as_str),
        "n": (14, _as_int),
        "extra_edges": (20, _as_int),
        "graph_seed": (2, _as_int),
        "drop": (0.0, _as_rate),
        "reliable": (True, _as_bool),
        "fault_seed": (7, _as_int),
        "trace": (False, _as_bool),
        "race_detect": (False, _as_bool),
        "backend": (None, _as_backend),
    },
    "snapshot": {
        "spec": (_REQUIRED, _as_spec),
        "sweep": ("stripe", _as_sweep_kind),
        "limit": (None, _as_opt_int),
        "cell_size": (1, _as_int),
        "backend": (None, _as_backend),
    },
    "trace": {
        "protocol": (_REQUIRED, _as_str),
        "n": (14, _as_int),
        "extra_edges": (20, _as_int),
        "graph_seed": (2, _as_int),
        "seed": (0, _as_int),
        "reliable": (True, _as_bool),
        "plan": (None, _as_plan),
        "limit": (None, _as_opt_int),
        "race": (False, _as_bool),
        "backend": (None, _as_backend),
    },
}


def canonical_request(request: dict) -> dict:
    """Validate ``request`` and return its canonical form.

    Canonical means: ``kind`` plus *every* schema field present (defaults
    filled), values normalized (rates to floats, plans through
    ``FaultPlan``, generator specs to their flat list form).  Two requests
    with the same meaning canonicalize to equal dicts; any semantic knob
    difference survives into the canonical form.  Unknown kinds or fields
    raise :class:`RequestError` — a typo'd knob must fail loudly, never
    silently address a different computation.
    """
    if not isinstance(request, dict):
        raise RequestError(f"request must be a dict, got {type(request).__name__}")
    kind = request.get("kind")
    if kind not in _SCHEMAS:
        raise RequestError(
            f"request kind must be one of {REQUEST_KINDS}, got {kind!r}"
        )
    schema = _SCHEMAS[kind]
    unknown = set(request) - set(schema) - {"kind"}
    if unknown:
        raise RequestError(f"unknown {kind} request fields: {sorted(unknown)}")
    canon: dict[str, Any] = {"kind": kind}
    for field, (default, normalize) in schema.items():
        if field in request:
            value = request[field]
        elif default is _REQUIRED:
            raise RequestError(f"{kind} request missing required field {field!r}")
        else:
            value = default
        canon[field] = normalize(field, value)
    # Cheap structural sanity that the executor would otherwise hit late.
    if kind in ("sweep", "chaos", "trace") and canon["n"] < 2:
        raise RequestError(f"n must be >= 2, got {canon['n']}")
    if kind == "snapshot" and canon["cell_size"] < 1:
        raise RequestError(f"cell_size must be >= 1, got {canon['cell_size']}")
    return canon


def request_address(request: dict) -> tuple[dict, str]:
    """Canonicalize ``request`` and return ``(canonical, address)``.

    The address is the SHA-256 hex digest of the canonical JSON
    (``sort_keys``, compact separators) prefixed with the schema version,
    so it is stable across processes, platforms, and hash randomization —
    the property the persistent cache keys on.
    """
    canon = canonical_request(request)
    doc = json.dumps({"v": SCHEMA_VERSION, "request": canon},
                     sort_keys=True, separators=(",", ":"))
    return canon, hashlib.sha256(doc.encode()).hexdigest()


def payload_bytes(payload: Any) -> bytes:
    """The canonical byte encoding of a result payload.

    Results are rows (lists of primitive dicts) or trace documents
    (strings); both serialize through ``json.dumps(sort_keys=True)`` after
    :func:`repro.obs.exporters.jsonable` coercion, so equal payloads are
    byte-equal — the form the store integrity-hashes and the
    cold-vs-cached identity tests compare.
    """
    from ..obs.exporters import jsonable

    return json.dumps(jsonable(payload), sort_keys=True,
                      separators=(",", ":")).encode()


def payload_sha(payload: Any) -> str:
    """SHA-256 hex digest of :func:`payload_bytes`."""
    return hashlib.sha256(payload_bytes(payload)).hexdigest()
