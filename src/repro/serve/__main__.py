"""CLI: ``python -m repro.serve`` — run the simulation service.

Examples::

    python -m repro.serve --port 7710 --cache-dir .serve-cache --jobs 4
    python -m repro.serve --port 0            # ephemeral port, printed

The server announces ``repro.serve listening on HOST:PORT`` on stdout
once bound (machine-parsable: the smoke harness reads it), serves until
SIGINT/SIGTERM, then shuts down gracefully — drain in-flight jobs,
tear down the pool, unlink shared memory — and prints the final stats
block as JSON.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys

from .server import ServeServer
from .service import ServeService


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve sweep/chaos/snapshot/trace requests over JSONL/TCP "
                    "with a content-addressed result cache.",
    )
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=7710,
                    help="TCP port (0 = ephemeral, printed on startup)")
    ap.add_argument("--cache-dir", default=None,
                    help="persistent result store root (default: in-memory)")
    ap.add_argument("--jobs", type=int, default=None,
                    help="pool workers for cold requests (default: serial)")
    ap.add_argument("--max-entries", type=int, default=None,
                    help="store capacity in entries (FIFO eviction)")
    ap.add_argument("--max-bytes", type=int, default=None,
                    help="store capacity in bytes (FIFO eviction)")
    ap.add_argument("--max-pending", type=int, default=128,
                    help="admission limit on concurrent requests")
    return ap.parse_args(argv)


async def _amain(args: argparse.Namespace) -> int:
    service = ServeService(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        max_pending=args.max_pending,
    )
    server = ServeServer(service, host=args.host, port=args.port)
    host, port = await server.start()
    print(f"repro.serve listening on {host}:{port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # non-POSIX loops
            loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("repro.serve: draining and shutting down", flush=True)
    await server.close()
    print(json.dumps(service.stats_snapshot(), sort_keys=True), flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    return asyncio.run(_amain(_parse_args(argv)))


if __name__ == "__main__":
    sys.exit(main())
