"""JSON-lines TCP front-end for :class:`~repro.serve.service.ServeService`.

Wire protocol (newline-delimited JSON, UTF-8, one request at a time per
connection):

* client sends one line: either a request dict (see
  :mod:`repro.serve.address`) or an op — ``{"op": "stats"}`` /
  ``{"op": "ping"}``;
* the server streams the response as JSONL chunks::

      {"type": "meta", "address": ..., "kind": ..., "source": ..., "cached": ...}
      {"type": "row", "i": 0, "data": {...}}        # row-list payloads
      {"type": "chunk", "data": "..."}              # string (trace) payloads
      {"type": "end", "payload_sha": ..., "rows": N, "chunks": N}

  or a single ``{"type": "error", "error": "..."}`` line; ops answer with
  one ``{"type": "stats"|"pong", ...}`` line.

Rows stream as they are written, so a million-row sweep response never
materializes twice server-side; trace documents chunk at a fixed size.
Malformed JSON or oversized request lines produce an error line, never a
dead connection.
"""

from __future__ import annotations

import asyncio
import json

from .address import RequestError
from .service import ServeError, ServeService

__all__ = ["ServeServer", "CHUNK_CHARS", "MAX_REQUEST_BYTES"]

#: Trace payloads stream in chunks of this many characters.
CHUNK_CHARS = 32768

#: Upper bound on one request line (a request is a few hundred bytes of
#: knobs; anything bigger is a client bug, not a workload).
MAX_REQUEST_BYTES = 1 << 20


def _line(doc: dict) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode()


class ServeServer:
    """Asyncio TCP server wrapping one :class:`ServeService`."""

    def __init__(self, service: ServeService, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``
        (``port=0`` requests an ephemeral port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port,
            limit=MAX_REQUEST_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        """Graceful stop: refuse new connections, drain the service (all
        in-flight jobs finish), then tear the pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.shutdown()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_line({"type": "error",
                                        "error": "request line too long"}))
                    break
                if not raw:
                    break
                try:
                    request = json.loads(raw)
                except json.JSONDecodeError as exc:
                    writer.write(_line({"type": "error",
                                        "error": f"bad JSON: {exc}"}))
                    await writer.drain()
                    continue
                if not isinstance(request, dict):
                    writer.write(_line({"type": "error",
                                        "error": "request must be an object"}))
                    await writer.drain()
                    continue
                if "op" in request:
                    await self._handle_op(request, writer)
                else:
                    await self._handle_request(request, writer)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_op(self, request: dict,
                         writer: asyncio.StreamWriter) -> None:
        op = request.get("op")
        if op == "stats":
            writer.write(_line({"type": "stats",
                                "stats": self.service.stats_snapshot()}))
        elif op == "ping":
            writer.write(_line({"type": "pong",
                                "closing": self.service.closing}))
        else:
            writer.write(_line({"type": "error",
                                "error": f"unknown op {op!r}"}))

    async def _handle_request(self, request: dict,
                              writer: asyncio.StreamWriter) -> None:
        try:
            response = await self.service.submit(request)
        except (RequestError, ServeError) as exc:
            writer.write(_line({"type": "error",
                                "error": str(exc),
                                "error_kind": type(exc).__name__}))
            return
        writer.write(_line({
            "type": "meta",
            "address": response["address"],
            "kind": response["kind"],
            "source": response["source"],
            "cached": response["cached"],
        }))
        payload = response["payload"]
        rows = chunks = 0
        if isinstance(payload, list):
            for i, row in enumerate(payload):
                writer.write(_line({"type": "row", "i": i, "data": row}))
                rows += 1
                if rows % 256 == 0:
                    await writer.drain()  # stream, don't buffer the sweep
        elif isinstance(payload, str):
            for lo in range(0, len(payload), CHUNK_CHARS):
                writer.write(_line({"type": "chunk",
                                    "data": payload[lo:lo + CHUNK_CHARS]}))
                chunks += 1
                await writer.drain()
        else:
            writer.write(_line({"type": "row", "i": 0, "data": payload}))
            rows = 1
        writer.write(_line({"type": "end",
                            "payload_sha": response["payload_sha"],
                            "rows": rows, "chunks": chunks}))
