"""Persistent content-addressed result store (CAS) with integrity checks.

Layout under the store root::

    objects/<aa>/<address>.json   # one envelope per result
    index.jsonl                   # append-only put/del journal

The envelope records the canonical request, the payload, and the
payload's SHA-256; :meth:`ResultStore.get` *re-verifies* that digest on
every read and treats a mismatch as a miss (the corrupt entry is dropped
and the request re-executes) — a cache over immutable results must never
serve bytes it cannot prove are the bytes it stored.

The journal makes eviction deterministic: entries are evicted strictly
in insertion (FIFO) order when ``max_entries`` or ``max_bytes`` is
exceeded.  FIFO rather than LRU is deliberate — recency updates would
make the on-disk state depend on read traffic, and replaying the journal
would no longer reconstruct the same eviction order on every host.

With ``root=None`` the store is memory-only (same semantics, nothing
persisted) — the shape the coalescing benches use when disk is noise.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from .address import payload_sha

__all__ = ["ResultStore"]

_ENVELOPE_VERSION = 1


class ResultStore:
    """Content-addressed result cache keyed by request address."""

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = None if root is None else Path(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        # address -> entry size in bytes, in insertion order (dicts
        # preserve it); the eviction queue and the byte ledger in one.
        self._entries: dict[str, int] = {}
        self._memory: dict[str, dict] = {}
        self.puts = 0
        self.gets = 0
        self.evictions = 0
        self.integrity_failures = 0
        if self.root is not None:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)
            self._replay_index()

    # ------------------------------------------------------------------ #
    # Index journal
    # ------------------------------------------------------------------ #

    @property
    def _index_path(self) -> Path:
        assert self.root is not None
        return self.root / "index.jsonl"

    def _replay_index(self) -> None:
        """Rebuild the in-memory ledger from the journal, dropping entries
        whose object file has vanished (a deleted file is just a miss)."""
        if not self._index_path.exists():
            return
        for line in self._index_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                op = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from a crashed writer
            addr = op.get("address")
            if op.get("op") == "put" and isinstance(addr, str):
                self._entries[addr] = int(op.get("nbytes", 0))
            elif op.get("op") == "del" and addr in self._entries:
                del self._entries[addr]
        for addr in [a for a in self._entries if not self._object_path(a).exists()]:
            del self._entries[addr]

    def _journal(self, op: str, address: str, nbytes: int = 0) -> None:
        if self.root is None:
            return
        with open(self._index_path, "a") as fh:
            fh.write(json.dumps({"op": op, "address": address,
                                 "nbytes": nbytes},
                                sort_keys=True) + "\n")

    def _object_path(self, address: str) -> Path:
        assert self.root is not None
        return self.root / "objects" / address[:2] / f"{address}.json"

    # ------------------------------------------------------------------ #
    # Store surface
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: str) -> bool:
        return address in self._entries

    @property
    def nbytes(self) -> int:
        """Total stored payload envelope bytes (the eviction ledger)."""
        return sum(self._entries.values())

    def put(self, address: str, canon: dict, payload: Any) -> dict:
        """Store one result; returns its envelope.  Idempotent per address
        (immutable content: a re-put of the same address is a no-op that
        returns the stored envelope)."""
        if address in self._entries:
            existing = self.get(address)
            if existing is not None:
                return existing
            # fell through: the stored copy was corrupt and dropped.
        envelope = {
            "v": _ENVELOPE_VERSION,
            "address": address,
            "kind": canon.get("kind"),
            "request": canon,
            "payload_sha": payload_sha(payload),
            "payload": payload,
        }
        data = json.dumps(envelope, sort_keys=True)
        if self.root is not None:
            path = self._object_path(address)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(data)
            os.replace(tmp, path)  # atomic: readers never see a torn entry
        else:
            self._memory[address] = json.loads(data)
        self._entries[address] = len(data)
        self._journal("put", address, len(data))
        self.puts += 1
        self._evict_over_capacity()
        return envelope

    def get(self, address: str) -> dict | None:
        """Fetch one envelope, re-verifying payload integrity.

        Returns ``None`` on miss *and* on any failed verification —
        unreadable file, address mismatch, payload digest mismatch — after
        dropping the bad entry, so a corrupt cache degrades to re-execution
        instead of serving damaged results.
        """
        self.gets += 1
        if address not in self._entries:
            return None
        if self.root is None:
            envelope = self._memory.get(address)
        else:
            try:
                envelope = json.loads(self._object_path(address).read_text())
            except (OSError, json.JSONDecodeError):
                envelope = None
        if (
            envelope is None
            or envelope.get("address") != address
            or envelope.get("payload_sha") != payload_sha(envelope.get("payload"))
        ):
            self.integrity_failures += 1
            self._drop(address)
            return None
        return envelope

    def _drop(self, address: str) -> None:
        self._entries.pop(address, None)
        self._memory.pop(address, None)
        if self.root is not None:
            try:
                self._object_path(address).unlink()
            except OSError:
                pass
        self._journal("del", address)

    def _evict_over_capacity(self) -> None:
        """Evict oldest-first until both capacity bounds hold (an entry
        larger than ``max_bytes`` on its own still leaves one entry)."""
        while self._entries and (
            (self.max_entries is not None and len(self._entries) > self.max_entries)
            or (self.max_bytes is not None and len(self._entries) > 1
                and self.nbytes > self.max_bytes)
        ):
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.evictions += 1

    def stats(self) -> dict[str, Any]:
        """Store-side counters (merged into the service's ServeStats block)."""
        return {
            "entries": len(self._entries),
            "bytes": self.nbytes,
            "puts": self.puts,
            "gets": self.gets,
            "evictions": self.evictions,
            "integrity_failures": self.integrity_failures,
            "persistent": self.root is not None,
        }
