"""ServeStats — the service's counter block.

One instance per :class:`~repro.serve.service.ServeService`; every field
is exact (no sampling): the bench asserts ``hits`` equals the expected
dedupe count of its workload *exactly*, so these counters are part of
the service's contract, not best-effort telemetry.

Service times are recorded in seconds by the caller (the service brackets
each request with its own monotonic reads, so this module stays free of
clock access) and summarized as nearest-rank p50/p99 over a bounded
window of the most recent observations.
"""

from __future__ import annotations

from typing import Any

__all__ = ["ServeStats"]

# Service-time observations kept for the percentile window.  Bounded so a
# long-lived server's stats block stays O(1); 4096 is plenty for a p99.
_WINDOW = 4096


class ServeStats:
    """Exact request counters plus a bounded service-time window.

    ``hits``
        requests answered from the persistent result store;
    ``misses``
        cold requests that executed against the engine;
    ``coalesced``
        requests that joined an identical in-flight execution
        (single-flight dedupe) instead of running or reading the store;
    ``evictions``
        store entries removed by the capacity policy;
    ``integrity_failures``
        store reads whose payload failed SHA-256 re-verification (the
        entry is dropped and the request re-executed);
    ``rejected``
        requests refused by capacity-limited admission;
    ``errors``
        requests that raised during validation or execution;
    ``queue_depth`` / ``max_queue_depth``
        admitted-but-unfinished requests, now and at peak.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0
        self.integrity_failures = 0
        self.rejected = 0
        self.errors = 0
        self.queue_depth = 0
        self.max_queue_depth = 0
        self._times: list[float] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def enter(self) -> None:
        """One request admitted (bumps the queue-depth gauge)."""
        self.queue_depth += 1
        if self.queue_depth > self.max_queue_depth:
            self.max_queue_depth = self.queue_depth

    def exit(self) -> None:
        """One admitted request finished (success or error)."""
        self.queue_depth -= 1

    def record_time(self, seconds: float) -> None:
        """Record one request's service time (seconds, caller-measured)."""
        self._times.append(seconds)
        if len(self._times) > _WINDOW:
            del self._times[: len(self._times) - _WINDOW]

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def served(self) -> int:
        """Completed requests: hits + misses + coalesced."""
        return self.hits + self.misses + self.coalesced

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the service-time window (seconds)."""
        if not self._times:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p!r} outside [0, 100]")
        ordered = sorted(self._times)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def snapshot(self) -> dict[str, Any]:
        """The counter block as a JSON-ready dict (milliseconds for times)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "evictions": self.evictions,
            "integrity_failures": self.integrity_failures,
            "rejected": self.rejected,
            "errors": self.errors,
            "served": self.served,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "p50_ms": self.percentile(50.0) * 1e3,
            "p99_ms": self.percentile(99.0) * 1e3,
            "timed": len(self._times),
        }
