"""Map a canonical request onto the existing sweep/replay engine.

This is the only serve module that touches the engine: everything above
it (addressing, store, single-flight) treats payloads as opaque.  All
execution goes through the same module-level cell workers the serial and
pooled sweeps share, so a served result is byte-identical to what a
direct :func:`~repro.experiments.parallel.chaos_rows` /
:func:`~repro.experiments.parallel.snapshot_rows` /
:func:`~repro.replay.record_run` call produces — the property that makes
the cache sound.

Small-cell batching: sweeps with many cheap cells are dispatched in
grouped batches (``run_parallel(..., batch=...)``, the ``snapshot_rows``
mechanism), so a pooled request pays one pickle round-trip per *group*
rather than per cell.
"""

from __future__ import annotations

from typing import Any

from .address import RequestError

__all__ = ["execute_request", "BATCH_THRESHOLD", "BATCH_SIZE"]

# Grouped dispatch kicks in at this many cells; below it, per-cell
# dispatch balances better and pickling is already cheap.
BATCH_THRESHOLD = 64
BATCH_SIZE = 16


def _auto_batch(n_cells: int) -> int | None:
    return BATCH_SIZE if n_cells >= BATCH_THRESHOLD else None


def _execute_sweep(canon: dict, jobs: int | None) -> list[dict]:
    from ..experiments.parallel import chaos_cells, run_chaos_cell, run_parallel

    cells = chaos_cells(
        n=canon["n"],
        extra_edges=canon["extra_edges"],
        graph_seed=canon["graph_seed"],
        drop_rates=tuple(canon["drop_rates"]),
        fault_seed=canon["fault_seed"],
        include_raw=canon["include_raw"],
        protocols=canon["protocols"],
        trace=canon["trace"],
        race_detect=canon["race_detect"],
    )
    warm = ((canon["n"], canon["extra_edges"], canon["graph_seed"],
             None if canon["protocols"] is None else tuple(canon["protocols"])),)
    return run_parallel(run_chaos_cell, cells, jobs=jobs, warm=warm,
                        batch=_auto_batch(len(cells)))


def _execute_chaos(canon: dict, jobs: int | None) -> dict:
    from ..experiments.parallel import ChaosCell, run_chaos_cell

    cell = ChaosCell(
        n=canon["n"],
        extra_edges=canon["extra_edges"],
        graph_seed=canon["graph_seed"],
        protocol=canon["protocol"],
        drop=canon["drop"],
        reliable=canon["reliable"],
        fault_seed=canon["fault_seed"],
        trace=canon["trace"],
        race_detect=canon["race_detect"],
    )
    return run_chaos_cell(cell)


def _execute_snapshot(canon: dict, jobs: int | None) -> list[dict]:
    """Publish (idempotently) the spec'd graph and sweep its snapshot.

    :func:`repro.graphs.shm.publish` keys on the content fingerprint, so
    repeated snapshot requests over the same spec — even under different
    sweep knobs — reuse one shared segment across the whole serve
    session; the graph is built at most once per service process.
    """
    from ..graphs import shm
    from ..experiments.parallel import snapshot_cells, snapshot_rows

    flat = shm.build_spec(tuple(canon["spec"]))
    handle = shm.publish(flat)
    n_cells = len(snapshot_cells(handle, kind=canon["sweep"],
                                 limit=canon["limit"],
                                 cell_size=canon["cell_size"],
                                 kernel=canon["backend"]))
    return snapshot_rows(
        handle,
        jobs=jobs,
        kind=canon["sweep"],
        limit=canon["limit"],
        cell_size=canon["cell_size"],
        kernel=canon["backend"],
        batch=_auto_batch(n_cells),
    )


def _execute_trace(canon: dict, jobs: int | None) -> str:
    from ..faults.plan import FaultPlan
    from ..replay.engine import ReplaySpec, record_run

    plan = canon["plan"]
    spec = ReplaySpec(
        protocol=canon["protocol"],
        n=canon["n"],
        extra_edges=canon["extra_edges"],
        graph_seed=canon["graph_seed"],
        seed=canon["seed"],
        reliable=canon["reliable"],
        plan=None if plan is None else FaultPlan.from_dict(plan),
        limit=canon["limit"],
        race=canon["race"],
    )
    return record_run(spec).text


_EXECUTORS = {
    "sweep": _execute_sweep,
    "chaos": _execute_chaos,
    "snapshot": _execute_snapshot,
    "trace": _execute_trace,
}


def execute_request(canon: dict, *, jobs: int | None = None) -> Any:
    """Execute one canonical request against the engine; returns its payload.

    ``jobs`` is the service's pool width — a deployment knob, *not* part
    of the content address: by the serial==pool identity contract the
    payload is byte-identical at any worker count.
    """
    try:
        executor = _EXECUTORS[canon["kind"]]
    except KeyError:  # canonical_request already rejects these
        raise RequestError(f"unknown request kind {canon.get('kind')!r}") from None
    return executor(canon, jobs)
