"""The asyncio service core: cache, single-flight, admission, teardown.

Request lifecycle::

    submit(request)
      -> canonicalize + address          (RequestError on bad requests)
      -> persistent store lookup         (hit: integrity-checked envelope)
      -> in-flight table lookup          (coalesce onto the running job)
      -> capacity-limited admission      (ServeError when over capacity)
      -> execute on the engine           (in a thread; pool fan-out inside)
      -> store + resolve all waiters

**Single-flight**: identical requests that arrive while one is executing
await the same future — one execution, N responses, ``coalesced`` counted
per joined waiter.  In-flight futures resolve to ``("ok", envelope)`` /
``("err", message)`` tuples rather than raw exceptions so an abandoned
waiter can never trip asyncio's unretrieved-exception warning.

**Teardown ordering** (the regression this module pins): a closing
service *drains every in-flight job before* ``shutdown_pool()`` unlinks
the shared-memory graph segments.  The reverse order would yank segments
out from under live snapshot cells mid-request; with the drain, a request
racing shutdown either completes normally (admitted before the close) or
is refused with a clean :class:`ServeError` (arrived after) — never a
crash.

Cold executions are serialized through one executor slot: the persistent
process pool is a process-global singleton keyed by sweep shape, so
concurrent ``run_parallel`` calls from multiple threads would race its
rebuild logic.  Parallelism comes from *inside* a request (pool fan-out
over its cells) and from hits/coalesces being served concurrently, which
is exactly the duplicate-heavy workload the service exists for.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from .address import request_address
from .executor import execute_request
from .stats import ServeStats
from .store import ResultStore

__all__ = ["ServeError", "ServeService"]


class ServeError(RuntimeError):
    """The service refused or failed a request (shutdown, capacity,
    execution failure) — the client-visible error, never a crash."""


class ServeService:
    """Async front-end over the deterministic sweep engine.

    Parameters
    ----------
    cache_dir:
        Root of the persistent :class:`ResultStore`; ``None`` keeps
        results in memory only.
    jobs:
        Worker count handed to the engine for cold requests (``None`` =
        serial in-process; the engine's own plan may fall back anyway).
    max_entries / max_bytes:
        Store capacity bounds (FIFO eviction).
    max_pending:
        Admission limit on concurrently admitted requests (hits and
        coalesces included — admission is what bounds memory, not
        execution).  Requests beyond it are refused with
        :class:`ServeError`, mirroring the latency+capacity model's
        bounded-capacity links.
    """

    def __init__(
        self,
        *,
        cache_dir: str | None = None,
        jobs: int | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        max_pending: int = 128,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.store = ResultStore(cache_dir, max_entries=max_entries,
                                 max_bytes=max_bytes)
        self.stats = ServeStats()
        self.jobs = jobs
        self.max_pending = max_pending
        self._inflight: dict[str, asyncio.Future] = {}
        self._exec_lock: asyncio.Lock = asyncio.Lock()
        self._closing = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    async def submit(self, request: dict) -> dict:
        """Serve one request; returns a response envelope.

        The envelope carries ``address``, ``kind``, ``payload``,
        ``payload_sha``, and a ``source`` field naming which path
        answered: ``"cache"`` (store hit), ``"coalesced"`` (joined an
        in-flight execution), or ``"executed"`` (cold).  Payload bytes
        are identical across all three sources for the same address.

        Raises :class:`RequestError` for malformed requests and
        :class:`ServeError` for refused/failed ones.
        """
        if self._closing:
            raise ServeError("service is shutting down; request refused")
        canon, address = request_address(request)
        if self.stats.queue_depth >= self.max_pending:
            self.stats.rejected += 1
            raise ServeError(
                f"over capacity ({self.max_pending} requests pending)"
            )
        self.stats.enter()
        t0 = time.perf_counter()  # repro: allow RS003 -- service-time metric, not simulation state
        try:
            return await self._serve(canon, address, t0)
        finally:
            self.stats.exit()

    async def _serve(self, canon: dict, address: str, t0: float) -> dict:
        envelope = self.store.get(address)
        self.stats.integrity_failures = self.store.integrity_failures
        if envelope is not None:
            self.stats.hits += 1
            return self._respond(envelope, "cache", t0)
        pending = self._inflight.get(address)
        if pending is not None:
            self.stats.coalesced += 1
            status, value = await asyncio.shield(pending)
            if status != "ok":
                raise ServeError(f"coalesced request failed: {value}")
            return self._respond(value, "coalesced", t0)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[address] = future
        try:
            async with self._exec_lock:
                payload = await asyncio.to_thread(
                    execute_request, canon, jobs=self.jobs
                )
            envelope = self.store.put(address, canon, payload)
            self.stats.misses += 1
            self.stats.evictions = self.store.evictions
            future.set_result(("ok", envelope))
            return self._respond(envelope, "executed", t0)
        except Exception as exc:
            self.stats.errors += 1
            future.set_result(("err", f"{type(exc).__name__}: {exc}"))
            raise ServeError(
                f"execution failed for {canon['kind']} request: {exc}"
            ) from exc
        finally:
            del self._inflight[address]

    def _respond(self, envelope: dict, source: str, t0: float) -> dict:
        elapsed = time.perf_counter() - t0  # repro: allow RS003 -- service-time metric
        self.stats.record_time(elapsed)
        return {
            "address": envelope["address"],
            "kind": envelope["kind"],
            "payload_sha": envelope["payload_sha"],
            "payload": envelope["payload"],
            "source": source,
            "cached": source != "executed",
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def closing(self) -> bool:
        return self._closing

    @property
    def inflight(self) -> int:
        """Distinct executions currently running (not counting waiters)."""
        return len(self._inflight)

    def stats_snapshot(self) -> dict[str, Any]:
        """The ServeStats block merged with the store's counters."""
        snap = self.stats.snapshot()
        snap["store"] = self.store.stats()
        snap["inflight"] = self.inflight
        snap["jobs"] = self.jobs
        snap["closing"] = self._closing
        return snap

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #

    async def drain(self) -> None:
        """Wait for every in-flight execution to finish (never raises:
        in-flight futures resolve to status tuples)."""
        while self._inflight:
            await asyncio.gather(*list(self._inflight.values()))

    async def shutdown(self) -> None:
        """Stop admitting, drain in-flight jobs, then tear down the pool.

        Ordering is the contract: the pool (and with it the published
        shared-memory graph segments) is only torn down *after* the last
        in-flight job finished, so no running cell ever loses its segment.
        Idempotent; every submit after the first call raises
        :class:`ServeError`.
        """
        if self._closed:
            return
        self._closing = True
        await self.drain()
        from ..experiments.parallel import shutdown_pool

        # shutdown_pool() disposes the persistent workers *and* unlinks
        # every published segment — safe only now that nothing is in
        # flight.  Runs in a thread: pool shutdown blocks on worker join.
        await asyncio.to_thread(shutdown_pool)
        self._closed = True
