"""Clients: in-process :class:`ServeClient` and wire-level
:class:`TCPServeClient`.

``ServeClient`` owns a :class:`~repro.serve.service.ServeService` on a
dedicated background event loop thread, so synchronous code — tests, the
bench harness — gets the full async semantics (single-flight coalescing,
admission, graceful shutdown) without running a server or an event loop
of its own.  ``request_many`` submits a batch concurrently, which is how
the coalescing bench produces N simultaneous duplicates.

``TCPServeClient`` is a deliberately dumb blocking-socket client for the
JSONL wire protocol (:mod:`repro.serve.server`): it reassembles streamed
rows/chunks into the payload and re-verifies the payload SHA-256 the
server announced in its ``end`` line — transport integrity checked at
the edge, same as the store checks at rest.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Any

from .address import payload_sha
from .service import ServeError, ServeService

__all__ = ["ServeClient", "TCPServeClient"]


class ServeClient:
    """Synchronous in-process client over a private event loop thread."""

    def __init__(
        self,
        *,
        cache_dir: str | None = None,
        jobs: int | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        max_pending: int = 128,
    ) -> None:
        self.service = ServeService(
            cache_dir=cache_dir, jobs=jobs, max_entries=max_entries,
            max_bytes=max_bytes, max_pending=max_pending,
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-client",
            daemon=True,
        )
        self._thread.start()

    def _run(self, coro: Any) -> Any:
        if not self._thread.is_alive():
            coro.close()  # never scheduled; silence the unawaited warning
            raise ServeError("client is closed")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def request(self, request: dict) -> dict:
        """Serve one request; returns the response envelope
        (:meth:`ServeService.submit`)."""
        return self._run(self.service.submit(request))

    def request_many(self, requests: list[dict]) -> list[dict]:
        """Submit ``requests`` *concurrently* and return responses in
        order.  Identical requests in the batch coalesce onto a single
        execution — the duplicate-heavy path the bench measures."""

        async def gather() -> list[dict]:
            return await asyncio.gather(
                *(self.service.submit(r) for r in requests)
            )

        return self._run(gather())

    def stats(self) -> dict:
        """The service's merged stats block."""
        return self.service.stats_snapshot()

    def close(self) -> None:
        """Graceful shutdown: drain in-flight jobs, tear down the pool,
        stop the loop thread.  Idempotent."""
        if self._thread.is_alive():
            try:
                self._run(self.service.shutdown())
            finally:
                self._loop.call_soon_threadsafe(self._loop.stop)
                self._thread.join(timeout=30)
                self._loop.close()

    def __enter__(self) -> ServeClient:
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class TCPServeClient:
    """Blocking JSONL client for ``python -m repro.serve``."""

    def __init__(self, host: str, port: int, *, timeout: float = 300.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def _roundtrip_lines(self, doc: dict) -> Any:
        self._file.write((json.dumps(doc) + "\n").encode())
        self._file.flush()
        while True:
            raw = self._file.readline()
            if not raw:
                raise ServeError("server closed the connection mid-response")
            yield json.loads(raw)

    def request(self, request: dict) -> dict:
        """Send one request; reassemble the streamed response.

        Returns ``{"address", "kind", "source", "cached", "payload",
        "payload_sha", "rows", "chunks"}``; raises :class:`ServeError` on
        an error line or on a payload that fails SHA re-verification.
        """
        meta: dict | None = None
        rows: list[Any] = []
        chunks: list[str] = []
        for doc in self._roundtrip_lines(request):
            kind = doc.get("type")
            if kind == "error":
                raise ServeError(doc.get("error", "unknown server error"))
            if kind == "meta":
                meta = doc
            elif kind == "row":
                rows.append(doc["data"])
            elif kind == "chunk":
                chunks.append(doc["data"])
            elif kind == "end":
                assert meta is not None, "end before meta"
                if meta["kind"] == "trace":
                    payload: Any = "".join(chunks)
                elif meta["kind"] == "chaos":
                    payload = rows[0]
                else:
                    payload = rows
                if payload_sha(payload) != doc["payload_sha"]:
                    raise ServeError(
                        "payload failed integrity re-verification in transit"
                    )
                return {
                    "address": meta["address"],
                    "kind": meta["kind"],
                    "source": meta["source"],
                    "cached": meta["cached"],
                    "payload": payload,
                    "payload_sha": doc["payload_sha"],
                    "rows": doc["rows"],
                    "chunks": doc["chunks"],
                }
            else:
                raise ServeError(f"unexpected response line {kind!r}")
        raise ServeError("response ended without an end line")

    def stats(self) -> dict:
        for doc in self._roundtrip_lines({"op": "stats"}):
            if doc.get("type") == "error":
                raise ServeError(doc["error"])
            return doc["stats"]
        raise ServeError("no stats response")

    def ping(self) -> dict:
        for doc in self._roundtrip_lines({"op": "ping"}):
            return doc
        raise ServeError("no ping response")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> TCPServeClient:
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
