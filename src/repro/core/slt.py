"""Shallow-light trees — the paper's central construction (Section 2.2-2.3).

A spanning tree is *shallow-light* (SLT) if its diameter is ``O(script-D)``
and its weight is ``O(script-V)`` *simultaneously*.  Shortest-path trees
are shallow but may weigh ``Theta(n * V)``; minimum spanning trees are
light but may be ``Theta(n * D)`` deep ([BKJ83]); the SLT algorithm of
Figure 5 interpolates with a knob ``q > 0``:

* ``w(T)    <= (1 + 2/q) * script-V``      (Lemma 2.4, exact), and
* ``depth(T) <= (2q + 1) * script-D``       (Lemma 2.5's argument; the
  paper states the bound as ``(q+1) * D`` measuring ``dist(v(B_t), x, Ts)``
  against D — our constant is the one provable for arbitrary SPT tree
  metrics, and both are ``O(q * D)``).

The algorithm (Figure 5):

1. build an MST ``TM`` and an SPT ``Ts`` rooted at ``v0``;
2. unroll ``TM`` into its Euler tour "line" ``L`` (each tree edge appears
   twice, so ``w(L) <= 2 * script-V``);
3. scan L left-to-right placing *breakpoints*: the next breakpoint is the
   first point whose L-distance from the previous breakpoint exceeds ``q``
   times its Ts-tree-distance;
4. add the Ts tree path between consecutive breakpoints to ``TM``,
   obtaining subgraph ``G'``;
5. output the shortest-path tree of ``G'`` rooted at ``v0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphs.mst import prim_mst
from ..graphs.paths import shortest_path_tree, tree_distances, tree_path
from ..graphs.weighted_graph import Vertex, WeightedGraph

__all__ = ["SltResult", "shallow_light_tree", "euler_tour", "TreeMetric"]


def euler_tour(tree: WeightedGraph, root: Vertex) -> list[Vertex]:
    """The DFS Euler tour ``v(0), ..., v(2n-2)`` of ``tree`` from ``root``.

    Every tree edge is traversed exactly twice (once forward, once on the
    backtrack), so the tour has ``2n - 1`` entries and total line weight
    twice the tree weight.
    """
    tour: list[Vertex] = []
    seen: set[Vertex] = set()

    def visit(u: Vertex) -> None:
        seen.add(u)
        tour.append(u)
        for v in tree.neighbors(u):
            if v not in seen:
                visit(v)
                tour.append(u)

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 2 * tree.num_vertices + 100))
    try:
        visit(root)
    finally:
        sys.setrecursionlimit(old_limit)
    return tour


class TreeMetric:
    """Pairwise distances in a tree via depths and ancestor walks.

    ``dist(x, y) = depth(x) + depth(y) - 2 * depth(lca(x, y))``.
    """

    def __init__(self, tree: WeightedGraph, root: Vertex) -> None:
        self.root = root
        self.depth = tree_distances(tree, root)
        self.parent: dict[Vertex, Vertex | None] = {root: None}
        self.hops: dict[Vertex, int] = {root: 0}
        stack = [root]
        while stack:
            u = stack.pop()
            for v in tree.neighbors(u):
                if v not in self.parent:
                    self.parent[v] = u
                    self.hops[v] = self.hops[u] + 1
                    stack.append(v)

    def lca(self, x: Vertex, y: Vertex) -> Vertex:
        hx, hy = self.hops[x], self.hops[y]
        while hx > hy:
            x = self.parent[x]
            hx -= 1
        while hy > hx:
            y = self.parent[y]
            hy -= 1
        while x != y:
            x = self.parent[x]
            y = self.parent[y]
        return x

    def dist(self, x: Vertex, y: Vertex) -> float:
        a = self.lca(x, y)
        return self.depth[x] + self.depth[y] - 2.0 * self.depth[a]


@dataclass
class SltResult:
    """Output of the SLT algorithm plus its run diagnostics."""

    tree: WeightedGraph          # the shallow-light spanning tree
    root: Vertex
    q: float
    subgraph: WeightedGraph      # G' = MST + added SPT paths
    breakpoints: list[int]       # line indices B_1 < B_2 < ...
    tour: list[Vertex] = field(repr=False, default_factory=list)
    added_path_weight: float = 0.0

    @property
    def weight(self) -> float:
        return self.tree.total_weight()

    def depth(self) -> float:
        return max(tree_distances(self.tree, self.root).values(), default=0.0)


def shallow_light_tree(
    graph: WeightedGraph, root: Vertex, q: float = 2.0
) -> SltResult:
    """Construct a shallow-light spanning tree (Figure 5).

    ``q`` trades weight for depth: weight <= (1 + 2/q) V, depth = O(q D).
    """
    if q <= 0:
        raise ValueError("q must be positive")
    if root not in graph:
        raise KeyError(f"root {root!r} not in graph")
    n = graph.num_vertices
    if n == 1:
        single = WeightedGraph(vertices=[root])
        return SltResult(single, root, q, single, [], [root], 0.0)

    tm = prim_mst(graph, root)
    ts = shortest_path_tree(graph, root)
    ts_metric = TreeMetric(ts, root)

    # Step 2-3: Euler tour of the MST and the line L's prefix weights.
    tour = euler_tour(tm, root)
    prefix = [0.0]
    for i in range(len(tour) - 1):
        prefix.append(prefix[-1] + tm.weight(tour[i], tour[i + 1]))

    # Step 4: breakpoint scan.
    subgraph = tm.copy()
    breakpoints = [0]
    added_weight = 0.0
    x = 0
    for y in range(1, len(tour)):
        line_dist = prefix[y] - prefix[x]
        tree_dist = ts_metric.dist(tour[x], tour[y])
        if line_dist > q * tree_dist:
            # Add the Ts tree path between the breakpoint endpoints.
            path = tree_path(ts, tour[x], tour[y])
            for a, b in zip(path, path[1:]):  # noqa: B905  # pairwise walk wants the short zip
                if not subgraph.has_edge(a, b):
                    subgraph.add_edge(a, b, graph.weight(a, b))
                    added_weight += graph.weight(a, b)
            breakpoints.append(y)
            x = y

    # Step 5-6: final SPT inside G'.
    tree = shortest_path_tree(subgraph, root)
    return SltResult(tree, root, q, subgraph, breakpoints, tour, added_weight)
