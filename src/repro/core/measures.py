"""Cost-sensitive complexity measures (paper Section 1.3).

For a protocol ``pi`` executed on a weighted network:

* ``c_pi`` — communication complexity: the sum of ``w(e)`` over all message
  transmissions (size-weighted);
* ``t_pi`` — time complexity: the physical completion time under delays in
  ``[0, w(e)]`` (the benchmarks realize the worst case with the maximal
  delay model).

:class:`CostReport` pairs one run's measured complexities with the weighted
network parameters so bound checks like "is this O(n * script-V)?" become
one-line ratio computations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.params import NetworkParams, network_params
from ..graphs.weighted_graph import WeightedGraph

__all__ = ["CostReport", "report"]


@dataclass(frozen=True)
class CostReport:
    """Measured cost-sensitive complexities of one protocol run."""

    algorithm: str
    params: NetworkParams
    comm_cost: float      # c_pi
    time: float           # t_pi
    message_count: int

    def comm_ratio(self, bound: float) -> float:
        """``c_pi / bound`` — the constant hiding in an O(bound) claim."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.comm_cost / bound

    def time_ratio(self, bound: float) -> float:
        """``t_pi / bound``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.time / bound

    def __str__(self) -> str:
        return (
            f"{self.algorithm}: c={self.comm_cost:g} t={self.time:g} "
            f"msgs={self.message_count} on [{self.params}]"
        )


def report(
    algorithm: str,
    graph: WeightedGraph,
    comm_cost: float,
    time: float,
    message_count: int,
    params: NetworkParams | None = None,
) -> CostReport:
    """Build a :class:`CostReport`, computing network parameters if needed."""
    if params is None:
        params = network_params(graph)
    return CostReport(algorithm, params, comm_cost, time, message_count)
