"""Global symmetric compact function computation (Sections 1.4.1, 2).

A function family ``f_n : X^n -> X`` is *symmetric compact* ([GS86]) if it
is symmetric in its arguments and there is a combiner ``g : X^2 -> X`` with
``f_n(x_1..x_n) = g(f_k(x_1..x_k), f_{n-k}(x_{k+1}..x_n))`` — i.e. partial
results fit in one word and merge associatively/commutatively.  Maximum,
sum, AND/OR/XOR, counting, termination detection and broadcast are all
instances.

Theorem 2.1 + Corollary 2.3: computing such a function (inputs at the
vertices, output required *everywhere*) takes ``Theta(script-V)``
communication and ``Theta(script-D)`` time.  The optimal protocol runs a
convergecast followed by a broadcast over a shallow-light tree:
``c <= 2 w(SLT) = O(V)`` and ``t <= 2 depth(SLT) = O(D)``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from ..faults.plan import FaultPlan
from ..faults.transport import reliable_factory
from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..sim.network import Network, RunResult
from ..sim.process import Process
from ..protocols.convergecast import rooted_tree_structure
from .slt import shallow_light_tree

__all__ = [
    "SymmetricCompactFunction",
    "MAX",
    "MIN",
    "SUM",
    "COUNT",
    "XOR",
    "AND",
    "OR",
    "GlobalFunctionProcess",
    "compute_global_function",
    "broadcast_value",
    "detect_termination",
]


@dataclass(frozen=True)
class SymmetricCompactFunction:
    """A symmetric compact function: a name and its binary combiner ``g``."""

    name: str
    combine: Callable[[Any, Any], Any]

    def fold(self, values: list) -> Any:
        """Reference (sequential) evaluation, for oracles in tests."""
        if not values:
            raise ValueError("need at least one argument")
        acc = values[0]
        for v in values[1:]:
            acc = self.combine(acc, v)
        return acc


MAX = SymmetricCompactFunction("max", max)
MIN = SymmetricCompactFunction("min", min)
SUM = SymmetricCompactFunction("sum", lambda a, b: a + b)
COUNT = SymmetricCompactFunction("count", lambda a, b: a + b)
XOR = SymmetricCompactFunction("xor", lambda a, b: a ^ b)
AND = SymmetricCompactFunction("and", lambda a, b: a and b)
OR = SymmetricCompactFunction("or", lambda a, b: a or b)


class GlobalFunctionProcess(Process):
    """Convergecast-then-broadcast over a known rooted tree.

    Phase 1 aggregates the inputs up to the root with the combiner ``g``;
    phase 2 broadcasts ``f_n(x_1..x_n)`` back down.  Every node finishes
    holding the global value, as the problem statement requires ("outputs
    must be produced at all the vertices").
    """

    def __init__(
        self,
        parent: Vertex | None,
        children: list[Vertex],
        value: Any,
        func: SymmetricCompactFunction,
    ) -> None:
        self.parent = parent
        self.children = children
        self.acc = value
        self.func = func
        self._waiting = len(children)

    def on_start(self) -> None:
        if self._waiting == 0:
            self._report_up()

    def on_message(self, frm: Vertex, payload: Any) -> None:
        kind, value = payload
        if kind == "up":
            self.acc = self.func.combine(self.acc, value)
            self._waiting -= 1
            if self._waiting == 0:
                self._report_up()
        elif kind == "down":
            self._announce(value)
        else:
            raise AssertionError(f"unknown global-function message {kind!r}")

    def _report_up(self) -> None:
        if self.parent is not None:
            self.send(self.parent, ("up", self.acc), tag="converge")
        else:
            self._announce(self.acc)

    def _announce(self, value: Any) -> None:
        self.finish(value)
        for c in self.children:
            self.send(c, ("down", value), tag="broadcast")


def compute_global_function(
    graph: WeightedGraph,
    inputs: dict[Vertex, Any],
    func: SymmetricCompactFunction,
    *,
    root: Vertex | None = None,
    q: float = 2.0,
    tree: WeightedGraph | None = None,
    delay: DelayModel | None = None,
    seed: int = 0,
    faults: FaultPlan | None = None,
    reliable: bool = False,
    transport: dict | None = None,
) -> tuple[RunResult, Any]:
    """Compute ``func`` over ``inputs`` with O(V) communication, O(D) time.

    Builds a shallow-light tree with parameter ``q`` (preprocessing, per the
    paper's known-topology assumption) unless an explicit ``tree`` is given,
    then runs the two-phase protocol.  Returns (run result, global value);
    every node's local result equals the global value.  ``faults`` injects
    an adversary; ``reliable=True`` makes the protocol survive it via the
    retransmitting transport (options in ``transport``).
    """
    if set(inputs) != set(graph.vertices):
        raise ValueError("inputs must provide a value for every vertex")
    if root is None:
        root = graph.vertices[0]
    if tree is None:
        tree = shallow_light_tree(graph, root, q).tree
    parent, children = rooted_tree_structure(tree, root)
    factory = lambda v: GlobalFunctionProcess(
        parent[v], children[v], inputs[v], func
    )
    if reliable:
        factory = reliable_factory(factory, **(transport or {}))
    net = Network(tree, factory, delay=delay, seed=seed, faults=faults)
    result = net.run()
    value = result.result_of(root)
    return result, value


# --------------------------------------------------------------------- #
# Derived tasks (Section 1.4.1): "many other tasks, e.g. broadcasting a
# message from a given node to the rest of the network, termination
# detection, global synchronization, etc. can be represented as computing
# a symmetric compact function."
# --------------------------------------------------------------------- #

_ABSENT = ("absent",)


def _pick_present(a: Any, b: Any) -> Any:
    """Combiner for broadcast: propagate the unique non-absent input."""
    return b if a is _ABSENT else a


BROADCAST = SymmetricCompactFunction("broadcast", _pick_present)


def broadcast_value(
    graph: WeightedGraph,
    origin: Vertex,
    value: Any,
    *,
    root: Vertex | None = None,
    q: float = 2.0,
    delay: DelayModel | None = None,
    seed: int = 0,
) -> tuple[RunResult, Any]:
    """Broadcast ``value`` from ``origin`` to every vertex in Theta(V) cost.

    Modeled as the symmetric compact function whose only non-absent
    argument is the origin's; every node finishes holding ``value``.
    """
    inputs = {v: (_ABSENT if v != origin else value) for v in graph.vertices}
    return compute_global_function(
        graph, inputs, BROADCAST, root=root, q=q, delay=delay, seed=seed
    )


def detect_termination(
    graph: WeightedGraph,
    locally_done: dict[Vertex, bool],
    *,
    root: Vertex | None = None,
    q: float = 2.0,
    delay: DelayModel | None = None,
    seed: int = 0,
) -> tuple[RunResult, bool]:
    """Global termination detection: the AND of the local done flags.

    Every vertex learns whether the whole system has terminated, with
    Theta(V) communication and Theta(D) time.
    """
    flags = {v: bool(locally_done[v]) for v in graph.vertices}
    result, value = compute_global_function(
        graph, flags, AND, root=root, q=q, delay=delay, seed=seed
    )
    return result, bool(value)
