"""Distributed SLT construction — Theorem 2.7.

The distributed algorithm composes three stages:

1. run ``MST_centr`` (Section 6.3): ``O(n * script-V)`` communication,
   ``O(n * Diam(MST))`` time; afterwards *every* vertex knows the MST;
2. every vertex locally unrolls the MST into the Euler line, runs the
   breakpoint scan and derives the subgraph ``G'`` — a deterministic
   computation on common knowledge, hence free of communication (the
   full-information model of Section 6);
3. run ``SPT_centr`` (Section 6.4) *inside G'* to build the final tree:
   ``O(n * w(G')) = O(n^2 * script-V)`` communication, ``O(n * D)`` time.

Overall ``O(script-V * n^2)`` communication and ``O(script-D * n^2)`` time
(using ``V <= (n-1) D``, Fact 6.3), matching Theorem 2.7.
"""

from __future__ import annotations


from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.delays import DelayModel
from ..protocols.full_info import run_mst_centr, run_spt_centr
from .measures import CostReport, report
from .slt import SltResult, shallow_light_tree

__all__ = ["DistributedSltOutcome", "run_distributed_slt"]


class DistributedSltOutcome:
    """Combined result of the three distributed SLT stages."""

    def __init__(self, slt: SltResult, mst_report: CostReport,
                 spt_report: CostReport) -> None:
        self.slt = slt
        self.mst_report = mst_report
        self.spt_report = spt_report

    @property
    def tree(self) -> WeightedGraph:
        return self.slt.tree

    @property
    def comm_cost(self) -> float:
        return self.mst_report.comm_cost + self.spt_report.comm_cost

    @property
    def time(self) -> float:
        # Stages run sequentially: total time is the sum.
        return self.mst_report.time + self.spt_report.time


def run_distributed_slt(
    graph: WeightedGraph,
    root: Vertex,
    q: float = 2.0,
    *,
    delay: DelayModel | None = None,
    seed: int = 0,
) -> DistributedSltOutcome:
    """Build an SLT distributedly (Theorem 2.7); returns costs + the tree.

    The returned tree is identical to the sequential
    :func:`~repro.core.slt.shallow_light_tree` output (the distributed
    algorithm computes the same deterministic construction), and the
    reported costs are the measured simulation costs of the two
    communication stages.
    """
    from ..graphs.params import network_params

    params = network_params(graph)

    # Stage 1: distributed MST with full information.
    mst_result, mst_tree = run_mst_centr(graph, root, delay=delay, seed=seed)
    mst_rep = report(
        "MST_centr",
        graph,
        mst_result.comm_cost,
        mst_result.time,
        mst_result.message_count,
        params=params,
    )

    # Stage 2: local derivation of G' at every vertex (free: deterministic
    # function of common knowledge).  We compute it once.
    slt = shallow_light_tree(graph, root, q)

    # Stage 3: distributed SPT inside G'.
    spt_result, _ = run_spt_centr(slt.subgraph, root, delay=delay, seed=seed)
    spt_rep = report(
        "SPT_centr(G')",
        graph,
        spt_result.comm_cost,
        spt_result.time,
        spt_result.message_count,
        params=params,
    )
    return DistributedSltOutcome(slt, mst_rep, spt_rep)
