"""Lower-bound witnesses (Theorem 2.1 and Section 7.1).

The paper's lower bounds are information-theoretic; what a reproduction can
do is (a) compute the exact bound value for each instance and (b) audit
concrete runs against it.  Two families:

* **Global functions (Thm 2.1).**  Any protocol computing a global
  symmetric compact function uses edges forming a connected spanning
  subgraph, hence communication >= ``script-V``; and some output vertex is
  at weighted distance >= ``script-D`` from some input, hence time >=
  ``script-D`` (against the maximal-delay adversary).

* **Connectivity / spanning tree on G_n (Lemmas 7.1-7.2).**  On the family
  ``G_n`` (light path of weight-X edges + weight-X^4 bypass edges), any
  correct comparison-based algorithm must, for every ``1 <= i < n/2``,
  bring together the id of ``i`` and the bypassing-register content of
  ``n+1-i`` (or symmetrically), or the run is indistinguishable from one on
  the split graph ``G_n^i`` where the algorithm fails.  Transporting that
  id costs at least ``X * (n + 1 - 2i)`` (the path distance), so summing
  over i gives ``Omega(n^2 X) = Omega(n * script-V)`` total.
"""

from __future__ import annotations

from ..graphs.mst import mst_weight
from ..graphs.paths import diameter
from ..graphs.weighted_graph import WeightedGraph

__all__ = [
    "global_function_comm_lower_bound",
    "global_function_time_lower_bound",
    "connectivity_comm_lower_bound",
    "id_transport_cost",
    "check_run_against_global_bounds",
]


def global_function_comm_lower_bound(graph: WeightedGraph) -> float:
    """``Omega(script-V)``: weight of the cheapest connected spanning subgraph."""
    return mst_weight(graph)


def global_function_time_lower_bound(graph: WeightedGraph) -> float:
    """``Omega(script-D)``: information must cross the weighted diameter."""
    return diameter(graph)


def id_transport_cost(n: int, heavy: float | None = None) -> float:
    """Lemma 7.2's exact sum for ``G_n``: ``X * sum_{i<n/2} (n + 1 - 2i)``.

    This is the minimum total cost any correct spanning-tree algorithm pays
    on ``G_n`` for transporting the pair-identifying ids along the light
    path (bypass edges cost X^4 >= n * script-V each, so a cheap algorithm
    never uses them).  The sum is ``>= n^2 X / 4``.
    """
    x = float(n + 1) if heavy is None else heavy
    return x * sum(n + 1 - 2 * i for i in range(1, (n + 1) // 2))


def connectivity_comm_lower_bound(graph: WeightedGraph) -> float:
    """``Omega(min{script-E, n * script-V})`` for connectivity (Section 7).

    Returned with the paper's constants dropped (coefficient 1/4 on the
    ``n * V`` side, matching Lemma 7.2's ``n^2 X / 4``).
    """
    n = graph.num_vertices
    e = graph.total_weight()
    v = mst_weight(graph)
    return min(e, n * v / 4.0)


def check_run_against_global_bounds(
    graph: WeightedGraph, comm_cost: float, time: float
) -> dict[str, float]:
    """Audit one global-function run against Theorem 2.1.

    Returns the measured/lower-bound ratios (both must be >= 1 for any
    correct protocol; raises AssertionError otherwise).
    """
    comm_lb = global_function_comm_lower_bound(graph)
    time_lb = global_function_time_lower_bound(graph)
    ratios = {
        "comm_ratio": comm_cost / comm_lb if comm_lb > 0 else float("inf"),
        "time_ratio": time / time_lb if time_lb > 0 else float("inf"),
    }
    if ratios["comm_ratio"] < 1.0 - 1e-9:
        raise AssertionError(
            f"communication {comm_cost} below the Omega(V) bound {comm_lb}"
        )
    return ratios
