"""The paper's primary contribution: cost measures, SLTs, global functions."""

from .global_function import (
    AND,
    COUNT,
    MAX,
    MIN,
    OR,
    SUM,
    XOR,
    GlobalFunctionProcess,
    SymmetricCompactFunction,
    broadcast_value,
    compute_global_function,
    detect_termination,
)
from .lower_bounds import (
    check_run_against_global_bounds,
    connectivity_comm_lower_bound,
    global_function_comm_lower_bound,
    global_function_time_lower_bound,
    id_transport_cost,
)
from .measures import CostReport, report
from .slt import SltResult, TreeMetric, euler_tour, shallow_light_tree
from .slt_distributed import DistributedSltOutcome, run_distributed_slt

__all__ = [
    "CostReport",
    "report",
    "SltResult",
    "TreeMetric",
    "euler_tour",
    "shallow_light_tree",
    "DistributedSltOutcome",
    "run_distributed_slt",
    "SymmetricCompactFunction",
    "GlobalFunctionProcess",
    "compute_global_function",
    "broadcast_value",
    "detect_termination",
    "MAX",
    "MIN",
    "SUM",
    "COUNT",
    "XOR",
    "AND",
    "OR",
    "global_function_comm_lower_bound",
    "global_function_time_lower_bound",
    "connectivity_comm_lower_bound",
    "id_transport_cost",
    "check_run_against_global_bounds",
]

from .id_flow import (  # noqa: E402
    IdAuditedProcess,
    extract_ids,
    id_crossings,
    lemma_7_1_meetings,
    meeting_points,
    run_audited,
)

__all__ += [
    "IdAuditedProcess",
    "extract_ids",
    "run_audited",
    "meeting_points",
    "id_crossings",
    "lemma_7_1_meetings",
]
