"""Knowledge-flow auditing: the observable side of Lemmas 7.1/7.2.

The Omega(nV) lower bound (Section 7.1) is an argument about *information
flow*: in a correct comparison-based run on ``G_n``, for every bypass pair
``(i, n+1-i)`` the two sides' identities must come together somewhere
(Lemma 7.1 — otherwise the run cannot be distinguished from one on the
split graph ``G_n^i`` of Figure 8), and transporting those identifiers
along the light path costs ``X * (n+1-2i)`` each (Lemma 7.2).

This module makes that information flow *observable* on real runs:

* :class:`IdAuditedProcess` wraps any protocol and records, per vertex,
  the set of vertex ids it has learned — a priori (its own id and its
  neighbors' ids, the paper's "registers") plus every id appearing in a
  received payload (including inside GHS fragment names, which embed
  endpoint reprs);
* :func:`meeting_points` lists where two ids came together;
* :func:`id_crossings` counts, per id, how many edge crossings carried
  it — the quantity Lemma 7.2 sums.

Scope note: on ``G_n`` itself the bypass endpoints are *adjacent*, so
the meeting condition restricted to register knowledge is satisfied a
priori at the endpoints; the lower bound's real force is about learning
the *binding* between an id and a remote register, which only a fully
comparison-based execution model can capture.  What the auditor measures
faithfully is the transport side: which ids actually moved, and how far.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..graphs.weighted_graph import Vertex, WeightedGraph
from ..sim.network import Network, RunResult
from ..sim.process import Process

__all__ = [
    "extract_ids",
    "IdAuditedProcess",
    "run_audited",
    "meeting_points",
    "id_crossings",
    "lemma_7_1_meetings",
]


def extract_ids(payload: Any, universe: frozenset) -> set:
    """All vertex ids of ``universe`` appearing (recursively) in a payload.

    Strings matching an id's ``repr`` count too, so ids embedded in GHS
    fragment-name keys are detected.
    """
    found: set = set()
    _scan(payload, universe, found)
    return found


def _scan(obj: Any, universe: frozenset, found: set) -> None:
    try:
        if obj in universe:
            found.add(obj)
            return
    except TypeError:
        pass
    if isinstance(obj, dict):
        for k, v in obj.items():
            _scan(k, universe, found)
            _scan(v, universe, found)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            _scan(item, universe, found)
    elif isinstance(obj, str):
        for v in sorted(universe, key=repr):  # normalized frozenset order
            if repr(v) == obj:
                found.add(v)


class _AuditShim:
    """Pass-through context that lets the auditor observe traffic."""

    def __init__(self, outer: IdAuditedProcess) -> None:
        self._outer = outer
        self.node_id = outer.ctx.node_id
        self.neighbors = outer.ctx.neighbors
        self.weights = outer.ctx.weights

    @property
    def now(self):
        return self._outer.ctx.now

    @property
    def is_finished(self):
        return self._outer.ctx.is_finished

    @property
    def result(self):
        return self._outer.ctx.result

    def send(self, to, payload, size, tag):
        self._outer.record_send(payload)
        self._outer.ctx.send(to, payload, size, tag)

    def set_timer(self, delay, callback):
        self._outer.ctx.set_timer(delay, callback)

    def finish(self, result):
        self._outer.ctx.finish(result)


class IdAuditedProcess(Process):
    """Wraps a protocol instance, recording the ids it learns and ships."""

    def __init__(self, inner: Process, universe: frozenset) -> None:
        self.inner = inner
        self.universe = universe
        self.known: set = set()
        self.sent_crossings: dict = defaultdict(int)  # id -> #sends carrying it

    def on_start(self) -> None:
        # A priori knowledge: own id and the neighbor registers.
        self.known.add(self.node_id)
        self.known.update(self.neighbors())
        self.inner.ctx = _AuditShim(self)
        self.inner.on_start()

    def record_send(self, payload: Any) -> None:
        for vid in extract_ids(payload, self.universe):
            self.sent_crossings[vid] += 1

    def on_message(self, frm: Vertex, payload: Any) -> None:
        self.known |= extract_ids(payload, self.universe)
        self.inner.on_message(frm, payload)


def run_audited(
    graph: WeightedGraph,
    inner_factory,
    *,
    delay=None,
    seed: int = 0,
    stop_when=None,
    max_events: int = 20_000_000,
) -> RunResult:
    """Run a protocol with id auditing on every vertex."""
    universe = frozenset(graph.vertices)
    net = Network(
        graph,
        lambda v: IdAuditedProcess(inner_factory(v), universe),
        delay=delay,
        seed=seed,
    )
    return net.run(stop_when=stop_when, max_events=max_events)


def meeting_points(result: RunResult, a: Vertex, b: Vertex) -> list:
    """Vertices that (came to) know both ids ``a`` and ``b``."""
    return [
        v for v, proc in result.processes.items()
        if a in proc.known and b in proc.known
    ]


def id_crossings(result: RunResult) -> dict:
    """Total edge crossings per id across the whole run (Lemma 7.2's sum)."""
    totals: dict = defaultdict(int)
    for proc in result.processes.values():
        for vid, count in proc.sent_crossings.items():
            totals[vid] += count
    return dict(totals)


def lemma_7_1_meetings(result: RunResult, n: int) -> dict:
    """Where each bypass pair of ``G_n`` met: ``{i: meeting_vertices}``.

    On G_n the pair endpoints meet a priori (they are adjacent); the
    interesting output is the *other* meeting vertices — the ones created
    by actual id transport.
    """
    return {
        i: meeting_points(result, i, n + 1 - i)
        for i in range(1, (n + 1) // 2)
        if (n + 1 - i) not in (i, i + 1)
    }
