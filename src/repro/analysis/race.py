"""Runtime shared-state race detector for the simulated concurrency model.

The simulator runs every process in one OS thread, so nothing in Python
stops process *A*'s handler from writing process *B*'s attributes or
mutating a payload object that is still sitting in the event queue — bugs
that would be genuine data races on a real network and that silently break
the determinism contract here (the receiver observes state that depends on
event interleaving, not on the protocol).

``Network(race_detect=True)`` arms this detector.  Two checks:

**Ownership tagging.**  Every registered process instance is re-classed to
a generated subclass whose ``__setattr__`` consults the detector: while
the network executes a handler on behalf of node *A* (``on_start``,
``on_message``, a timer callback, ``on_recover``), attribute writes to a
process owned by node *B* raise :class:`SharedStateViolation`.  Classes
with ``__slots__`` (no instance ``__dict__``) cannot be re-classed and are
skipped — the payload check below still covers them.

**Sent-payload immutability.**  Every scheduled delivery fingerprints its
payload (``repr`` — faithful for the tuples/dicts/lists/dataclasses every
protocol here sends).  If the payload's fingerprint changed between send
and delivery — the sender kept a reference and mutated it, or an earlier
receiver of the *same object* mutated it while copies were still in
flight — the delivery raises.  Re-sending a mutated object is caught at
the second send.

Disabled (the default), the detector costs one ``is None`` check per
*send* (the same normalization pattern as the ``repro.obs`` recorder) and
nothing at all per *delivery* or timer: the network swaps in wrapped
delivery methods only when armed.

``race_detect="record"`` collects violations on
``Network.race_detector.violations`` (and emits a ``violation`` trace
event when a recorder is attached) instead of raising — useful for
sweeping an existing suite for hazards without aborting runs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

__all__ = ["SharedStateViolation", "RaceDetector", "violation_signature",
           "violation_signatures"]

#: Sentinel owner for framework phases (construction, scheduling) during
#: which writes are unrestricted.
_FRAMEWORK = object()


class SharedStateViolation(RuntimeError):
    """A process touched state it does not own.

    ``kind`` is ``"cross-write"`` (attribute write across the process
    boundary) or ``"payload-mutation"`` (a message object changed between
    send and delivery).
    """

    def __init__(self, kind: str, message: str, *, node: Any = None,
                 owner: Any = None, t: float = 0.0) -> None:
        super().__init__(message)
        self.kind = kind
        self.node = node
        self.owner = owner
        self.t = t


def violation_signature(violation: SharedStateViolation) -> tuple[str, str, str]:
    """Canonical hashable identity of one violation: who raced with whom.

    Deliberately excludes the message text and timestamp: two runs that
    trip the *same* hazard (same kind, same actor, same victim) at
    different times or with different payload reprs should coalesce —
    this is the key the chaos fuzzer's coverage map dedupes on.
    """
    return (violation.kind, repr(violation.node), repr(violation.owner))


def violation_signatures(
    violations: Iterable[SharedStateViolation],
) -> tuple[tuple[str, str, str], ...]:
    """Sorted, deduplicated signature tuple for a run's violation list.

    Plain nested tuples of strings: hashable (novelty keys), picklable
    (crosses sweep-pool boundaries), and byte-stable under ``repr`` /
    ``json.dumps`` (fuzz-corpus determinism).
    """
    return tuple(sorted({violation_signature(v) for v in violations}))


# Generated guard subclass per original process class (shared across
# detectors: the guard reads the detector off the instance).
_guarded_classes: dict[type, type | None] = {}


def _guard_class(cls: type) -> type | None:
    """A subclass of ``cls`` whose ``__setattr__`` consults the detector.

    Returns None when ``cls`` cannot be re-classed (``__slots__`` layouts
    differ, so instances without a ``__dict__`` are left unguarded).
    """
    if cls in _guarded_classes:
        return _guarded_classes[cls]

    def __setattr__(self: Any, name: str, value: Any,
                    _base: type = cls) -> None:
        detector = self.__dict__.get("_race_detector")
        if detector is not None:
            detector.on_attr_write(self, name)
        _base.__setattr__(self, name, value)

    def __delattr__(self: Any, name: str, _base: type = cls) -> None:
        detector = self.__dict__.get("_race_detector")
        if detector is not None:
            detector.on_attr_write(self, name)
        _base.__delattr__(self, name)

    guarded: type | None
    try:
        guarded = type(
            f"_RaceGuarded{cls.__name__}", (cls,),
            {"__setattr__": __setattr__, "__delattr__": __delattr__},
        )
    except TypeError:
        guarded = None
    _guarded_classes[cls] = guarded
    return guarded


class RaceDetector:
    """One network's shared-state monitor (see the module docstring).

    Parameters
    ----------
    mode:
        ``"raise"`` aborts the run at the first violation;
        ``"record"`` collects them on :attr:`violations` (and emits
        ``violation`` trace events when the network has a recorder).
    """

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "record"):
            raise ValueError(f"race_detect mode must be 'raise' or 'record', "
                             f"got {mode!r}")
        self.mode = mode
        self.violations: list[SharedStateViolation] = []
        self.active_owner: Any = _FRAMEWORK
        self._network: Any = None
        # id(payload) -> [fingerprint, pending_delivery_count, payload].
        # The strong payload reference pins the id for the entry's lifetime.
        self._in_flight: dict[int, list[Any]] = {}

    # ------------------------------------------------------------------ #
    # Arming (called by Network.__init__)
    # ------------------------------------------------------------------ #

    def attach(self, network: Any) -> None:
        """Tag every registered process and wrap the delivery hot paths."""
        self._network = network
        for node, proc in network.processes.items():
            guarded = _guard_class(type(proc))
            if guarded is None:
                continue  # class could not grow a guard subclass
            try:
                proc.__class__ = guarded
            except TypeError:
                # __slots__ layout without __dict__: cannot re-class.
                _guarded_classes[type(proc)] = None
                continue
            # object.__setattr__ so the installs themselves aren't checked.
            object.__setattr__(proc, "_race_owner", node)
            object.__setattr__(proc, "_race_detector", self)
        network._deliver = self._wrap_deliver(network._deliver)
        network._deliver_traced = self._wrap_deliver_traced(
            network._deliver_traced)
        network._timer_fire = self._wrap_timer_fire(network._timer_fire)

    # ------------------------------------------------------------------ #
    # Violation plumbing
    # ------------------------------------------------------------------ #

    def _violation(self, kind: str, message: str, *, node: Any = None,
                   owner: Any = None) -> None:
        t = self._network.queue.now if self._network is not None else 0.0
        violation = SharedStateViolation(kind, message, node=node,
                                         owner=owner, t=t)
        if self.mode == "raise":
            raise violation
        self.violations.append(violation)
        rec = self._network._rec if self._network is not None else None
        if rec is not None:
            rec.record_violation(t, node, kind, message)

    # ------------------------------------------------------------------ #
    # Ownership check (called from the guarded __setattr__)
    # ------------------------------------------------------------------ #

    def on_attr_write(self, proc: Any, name: str) -> None:
        active = self.active_owner
        if active is _FRAMEWORK:
            return
        owner = proc.__dict__.get("_race_owner")
        if owner is None or owner == active:
            return
        self._violation(
            "cross-write",
            f"process {active!r} wrote attribute {name!r} of the process "
            f"owned by {owner!r} (cross-process shared state)",
            node=active, owner=owner,
        )

    # ------------------------------------------------------------------ #
    # Payload fingerprinting
    # ------------------------------------------------------------------ #

    @staticmethod
    def _fingerprint(payload: Any) -> str:
        return repr(payload)

    def note_scheduled(self, payload: Any) -> None:
        """Fingerprint one scheduled delivery of ``payload``.

        Called by :meth:`Network._transmit` once per delivery it schedules
        (the fault adversary may fan one send into several deliveries, a
        corrupted copy, or none).
        """
        if payload is None or type(payload) in (int, float, str, bool,
                                                bytes):
            return  # immutable scalars cannot race
        entry = self._in_flight.get(id(payload))
        fp = self._fingerprint(payload)
        if entry is None:
            self._in_flight[id(payload)] = [fp, 1, payload]
            return
        if entry[0] != fp:
            self._violation(
                "payload-mutation",
                f"payload re-sent after mutation while earlier copies are "
                f"still in flight: now {fp[:120]!r}, was {entry[0][:120]!r}",
                node=self.active_owner,
            )
            entry[0] = fp  # report once per mutation, then re-arm
        entry[1] += 1

    def _check_delivered(self, frm: Any, to: Any, payload: Any) -> None:
        if payload is None or type(payload) in (int, float, str, bool,
                                                bytes):
            return
        entry = self._in_flight.get(id(payload))
        if entry is None:
            return  # adversary-synthesized payload (corruption copy)
        fp = self._fingerprint(payload)
        if entry[0] != fp:
            self._violation(
                "payload-mutation",
                f"payload from {frm!r} to {to!r} mutated between send and "
                f"delivery: sent {entry[0][:120]!r}, delivered {fp[:120]!r}",
                node=to, owner=frm,
            )
            entry[0] = fp
        entry[1] -= 1
        if entry[1] <= 0:
            del self._in_flight[id(payload)]  # receiver owns it now

    # ------------------------------------------------------------------ #
    # Hot-path wrappers (installed as instance attributes when armed)
    # ------------------------------------------------------------------ #

    def _wrap_deliver(self, inner: Callable[..., None]) -> Callable[..., None]:
        def _deliver(frm: Any, to: Any, payload: Any) -> None:
            self._check_delivered(frm, to, payload)
            prev = self.active_owner
            self.active_owner = to
            try:
                inner(frm, to, payload)
            finally:
                self.active_owner = prev
        return _deliver

    def _wrap_deliver_traced(self,
                             inner: Callable[..., None]) -> Callable[..., None]:
        def _deliver_traced(frm: Any, to: Any, payload: Any,
                            ref: int) -> None:
            self._check_delivered(frm, to, payload)
            prev = self.active_owner
            self.active_owner = to
            try:
                inner(frm, to, payload, ref)
            finally:
                self.active_owner = prev
        return _deliver_traced

    def _wrap_timer_fire(self, inner: Callable[..., None]) -> Callable[..., None]:
        def _timer_fire(node: Any, callback: Callable[[], None]) -> None:
            prev = self.active_owner
            self.active_owner = node
            try:
                inner(node, callback)
            finally:
                self.active_owner = prev
        return _timer_fire

    # Hooks for the cold paths Network guards explicitly. ----------------#

    def run_as(self, node: Any) -> _OwnerCtx:
        """Context manager attributing writes to ``node`` (cold paths)."""
        return _OwnerCtx(self, node)

    def owned_callback(self, node: Any,
                       callback: Callable[[], None]) -> Callable[[], None]:
        """Wrap a raw queue callback so its writes are attributed to ``node``
        (used for timers deferred across a crash, which bypass
        ``_timer_fire`` on recovery)."""
        def fire() -> None:
            prev = self.active_owner
            self.active_owner = node
            try:
                callback()
            finally:
                self.active_owner = prev
        return fire


class _OwnerCtx:
    __slots__ = ("_detector", "_node", "_prev")

    def __init__(self, detector: RaceDetector, node: Any) -> None:
        self._detector = detector
        self._node = node
        self._prev: Any = _FRAMEWORK

    def __enter__(self) -> _OwnerCtx:
        self._prev = self._detector.active_owner
        self._detector.active_owner = self._node
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._detector.active_owner = self._prev
        return False
