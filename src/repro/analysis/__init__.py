"""Correctness tooling for the determinism contract (``repro.analysis``).

Everything the perf and chaos subsystems guarantee — serial == pool sweep
rows, byte-identical trace fingerprints, the bench ``--compare`` gate —
assumes each simulation is a pure function of its seeds.  This package
*enforces* the coding rules that make that true, in the spirit of the
distributed-verification line of work the paper's MST section builds on:

* a **static pass** (``python -m repro.analysis``): an AST linter with
  rule codes ``RS001``–``RS005`` covering hash-order iteration, seeded-RNG
  bypass, wall-clock reads, graph-cache invalidation, and shared-state
  aliasing (:mod:`repro.analysis.rules`), with a committed-baseline gate
  (:mod:`repro.analysis.baseline`) so CI fails only on *new* findings;

* a **message-flow pass** (``python -m repro.analysis --flow``): an
  interprocedural checker (:mod:`repro.analysis.flow`) that extracts each
  module's send sites, handler dispatch ladders, and helper call graph,
  then enforces the send/handle contract with rules ``RS006``–``RS010``
  (unhandled kinds, dead handler arms, off-taxonomy tags, handler-reachable
  nondeterminism, and static cross-process payload writes) and exports the
  kind graph as DOT/ASCII;

* a **runtime pass**: ``Network(race_detect=True)`` arms
  :class:`~repro.analysis.race.RaceDetector`, which ownership-tags every
  process and fingerprints every in-flight payload, raising (or, in
  ``"record"`` mode, logging) a :class:`SharedStateViolation` on
  cross-process writes and post-send payload mutation.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineError, diff_against
from .findings import Finding
from .flow import (
    PROTOCOL_MODULES,
    ModuleFlow,
    extract_module_flow,
    flow_of_source,
    flow_to_ascii,
    flow_to_dot,
)
from .race import (
    RaceDetector,
    SharedStateViolation,
    violation_signature,
    violation_signatures,
)
from .rules import FLOW_CODES, RULES, analyze_source

__all__ = [
    "Finding",
    "FLOW_CODES",
    "RULES",
    "analyze_source",
    "Baseline",
    "BaselineError",
    "diff_against",
    "ModuleFlow",
    "PROTOCOL_MODULES",
    "extract_module_flow",
    "flow_of_source",
    "flow_to_ascii",
    "flow_to_dot",
    "RaceDetector",
    "SharedStateViolation",
    "violation_signature",
    "violation_signatures",
]
