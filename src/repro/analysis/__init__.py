"""Correctness tooling for the determinism contract (``repro.analysis``).

Everything the perf and chaos subsystems guarantee — serial == pool sweep
rows, byte-identical trace fingerprints, the bench ``--compare`` gate —
assumes each simulation is a pure function of its seeds.  This package
*enforces* the coding rules that make that true, in the spirit of the
distributed-verification line of work the paper's MST section builds on:

* a **static pass** (``python -m repro.analysis``): an AST linter with
  rule codes ``RS001``–``RS005`` covering hash-order iteration, seeded-RNG
  bypass, wall-clock reads, graph-cache invalidation, and shared-state
  aliasing (:mod:`repro.analysis.rules`), with a committed-baseline gate
  (:mod:`repro.analysis.baseline`) so CI fails only on *new* findings;

* a **runtime pass**: ``Network(race_detect=True)`` arms
  :class:`~repro.analysis.race.RaceDetector`, which ownership-tags every
  process and fingerprints every in-flight payload, raising (or, in
  ``"record"`` mode, logging) a :class:`SharedStateViolation` on
  cross-process writes and post-send payload mutation.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineError, diff_against
from .findings import Finding
from .race import (
    RaceDetector,
    SharedStateViolation,
    violation_signature,
    violation_signatures,
)
from .rules import RULES, analyze_source

__all__ = [
    "Finding",
    "RULES",
    "analyze_source",
    "Baseline",
    "BaselineError",
    "diff_against",
    "RaceDetector",
    "SharedStateViolation",
    "violation_signature",
    "violation_signatures",
]
