"""Baseline files: fail CI only on *new* determinism findings.

A baseline is a committed JSON document listing accepted findings by their
line-drift-stable fingerprint (rule, path, context, snippet) plus a
required ``justification`` string — an un-justified entry is a load error,
which is what keeps the baseline from becoming a silent dumping ground.

:func:`diff_against` partitions current findings into ``new`` (not in the
baseline — these fail the gate) and reports ``stale`` baseline entries
that no longer match anything (these warn, so fixed hazards get pruned).
"""

from __future__ import annotations

import json
from pathlib import Path

from .findings import Finding

__all__ = ["Baseline", "BaselineError", "diff_against"]

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """A baseline file is malformed or missing a justification."""


class Baseline:
    """The set of accepted finding fingerprints, with justifications."""

    def __init__(self, entries: list[dict[str, str]] | None = None) -> None:
        self.entries: list[dict[str, str]] = entries or []
        self._fingerprints = {
            (e["rule"], e["path"], e["context"], e["snippet"])
            for e in self.entries
        }

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self._fingerprints

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: str | Path) -> Baseline:
        try:
            doc = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
        if not isinstance(doc, dict) or doc.get("version") != _FORMAT_VERSION:
            raise BaselineError(
                f"{path}: expected a dict with version={_FORMAT_VERSION}")
        entries = doc.get("findings", [])
        if not isinstance(entries, list):
            raise BaselineError(f"{path}: 'findings' must be a list")
        for i, entry in enumerate(entries):
            for key in ("rule", "path", "context", "snippet", "justification"):
                if not isinstance(entry.get(key), str) or not entry[key].strip():
                    raise BaselineError(
                        f"{path}: findings[{i}] needs a non-empty {key!r} "
                        f"(justification is mandatory for every baselined "
                        f"finding)")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      justification: str) -> Baseline:
        entries = []
        seen = set()
        for f in sorted(findings):
            if f.fingerprint in seen:
                continue
            seen.add(f.fingerprint)
            entries.append({
                "rule": f.rule,
                "path": f.path,
                "context": f.context,
                "snippet": f.snippet,
                "justification": justification,
            })
        return cls(entries)

    def dump(self, path: str | Path) -> None:
        doc = {"version": _FORMAT_VERSION, "findings": self.entries}
        Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    def stale_entries(self, findings: list[Finding]) -> list[dict[str, str]]:
        """Baseline entries matching no current finding (prune candidates)."""
        current = {f.fingerprint for f in findings}
        return [
            e for e in self.entries
            if (e["rule"], e["path"], e["context"], e["snippet"]) not in current
        ]


def diff_against(findings: list[Finding],
                 baseline: Baseline) -> tuple[list[Finding], list[dict[str, str]]]:
    """``(new_findings, stale_baseline_entries)`` for a gate run."""
    new = [f for f in findings if f not in baseline]
    return new, baseline.stale_entries(findings)
