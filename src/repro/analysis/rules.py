"""AST rules for the protocol determinism linter.

Every guarantee the test-suite pins byte-for-byte (serial == pool sweep
rows, trace fingerprints, the bench ``--compare`` gate) rests on the
simulation being a pure function of its seeds.  These rules flag the code
patterns that silently break that purity:

=========  ==============================================================
code       hazard
=========  ==============================================================
``RS001``  iteration over an unordered ``set``/``frozenset`` (hash order
           depends on ``PYTHONHASHSEED`` for str/tuple elements), or
           arbitrary-element selection via ``next(iter(s))``
``RS002``  use of the *module-level* ``random`` functions, whose global
           stream bypasses the seeded per-component ``random.Random``
           instances the simulator threads everywhere
``RS003``  wall-clock or entropy reads (``time.time``, ``os.urandom``,
           ``uuid.uuid4``, ``secrets``, ``datetime.now``) — values that
           differ between two runs of the same seeds
``RS004``  mutation of a ``WeightedGraph``'s private adjacency without a
           ``_version`` bump — derived-parameter caches
           (:mod:`repro.graphs.cache`) would serve stale values
``RS005``  a protocol process writing simulator-owned state reachable
           through its ``ctx`` (shared-state aliasing across the
           process/network boundary)
=========  ==============================================================

A finding on a line carrying ``# repro: allow RSxxx -- reason`` is
suppressed at the source (``# noqa`` is deliberately *not* honored, so
these markers never collide with ruff's ``RUF100`` unused-noqa check).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence

from .findings import Finding

__all__ = ["RULES", "FLOW_CODES", "analyze_source", "Analyzer"]

#: rule code -> one-line summary (the CLI ``--explain`` catalog).
#: RS001-RS005 are the determinism rules implemented by :class:`Analyzer`
#: below; RS006-RS010 are the message-flow contract rules implemented by
#: :mod:`repro.analysis.flow.rules` and dispatched from
#: :func:`analyze_source`.
RULES: dict[str, str] = {
    "RS001": "iteration over an unordered set (hash-order nondeterminism)",
    "RS002": "module-level random.* call bypasses the seeded RNG plumbing",
    "RS003": "wall-clock / entropy read differs between identical runs",
    "RS004": "WeightedGraph adjacency mutated without a _version bump",
    "RS005": "process writes simulator-owned state through its ctx",
    "RS006": "message kind is sent but no handler in the module dispatches it",
    "RS007": "dead handler arm: dispatched kind is never sent in the module",
    "RS008": "send is untagged or its tag is outside the cost taxonomy",
    "RS009": "nondeterminism (RS001-RS003) reachable from a message handler",
    "RS010": "handler writes state on an object received in a payload",
}

#: Codes handled by the flow checker rather than the base visitor.
FLOW_CODES = frozenset({"RS006", "RS007", "RS008", "RS009", "RS010"})

# Consumers for which the iteration order of their (sole) argument cannot
# be observed in the result.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
})

# Methods of built-in collections that mutate the receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "sort", "reverse", "add", "discard", "update", "setdefault",
    "__setitem__", "__delitem__",
})

# Set methods that return a new set (propagate set-likeness).
_SET_RETURNING = frozenset({
    "intersection", "union", "difference", "symmetric_difference", "copy",
})

# time-module attributes that read the wall clock.
_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
})

# The per-node handler entry points of the Process protocol surface.
_HANDLER_METHODS = frozenset({"on_start", "on_message", "on_recover"})

# ctx methods a process may legitimately call (the sanctioned API).
_CTX_API = frozenset({"send", "set_timer", "finish", "span", "trace_pulse"})

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\s+([A-Z0-9, ]+?)(?:\s*--.*)?$")


def _allowed_codes(line: str) -> frozenset[str]:
    """Rule codes suppressed by a ``# repro: allow`` marker on ``line``."""
    m = _ALLOW_RE.search(line)
    if not m:
        return frozenset()
    return frozenset(c.strip() for c in m.group(1).split(",") if c.strip())


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``self.ctx.neighbors`` -> ``["self", "ctx", "neighbors"]``.

    Subscript layers are peeled transparently (``self._adj[u][v]`` has the
    same chain as ``self._adj``); returns None for chains not rooted at a
    plain name.
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return parts[::-1]
        else:
            return None


def _call_name(node: ast.expr) -> str | None:
    """The bare function name of a ``Call``'s func, if it is a plain name."""
    return node.id if isinstance(node, ast.Name) else None


class _ClassInfo:
    """Per-class facts gathered in a pre-pass over the class body."""

    __slots__ = ("name", "process_like", "tracks_version", "set_attrs")

    def __init__(self, node: ast.ClassDef) -> None:
        self.name = node.name
        base_names = {
            b.id if isinstance(b, ast.Name) else b.attr
            for b in node.bases
            if isinstance(b, (ast.Name, ast.Attribute))
        }
        methods = {
            n.name for n in node.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.process_like = (
            any(b.endswith("Process") for b in base_names)
            or bool(methods & _HANDLER_METHODS)
        )
        # Does this class maintain the cache-invalidation counter?
        self.tracks_version = False
        # Instance attributes assigned a set-like value anywhere in the body.
        self.set_attrs: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for t in targets:
                    chain = _attr_chain(t)
                    if chain == ["self", "_version"]:
                        self.tracks_version = True
                    value = getattr(sub, "value", None)
                    if (
                        chain is not None
                        and len(chain) == 2
                        and chain[0] == "self"
                        and value is not None
                        and _is_set_expr(value)
                    ):
                        self.set_attrs.add(chain[1])


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactic set-likeness (no name environment): literals and calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        if name in ("set", "frozenset"):
            return True
    return False


class Analyzer(ast.NodeVisitor):
    """Single-pass visitor applying every rule to one module."""

    def __init__(self, path: str, source: str,
                 rules: Iterable[str] | None = None) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.rules = frozenset(rules) if rules is not None else frozenset(RULES)
        self.findings: list[Finding] = []
        #: findings silenced by an ``allow`` marker — kept so the flow
        #: checker's RS009 can still see nondeterminism sites whose *site*
        #: rule was narrowly suppressed (the reachability hazard is a
        #: separate question from the local one).
        self.suppressed: list[Finding] = []
        self._scope: list[str] = []
        self._classes: list[_ClassInfo] = []
        # Per-function environment of set-typed local names (one dict per
        # nested function scope).
        self._set_locals: list[set[str]] = []
        # Nodes exempted from RS001 (comprehensions consumed by an
        # order-insensitive callable).
        self._exempt: set[int] = set()
        # Import aliases: local name -> canonical module ("random", "time"...)
        self._modules: dict[str, str] = {}
        # Names imported via ``from datetime import datetime``.
        self._datetime_names: set[str] = set()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def _context(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    def _report(self, code: str, node: ast.AST, message: str) -> None:
        if code not in self.rules:
            return
        line = getattr(node, "lineno", 1)
        raw = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        finding = Finding(
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            rule=code,
            message=message,
            context=self._context(),
            snippet=raw.strip(),
        )
        if code in _allowed_codes(raw):
            self.suppressed.append(finding)
            return
        self.findings.append(finding)

    # ------------------------------------------------------------------ #
    # Set-likeness with the local-name environment
    # ------------------------------------------------------------------ #

    def _is_setlike(self, node: ast.expr) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in env for env in self._set_locals)
        if isinstance(node, ast.Attribute):
            chain = _attr_chain(node)
            if (
                chain is not None and len(chain) == 2 and chain[0] == "self"
                and self._classes and chain[1] in self._classes[-1].set_attrs
            ):
                return True
            return False
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _SET_RETURNING:
                return self._is_setlike(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_setlike(node.left) or self._is_setlike(node.right)
        return False

    def _bind_if_set(self, target: ast.expr, value: ast.expr | None) -> None:
        if (
            value is not None
            and isinstance(target, ast.Name)
            and self._set_locals
        ):
            if self._is_setlike(value):
                self._set_locals[-1].add(target.id)
            else:
                self._set_locals[-1].discard(target.id)

    # ------------------------------------------------------------------ #
    # Scope bookkeeping
    # ------------------------------------------------------------------ #

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._classes.append(_ClassInfo(node))
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()
        self._classes.pop()

    @staticmethod
    def _annotation_is_set(annotation: ast.expr | None) -> bool:
        if annotation is None:
            return False
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        return isinstance(node, ast.Name) and node.id in ("set", "frozenset")

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._scope.append(node.name)
        env: set[str] = set()
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if self._annotation_is_set(arg.annotation):
                env.add(arg.arg)
        self._set_locals.append(env)
        in_class = bool(self._classes) and len(self._scope) >= 1
        if in_class and self._classes[-1].tracks_version:
            self._check_version_bump(node)
        self.generic_visit(node)
        self._set_locals.pop()
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # ------------------------------------------------------------------ #
    # Imports (RS002 / RS003 at the import site)
    # ------------------------------------------------------------------ #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in ("random", "time", "os", "uuid", "secrets", "datetime"):
                self._modules[alias.asname or root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self._report(
                        "RS002", node,
                        f"'from random import {alias.name}' binds the global "
                        f"RNG stream; use a seeded random.Random instance",
                    )
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_ATTRS:
                    self._report(
                        "RS003", node,
                        f"'from time import {alias.name}' reads the wall "
                        f"clock; simulation time must come from the event "
                        f"queue",
                    )
        elif node.module == "secrets":
            self._report("RS003", node,
                         "the secrets module reads OS entropy")
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name == "datetime":
                    self._datetime_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # Attribute references (RS002 / RS003)
    # ------------------------------------------------------------------ #

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name):
            module = self._modules.get(node.value.id)
            if module == "random" and node.attr != "Random":
                self._report(
                    "RS002", node,
                    f"random.{node.attr} draws from the process-global RNG; "
                    f"thread a seeded random.Random instead",
                )
            elif module == "time" and node.attr in _TIME_ATTRS:
                self._report(
                    "RS003", node,
                    f"time.{node.attr} reads the wall clock; two identical "
                    f"runs will disagree",
                )
            elif module == "os" and node.attr in ("urandom", "getrandom"):
                self._report("RS003", node,
                             f"os.{node.attr} reads OS entropy")
            elif module == "uuid" and node.attr in ("uuid1", "uuid4"):
                self._report("RS003", node,
                             f"uuid.{node.attr} is entropy/clock-derived")
            elif module == "secrets":
                self._report("RS003", node,
                             f"secrets.{node.attr} reads OS entropy")
            elif (
                node.value.id in self._datetime_names
                or module == "datetime"
            ) and node.attr in ("now", "utcnow", "today"):
                self._report("RS003", node,
                             f"datetime {node.attr}() reads the wall clock")
        elif (
            isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and self._modules.get(node.value.value.id) == "datetime"
            and node.value.attr in ("datetime", "date")
            and node.attr in ("now", "utcnow", "today")
        ):
            self._report("RS003", node,
                         f"datetime.{node.value.attr}.{node.attr}() reads "
                         f"the wall clock")
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # Iteration sites (RS001)
    # ------------------------------------------------------------------ #

    def visit_For(self, node: ast.For) -> None:
        if self._is_setlike(node.iter):
            self._report(
                "RS001", node.iter,
                "iterating a set: element order depends on hashes "
                "(PYTHONHASHSEED); iterate a sorted() or insertion-ordered "
                "view instead",
            )
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST,
                             generators: Sequence[ast.comprehension]) -> None:
        if id(node) not in self._exempt:
            for gen in generators:
                if self._is_setlike(gen.iter):
                    self._report(
                        "RS001", gen.iter,
                        "comprehension over a set: element order depends on "
                        "hashes (PYTHONHASHSEED)",
                    )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators)

    # SetComp over a set is itself unordered output: no finding.
    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._exempt.add(id(node))
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # Calls: RS001 materialization/selection + exemptions, RS004/RS005
    # ------------------------------------------------------------------ #

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        if name in _ORDER_INSENSITIVE:
            # The argument's own iteration order is unobservable here.
            for arg in node.args:
                self._exempt.add(id(arg))
        elif name in ("list", "tuple") and len(node.args) == 1:
            if self._is_setlike(node.args[0]):
                self._report(
                    "RS001", node,
                    f"{name}() over a set materializes hash order; wrap in "
                    f"sorted() or keep an ordered source collection",
                )
        elif name == "iter" and len(node.args) == 1:
            if self._is_setlike(node.args[0]):
                self._report(
                    "RS001", node,
                    "iter() over a set selects hash-ordered elements "
                    "(next(iter(s)) picks an arbitrary one)",
                )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and len(node.args) == 1
            and self._is_setlike(node.args[0])
        ):
            self._report("RS001", node,
                         "str.join over a set concatenates in hash order")
        self._check_mutating_call(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # Mutations (RS004 / RS005)
    # ------------------------------------------------------------------ #

    def _mutation_targets(self, node: ast.stmt) -> list[ast.expr]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        if isinstance(node, ast.Delete):
            return list(node.targets)
        return []

    def _flag_write(self, node: ast.AST, chain: list[str],
                    subscripted: bool) -> None:
        """Apply the write-site rules to one mutation target chain."""
        if "_adj" in chain:
            root_is_self = chain[0] == "self"
            in_version_class = bool(self._classes) and \
                self._classes[-1].tracks_version
            # Whole-attribute (re)binding like ``self._adj = {}`` in
            # __init__ is construction, not mutation — only flag writes
            # *through* _adj (subscripts) or on non-self roots.  Inside the
            # graph class itself, self._adj writes are governed by the
            # stricter must-bump check (_check_version_bump) instead.
            if (root_is_self and subscripted and not in_version_class) \
                    or not root_is_self:
                self._report(
                    "RS004", node,
                    "direct write to a graph's private adjacency bypasses "
                    "add_edge/remove_edge and the _version counter "
                    "(stale-cache hazard)",
                )
        if (
            self._classes
            and self._classes[-1].process_like
            and chain[0] == "self"
            # Writes *through* a ctx (ctx in a non-terminal position) touch
            # simulator-owned state.  A terminal ``self.inner.ctx = shim``
            # is the sanctioned layered-protocol wrap idiom: the host hands
            # its inner process a fresh context it owns.
            and "ctx" in chain[1:-1]
        ):
            self._report(
                "RS005", node,
                "process writes simulator-owned state through its ctx; "
                "use the Process API (send/set_timer/finish) or node-local "
                "attributes",
            )

    def _handle_write_stmt(self, node: ast.stmt) -> None:
        for target in self._mutation_targets(node):
            subscripted = isinstance(target, ast.Subscript)
            chain = _attr_chain(target)
            if chain is not None and len(chain) >= 2:
                self._flag_write(node, chain, subscripted)
        # Track set-typed locals for RS001.
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._bind_if_set(target, node.value)
        elif isinstance(node, ast.AnnAssign):
            self._bind_if_set(node.target, node.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._handle_write_stmt(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._handle_write_stmt(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_write_stmt(node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._handle_write_stmt(node)
        self.generic_visit(node)

    def _check_mutating_call(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method not in _MUTATORS:
            return
        receiver = node.func.value
        chain = _attr_chain(receiver)
        if chain is not None and len(chain) >= 2:
            self._flag_write(node, chain + [method], True)
            return
        # ``self.neighbors().sort()`` — mutating the list the framework
        # handed back (it is the live ctx.neighbors list, not a copy).
        if (
            isinstance(receiver, ast.Call)
            and _attr_chain(receiver.func) == ["self", "neighbors"]
            and self._classes
            and self._classes[-1].process_like
        ):
            self._report(
                "RS005", node,
                "mutating the list returned by self.neighbors() aliases "
                "the framework's ctx.neighbors",
            )

    # ------------------------------------------------------------------ #
    # RS004(a): version-tracking classes must bump on mutation
    # ------------------------------------------------------------------ #

    def _check_version_bump(self,
                            fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        """Inside a class that maintains ``_version``: a method mutating
        ``self._adj`` must also touch ``self._version``."""
        mutates: ast.AST | None = None
        bumps = False
        for sub in ast.walk(fn):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign,
                                ast.Delete)):
                for target in self._mutation_targets(sub):
                    chain = _attr_chain(target)
                    if chain is None:
                        continue
                    if chain[:2] == ["self", "_version"]:
                        bumps = True
                    elif (
                        chain[:2] == ["self", "_adj"]
                        and isinstance(target, ast.Subscript)
                    ):
                        mutates = mutates or sub
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATORS
            ):
                chain = _attr_chain(sub.func.value)
                if chain is not None and chain[:2] == ["self", "_adj"]:
                    mutates = mutates or sub
        if mutates is not None and not bumps:
            self._report(
                "RS004", mutates,
                f"method {fn.name}() mutates self._adj without bumping "
                f"self._version (derived-parameter caches go stale)",
            )


def analyze_source(source: str, path: str = "<string>",
                   rules: Iterable[str] | None = None) -> list[Finding]:
    """Run every (selected) rule over one module's source text.

    Returns findings in deterministic (path, line, col, rule) order.
    Raises ``SyntaxError`` if the source does not parse.
    """
    tree = ast.parse(source, filename=path)
    selected = frozenset(rules) if rules is not None else frozenset(RULES)
    findings: list[Finding] = []
    if selected - FLOW_CODES:
        analyzer = Analyzer(path, source, rules=selected - FLOW_CODES)
        analyzer.visit(tree)
        findings.extend(analyzer.findings)
    if selected & FLOW_CODES:
        # Imported lazily: the flow subpackage reuses this module's allow
        # machinery, so a top-level import would be circular.
        from .flow.rules import analyze_flow_tree

        findings.extend(
            analyze_flow_tree(tree, path, source, selected & FLOW_CODES)
        )
    return sorted(findings)
