"""The finding record shared by every analysis rule.

A :class:`Finding` is one determinism hazard at one source location.  Its
*fingerprint* deliberately excludes the line number: baselines must survive
unrelated edits above a finding, so identity is (rule, file, enclosing
scope, normalized source line) — stable under line drift, invalidated the
moment the offending line itself changes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One determinism hazard at one source location.

    Field order matters: dataclass ordering gives the deterministic
    report order (path, then position, then rule).
    """

    path: str  #: repo-relative posix path of the file
    line: int  #: 1-based line of the offending node
    col: int  #: 0-based column of the offending node
    rule: str  #: rule code, e.g. ``"RS001"``
    message: str  #: human-readable description of the hazard
    context: str  #: enclosing scope qualname (``"<module>"`` at top level)
    snippet: str  #: stripped source line the finding points at

    @property
    def fingerprint(self) -> tuple[str, str, str, str]:
        """Line-drift-stable identity used for baseline matching."""
        return (self.rule, self.path, self.context, self.snippet)

    def as_dict(self) -> dict[str, object]:
        """The finding as a plain JSON-ready dict (stable key order)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        """One-line text form: ``path:line:col: RULE message [in context]``."""
        where = f" [in {self.context}]" if self.context != "<module>" else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{where}"
