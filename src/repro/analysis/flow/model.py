"""Data model for the interprocedural message-flow contract checker.

The extractor (:mod:`repro.analysis.flow.extract`) reduces one protocol
module to a :class:`ModuleFlow`: per process-like class, every **send
site** (message kind, tag resolution, size expression), every **handler
clause** (a ``kind == "..."`` dispatch arm and the kinds it sends in
response, through the intraprocedural call graph), and the reachability /
payload-taint facts the flow rules (RS006-RS010) consume.  The same model
feeds the DOT/ASCII exporters (:mod:`repro.analysis.flow.export`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TagInfo",
    "SendSite",
    "HandlerClause",
    "ClassFlow",
    "ModuleFlow",
    "KindNode",
]


@dataclass(frozen=True)
class TagInfo:
    """How a send site's ``tag=`` keyword resolved statically.

    ``status`` is one of:

    * ``"literal"`` — a string literal, a module constant, or a
      ``self.attr`` traced to an ``__init__`` default; ``value`` holds it.
    * ``"prefix"`` — an f-string with a literal head (``f"ds-proto.{...}"``);
      ``value`` holds the head.
    * ``"forwarded"`` — a bare parameter of the enclosing method (a shim
      pass-through; the *callers'* expanded sites carry the real tag).
    * ``"dynamic"`` — an expression the checker cannot resolve.
    * ``"missing"`` — no ``tag=`` keyword at all.
    """

    status: str
    value: str | None = None


@dataclass(frozen=True)
class SendSite:
    """One ``self.send(...)`` call (possibly expanded through a shim)."""

    line: int
    col: int
    cls: str
    method: str
    kind: str | None  # None: payload is opaque (no literal tuple kind)
    tag: TagInfo
    payload: str  # source text of the payload expression
    size: str | None  # source text of the size expression, None = default
    via: str | None = None  # shim method the site was expanded through
    shim: bool = False  # True: this is the shim's own generic send

    @property
    def where(self) -> str:
        return f"{self.cls}.{self.method}"


@dataclass(frozen=True)
class HandlerClause:
    """One dispatch arm: ``kind == K`` (or a ``!= K`` misuse guard /
    ``assert kind == K``) reachable from a handler entry point."""

    kind: str
    cls: str
    method: str
    line: int
    responds: frozenset[str] = frozenset()  # kinds sent while handling

    @property
    def where(self) -> str:
        return f"{self.cls}.{self.method}"


@dataclass
class ClassFlow:
    """Flow facts for one class."""

    name: str
    line: int
    process_like: bool
    sends: list[SendSite] = field(default_factory=list)
    clauses: list[HandlerClause] = field(default_factory=list)
    #: the class has a dispatch ``else`` arm that *acts* (delegates or
    #: computes) instead of raising — unknown kinds are absorbed, so
    #: RS006 cannot claim they go unhandled.
    wildcard: bool = False
    wildcard_line: int | None = None
    #: intraprocedural call graph: method -> self-methods it references.
    calls: dict[str, frozenset[str]] = field(default_factory=dict)
    #: methods reachable from the handler entry points through ``calls``.
    reachable: frozenset[str] = frozenset()

    @property
    def sent_kinds(self) -> frozenset[str]:
        return frozenset(s.kind for s in self.sends if s.kind is not None)

    @property
    def handled_kinds(self) -> frozenset[str]:
        return frozenset(c.kind for c in self.clauses)


@dataclass
class ModuleFlow:
    """Flow facts for one module: the unit the contract rules check."""

    path: str
    classes: list[ClassFlow] = field(default_factory=list)

    @property
    def sent_kinds(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for c in self.classes:
            if c.process_like:
                out |= c.sent_kinds
        return out

    @property
    def handled_kinds(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for c in self.classes:
            if c.process_like:
                out |= c.handled_kinds
        return out

    @property
    def wildcard(self) -> bool:
        return any(c.wildcard for c in self.classes if c.process_like)

    def graph(self) -> dict[str, KindNode]:
        """The message-flow graph: kind -> senders/handlers/response kinds."""
        nodes: dict[str, KindNode] = {}

        def node(kind: str) -> KindNode:
            if kind not in nodes:
                nodes[kind] = KindNode(kind)
            return nodes[kind]

        for cls in self.classes:
            if not cls.process_like:
                continue
            for site in cls.sends:
                if site.kind is not None:
                    node(site.kind).senders.add(site.where)
            for clause in cls.clauses:
                n = node(clause.kind)
                n.handlers.add(clause.where)
                n.responds |= clause.responds
        return dict(sorted(nodes.items()))


@dataclass
class KindNode:
    """One message kind in the flow graph."""

    kind: str
    senders: set[str] = field(default_factory=set)
    handlers: set[str] = field(default_factory=set)
    responds: set[str] = field(default_factory=set)
