"""Deterministic DOT and ASCII renderers for message-flow graphs.

Both renderers are pure functions of the extracted model (sorted at every
fan-out), so two runs over the same tree emit byte-identical output — the
same contract the linter's text/JSONL formats keep.
"""

from __future__ import annotations

from .model import ModuleFlow

__all__ = ["flow_to_dot", "flow_to_ascii"]


def _module_label(flow: ModuleFlow) -> str:
    return flow.path.replace("\\", "/")


def flow_to_dot(flows: list[ModuleFlow]) -> str:
    """One DOT digraph; a cluster per module, a node per message kind,
    an edge ``a -> b`` when handling ``a`` sends ``b`` in response."""
    out: list[str] = [
        "digraph message_flow {",
        "  rankdir=LR;",
        "  node [shape=box, fontname=monospace];",
    ]
    for idx, flow in enumerate(sorted(flows, key=_module_label)):
        graph = flow.graph()
        if not graph:
            continue
        label = _module_label(flow)
        out.append(f"  subgraph cluster_{idx} {{")
        out.append(f'    label="{label}";')
        for kind in sorted(graph):
            node = graph[kind]
            senders = len(node.senders)
            handlers = len(node.handlers)
            out.append(
                f'    "{label}:{kind}" '
                f'[label="{kind}\\n{senders} send / {handlers} handle"];'
            )
        for kind in sorted(graph):
            for response in sorted(graph[kind].responds):
                if response in graph:
                    out.append(
                        f'    "{label}:{kind}" -> "{label}:{response}";'
                    )
        out.append("  }")
    out.append("}")
    return "\n".join(out) + "\n"


def flow_to_ascii(flow: ModuleFlow) -> str:
    """A per-kind text block: senders, handlers, response kinds."""
    graph = flow.graph()
    out: list[str] = [f"message flow: {_module_label(flow)}"]
    if not graph:
        out.append("  (no literal-kind message traffic)")
        return "\n".join(out) + "\n"
    for kind in sorted(graph):
        node = graph[kind]
        out.append(f"  [{kind}]")
        senders = ", ".join(sorted(node.senders)) or "-"
        handlers = ", ".join(sorted(node.handlers)) or "-"
        responds = ", ".join(sorted(node.responds)) or "-"
        out.append(f"    sent by  {senders}")
        out.append(f"    handled  {handlers}")
        out.append(f"    responds {responds}")
    wildcard = [c.name for c in flow.classes if c.process_like and c.wildcard]
    if wildcard:
        out.append(f"  wildcard arms: {', '.join(sorted(wildcard))}")
    return "\n".join(out) + "\n"
