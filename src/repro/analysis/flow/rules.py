"""The message-flow contract rules (RS006-RS010).

These rules run over the :mod:`repro.analysis.flow.extract` model and
reuse the base framework end to end: findings are ordinary
:class:`~repro.analysis.findings.Finding` objects, ``# repro: allow
RSxxx`` markers suppress at the source, and the committed baseline gates
CI.  Granularity is the *module* — the protocols are peer-symmetric, so a
kind sent by one class and dispatched by another class in the same module
(reliable transport, synchronizer hosts) is a satisfied contract.

=========  ==============================================================
code       hazard
=========  ==============================================================
``RS006``  a message kind is sent but no handler clause in the module
           dispatches on it (and no acting wildcard arm absorbs it) —
           the message costs real communication and then hits a closed
           ladder's ``raise`` or is silently dropped
``RS007``  a handler clause dispatches on a kind no send site in the
           module produces — dead protocol surface, untestable by
           construction
``RS008``  a send in a process-like class carries no ``tag=`` or a tag
           outside the cost taxonomy — its cost merges into nothing the
           per-class accounting (``Metrics.cost_by_tag``) can attribute
``RS009``  a nondeterminism hazard (the RS001-RS003 patterns) sits in a
           method reachable from a handler entry point through the call
           graph — it executes on the message path even if the site
           itself carries a narrow ``allow``
``RS010``  a handler writes attributes/items on an object received in a
           payload — static cross-process state mutation, the compile-
           time complement of the runtime race detector
=========  ==============================================================
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..findings import Finding
from ..rules import FLOW_CODES, Analyzer, _allowed_codes
from .extract import class_extractors
from .model import ClassFlow, ModuleFlow
from .taxonomy import module_declared_tags, tag_is_declared

__all__ = ["FLOW_CODES", "analyze_flow_tree"]

#: RS009 watches the sites these base rules flag.
_NONDET_CODES = frozenset({"RS001", "RS002", "RS003"})


class _FlowAnalyzer:
    """Applies RS006-RS010 to one parsed module."""

    def __init__(self, tree: ast.Module, path: str, source: str,
                 rules: frozenset[str]) -> None:
        self.tree = tree
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.rules = rules
        self.findings: list[Finding] = []
        self.extractors = class_extractors(tree, source)
        self.flows: list[ClassFlow] = [e.extract() for e in self.extractors]
        self.module = ModuleFlow(path=path, classes=self.flows)

    # -------------------------------------------------------------- #
    # Reporting (same allow-marker contract as the base Analyzer)
    # -------------------------------------------------------------- #

    def _report(self, code: str, line: int, col: int, context: str,
                message: str) -> None:
        if code not in self.rules:
            return
        raw = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        if code in _allowed_codes(raw):
            return
        self.findings.append(Finding(
            path=self.path, line=line, col=col, rule=code,
            message=message, context=context, snippet=raw.strip(),
        ))

    # -------------------------------------------------------------- #
    # RS006 / RS007: the send <-> handle contract
    # -------------------------------------------------------------- #

    def _check_contract(self) -> None:
        handled = self.module.handled_kinds
        sent = self.module.sent_kinds
        for cls in self.flows:
            if not cls.process_like:
                continue
            if not self.module.wildcard:
                for site in cls.sends:
                    if site.kind is not None and site.kind not in handled:
                        self._report(
                            "RS006", site.line, site.col, site.where,
                            f"kind '{site.kind}' is sent but no handler in "
                            f"this module dispatches on it (closed ladders "
                            f"raise; fall-through drops it silently)",
                        )
            for clause in cls.clauses:
                if clause.kind not in sent:
                    self._report(
                        "RS007", clause.line, 0, clause.where,
                        f"handler arm for kind '{clause.kind}' is dead: no "
                        f"send site in this module produces it",
                    )

    # -------------------------------------------------------------- #
    # RS008: tag taxonomy
    # -------------------------------------------------------------- #

    def _check_tags(self) -> None:
        local = module_declared_tags(self.tree)
        for cls in self.flows:
            if not cls.process_like:
                continue
            for site in cls.sends:
                if site.shim and site.tag.status == "forwarded":
                    continue  # the expanded call sites carry the real tag
                tag = site.tag
                if tag.status == "missing":
                    self._report(
                        "RS008", site.line, site.col, site.where,
                        "send carries no tag= — its cost is unattributable "
                        "in the per-class accounting (Metrics.cost_by_tag)",
                    )
                elif tag.status == "literal":
                    assert tag.value is not None
                    if not tag_is_declared(tag.value, local):
                        self._report(
                            "RS008", site.line, site.col, site.where,
                            f"tag '{tag.value}' is not in the cost taxonomy "
                            f"(declared manifest, module-local accounting, "
                            f"or a namespaced family)",
                        )
                elif tag.status == "prefix":
                    assert tag.value is not None
                    if not tag_is_declared(tag.value, local):
                        self._report(
                            "RS008", site.line, site.col, site.where,
                            f"f-string tag prefix '{tag.value}' does not "
                            f"start a declared namespaced family",
                        )
                # forwarded/dynamic: a sanctioned pass-through — the
                # resolvable call sites are checked via shim expansion.

    # -------------------------------------------------------------- #
    # RS009: nondeterminism on the message path
    # -------------------------------------------------------------- #

    def _check_reachable_nondet(self) -> None:
        base = Analyzer(self.path, self.source, rules=_NONDET_CODES)
        base.visit(self.tree)
        reach: dict[str, frozenset[str]] = {
            cls.name: cls.reachable
            for cls in self.flows
            if cls.process_like
        }
        for finding in [*base.findings, *base.suppressed]:
            parts = finding.context.split(".")
            if len(parts) < 2:
                continue
            cls_name, method = parts[0], parts[1]
            if method not in reach.get(cls_name, frozenset()):
                continue
            self._report(
                "RS009", finding.line, finding.col,
                f"{cls_name}.{method}",
                f"nondeterminism on the message path: {finding.rule} "
                f"({finding.message.split(';')[0]}) is reachable from a "
                f"handler entry point",
            )

    # -------------------------------------------------------------- #
    # RS010: writes to payload-received objects
    # -------------------------------------------------------------- #

    def _check_payload_writes(self) -> None:
        for extractor in self.extractors:
            cls = next(
                f for f in self.flows if f.name == extractor.node.name
            )
            if not cls.process_like:
                continue
            for name, info in extractor.methods.items():
                if name not in cls.reachable or not info.tainted:
                    continue
                for sub in ast.walk(info.node):
                    self._check_write_stmt(sub, info.tainted,
                                           f"{cls.name}.{name}")

    def _check_write_stmt(self, node: ast.AST, tainted: set[str],
                          context: str) -> None:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            root = target
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if (
                isinstance(root, ast.Name)
                and root.id != "self"
                and root.id in tainted
            ):
                self._report(
                    "RS010", node.lineno,
                    getattr(node, "col_offset", 0), context,
                    f"write through '{root.id}', an object received in a "
                    f"message payload — cross-process state mutation the "
                    f"network model forbids",
                )

    # -------------------------------------------------------------- #

    def run(self) -> list[Finding]:
        if self.rules & {"RS006", "RS007"}:
            self._check_contract()
        if "RS008" in self.rules:
            self._check_tags()
        if "RS009" in self.rules:
            self._check_reachable_nondet()
        if "RS010" in self.rules:
            self._check_payload_writes()
        return self.findings


def analyze_flow_tree(tree: ast.Module, path: str, source: str,
                      rules: Iterable[str]) -> list[Finding]:
    """Run the selected flow rules over one parsed module."""
    return _FlowAnalyzer(tree, path, source, frozenset(rules)).run()
