"""AST extraction of per-module message-flow facts.

One pass per module produces a :class:`~repro.analysis.flow.model.ModuleFlow`:

* **send sites** — every ``self.send(to, payload, ...)`` in a process-like
  class.  The message *kind* is the first element of a literal tuple
  payload, resolved through module constants and method-local tuple
  bindings (``frame = (_DATA, seq, payload); self.send(to, frame, ...)``).
  Shim helpers that forward a payload parameter verbatim
  (``def _ds_send(self, to, payload, tag): self.send(to, payload, tag=tag)``)
  are expanded one level: each call site becomes a send site with the
  caller's payload and tag.
* **handler clauses** — ``kind == "..."`` dispatch arms (if/elif ladders,
  ``!= K`` misuse guards, ``assert kind == K``) over names bound from the
  handler payload, found through the class's intraprocedural call graph
  (``on_message -> _try -> _on_connect`` and friends).  Each clause also
  records the kinds sent *in response*: literal-kind sends in the arm body
  plus everything reachable from the arm through the call graph.
* **reachability and payload taint** — which methods a handler entry point
  can reach, and which names alias payload contents (for RS009/RS010).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .model import ClassFlow, HandlerClause, ModuleFlow, SendSite, TagInfo

__all__ = ["extract_module_flow", "HANDLER_ROOTS"]

#: Entry points a delivery can invoke on a process-like class.
#: ``handle_control`` is the synchronizer-host extension point (invoked by
#: the base class dispatch in another module).
HANDLER_ROOTS = frozenset({
    "on_start", "on_message", "on_recover", "handle_control",
})

#: Handler signatures whose last positional parameter is the payload.
_PAYLOAD_HANDLERS = frozenset({"on_message", "handle_control"})


def _segment(source: str, node: ast.AST) -> str:
    text = ast.get_source_segment(source, node)  # type: ignore[arg-type]
    return " ".join(text.split()) if text else "<expr>"


def _is_process_like(node: ast.ClassDef) -> bool:
    base_names = {
        b.id if isinstance(b, ast.Name) else b.attr
        for b in node.bases
        if isinstance(b, (ast.Name, ast.Attribute))
    }
    methods = {
        n.name for n in node.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    # Broader than the base linter's notion: defining ``handle_control``
    # (the synchronizer-host extension point) also makes a class part of
    # the message plane even without its own ``on_message``.
    return any(b.endswith("Process") for b in base_names) or bool(
        methods & HANDLER_ROOTS
    )


def _module_constants(tree: ast.Module) -> dict[str, str]:
    """Top-level ``NAME = "literal"`` string constants."""
    consts: dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                consts[target.id] = stmt.value.value
    return consts


def _self_call_name(node: ast.Call) -> str | None:
    """``self.X(...)`` -> ``"X"``."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return func.attr
    return None


def _raises_only(stmts: list[ast.stmt]) -> bool:
    """Does this block do nothing but raise / assert-false / pass/return?"""
    for stmt in stmts:
        if isinstance(stmt, (ast.Raise, ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Return) and stmt.value is None:
            continue
        if isinstance(stmt, ast.Assert):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


@dataclass
class _Method:
    """Working facts for one method during extraction."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[str]  # positional + kwonly, ``self`` excluded
    calls: set[str] = field(default_factory=set)
    sends: list[ast.Call] = field(default_factory=list)
    tainted: set[str] = field(default_factory=set)
    # shim forwarding: index into ``params`` of a payload parameter the
    # method passes to ``self.send`` verbatim, else None
    forwards_payload: int | None = None
    # name of the shim's parameter its send's tag= forwards, if any
    forwards_tag_param: str | None = None
    # the shim send's own tag resolution (inherited by expanded sites
    # when the tag is not parameter-forwarded)
    forward_tag: TagInfo | None = None


class _ClassExtractor:
    """Builds one :class:`ClassFlow` from a ``ClassDef``."""

    def __init__(self, node: ast.ClassDef, source: str,
                 consts: dict[str, str]) -> None:
        self.node = node
        self.source = source
        self.consts = consts
        self.methods: dict[str, _Method] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = stmt.args
                params = [
                    a.arg
                    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
                    if a.arg != "self"
                ]
                self.methods[stmt.name] = _Method(stmt, params)

    # -------------------------------------------------------------- #
    # Call graph / reachability
    # -------------------------------------------------------------- #

    def _collect_calls(self) -> None:
        for info in self.methods.values():
            for sub in ast.walk(info.node):
                if isinstance(sub, ast.Call):
                    name = _self_call_name(sub)
                    if name == "send":
                        info.sends.append(sub)
                    elif name is not None and name in self.methods:
                        info.calls.add(name)
                elif (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                    and sub.attr in self.methods
                    and isinstance(sub.ctx, ast.Load)
                ):
                    # bare reference: timer callbacks, bound-method passing
                    info.calls.add(sub.attr)

    def _roots(self) -> frozenset[str]:
        declared = frozenset(self.methods) & HANDLER_ROOTS
        if "on_message" in self.methods or not self.methods:
            return declared
        # No own dispatch: an inherited on_message (or a host wrapper) may
        # invoke anything this class defines — treat every method as an
        # entry point rather than under-approximate reachability.
        return frozenset(self.methods)

    def _reachable(self, roots: frozenset[str]) -> frozenset[str]:
        seen: set[str] = set()
        stack = sorted(roots)
        while stack:
            name = stack.pop()
            if name in seen or name not in self.methods:
                continue
            seen.add(name)
            stack.extend(self.methods[name].calls)
        return frozenset(seen)

    def _closure(self, names: set[str]) -> frozenset[str]:
        return self._reachable(frozenset(n for n in names if n in self.methods))

    # -------------------------------------------------------------- #
    # Payload taint
    # -------------------------------------------------------------- #

    def _propagate_taint(self) -> None:
        for name, info in self.methods.items():
            if name in _PAYLOAD_HANDLERS and len(info.params) >= 2:
                info.tainted.add(info.params[-1])
        for _ in range(len(self.methods) + 2):
            changed = False
            for info in self.methods.values():
                changed |= self._taint_locals(info)
                changed |= self._taint_callees(info)
            if not changed:
                break

    def _expr_tainted(self, node: ast.expr, tainted: set[str]) -> bool:
        """Is any *load* of a tainted name embedded in this expression?"""
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id in tainted
            ):
                return True
        return False

    def _taint_locals(self, info: _Method) -> bool:
        changed = False
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Assign):
                if self._expr_tainted(sub.value, info.tainted):
                    for target in sub.targets:
                        changed |= self._taint_binding(target, info)
        return changed

    def _taint_binding(self, target: ast.expr, info: _Method) -> bool:
        """Taint plain name (re)bindings only — storing a tainted value
        *into* a container (``buf[k] = x``) does not make the container a
        payload object."""
        if isinstance(target, ast.Name):
            if target.id not in info.tainted:
                info.tainted.add(target.id)
                return True
            return False
        if isinstance(target, (ast.Tuple, ast.List)):
            changed = False
            for elt in target.elts:
                changed |= self._taint_binding(elt, info)
            return changed
        if isinstance(target, ast.Starred):
            return self._taint_binding(target.value, info)
        return False

    def _taint_callees(self, info: _Method) -> bool:
        changed = False
        for sub in ast.walk(info.node):
            if not isinstance(sub, ast.Call):
                continue
            callee = _self_call_name(sub)
            if callee is None or callee not in self.methods:
                continue
            target = self.methods[callee]
            for i, arg in enumerate(sub.args):
                if i < len(target.params) and self._expr_tainted(
                    arg, info.tainted
                ):
                    if target.params[i] not in target.tainted:
                        target.tainted.add(target.params[i])
                        changed = True
            for kw in sub.keywords:
                if kw.arg in target.params and self._expr_tainted(
                    kw.value, info.tainted
                ):
                    if kw.arg not in target.tainted:
                        target.tainted.add(kw.arg)
                        changed = True
        return changed

    # -------------------------------------------------------------- #
    # Kind variables and dispatch clauses
    # -------------------------------------------------------------- #

    def _kind_names(self, info: _Method) -> set[str]:
        """Local names bound to *element 0* of a tainted payload."""
        kinds: set[str] = set()
        payloads = set(info.tainted)
        for sub in ast.walk(info.node):
            if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                continue
            target, value = sub.targets[0], sub.value
            self._bind_kind(target, value, payloads, kinds)
        return kinds

    def _bind_kind(self, target: ast.expr, value: ast.expr,
                   payloads: set[str], kinds: set[str]) -> None:
        if isinstance(target, ast.Name):
            if self._is_payload_elt0(value, payloads):
                kinds.add(target.id)
        elif isinstance(target, ast.Tuple) and target.elts:
            if isinstance(value, ast.Tuple):
                for t, v in zip(target.elts, value.elts, strict=False):
                    self._bind_kind(t, v, payloads, kinds)
            elif (
                isinstance(value, ast.Name)
                and value.id in payloads
                and isinstance(target.elts[0], ast.Name)
            ):
                kinds.add(target.elts[0].id)

    def _is_payload_elt0(self, node: ast.expr, payloads: set[str]) -> bool:
        return (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in payloads
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == 0
        )

    def _kind_of_compare(self, test: ast.expr, info: _Method,
                         kinds: set[str]) -> tuple[str, bool] | None:
        """``(kind, negated)`` when ``test`` compares a kind var/expr to a
        resolvable string — searching inside ``and`` conjunctions."""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                found = self._kind_of_compare(value, info, kinds)
                if found is not None:
                    return found
            return None
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None
        op = test.ops[0]
        if not isinstance(op, (ast.Eq, ast.NotEq)):
            return None
        left, right = test.left, test.comparators[0]
        for kind_side, const_side in ((left, right), (right, left)):
            if not self._is_kind_expr(kind_side, info, kinds):
                continue
            value = self._resolve_str(const_side)
            if value is not None:
                return value, isinstance(op, ast.NotEq)
        return None

    def _is_kind_expr(self, node: ast.expr, info: _Method,
                      kinds: set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in kinds
        return self._is_payload_elt0(node, info.tainted)

    def _resolve_str(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self.consts.get(node.id)
        return None

    def _scan_clauses(self, flow: ClassFlow, reachable: frozenset[str]) -> None:
        for name in sorted(reachable):
            info = self.methods[name]
            kinds = self._kind_names(info)
            if not kinds and not info.tainted:
                continue
            self._scan_block(list(info.node.body), info, kinds, flow, name)

    def _scan_block(self, stmts: list[ast.stmt], info: _Method,
                    kinds: set[str], flow: ClassFlow, method: str) -> None:
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If):
                found = self._kind_of_compare(stmt.test, info, kinds)
                if found is not None:
                    kind, negated = found
                    if negated and _raises_only(stmt.body):
                        # ``if kind != K: raise`` — the remainder of the
                        # block is the handler body for K.
                        self._add_clause(flow, kind, method, stmt.lineno,
                                         stmts[i + 1:])
                    elif not negated:
                        self._add_clause(flow, kind, method, stmt.lineno,
                                         stmt.body)
                        self._scan_else(stmt.orelse, info, kinds, flow,
                                        method)
                        continue
                self._scan_block(list(stmt.body), info, kinds, flow, method)
                self._scan_block(list(stmt.orelse), info, kinds, flow, method)
            elif isinstance(stmt, ast.Assert) and stmt.test is not None:
                found = self._kind_of_compare(stmt.test, info, kinds)
                if found is not None and not found[1]:
                    self._add_clause(flow, found[0], method, stmt.lineno,
                                     stmts[i + 1:])
            elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                self._scan_block(list(stmt.body), info, kinds, flow, method)
            elif isinstance(stmt, ast.Try):
                self._scan_block(list(stmt.body), info, kinds, flow, method)
                for handler in stmt.handlers:
                    self._scan_block(list(handler.body), info, kinds, flow,
                                     method)

    def _scan_else(self, orelse: list[ast.stmt], info: _Method,
                   kinds: set[str], flow: ClassFlow, method: str) -> None:
        """Walk an elif chain; classify the terminal ``else`` arm."""
        if not orelse:
            return
        if len(orelse) == 1 and isinstance(orelse[0], ast.If):
            nxt = orelse[0]
            found = self._kind_of_compare(nxt.test, info, kinds)
            if found is not None and not found[1]:
                self._add_clause(flow, found[0], method, nxt.lineno, nxt.body)
                self._scan_else(nxt.orelse, info, kinds, flow, method)
                return
        if not _raises_only(orelse):
            flow.wildcard = True
            if flow.wildcard_line is None:
                flow.wildcard_line = orelse[0].lineno
        self._scan_block(list(orelse), info, kinds, flow, method)

    def _add_clause(self, flow: ClassFlow, kind: str, method: str,
                    line: int, body: list[ast.stmt]) -> None:
        responds = self._responds(body)
        flow.clauses.append(HandlerClause(
            kind=kind, cls=self.node.name, method=method, line=line,
            responds=responds,
        ))

    def _responds(self, body: list[ast.stmt]) -> frozenset[str]:
        """Kinds sent while handling: inline sends in the arm body plus
        everything reachable from the methods the arm calls."""
        called: set[str] = set()
        kinds: set[str] = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    name = _self_call_name(sub)
                    if name == "send":
                        kind = self._send_kind(sub, None)
                        if kind is not None:
                            kinds.add(kind)
                    elif name in self.methods:
                        called.add(name)
        for name in self._closure(called):
            for call in self.methods[name].sends:
                kind = self._send_kind(call, self.methods[name])
                if kind is not None:
                    kinds.add(kind)
            for sub in ast.walk(self.methods[name].node):
                if isinstance(sub, ast.Call):
                    shim = _self_call_name(sub)
                    if shim is not None and shim in self.methods:
                        expanded = self._expand_shim_kind(sub, shim)
                        if expanded is not None:
                            kinds.add(expanded)
        return frozenset(kinds)

    # -------------------------------------------------------------- #
    # Send sites
    # -------------------------------------------------------------- #

    def _send_kind(self, call: ast.Call, info: _Method | None) -> str | None:
        if len(call.args) < 2:
            return None
        return self._payload_kind(call.args[1], info)

    def _payload_kind(self, payload: ast.expr,
                      info: _Method | None) -> str | None:
        if isinstance(payload, ast.Tuple) and payload.elts:
            return self._resolve_str(payload.elts[0])
        if isinstance(payload, ast.Name) and info is not None:
            # method-local tuple binding: frame = (KIND, ...); send(frame)
            for sub in ast.walk(info.node):
                if (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and sub.targets[0].id == payload.id
                    and isinstance(sub.value, ast.Tuple)
                    and sub.value.elts
                ):
                    return self._resolve_str(sub.value.elts[0])
        return None

    def _tag_info(self, call: ast.Call, info: _Method) -> TagInfo:
        tag: ast.expr | None = None
        for kw in call.keywords:
            if kw.arg == "tag":
                tag = kw.value
        return self._tag_expr_info(tag, info)

    def _tag_expr_info(self, tag: ast.expr | None, info: _Method) -> TagInfo:
        if tag is None:
            return TagInfo("missing")
        literal = self._resolve_str(tag)
        if literal is not None:
            return TagInfo("literal", literal)
        if isinstance(tag, ast.Name):
            if tag.id in info.params:
                return TagInfo("forwarded")
            return TagInfo("dynamic")
        if isinstance(tag, ast.Attribute):
            resolved = self._resolve_self_attr(tag)
            if resolved is not None:
                return TagInfo("literal", resolved)
            return TagInfo("dynamic")
        if isinstance(tag, ast.JoinedStr):
            head = ""
            for part in tag.values:
                if isinstance(part, ast.Constant) and isinstance(
                    part.value, str
                ):
                    head += part.value
                else:
                    break
            return TagInfo("prefix", head) if head else TagInfo("dynamic")
        return TagInfo("dynamic")

    def _resolve_self_attr(self, node: ast.Attribute) -> str | None:
        """``self.X`` where ``__init__`` binds X to a literal (or to a
        parameter whose default is a literal)."""
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return None
        init = self.methods.get("__init__")
        if init is None:
            return None
        for sub in ast.walk(init.node):
            if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                continue
            target = sub.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr == node.attr
            ):
                continue
            if isinstance(sub.value, ast.Constant) and isinstance(
                sub.value.value, str
            ):
                return sub.value.value
            if isinstance(sub.value, ast.Name):
                return self._param_default(init, sub.value.id)
        return None

    def _param_default(
        self, init: _Method, name: str
    ) -> str | None:
        args = init.node.args
        pos = [*args.posonlyargs, *args.args]
        defaults = list(args.defaults)
        for arg, default in zip(pos[len(pos) - len(defaults):], defaults,
                                strict=True):
            if (
                arg.arg == name
                and isinstance(default, ast.Constant)
                and isinstance(default.value, str)
            ):
                return default.value
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults,
                                   strict=True):
            if (
                arg.arg == name
                and isinstance(kw_default, ast.Constant)
                and isinstance(kw_default.value, str)
            ):
                return kw_default.value
        return None

    def _find_forwarders(self) -> None:
        """Mark methods that forward a payload parameter to self.send."""
        for info in self.methods.values():
            for call in info.sends:
                if (
                    len(call.args) >= 2
                    and isinstance(call.args[1], ast.Name)
                    and call.args[1].id in info.params
                ):
                    info.forwards_payload = info.params.index(call.args[1].id)
                    tag_expr: ast.expr | None = None
                    for kw in call.keywords:
                        if kw.arg == "tag":
                            tag_expr = kw.value
                    if (
                        isinstance(tag_expr, ast.Name)
                        and tag_expr.id in info.params
                    ):
                        info.forwards_tag_param = tag_expr.id
                    else:
                        info.forward_tag = self._tag_info(call, info)

    def _expand_shim_kind(self, call: ast.Call, shim: str) -> str | None:
        """The kind a ``self._shim(..., (KIND, ...), ...)`` call sends."""
        target = self.methods[shim]
        if target.forwards_payload is None:
            return None
        idx = target.forwards_payload
        if idx < len(call.args):
            return self._payload_kind(call.args[idx], None)
        param = target.params[idx]
        for kw in call.keywords:
            if kw.arg == param:
                return self._payload_kind(kw.value, None)
        return None

    def _collect_sends(self, flow: ClassFlow) -> None:
        for name, info in self.methods.items():
            for call in info.sends:
                payload = call.args[1] if len(call.args) >= 2 else None
                is_shim = (
                    info.forwards_payload is not None
                    and payload is not None
                    and isinstance(payload, ast.Name)
                    and payload.id in info.params
                )
                size = None
                for kw in call.keywords:
                    if kw.arg == "size":
                        size = _segment(self.source, kw.value)
                flow.sends.append(SendSite(
                    line=call.lineno,
                    col=call.col_offset,
                    cls=self.node.name,
                    method=name,
                    kind=self._send_kind(call, info),
                    tag=self._tag_info(call, info),
                    payload=(
                        _segment(self.source, payload)
                        if payload is not None else "<none>"
                    ),
                    size=size,
                    shim=is_shim,
                ))
            # expanded shim call sites
            for sub in ast.walk(info.node):
                if not isinstance(sub, ast.Call):
                    continue
                shim = _self_call_name(sub)
                if (
                    shim is None
                    or shim not in self.methods
                    or self.methods[shim].forwards_payload is None
                ):
                    continue
                target = self.methods[shim]
                idx = target.forwards_payload
                assert idx is not None
                payload_expr: ast.expr | None = None
                if idx < len(sub.args):
                    payload_expr = sub.args[idx]
                else:
                    for kw in sub.keywords:
                        if kw.arg == target.params[idx]:
                            payload_expr = kw.value
                if payload_expr is None:
                    continue
                flow.sends.append(SendSite(
                    line=sub.lineno,
                    col=sub.col_offset,
                    cls=self.node.name,
                    method=name,
                    kind=self._payload_kind(payload_expr, info),
                    tag=self._expanded_tag(sub, target, info),
                    payload=_segment(self.source, payload_expr),
                    size=None,
                    via=shim,
                ))

    def _expanded_tag(self, call: ast.Call, target: _Method,
                      info: _Method) -> TagInfo:
        """Tag of a shim-expanded site: the caller's argument for the
        shim's forwarded tag parameter, else the shim send's own tag."""
        if target.forwards_tag_param is not None:
            idx = target.params.index(target.forwards_tag_param)
            if idx < len(call.args):
                return self._tag_expr_info(call.args[idx], info)
            for kw in call.keywords:
                if kw.arg == target.forwards_tag_param:
                    return self._tag_expr_info(kw.value, info)
            return TagInfo("missing")
        return target.forward_tag or TagInfo("missing")

    # -------------------------------------------------------------- #
    # Entry point
    # -------------------------------------------------------------- #

    def extract(self) -> ClassFlow:
        flow = ClassFlow(
            name=self.node.name,
            line=self.node.lineno,
            process_like=_is_process_like(self.node),
        )
        self._collect_calls()
        self._find_forwarders()
        self._propagate_taint()
        roots = self._roots()
        reachable = self._reachable(roots)
        flow.reachable = reachable
        flow.calls = {
            name: frozenset(info.calls)
            for name, info in sorted(self.methods.items())
        }
        self._collect_sends(flow)
        self._scan_clauses(flow, reachable)
        flow.sends.sort(key=lambda s: (s.line, s.col))
        flow.clauses.sort(key=lambda c: (c.line, c.kind))
        return flow

    def tainted_params(self) -> dict[str, frozenset[str]]:
        return {
            name: frozenset(info.tainted)
            for name, info in self.methods.items()
        }


def extract_module_flow(tree: ast.Module, path: str,
                        source: str) -> ModuleFlow:
    """Extract the full flow model for one parsed module."""
    consts = _module_constants(tree)
    flow = ModuleFlow(path=path)
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            flow.classes.append(
                _ClassExtractor(stmt, source, consts).extract()
            )
    return flow


def class_extractors(tree: ast.Module, source: str) -> list[_ClassExtractor]:
    """Extractor per top-level class (rules need taint + method tables)."""
    consts = _module_constants(tree)
    return [
        _ClassExtractor(stmt, source, consts)
        for stmt in tree.body
        if isinstance(stmt, ast.ClassDef)
    ]
