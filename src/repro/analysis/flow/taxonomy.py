"""The cost-tag taxonomy the flow checker certifies sends against.

The paper's bounds are stated *per message class*, and the repro itemizes
every class through ``Metrics.cost_by_tag``.  A send whose tag is not in
this registry either silently merges into another class's budget or
creates an unaccounted one — RS008 flags both.

Two sources define the registry:

* the **declared manifest** below — every tag a consumer reads back out of
  ``cost_by_tag`` / ``tagged_cost`` (plus the documented demo tags), kept
  in lock-step with the protocol modules;
* **per-module discovery** — string literals a scanned module itself reads
  from ``cost_by_tag`` / ``count_by_tag`` / ``tagged_cost`` are accepted
  for that module, so a new protocol that both sends and accounts a fresh
  tag needs no manifest edit to lint clean.
"""

from __future__ import annotations

import ast

__all__ = ["DECLARED_TAGS", "DECLARED_PREFIXES", "module_declared_tags",
           "tag_is_declared"]

#: Every itemized message class with a fixed tag (see ``docs/ANALYSIS.md``).
DECLARED_TAGS: frozenset[str] = frozenset({
    # core protocol suite
    "flood", "broadcast", "convergecast", "converge",
    "dfs", "dfs-control",
    "ghs-connect", "ghs-initiate", "ghs-test", "ghs-report", "ghs-halt",
    "centr", "MST_centr", "SPT_centr",
    "bfs-sync", "bfs-explore", "bfs-ack", "bfs-child",
    # reliable transport accounting
    "rel-data", "rel-ack", "rel-retry",
    # synchronizers (pulse engines + clock drivers)
    "proto", "sync-ack", "sync-alpha", "sync-beta", "sync-gamma",
    "alpha", "beta", "gamma*",
    # termination detection / controller framing
    "ds-ack", "ds-announce",
    "ctl-req", "ctl-grant", "ctl-halt",
    # controller-demo inner protocols (framed under ctl-proto.<tag>)
    "wake", "chunk", "storm",
})

#: Namespaced families: any tag starting with one of these is accounted
#: by a ``startswith`` consumer, so the whole family is sanctioned.
DECLARED_PREFIXES: tuple[str, ...] = ("ds-proto.", "ctl-proto.")

# Attribute names whose string-subscript reads declare a tag in-module.
_TAG_MAPS = frozenset({"cost_by_tag", "count_by_tag"})


def module_declared_tags(tree: ast.AST) -> frozenset[str]:
    """Tags a module itself reads back from the metrics maps.

    Recognizes ``...cost_by_tag["x"]``, ``...cost_by_tag.get("x", ...)``
    and ``...tagged_cost("x", ...)`` — the patterns the experiment readers
    use — so locally-accounted tags are sanctioned without a manifest edit.
    """
    tags: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr in _TAG_MAPS
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            tags.add(node.slice.value)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if (
                node.func.attr == "get"
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr in _TAG_MAPS
            ) or node.func.attr == "tagged_cost":
                for arg in node.args:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        tags.add(arg.value)
    return frozenset(tags)


def tag_is_declared(tag: str, extra: frozenset[str] = frozenset()) -> bool:
    """Is ``tag`` in the taxonomy (manifest, module-local, or a family)?"""
    if tag in DECLARED_TAGS or tag in extra:
        return True
    return any(tag.startswith(p) for p in DECLARED_PREFIXES)
