"""Interprocedural message-flow contract checker.

Per protocol module this package extracts send sites (kind, tag, size),
handler dispatch structure (the ``on_message`` ladder plus helper methods
through an intraprocedural call graph), and the message-flow graph
(kind -> senders -> handlers -> kinds sent in response), then checks the
send/handle/tag contract the paper's per-message-class cost accounting
depends on (rules RS006-RS010, registered in the shared catalog of
:mod:`repro.analysis.rules`).

``PROTOCOL_MODULES`` is the certified surface: for every module named
here the extracted send-kind set must equal the handled-kind set —
asserted by ``tests/test_flow.py`` and re-checked by the CI ``flowcheck``
job on every push.
"""

from __future__ import annotations

import ast

from .export import flow_to_ascii, flow_to_dot
from .extract import HANDLER_ROOTS, extract_module_flow
from .model import ClassFlow, HandlerClause, KindNode, ModuleFlow, SendSite, TagInfo
from .rules import FLOW_CODES, analyze_flow_tree
from .taxonomy import DECLARED_PREFIXES, DECLARED_TAGS

__all__ = [
    "FLOW_CODES",
    "HANDLER_ROOTS",
    "DECLARED_TAGS",
    "DECLARED_PREFIXES",
    "PROTOCOL_MODULES",
    "TagInfo",
    "SendSite",
    "HandlerClause",
    "ClassFlow",
    "KindNode",
    "ModuleFlow",
    "analyze_flow_tree",
    "extract_module_flow",
    "flow_of_source",
    "flow_to_ascii",
    "flow_to_dot",
]

#: The eleven kind-dispatching protocol modules under contract: the
#: extracted send-kind set equals the handled-kind set for each (modules
#: with opaque payloads satisfy it as the empty set on both sides).
PROTOCOL_MODULES: tuple[str, ...] = (
    "repro.protocols.broadcast",
    "repro.protocols.convergecast",
    "repro.protocols.dfs",
    "repro.protocols.full_info",
    "repro.protocols.mst_ghs",
    "repro.protocols.spt_recur",
    "repro.protocols.termination",
    "repro.faults.transport",
    "repro.synch.host_base",
    "repro.synch.simple_synchronizers",
    "repro.synch.gamma_w",
)


def flow_of_source(source: str, path: str = "<string>") -> ModuleFlow:
    """Parse and extract one module's flow model in one call."""
    tree = ast.parse(source, filename=path)
    return extract_module_flow(tree, path, source)
