"""CLI for the determinism linter: ``python -m repro.analysis``.

Walks the given paths (default: the ``repro`` package source it is running
from), applies every rule in :mod:`repro.analysis.rules`, and prints the
findings deterministically sorted — as text, as JSONL with ``--format
jsonl`` (one finding object per line, machine-diffable), or as GitHub
workflow annotations with ``--format github`` (``::error file=...`` lines
the Actions UI attaches to the diff; text and jsonl stay byte-identical
across runs).

``--flow`` restricts the run to the interprocedural message-flow rules
(``RS006``–``RS010``, :mod:`repro.analysis.flow`).  ``--dot PATH`` writes
the message-flow graph of the scanned files as Graphviz DOT; ``--graph``
prints the per-module ASCII flow graphs instead of linting.

Exit status: 0 when every finding is covered by the baseline (or there are
none), 1 when new findings exist, 2 on usage errors.  ``--write-baseline``
accepts the current findings into the baseline file (each entry carries a
justification — edit it to say *why* each one is acceptable).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path

from .baseline import Baseline, BaselineError, diff_against
from .findings import Finding
from .flow import ModuleFlow, extract_module_flow, flow_to_ascii, flow_to_dot
from .rules import FLOW_CODES, RULES, analyze_source

__all__ = ["main", "collect_findings"]


def _iter_py_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise SystemExit(f"repro.analysis: not a python file or dir: {path}")
    return files


def _rel(path: Path) -> str:
    """Repo-relative posix path when possible (stable baseline keys)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def collect_findings(paths: list[Path],
                     rules: list[str] | None = None) -> list[Finding]:
    """All findings over ``paths``, deterministically sorted."""
    findings: list[Finding] = []
    for file in _iter_py_files(paths):
        source = file.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, path=_rel(file), rules=rules))
    return sorted(findings)


def _default_target() -> Path:
    """The installed ``repro`` package source tree."""
    return Path(__file__).resolve().parent.parent


def _module_flows(paths: list[Path]) -> list[ModuleFlow]:
    """Message-flow extraction over every python file under ``paths``."""
    flows: list[ModuleFlow] = []
    for file in _iter_py_files(paths):
        source = file.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(file))
        flows.append(extract_module_flow(tree, path=_rel(file), source=source))
    return flows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="determinism linter for the repro simulation codebase",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to scan "
                             "(default: the repro package)")
    parser.add_argument("--format", choices=("text", "jsonl", "github"),
                        default="text")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule codes to run "
                             f"(default: all of {','.join(sorted(RULES))})")
    parser.add_argument("--flow", action="store_true",
                        help="run only the message-flow contract rules "
                             f"({','.join(sorted(FLOW_CODES))})")
    parser.add_argument("--dot", type=Path, default=None, metavar="PATH",
                        help="also write the message-flow graph of the "
                             "scanned files as Graphviz DOT to PATH")
    parser.add_argument("--graph", action="store_true",
                        help="print per-module ASCII flow graphs and exit "
                             "(no linting)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline JSON; findings it covers do not fail")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        metavar="PATH",
                        help="accept current findings into PATH and exit 0")
    parser.add_argument("--explain", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.explain:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0

    rules = None
    if args.rules is not None:
        rules = [c.strip() for c in args.rules.split(",") if c.strip()]
        unknown = [c for c in rules if c not in RULES]
        if unknown:
            print(f"unknown rule code(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    if args.flow:
        if rules is not None:
            print("--flow and --rules are mutually exclusive",
                  file=sys.stderr)
            return 2
        rules = sorted(FLOW_CODES)

    paths = args.paths or [_default_target()]

    if args.graph:
        for flow in _module_flows(paths):
            print(f"== {flow.path}")
            print(flow_to_ascii(flow), end="")
        return 0

    if args.dot is not None:
        args.dot.write_text(flow_to_dot(_module_flows(paths)),
                            encoding="utf-8")
        print(f"wrote flow graph to {args.dot}", file=sys.stderr)

    findings = collect_findings(paths, rules=rules)

    if args.write_baseline is not None:
        Baseline.from_findings(
            findings,
            justification="TODO: justify why this finding is acceptable",
        ).dump(args.write_baseline)
        print(f"wrote {len(findings)} finding(s) to {args.write_baseline}")
        return 0

    baseline = Baseline()
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, BaselineError) as exc:
            print(f"baseline error: {exc}", file=sys.stderr)
            return 2

    new, stale = diff_against(findings, baseline)

    if args.format == "jsonl":
        for f in findings:
            doc = f.as_dict()
            doc["baselined"] = f in baseline
            print(json.dumps(doc, sort_keys=True))
    elif args.format == "github":
        # Workflow-command annotations: one ::error per *new* finding so
        # the Actions UI pins them to the diff; columns are 1-based there.
        for f in new:
            where = f" [in {f.context}]" if f.context != "<module>" else ""
            print(f"::error file={f.path},line={f.line},col={f.col + 1},"
                  f"title={f.rule}::{f.message}{where}")
        print(f"{len(new)} finding(s)")
    else:
        for f in new:
            print(f.render())
        accepted = len(findings) - len(new)
        summary = f"{len(new)} finding(s)"
        if accepted:
            summary += f" ({accepted} more covered by baseline)"
        print(summary)
        for entry in stale:
            print(f"warning: stale baseline entry "
                  f"{entry['rule']} {entry['path']} ({entry['snippet']!r}) "
                  f"matches nothing; prune it", file=sys.stderr)

    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
