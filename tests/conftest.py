"""Shared fixtures: kernel-backend matrix for the graph substrate tests.

``each_backend`` parametrizes a test over ``REPRO_KERNEL_BACKEND`` so
every golden value is asserted under both the pure-Python CSR kernels
and the NumPy backend (skipped automatically when numpy is absent —
the no-numpy CI leg then runs the same tests on the python leg only).
Modules opt in with ``pytestmark = pytest.mark.usefixtures("each_backend")``.
"""

import pytest

from repro.graphs.npkernels import numpy_available

KERNEL_BACKENDS = [
    "python",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(
            not numpy_available(), reason="numpy not installed"
        ),
    ),
]


@pytest.fixture(params=KERNEL_BACKENDS, ids=lambda b: f"backend={b}")
def each_backend(request, monkeypatch):
    """Run the requesting test once per kernel backend."""
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", request.param)
    return request.param
