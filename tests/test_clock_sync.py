"""Tests for clock synchronizers alpha*, beta*, gamma* (Section 3)."""

import math

import pytest

from repro.graphs import (
    heavy_edge_clock_graph,
    max_neighbor_distance,
    network_params,
    path_graph,
    random_connected_graph,
    ring_graph,
)
from repro.sim import UniformDelay
from repro.synch import (
    check_causality,
    run_alpha_star,
    run_beta_star,
    run_gamma_star,
)

TARGET = 5


# --------------------------------------------------------------------- #
# alpha*
# --------------------------------------------------------------------- #


def test_alpha_star_pulses_and_causality():
    g = random_connected_graph(15, 20, seed=1, max_weight=6)
    stats = run_alpha_star(g, TARGET)
    for v, times in stats.pulse_times.items():
        assert len(times) >= TARGET + 1
        assert times == sorted(times)
    check_causality(g, stats)


def test_alpha_star_delay_is_max_incident_weight():
    # On a uniform ring every pulse takes exactly one edge weight.
    g = ring_graph(8, weight=3.0)
    stats = run_alpha_star(g, TARGET)
    assert stats.max_pulse_delay == pytest.approx(3.0)


def test_alpha_star_pays_W_on_heavy_edge():
    g = heavy_edge_clock_graph(12, heavy=100.0)
    p = network_params(g)
    stats = run_alpha_star(g, TARGET)
    # alpha* waits for the heavy chord every pulse: delay Theta(W).
    assert stats.max_pulse_delay >= p.W - 1e-9


def test_alpha_star_cost_per_pulse_2E():
    g = random_connected_graph(12, 18, seed=2)
    p = network_params(g)
    stats = run_alpha_star(g, TARGET)
    # 2 messages per edge per pulse (one each direction).
    assert stats.comm_cost_per_pulse <= 2 * p.E * (TARGET + 1) / TARGET + 1e-9


def test_alpha_star_random_delays_causal():
    g = random_connected_graph(12, 15, seed=3, max_weight=9)
    stats = run_alpha_star(g, TARGET, delay=UniformDelay(), seed=7)
    check_causality(g, stats)


# --------------------------------------------------------------------- #
# beta*
# --------------------------------------------------------------------- #


def test_beta_star_pulses_and_causality():
    g = random_connected_graph(15, 20, seed=4, max_weight=6)
    stats = run_beta_star(g, TARGET)
    for times in stats.pulse_times.values():
        assert len(times) >= TARGET + 1
    # beta* synchronizes globally, so causality holds on the full graph.
    check_causality(g, stats)


def test_beta_star_delay_about_twice_depth():
    g = path_graph(9, weight=2.0)  # center 4, depth 8
    stats = run_beta_star(g, TARGET)
    assert stats.max_pulse_delay == pytest.approx(2 * 8.0)


def test_beta_star_beats_alpha_when_D_less_than_W():
    g = heavy_edge_clock_graph(16, heavy=500.0)
    a = run_alpha_star(g, TARGET)
    b = run_beta_star(g, TARGET)
    assert b.max_pulse_delay < a.max_pulse_delay / 5


def test_beta_star_explicit_tree_requires_root():
    g = ring_graph(6)
    from repro.graphs import shortest_path_tree

    t = shortest_path_tree(g, 0)
    with pytest.raises(ValueError):
        run_beta_star(g, TARGET, tree=t)
    stats = run_beta_star(g, TARGET, tree=t, root=0)
    assert stats.max_pulse_delay > 0


# --------------------------------------------------------------------- #
# gamma*
# --------------------------------------------------------------------- #


def test_gamma_star_pulses_and_causality():
    g = random_connected_graph(15, 20, seed=5, max_weight=6)
    stats = run_gamma_star(g, TARGET)
    for times in stats.pulse_times.values():
        assert len(times) >= TARGET + 1
    check_causality(g, stats)


def test_gamma_star_delay_bound_d_log2n():
    g = heavy_edge_clock_graph(16, heavy=1000.0)
    d = max_neighbor_distance(g)
    n = g.num_vertices
    stats = run_gamma_star(g, TARGET)
    # O(d log^2 n) with a generous constant; crucially independent of W.
    bound = 8 * d * math.log2(n) ** 2
    assert stats.max_pulse_delay <= bound


def test_gamma_star_beats_alpha_on_heavy_edge():
    g = heavy_edge_clock_graph(20, heavy=2000.0)
    a = run_alpha_star(g, TARGET)
    c = run_gamma_star(g, TARGET)
    assert c.max_pulse_delay < a.max_pulse_delay / 10


def test_gamma_star_random_delays_causal():
    g = random_connected_graph(12, 15, seed=6, max_weight=9)
    stats = run_gamma_star(g, TARGET, delay=UniformDelay(), seed=11)
    check_causality(g, stats)


def test_gamma_star_under_serialized_links():
    """The congestion regime of Section 3: still correct, delay still
    bounded away from W."""
    g = heavy_edge_clock_graph(12, heavy=500.0)
    stats = run_gamma_star(g, TARGET, serialize=True)
    check_causality(g, stats)
    assert stats.max_pulse_delay < 500.0
