"""ChaosOutcome classification: detectable vs silent, crash+wrong."""

import pytest

from repro.faults import (
    DETECTABLE_FAILURES,
    ChaosOutcome,
    CrashWindow,
    FaultPlan,
    run_chaos,
)
from repro.graphs import random_connected_graph
from repro.protocols.broadcast import FloodProcess


# --------------------------------------------------------------------- #
# Property unit tests (no simulation)
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("status", sorted(DETECTABLE_FAILURES))
def test_detectable_statuses(status):
    outcome = ChaosOutcome(status=status, result=None)
    assert outcome.detectable_failure
    assert not outcome.silent_failure


def test_ok_is_neither():
    outcome = ChaosOutcome(status="ok", result=None)
    assert not outcome.detectable_failure
    assert not outcome.silent_failure


def test_wrong_without_crash_is_silent_only():
    outcome = ChaosOutcome(status="wrong", result=None)
    assert outcome.silent_failure
    assert not outcome.detectable_failure


def test_crash_and_wrong_reports_both():
    # A node crashed (observable) and the answer is wrong (silent): the
    # classification must not let one axis mask the other.
    outcome = ChaosOutcome(status="wrong", result=None, crashed=True)
    assert outcome.silent_failure
    assert outcome.detectable_failure


def test_crash_with_ok_status_is_not_a_failure():
    # A crash the protocol rode out (recovered, finished, right answer)
    # is not a failure of any kind.
    outcome = ChaosOutcome(status="ok", result=None, crashed=True)
    assert not outcome.detectable_failure
    assert not outcome.silent_failure


def test_crashed_detectable_for_every_non_ok_status():
    for status in sorted(DETECTABLE_FAILURES | {"wrong"}):
        assert ChaosOutcome(status=status, result=None,
                            crashed=True).detectable_failure


# --------------------------------------------------------------------- #
# Integration: the runner populates the new fields
# --------------------------------------------------------------------- #

def _flood_setup():
    g = random_connected_graph(8, 6, seed=3)
    root = g.vertices[0]

    def factory(v):
        return FloodProcess(v == root, "payload")

    def answer(result):
        return sorted((repr(v), p.payload)
                      for v, p in result.processes.items())

    return g, factory, answer


def test_runner_reports_crash_on_recovered_run():
    g, factory, answer = _flood_setup()
    plan = FaultPlan(crashes=(CrashWindow(g.vertices[-1], 1.0, 4.0),))
    outcome = run_chaos(g, factory, plan=plan, answer=answer)
    assert outcome.crashed
    assert outcome.status == "ok"
    assert not outcome.detectable_failure


def test_runner_crash_and_wrong_sets_both_axes():
    g, factory, answer = _flood_setup()
    plan = FaultPlan(crashes=(CrashWindow(g.vertices[-1], 1.0, 4.0),))
    outcome = run_chaos(g, factory, plan=plan, answer=answer,
                        expect="something else entirely")
    assert outcome.status == "wrong"
    assert outcome.crashed
    assert outcome.silent_failure and outcome.detectable_failure


def test_runner_no_faults_reports_no_crash():
    g, factory, answer = _flood_setup()
    outcome = run_chaos(g, factory, answer=answer)
    assert outcome.status == "ok"
    assert not outcome.crashed
    assert outcome.violations == ()


def test_runner_violations_empty_with_recording_detector():
    g, factory, answer = _flood_setup()
    outcome = run_chaos(g, factory, answer=answer, race_detect="record")
    assert outcome.status == "ok"
    assert outcome.violations == ()
