"""Unit tests for the WeightedGraph data structure."""

import pytest

from repro.graphs import WeightedGraph, edge_key, path_graph, ring_graph


def test_empty_graph():
    g = WeightedGraph()
    assert g.num_vertices == 0
    assert g.num_edges == 0
    assert g.total_weight() == 0.0
    assert g.max_weight() == 0.0
    assert g.is_connected()  # vacuously
    assert g.connected_components() == []


def test_add_edge_and_lookup():
    g = WeightedGraph()
    g.add_edge("a", "b", 3.0)
    assert g.has_edge("a", "b")
    assert g.has_edge("b", "a")
    assert g.weight("a", "b") == 3.0
    assert g.weight("b", "a") == 3.0
    assert g.num_vertices == 2
    assert g.num_edges == 1


def test_edge_weight_overwrite():
    g = WeightedGraph()
    g.add_edge(1, 2, 5.0)
    g.add_edge(1, 2, 7.0)
    assert g.weight(1, 2) == 7.0
    assert g.num_edges == 1


def test_self_loop_rejected():
    g = WeightedGraph()
    with pytest.raises(ValueError):
        g.add_edge(1, 1, 2.0)


def test_nonpositive_weight_rejected():
    g = WeightedGraph()
    with pytest.raises(ValueError):
        g.add_edge(1, 2, 0.0)
    with pytest.raises(ValueError):
        g.add_edge(1, 2, -1.0)


def test_remove_edge():
    g = path_graph(3)
    g.remove_edge(0, 1)
    assert not g.has_edge(0, 1)
    assert g.num_edges == 1
    with pytest.raises(KeyError):
        g.remove_edge(0, 1)


def test_neighbors_and_degree():
    g = ring_graph(4)
    assert sorted(g.neighbors(0)) == [1, 3]
    assert g.degree(0) == 2
    nw = g.neighbor_weights(0)
    assert nw == {1: 1.0, 3: 1.0}
    nw[1] = 99  # mutating the copy must not affect the graph
    assert g.weight(0, 1) == 1.0


def test_edges_iteration_each_once():
    g = ring_graph(5)
    edges = g.edge_list()
    assert len(edges) == 5
    keys = {edge_key(u, v) for u, v, _ in edges}
    assert len(keys) == 5


def test_total_and_max_weight():
    g = WeightedGraph([(0, 1, 2.0), (1, 2, 3.0), (2, 0, 10.0)])
    assert g.total_weight() == 15.0
    assert g.max_weight() == 10.0


def test_copy_is_independent():
    g = path_graph(3)
    h = g.copy()
    h.add_edge(0, 2, 5.0)
    assert not g.has_edge(0, 2)
    assert h.has_edge(0, 2)


def test_induced_subgraph():
    g = ring_graph(6)
    sub = g.induced_subgraph([0, 1, 2])
    assert sub.num_vertices == 3
    assert sub.num_edges == 2  # 0-1, 1-2; the edge 5-0 is cut
    assert sub.has_edge(0, 1) and sub.has_edge(1, 2)


def test_edge_subgraph():
    g = ring_graph(4)
    sub = g.edge_subgraph([(0, 1), (2, 3)], vertices=g.vertices)
    assert sub.num_vertices == 4
    assert sub.num_edges == 2
    assert sub.weight(0, 1) == 1.0


def test_connected_components():
    g = WeightedGraph([(0, 1, 1.0), (2, 3, 1.0)], vertices=[4])
    comps = sorted(g.connected_components(), key=lambda c: min(c))
    assert comps == [{0, 1}, {2, 3}, {4}]
    assert not g.is_connected()


def test_is_tree():
    assert path_graph(5).is_tree()
    assert not ring_graph(5).is_tree()
    g = WeightedGraph([(0, 1, 1.0), (2, 3, 1.0)])
    assert not g.is_tree()  # disconnected forest


def test_contains_iter_len():
    g = path_graph(3)
    assert 0 in g and 2 in g and 5 not in g
    assert len(g) == 3
    assert sorted(g) == [0, 1, 2]


def test_edge_key_canonical():
    assert edge_key(2, 1) == (1, 2)
    assert edge_key(1, 2) == (1, 2)
    assert edge_key("b", "a") == ("a", "b")


def test_edge_key_mixed_types():
    # Non-comparable vertex types fall back to repr-ordering.
    k1 = edge_key(1, ("v", 1))
    k2 = edge_key(("v", 1), 1)
    assert k1 == k2
