"""Tests for MST_ghs and MST_fast (Sections 8.1, 8.3)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    WeightedGraph,
    complete_graph,
    mst_weight,
    network_params,
    path_graph,
    random_connected_graph,
    ring_graph,
)
from repro.protocols.mst_ghs import run_mst_fast, run_mst_ghs
from repro.sim import ScaledDelay, UniformDelay


def _assert_is_mst(graph, tree):
    assert tree.is_tree()
    assert tree.num_vertices == graph.num_vertices
    assert tree.total_weight() == pytest.approx(mst_weight(graph))


# --------------------------------------------------------------------- #
# Correctness across topologies, modes and delay adversaries
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("runner", [run_mst_ghs, run_mst_fast])
@pytest.mark.parametrize("maker", [
    lambda: path_graph(2, weight=5.0),
    lambda: path_graph(10, weight=3.0),
    lambda: ring_graph(9, weight=2.0),
    lambda: complete_graph(8),
    lambda: random_connected_graph(20, 30, seed=1),
    lambda: random_connected_graph(30, 60, seed=2, max_weight=50),
])
def test_ghs_variants_compute_mst(runner, maker):
    g = maker()
    _, tree = runner(g)
    _assert_is_mst(g, tree)


@pytest.mark.parametrize("runner", [run_mst_ghs, run_mst_fast])
def test_ghs_under_random_delays(runner):
    for seed in range(4):
        g = random_connected_graph(18, 28, seed=seed + 10)
        _, tree = runner(g, delay=UniformDelay(), seed=seed)
        _assert_is_mst(g, tree)


@pytest.mark.parametrize("runner", [run_mst_ghs, run_mst_fast])
def test_ghs_with_zero_delays(runner):
    g = random_connected_graph(15, 25, seed=3)
    _, tree = runner(g, delay=ScaledDelay(0.0))
    _assert_is_mst(g, tree)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 25), st.integers(0, 40), st.integers(0, 10_000))
def test_ghs_random_graphs_property(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    _, tree = run_mst_ghs(g)
    _assert_is_mst(g, tree)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 20), st.integers(0, 30), st.integers(0, 10_000))
def test_ghs_fast_random_graphs_property(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed, max_weight=30)
    _, tree = run_mst_fast(g)
    _assert_is_mst(g, tree)


def test_ghs_duplicate_weights():
    # All weights equal: correctness must come from the tie-breaking keys.
    g = complete_graph(10, weight=7.0)
    _, tree = run_mst_ghs(g)
    _assert_is_mst(g, tree)
    _, tree2 = run_mst_fast(g)
    _assert_is_mst(g, tree2)


def test_ghs_two_nodes():
    g = WeightedGraph([(0, 1, 9.0)])
    _, tree = run_mst_ghs(g)
    assert tree.has_edge(0, 1)


def test_ghs_rejects_single_vertex():
    with pytest.raises(ValueError):
        run_mst_ghs(WeightedGraph(vertices=[0]))


# --------------------------------------------------------------------- #
# Complexity bounds (Lemma 8.1 / Corollary 8.3)
# --------------------------------------------------------------------- #


def test_ghs_communication_bound():
    g = random_connected_graph(40, 120, seed=5, max_weight=20)
    p = network_params(g)
    result, _ = run_mst_ghs(g)
    # O(E + V log n) with a generous constant.
    bound = 6 * (p.E + p.V * math.log2(p.n))
    assert result.comm_cost <= bound


def test_fast_communication_bound():
    g = random_connected_graph(40, 120, seed=6, max_weight=20)
    p = network_params(g)
    result, _ = run_mst_fast(g)
    # O(E log n log V) with a generous constant.
    bound = 6 * p.E * math.log2(p.n) * max(1.0, math.log2(p.V))
    assert result.comm_cost <= bound


def test_fast_avoids_heavy_edge_scans():
    """One gigantic non-MST edge: serial GHS pays to probe it; MST_fast's
    doubling guess never needs to reach it, so its *time* stays small."""
    n = 24
    g = ring_graph(n, weight=2.0)
    g.add_edge(0, n // 2, 10_000.0)
    ghs_res, t1 = run_mst_ghs(g)
    fast_res, t2 = run_mst_fast(g)
    _assert_is_mst(g, t1)
    _assert_is_mst(g, t2)
    # Serial GHS probes the heavy edge (Test or Reject traffic across it);
    # its communication therefore carries a ~10k term.
    assert ghs_res.comm_cost > 10_000.0
    # The fast variant's search stops at threshold ~4 (< heavy weight).
    assert fast_res.comm_cost < 10_000.0


def test_fast_absorb_after_report_regression():
    """Regression: a fragment that absorbs a lower-level fragment after one
    of its members already reported 'nothing below threshold' must not halt
    prematurely (the absorbed subtree's unprobed edges are invisible to the
    stale `more` bits).  Found by hypothesis; the fix gates halting on the
    member count.  Seed 117 reproduces the race deterministically."""
    g = random_connected_graph(9, 0, seed=117, max_weight=30)
    _, tree = run_mst_fast(g)
    _assert_is_mst(g, tree)


def test_fast_merge_threshold_symmetry_regression():
    """Regression: at a merge, both core endpoints must agree on the new
    fragment threshold (it is now carried inside Connect).  With
    asymmetric thresholds the two halves search different weight ranges,
    report different 'minimum' outgoing edges, and two fragments can
    deadlock on crossed Connect messages.  Seed 57 reproduces it."""
    g = random_connected_graph(16, 18, seed=57, max_weight=30)
    _, tree = run_mst_fast(g)
    _assert_is_mst(g, tree)


def test_fast_stress_many_seeds():
    """A broad deterministic sweep guarding against merge/threshold races
    (100 quick instances across sizes, densities and delay models)."""
    for n, extra in ((5, 3), (9, 0), (12, 20), (16, 18), (22, 40)):
        for seed in range(10):
            g = random_connected_graph(n, extra, seed=seed * 13 + n,
                                       max_weight=30)
            _, tree = run_mst_fast(g, max_events=3_000_000)
            _assert_is_mst(g, tree)
            _, tree = run_mst_fast(g, delay=UniformDelay(), seed=seed,
                                   max_events=3_000_000)
            _assert_is_mst(g, tree)
