"""Tests for SPT_recur (Section 9.2): unit expansion + strip BFS."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    WeightedGraph,
    dijkstra,
    path_graph,
    random_connected_graph,
    ring_graph,
    tree_distances,
)
from repro.protocols.spt_recur import run_spt_recur, unit_expansion
from repro.sim import ScaledDelay, UniformDelay


# --------------------------------------------------------------------- #
# Unit expansion
# --------------------------------------------------------------------- #


def test_unit_expansion_structure():
    g = WeightedGraph([(0, 1, 3.0), (1, 2, 1.0)])
    eg, info = unit_expansion(g)
    # edge (0,1) -> 2 dummies, edge (1,2) stays direct
    assert eg.num_vertices == 3 + 2
    assert eg.num_edges == 3 + 1
    assert all(w == 1.0 for _, _, w in eg.edges())
    assert len(info) == 2


def test_unit_expansion_preserves_distances():
    g = random_connected_graph(12, 15, seed=1, max_weight=6)
    eg, _ = unit_expansion(g)
    d1, _ = dijkstra(g, 0)
    d2, _ = dijkstra(eg, 0)
    for v in g.vertices:
        assert d2[v] == pytest.approx(d1[v])


def test_unit_expansion_rejects_fractional():
    with pytest.raises(ValueError):
        unit_expansion(WeightedGraph([(0, 1, 1.5)]))


# --------------------------------------------------------------------- #
# Strip BFS end-to-end
# --------------------------------------------------------------------- #


def _check_spt(g, source=0, **kw):
    result, tree = run_spt_recur(g, source, **kw)
    assert tree.is_tree()
    dist, _ = dijkstra(g, source)
    assert tree_distances(tree, source) == pytest.approx(dist)
    return result


@pytest.mark.parametrize("maker", [
    lambda: path_graph(8, weight=2.0),
    lambda: ring_graph(9, weight=3.0),
    lambda: random_connected_graph(15, 20, seed=2, max_weight=5),
    lambda: random_connected_graph(20, 40, seed=3, max_weight=8),
])
def test_spt_recur_correct(maker):
    _check_spt(maker())


@pytest.mark.parametrize("stride", [1, 2, 5, 100])
def test_spt_recur_stride_sweep(stride):
    g = random_connected_graph(12, 18, seed=4, max_weight=6)
    _check_spt(g, stride=stride)


def test_spt_recur_under_random_delays():
    for seed in range(3):
        g = random_connected_graph(12, 16, seed=20 + seed, max_weight=5)
        _check_spt(g, delay=UniformDelay(), seed=seed)


def test_spt_recur_zero_delays():
    g = random_connected_graph(10, 14, seed=5, max_weight=4)
    _check_spt(g, delay=ScaledDelay(0.0))


@settings(max_examples=12, deadline=None)
@given(st.integers(3, 15), st.integers(0, 20), st.integers(0, 1000),
       st.integers(1, 10))
def test_spt_recur_property(n, extra, seed, stride):
    g = random_connected_graph(n, extra, seed=seed, max_weight=5)
    _check_spt(g, stride=stride)


def test_spt_recur_stride_tradeoff_visible():
    """Small stride -> many global syncs (more sync cost); large stride ->
    fewer syncs but more intra-strip corrections.  Both correct; the sync
    message count must decrease with the stride."""
    g = random_connected_graph(25, 40, seed=6, max_weight=6)
    res_small = _check_spt(g, stride=1)
    res_large = _check_spt(g, stride=1000)
    sync_small = res_small.metrics.count_by_tag["bfs-sync"]
    sync_large = res_large.metrics.count_by_tag["bfs-sync"]
    assert sync_large < sync_small
