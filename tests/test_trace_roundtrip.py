"""JSONL trace round-trip: export -> load -> export is byte-identical."""

import pytest

from repro.faults import CrashWindow, FaultPlan, run_chaos
from repro.graphs import random_connected_graph
from repro.obs import (
    LoadedTrace,
    TraceRecorder,
    TraceSummary,
    load_jsonl,
    to_jsonl,
    validate_jsonl,
)
from repro.protocols.broadcast import FloodProcess


def _traced_run(limit=None, plan=None):
    """A chaos run rich in event kinds: sends, delivers, drops, crashes,
    recovers, timers (via reliable-transport retries), finish."""
    g = random_connected_graph(8, 6, seed=3)
    root = g.vertices[0]
    if plan is None:
        plan = FaultPlan(drop=0.25, seed=5,
                         crashes=(CrashWindow(g.vertices[-1], 1.0, 4.0),))
    recorder = TraceRecorder(limit=limit)
    recorder.meta["scenario"] = "roundtrip-test"
    outcome = run_chaos(g, lambda v: FloodProcess(v == root, "x"),
                        plan=plan, recorder=recorder)
    assert outcome.status == "ok"
    return recorder


def _assert_round_trip(recorder):
    text = to_jsonl(recorder)
    assert validate_jsonl(text) == []
    trace = load_jsonl(text)
    assert to_jsonl(trace) == text
    return trace


def test_full_trace_round_trip():
    recorder = _traced_run()
    trace = _assert_round_trip(recorder)
    kinds = {ev.kind for ev in trace.events}
    assert {"send", "deliver", "drop", "crash", "recover",
            "timer", "finish"} <= kinds


def test_loaded_trace_is_recorder_shaped():
    recorder = _traced_run()
    trace = load_jsonl(to_jsonl(recorder))
    assert isinstance(trace, LoadedTrace)
    assert trace.counts == recorder.counts
    assert trace.total_cost == recorder.total_cost
    assert trace.n_emitted == recorder.n_emitted
    assert trace.n_recorded == recorder.n_recorded
    assert trace.cost_by_span == recorder.cost_by_span
    assert trace.meta["scenario"] == "roundtrip-test"
    assert trace.meta["status"] == recorder.meta["status"]


def test_loaded_trace_summary_matches_recorder():
    recorder = _traced_run()
    trace = load_jsonl(to_jsonl(recorder))
    assert trace.summary() == TraceSummary.from_recorder(recorder)


def test_aggregate_only_round_trip():
    # limit=0 keeps no events at all; the aggregates still round-trip.
    recorder = _traced_run(limit=0)
    trace = _assert_round_trip(recorder)
    assert trace.events == []
    assert trace.n_recorded == 0
    assert trace.n_emitted > 0
    assert trace.total_cost == recorder.total_cost


def test_ring_truncated_round_trip():
    recorder = _traced_run(limit=16)
    assert recorder.truncated
    trace = _assert_round_trip(recorder)
    assert trace.truncated
    assert trace.dropped == recorder.dropped
    assert len(trace.events) == 16


def test_double_round_trip_is_fixed_point():
    text = to_jsonl(_traced_run())
    once = to_jsonl(load_jsonl(text))
    twice = to_jsonl(load_jsonl(once))
    assert text == once == twice


def test_load_rejects_invalid_documents():
    with pytest.raises(ValueError, match="invalid"):
        load_jsonl("")
    with pytest.raises(ValueError, match="invalid"):
        load_jsonl('{"kind": "trace-meta"}\n{"seq": 0}\n')
    good = to_jsonl(_traced_run())
    # Tamper: swap two event lines so seq ordering breaks.
    lines = good.splitlines()
    lines[1], lines[2] = lines[2], lines[1]
    with pytest.raises(ValueError, match="invalid"):
        load_jsonl("\n".join(lines) + "\n")


def test_source_preserves_original_document():
    text = to_jsonl(_traced_run())
    assert load_jsonl(text).source == text
