"""Tests for the knowledge-flow auditor (Lemmas 7.1/7.2 observability)."""

from repro.core import (
    extract_ids,
    id_crossings,
    lemma_7_1_meetings,
    meeting_points,
    run_audited,
)
from repro.graphs import lower_bound_graph, path_graph, random_connected_graph
from repro.protocols.broadcast import FloodProcess
from repro.protocols.dfs import DfsProcess
from repro.protocols.mst_ghs import GhsProcess


def test_extract_ids_scalars_and_containers():
    universe = frozenset(range(10))
    assert extract_ids(3, universe) == {3}
    assert extract_ids("x", universe) == set()
    assert extract_ids((1, [2, {"k": 5}]), universe) == {1, 2, 5}
    assert extract_ids({7: (8,)}, universe) == {7, 8}


def test_extract_ids_matches_reprs_in_strings():
    universe = frozenset(range(10))
    # GHS fragment names embed endpoint reprs as strings.
    assert extract_ids((60.0, "3", "7"), universe) == {3, 7}


def test_extract_ids_is_an_over_approximation():
    # A numeric value equal to an id counts as that id (6.0 == 6): the
    # auditor deliberately over-approximates rather than missing flows.
    universe = frozenset(range(10))
    assert 6 in {int(x) for x in extract_ids((6.0,), universe)}


def test_apriori_knowledge_is_registers():
    g = path_graph(4)
    result = run_audited(g, lambda v: FloodProcess(v == 0, "payload"), )
    # Flood payloads carry no ids: knowledge stays at the registers.
    for v, proc in result.processes.items():
        assert proc.known == {v} | set(g.neighbors(v))


def test_flood_ships_no_ids():
    g = random_connected_graph(10, 12, seed=1)
    result = run_audited(g, lambda v: FloodProcess(v == 0, "w"))
    assert id_crossings(result) == {}


def test_ghs_ships_ids_in_fragment_names():
    g = random_connected_graph(10, 12, seed=2)
    result = run_audited(
        g, lambda v: GhsProcess(n_total=g.num_vertices),
        stop_when=lambda n: n.all_finished,
    )
    crossings = id_crossings(result)
    assert crossings, "GHS fragment names must carry endpoint ids"
    assert sum(crossings.values()) > 0


def test_meeting_points_on_gn():
    n = 8
    g = lower_bound_graph(n)
    result = run_audited(
        g, lambda v: GhsProcess(n_total=g.num_vertices),
        stop_when=lambda n_: n_.all_finished,
    )
    meetings = lemma_7_1_meetings(result, n)
    # Every bypass pair meets at least at its own endpoints (adjacent).
    for i, where in meetings.items():
        assert i in where or (n + 1 - i) in where or where


def test_meeting_points_simple():
    g = path_graph(3)
    result = run_audited(g, lambda v: FloodProcess(v == 0, "x"))
    # 0 and 2 are not adjacent and no ids travel: only vertex 1 knows both.
    assert meeting_points(result, 0, 2) == [1]


def test_dfs_token_carries_no_ids_but_control_does():
    g = random_connected_graph(8, 10, seed=3)
    result = run_audited(g, lambda v: DfsProcess(v == 0))
    crossings = id_crossings(result)
    # The DFS UPDATE/PERMIT path lists carry vertex ids.
    assert isinstance(crossings, dict)
