"""Tests for graph I/O and the extra generators (hypercube, trees)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    WeightedGraph,
    edge_key,
    binary_tree,
    caterpillar_graph,
    diameter,
    dump_graph,
    dumps_graph,
    hypercube_graph,
    load_graph,
    loads_graph,
    random_connected_graph,
)


# --------------------------------------------------------------------- #
# I/O round-trips
# --------------------------------------------------------------------- #


def _canonical(g):
    return sorted((*edge_key(u, v), w) for u, v, w in g.edges())


def test_roundtrip_simple():
    g = WeightedGraph([(0, 1, 2.5), (1, 2, 3.0)], vertices=[9])
    h = loads_graph(dumps_graph(g))
    assert _canonical(h) == _canonical(g)
    assert set(h.vertices) == set(g.vertices)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 25), st.integers(0, 30), st.integers(0, 1000))
def test_roundtrip_random(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    h = loads_graph(dumps_graph(g))
    assert _canonical(h) == _canonical(g)


def test_roundtrip_file(tmp_path):
    g = random_connected_graph(10, 12, seed=1)
    path = tmp_path / "g.txt"
    dump_graph(g, path)
    h = load_graph(path)
    assert _canonical(h) == _canonical(g)


def test_string_vertices_roundtrip():
    g = WeightedGraph([("alpha", "beta", 4.0)])
    h = loads_graph(dumps_graph(g))
    assert h.weight("alpha", "beta") == 4.0


def test_load_rejects_garbage():
    with pytest.raises(ValueError):
        loads_graph("e 1 2\n")  # missing weight
    with pytest.raises(ValueError):
        loads_graph("x 1 2 3\n")


def test_dump_rejects_whitespace_vertices():
    g = WeightedGraph([("a b", "c", 1.0)])
    with pytest.raises(ValueError):
        dumps_graph(g)


def test_comments_and_blank_lines_ignored():
    text = "# header\n\ne 1 2 5\n# trailing\n"
    g = loads_graph(text)
    assert g.weight(1, 2) == 5.0


# --------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------- #


def test_binary_tree_shape():
    t = binary_tree(3)
    assert t.num_vertices == 15
    assert t.is_tree()
    assert t.degree(1) == 2       # root
    assert t.degree(8) == 1       # a leaf


def test_binary_tree_depth_zero():
    t = binary_tree(0)
    assert t.num_vertices == 1
    with pytest.raises(ValueError):
        binary_tree(-1)


def test_hypercube_structure():
    h = hypercube_graph(4)
    assert h.num_vertices == 16
    assert h.num_edges == 4 * 16 // 2
    assert all(h.degree(v) == 4 for v in h.vertices)
    assert diameter(h) == 4.0
    with pytest.raises(ValueError):
        hypercube_graph(0)


def test_caterpillar_structure():
    c = caterpillar_graph(5, 3)
    assert c.num_vertices == 5 + 15
    assert c.is_tree()
    assert c.degree(2) == 2 + 3  # spine middle: 2 spine edges + 3 legs
    with pytest.raises(ValueError):
        caterpillar_graph(0, 1)


def test_generators_work_with_protocols():
    """The new topologies drive the main algorithms end to end."""
    from repro.graphs import mst_weight
    from repro.protocols import run_mst_ghs, run_spt_recur
    from repro.graphs import dijkstra, tree_distances

    h = hypercube_graph(3, weight=2.0)
    _, tree = run_mst_ghs(h)
    assert tree.total_weight() == pytest.approx(mst_weight(h))
    _, spt = run_spt_recur(h, 0)
    dist, _ = dijkstra(h, 0)
    assert tree_distances(spt, 0) == pytest.approx(dist)
