"""Isolated unit tests for the synchronizer-gamma state machine.

GammaNode is transport-agnostic, so we can drive it with a fake transport
and check the control-plane logic (safety convergecast, cluster-safe
broadcast, preferred-edge exchange, GO issuance) without a simulator.
"""

import pytest

from repro.graphs import path_graph, ring_graph
from repro.synch import build_partition
from repro.synch.gamma import (
    GammaNode,
)


class Harness:
    """Instantiates GammaNode at every vertex with an in-memory transport."""

    def __init__(self, graph, k=2):
        self.partition = build_partition(graph, k=k)
        self.sent = []       # (frm, to, msg) log
        self.gos = []        # (node, pulse) log
        self.queue = []
        self.nodes = {}
        for v in graph.vertices:
            self.nodes[v] = GammaNode(
                v, self.partition,
                send=lambda to, msg, v=v: self._send(v, to, msg),
                on_go=lambda p, v=v: self.gos.append((v, p)),
            )

    def _send(self, frm, to, msg):
        self.sent.append((frm, to, msg))
        self.queue.append((frm, to, msg))

    def deliver_all(self):
        while self.queue:
            frm, to, msg = self.queue.pop(0)
            self.nodes[to].handle(frm, msg)

    def declare_all_safe(self, pulse):
        for node in self.nodes.values():
            node.node_safe(pulse)
        self.deliver_all()


def test_single_cluster_go_after_all_safe():
    g = path_graph(4)  # k=2 partition may make one or more clusters
    h = Harness(g, k=4)  # large k: single cluster likely
    if len(h.partition.clusters) == 1:
        h.declare_all_safe(0)
        # every node got GO for pulse 1
        assert {(v, 1) for v in g.vertices} <= set(h.gos)


def test_go_requires_all_members_safe():
    g = path_graph(4)
    h = Harness(g, k=4)
    if len(h.partition.clusters) == 1:
        members = list(g.vertices)
        for v in members[:-1]:
            h.nodes[v].node_safe(0)
        h.deliver_all()
        assert not h.gos  # one member missing
        h.nodes[members[-1]].node_safe(0)
        h.deliver_all()
        assert h.gos


def test_multi_cluster_waits_for_neighbors():
    # Force >= 2 clusters with k=2 on a ring.
    g = ring_graph(12)
    h = Harness(g, k=2)
    assert len(h.partition.clusters) >= 2
    # Make only cluster 0's members safe.
    c0 = h.partition.clusters[0]
    for v in c0.members:
        h.nodes[v].node_safe(0)
    h.deliver_all()
    # Cluster 0 cannot GO: its neighbors are not safe yet.
    assert not h.gos
    # Now everyone.
    h.declare_all_safe(0)
    assert {(v, 1) for v in g.vertices} <= set(h.gos)


def test_sequential_pulses():
    g = ring_graph(8)
    h = Harness(g, k=2)
    for p in range(3):
        h.declare_all_safe(p)
        assert {(v, p + 1) for v in g.vertices} <= set(h.gos)


def test_out_of_order_safety_reports_buffered():
    """A cluster can receive neighbor-safe notices for a future pulse
    before its own members report; per-pulse keyed state must buffer."""
    g = ring_graph(12)
    h = Harness(g, k=2)
    clusters = h.partition.clusters
    assert len(clusters) >= 2
    fast = clusters[0]
    # Fast cluster reports pulse 0 AND pulse 1 before anyone else moves.
    for v in fast.members:
        h.nodes[v].node_safe(0)
    h.deliver_all()
    for v in fast.members:
        h.nodes[v].node_safe(1)
    h.deliver_all()
    assert not h.gos
    # Now the rest catches up on pulse 0 then 1.
    for c in clusters[1:]:
        for v in c.members:
            h.nodes[v].node_safe(0)
    h.deliver_all()
    go_set = set(h.gos)
    for v in g.vertices:
        assert (v, 1) in go_set
    for c in clusters[1:]:
        for v in c.members:
            h.nodes[v].node_safe(1)
    h.deliver_all()
    go_set = set(h.gos)
    for v in g.vertices:
        assert (v, 2) in go_set


def test_node_safe_idempotent():
    g = path_graph(3)
    h = Harness(g, k=4)
    n_sent_before = len(h.sent)
    h.nodes[0].node_safe(0)
    h.nodes[0].node_safe(0)
    h.nodes[0].node_safe(0)
    after_first = [m for m in h.sent if m[0] == 0]
    # Duplicate declarations add no extra traffic.
    h2 = Harness(g, k=4)
    h2.nodes[0].node_safe(0)
    assert len([m for m in h2.sent if m[0] == 0]) == len(after_first)


def test_unknown_message_rejected():
    g = path_graph(3)
    h = Harness(g, k=4)
    with pytest.raises(AssertionError):
        h.nodes[0].handle(1, ("bogus", 0))


def test_control_messages_stay_on_cluster_or_preferred_edges():
    g = ring_graph(12)
    h = Harness(g, k=2)
    h.declare_all_safe(0)
    part = h.partition
    preferred_pairs = {frozenset(e) for e in part.preferred.values()}
    for frm, to, msg in h.sent:
        same_cluster = part.cluster_of[frm] == part.cluster_of[to]
        on_preferred = frozenset((frm, to)) in preferred_pairs
        assert same_cluster or on_preferred, (frm, to, msg)
