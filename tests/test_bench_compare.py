"""Unit tests for the bench harness's --compare regression gate."""

import importlib.util
import pathlib

_BENCH = pathlib.Path(__file__).resolve().parent.parent / "scripts" / "bench.py"
_spec = importlib.util.spec_from_file_location("bench", _BENCH)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def _report(eq_speedups, kernels=None, net=None, chaos=None):
    shapes = {k: {"speedup": v} for k, v in eq_speedups.items()}
    geo = 1.0
    for v in eq_speedups.values():
        geo *= v
    geo **= 1.0 / max(len(eq_speedups), 1)
    rep = {"event_queue": {"shapes": shapes,
                           "aggregate": {"geomean_speedup": geo}}}
    if kernels is not None:
        kshapes = {k: {"speedup": v} for k, v in kernels.items()}
        kg = 1.0
        for v in kernels.values():
            kg *= v
        kg **= 1.0 / max(len(kernels), 1)
        rep["graph_kernels"] = {"shapes": kshapes,
                                "aggregate": {"geomean_speedup": kg}}
    if net is not None:
        rep["network"] = {"messages_per_s": net}
    if chaos is not None:
        rep["chaos_sweep"] = {"speedup": chaos}
    return rep


def test_identical_reports_pass():
    r = _report({"wave": 3.0, "chain": 1.1}, net=500000.0, chaos=1.0)
    ok, geomean, ratios = bench.compare_reports(r, r)
    assert ok
    assert abs(geomean - 1.0) < 1e-12
    assert set(ratios) == {
        "event_queue/wave/speedup", "event_queue/chain/speedup",
        "event_queue/geomean_speedup", "network/messages_per_s",
        "chaos_sweep/speedup",
    }


def test_regression_beyond_tolerance_fails():
    base = _report({"wave": 3.0, "chain": 1.2}, net=500000.0)
    cur = _report({"wave": 2.0, "chain": 0.9}, net=400000.0)  # ~ -28%
    ok, geomean, _ = bench.compare_reports(cur, base, tolerance=0.10)
    assert not ok
    assert geomean < 0.9


def test_regression_within_tolerance_passes():
    base = _report({"wave": 3.0}, net=500000.0)
    cur = _report({"wave": 2.85}, net=480000.0)  # ~ -4.5%
    ok, geomean, _ = bench.compare_reports(cur, base, tolerance=0.10)
    assert ok
    assert 0.9 < geomean < 1.0


def test_improvements_offset_small_regressions_via_geomean():
    base = _report({"wave": 1.0, "chain": 1.0})
    cur = _report({"wave": 2.0, "chain": 0.8})  # geomean ~1.26
    ok, geomean, _ = bench.compare_reports(cur, base)
    assert ok and geomean > 1.0


def test_new_sections_are_skipped_not_failed():
    # Baseline predates the kernel bench: its metrics must not count.
    base = _report({"wave": 3.0})
    cur = _report({"wave": 3.0}, kernels={"grid": 4.0}, chaos=2.0)
    ok, geomean, ratios = bench.compare_reports(cur, base)
    assert ok
    assert "graph_kernels/grid/speedup" not in ratios
    assert "chaos_sweep/speedup" not in ratios
    assert abs(geomean - 1.0) < 1e-12


def test_disjoint_reports_trivially_pass():
    ok, geomean, ratios = bench.compare_reports(_report({"wave": 1.0}), {})
    assert ok and geomean == 1.0 and ratios == {}


def test_committed_baseline_is_comparable():
    # The artifact CI diffs against must keep exposing the gate metrics.
    import json

    baseline = json.loads(
        (_BENCH.parent.parent / "BENCH_757cd87.json").read_text()
    )
    metrics = bench.comparable_metrics(baseline)
    assert "event_queue/chain/speedup" in metrics
    assert "chaos_sweep/speedup" in metrics
    assert all(v > 0 for v in metrics.values())
