"""Tests for DS termination detection and leader election."""

import pytest

from repro.graphs import (
    complete_graph,
    network_params,
    path_graph,
    random_connected_graph,
    ring_graph,
)
from repro.protocols import (
    run_leader_election,
    run_with_termination_detection,
)
from repro.protocols.broadcast import FloodProcess
from repro.sim import Process, UniformDelay


# --------------------------------------------------------------------- #
# Dijkstra-Scholten termination detection
# --------------------------------------------------------------------- #


def _flood_factory(initiator):
    return lambda v: FloodProcess(v == initiator, payload="w")


def test_ds_detects_flood_termination():
    g = random_connected_graph(20, 30, seed=1)
    result = run_with_termination_detection(g, _flood_factory(0), 0)
    for v in g.vertices:
        status, inner = result.result_of(v)
        assert status == "terminated"
    # Every node actually received the flood payload.
    for v, proc in result.processes.items():
        payload, _parent = proc.inner.ctx.result
        assert payload == "w"


def test_ds_ack_cost_mirrors_protocol_cost():
    g = ring_graph(10, weight=3.0)
    result = run_with_termination_detection(g, _flood_factory(0), 0)
    m = result.metrics
    proto = sum(c for t, c in m.cost_by_tag.items()
                if t.startswith("ds-proto"))
    acks = m.cost_by_tag["ds-ack"]
    # One ack (same edge, same cost) per protocol message: exact doubling.
    assert acks == pytest.approx(proto)


def test_ds_under_random_delays():
    g = random_connected_graph(15, 20, seed=2)
    result = run_with_termination_detection(
        g, _flood_factory(0), 0, delay=UniformDelay(), seed=7
    )
    assert all(r[0] == "terminated" for r in result.results().values())


def test_ds_trivial_computation():
    """An initiator that never sends: termination is detected immediately."""

    class Silent(Process):
        def on_start(self):
            self.finish("did nothing")

    g = path_graph(4)
    result = run_with_termination_detection(g, lambda v: Silent(), 0)
    assert result.result_of(0) == ("terminated", "did nothing")


def test_ds_multi_wave_computation():
    """A two-wave diffusing computation (flood + echo bounce) quiesces."""

    class Bouncer(Process):
        def __init__(self, start):
            self.start = start
            self.seen = False

        def on_start(self):
            if self.start:
                self.seen = True
                for v in self.neighbors():
                    self.send(v, 2)

        def on_message(self, frm, ttl):
            if not self.seen and ttl > 0:
                self.seen = True
                for v in self.neighbors():
                    if v != frm:
                        self.send(v, ttl - 1)

    g = random_connected_graph(12, 18, seed=3)
    result = run_with_termination_detection(
        g, lambda v: Bouncer(v == 0), 0
    )
    assert all(r[0] == "terminated" for r in result.results().values())


# --------------------------------------------------------------------- #
# Leader election
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("maker", [
    lambda: path_graph(2, weight=4.0),
    lambda: ring_graph(9, weight=2.0),
    lambda: complete_graph(8),
    lambda: random_connected_graph(20, 30, seed=4),
])
def test_leader_election_unanimous(maker):
    g = maker()
    result, leader = run_leader_election(g)
    assert leader in g
    for proc in result.processes.values():
        assert proc.leader == leader


def test_leader_election_deterministic():
    g = random_connected_graph(15, 25, seed=5)
    _, l1 = run_leader_election(g)
    _, l2 = run_leader_election(g)
    assert l1 == l2


def test_leader_election_under_random_delays_agrees():
    g = random_connected_graph(15, 25, seed=6)
    for seed in range(3):
        result, leader = run_leader_election(
            g, delay=UniformDelay(), seed=seed
        )
        leaders = {p.leader for p in result.processes.values()}
        assert leaders == {leader}


def test_leader_election_cost_is_mst_cost():
    g = random_connected_graph(25, 50, seed=7)
    p = network_params(g)
    import math

    result, _ = run_leader_election(g)
    assert result.comm_cost <= 6 * (p.E + p.V * math.log2(p.n))
