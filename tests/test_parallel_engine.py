"""Unit tests for the multiprocessing sweep engine (repro.experiments.parallel)."""

import pickle

import pytest

from repro.experiments.parallel import (
    ChaosCell,
    cell_seed,
    chaos_cells,
    run_chaos_cell,
    run_parallel,
)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


def test_run_parallel_serial_and_pool_agree_in_order():
    cells = list(range(10))
    serial = run_parallel(_square, cells, jobs=1)
    pooled = run_parallel(_square, cells, jobs=2)
    assert serial == pooled == [x * x for x in cells]


def test_run_parallel_serial_path_has_no_pool():
    # jobs=None/0/1 must run in-process: a closure (unpicklable) works.
    captured = []
    result = run_parallel(lambda x: captured.append(x) or x, [1, 2, 3])
    assert result == [1, 2, 3] and captured == [1, 2, 3]


def test_run_parallel_propagates_worker_exception():
    with pytest.raises(ValueError):
        run_parallel(_fail_on_three, [1, 2, 3, 4], jobs=2)


def test_cell_seed_is_pinned_and_hash_randomization_proof():
    # Exact values: derived from SHA-256, so they must never drift across
    # processes, platforms, or PYTHONHASHSEED settings.
    assert cell_seed(0) == cell_seed(0)
    assert cell_seed(7, "broadcast", 0.2) == cell_seed(7, "broadcast", 0.2)
    assert cell_seed(7, "broadcast", 0.2) != cell_seed(7, "broadcast", 0.05)
    assert cell_seed(7, "broadcast", 0.2) != cell_seed(8, "broadcast", 0.2)
    assert 0 <= cell_seed(1, "x") < 2 ** 63


def test_cell_seed_stable_across_interpreters():
    import pathlib
    import subprocess
    import sys

    import repro

    src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    code = (
        f"import sys; sys.path.insert(0, {src!r});"
        "from repro.experiments.parallel import cell_seed;"
        "print(cell_seed(7, 'broadcast', 0.2))"
    )
    outs = {
        subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONHASHSEED": str(h), "PATH": "/usr/bin:/bin"},
        ).stdout.strip()
        for h in (0, 1, 424242)
    }
    assert len(outs) == 1
    assert int(outs.pop()) == cell_seed(7, "broadcast", 0.2)


def test_chaos_cells_enumerate_matrix_in_row_order():
    cells = chaos_cells(n=10, extra_edges=12, graph_seed=4,
                        drop_rates=(0.0, 0.2))
    # 5 protocols x (reliable@0.0 + reliable@0.2 + raw@0.2).
    assert len(cells) == 15
    broadcast = [c for c in cells if c.protocol == "broadcast"]
    assert [(c.drop, c.reliable) for c in broadcast] == [
        (0.0, True), (0.2, True), (0.2, False),
    ]
    # Raw cells only exist at positive drop rates.
    assert all(c.drop > 0 for c in cells if not c.reliable)


def test_chaos_cells_respect_include_raw_flag():
    cells = chaos_cells(n=10, extra_edges=12, graph_seed=4,
                        drop_rates=(0.0, 0.2), include_raw=False)
    assert all(c.reliable for c in cells)
    assert len(cells) == 10


def test_chaos_cell_is_picklable_and_hashable():
    cell = ChaosCell(10, 12, 4, "broadcast", 0.2, True, 7)
    assert pickle.loads(pickle.dumps(cell)) == cell
    assert len({cell, ChaosCell(10, 12, 4, "broadcast", 0.2, True, 7)}) == 1


def test_run_chaos_cell_returns_flat_picklable_row():
    cell = ChaosCell(10, 12, 4, "broadcast", 0.0, True, 7)
    row = run_chaos_cell(cell)
    pickle.dumps(row)  # must survive a process boundary
    assert row["protocol"] == "broadcast"
    assert row["status"] == "ok"
    assert row["ff_cost"] > 0
    assert row["retry_count"] == 0  # fault-free: nothing to retransmit
    assert isinstance(row["answer_digest"], str)
