"""Unit tests for the multiprocessing sweep engine (repro.experiments.parallel)."""

import pickle

import pytest

from repro.experiments.parallel import (
    ChaosCell,
    cell_seed,
    chaos_cells,
    chaos_rows,
    parallel_plan,
    run_chaos_cell,
    run_parallel,
    shutdown_pool,
)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


def test_run_parallel_serial_and_pool_agree_in_order():
    cells = list(range(10))
    serial = run_parallel(_square, cells, jobs=1)
    pooled = run_parallel(_square, cells, jobs=2)
    assert serial == pooled == [x * x for x in cells]


def test_run_parallel_serial_path_has_no_pool():
    # jobs=None/0/1 must run in-process: a closure (unpicklable) works.
    captured = []
    result = run_parallel(lambda x: captured.append(x) or x, [1, 2, 3])
    assert result == [1, 2, 3] and captured == [1, 2, 3]


def test_run_parallel_propagates_worker_exception():
    with pytest.raises(ValueError):
        run_parallel(_fail_on_three, [1, 2, 3, 4], jobs=2)


def test_parallel_plan_serial_fallbacks():
    # No jobs requested, or nothing to parallelize.
    assert parallel_plan(100, None) == ("serial", 1)
    assert parallel_plan(100, 1) == ("serial", 1)
    assert parallel_plan(100, 0) == ("serial", 1)
    assert parallel_plan(1, 8, cpu_count=8) == ("serial", 1)
    assert parallel_plan(0, 8, cpu_count=8) == ("serial", 1)
    # A single-CPU host can never win from a process pool.
    assert parallel_plan(1000, 4, cpu_count=1) == ("serial", 1)
    # Too few cells per worker to amortize spin-up.
    assert parallel_plan(7, 4, cpu_count=8) == ("serial", 1)
    assert parallel_plan(3, 2, cpu_count=8) == ("serial", 1)


def test_parallel_plan_pool_chunksize_is_adaptive():
    # 2 cells/worker is the documented threshold: 8 cells at jobs=4 pools.
    assert parallel_plan(8, 4, cpu_count=8) == ("pool", 1)
    # ~4 dispatch waves per worker: 320 cells / (4 jobs * 4 waves) = 20.
    assert parallel_plan(320, 4, cpu_count=8) == ("pool", 20)
    mode, chunk = parallel_plan(75, 4, cpu_count=8)
    assert mode == "pool" and chunk == max(1, 75 // 16)


def test_run_parallel_force_pool_matches_serial_rows():
    # Exercise the real pool path (warm initializer included) even on
    # hosts where the plan would fall back to serial, and prove the rows
    # are byte-identical to the in-process reference.
    shutdown_pool()
    try:
        kw = dict(n=10, extra_edges=12, graph_seed=4, drop_rates=(0.0, 0.2))
        serial = chaos_rows(jobs=1, **kw)
        pooled = chaos_rows(jobs=2, force="pool", **kw)
        assert pooled == serial
        # The persistent pool is reused (and its warm caches with it).
        again = chaos_rows(jobs=2, force="pool", **kw)
        assert again == serial
    finally:
        shutdown_pool()


def test_run_parallel_force_validation():
    with pytest.raises(ValueError):
        run_parallel(_square, [1, 2], force="bogus")
    # force="serial" never pickles: closures are fine.
    assert run_parallel(lambda x: x + 1, [1, 2], jobs=8,
                        force="serial") == [2, 3]


def test_cell_seed_is_pinned_and_hash_randomization_proof():
    # Frozen literals: any change to the SHA-256 derivation (hash input
    # layout, digest slicing, the 63-bit mask) breaks sweep
    # reproducibility silently — this pins the exact mapping.
    assert cell_seed(7, "broadcast", 0.2) == 319594450122929095
    assert cell_seed(0) == 5254295370254170289
    assert cell_seed(42, "mst", 1, True) == 1759530857694941299
    # Exact values: derived from SHA-256, so they must never drift across
    # processes, platforms, or PYTHONHASHSEED settings.
    assert cell_seed(0) == cell_seed(0)
    assert cell_seed(7, "broadcast", 0.2) == cell_seed(7, "broadcast", 0.2)
    assert cell_seed(7, "broadcast", 0.2) != cell_seed(7, "broadcast", 0.05)
    assert cell_seed(7, "broadcast", 0.2) != cell_seed(8, "broadcast", 0.2)
    assert 0 <= cell_seed(1, "x") < 2 ** 63


def test_cell_seed_stable_across_interpreters():
    import pathlib
    import subprocess
    import sys

    import repro

    src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    code = (
        f"import sys; sys.path.insert(0, {src!r});"
        "from repro.experiments.parallel import cell_seed;"
        "print(cell_seed(7, 'broadcast', 0.2))"
    )
    outs = {
        subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONHASHSEED": str(h), "PATH": "/usr/bin:/bin"},
        ).stdout.strip()
        for h in (0, 1, 424242)
    }
    assert len(outs) == 1
    assert int(outs.pop()) == cell_seed(7, "broadcast", 0.2)


def test_chaos_cells_enumerate_matrix_in_row_order():
    cells = chaos_cells(n=10, extra_edges=12, graph_seed=4,
                        drop_rates=(0.0, 0.2))
    # 6 protocols x (reliable@0.0 + reliable@0.2 + raw@0.2).
    assert len(cells) == 18
    broadcast = [c for c in cells if c.protocol == "broadcast"]
    assert [(c.drop, c.reliable) for c in broadcast] == [
        (0.0, True), (0.2, True), (0.2, False),
    ]
    # Raw cells only exist at positive drop rates.
    assert all(c.drop > 0 for c in cells if not c.reliable)


def test_chaos_cells_respect_include_raw_flag():
    cells = chaos_cells(n=10, extra_edges=12, graph_seed=4,
                        drop_rates=(0.0, 0.2), include_raw=False)
    assert all(c.reliable for c in cells)
    assert len(cells) == 12


def test_chaos_cell_is_picklable_and_hashable():
    cell = ChaosCell(10, 12, 4, "broadcast", 0.2, True, 7)
    assert pickle.loads(pickle.dumps(cell)) == cell
    assert len({cell, ChaosCell(10, 12, 4, "broadcast", 0.2, True, 7)}) == 1


def test_run_chaos_cell_returns_flat_picklable_row():
    cell = ChaosCell(10, 12, 4, "broadcast", 0.0, True, 7)
    row = run_chaos_cell(cell)
    pickle.dumps(row)  # must survive a process boundary
    assert row["protocol"] == "broadcast"
    assert row["status"] == "ok"
    assert row["ff_cost"] > 0
    assert row["retry_count"] == 0  # fault-free: nothing to retransmit
    assert isinstance(row["answer_digest"], str)
